//! Workspace-level integration tests: whole-stack scenarios through the
//! facade crate, spanning every layer (DES → memory → devices → network
//! → coherence → scheduler → runtime → applications).

use ompss::apps::common::rel_error;
use ompss::apps::matmul::{self, ompss::InitMode, MatmulParams};
use ompss::{
    cast_slice, cast_slice_mut, Backing, CachePolicy, Device, KernelCost, Policy, Runtime,
    RuntimeConfig, SimDuration, SlaveRouting, TaskSpec,
};

/// A heterogeneous pipeline: CPU tasks prepare data, GPU tasks transform
/// it, a CPU task reduces it — exercising SMP workers, GPU managers and
/// host↔device coherence in one graph.
#[test]
fn heterogeneous_cpu_gpu_pipeline_validates() {
    let n = 4096usize;
    let bs = 512usize;
    let sum = std::sync::Arc::new(parking_lot::Mutex::new(0.0f64));
    let sum2 = sum.clone();
    Runtime::run(RuntimeConfig::multi_gpu(2), move |omp| async move {
        let x = omp.alloc_array::<f32>(n);
        let y = omp.alloc_array::<f32>(n);
        let acc = omp.alloc_array::<f32>(n / bs);
        // Stage 1 (CPU): fill x with ramp values.
        for j in (0..n).step_by(bs) {
            omp.submit(
                TaskSpec::new("fill")
                    .device(Device::Smp)
                    .output(x.region(j..j + bs))
                    .cost_smp(SimDuration::from_micros(20))
                    .body(move |v| {
                        for (o, e) in cast_slice_mut::<f32>(v[0]).iter_mut().enumerate() {
                            *e = (j + o) as f32;
                        }
                    }),
            )
            .await;
        }
        // Stage 2 (GPU): y = x * 2.
        for j in (0..n).step_by(bs) {
            omp.submit(
                TaskSpec::new("double")
                    .device(Device::Cuda)
                    .input(x.region(j..j + bs))
                    .output(y.region(j..j + bs))
                    .cost_gpu(KernelCost::memory_bound((bs * 8) as f64, 0.8))
                    .body(|v| {
                        let (xs, ys) = v.split_first_mut().unwrap();
                        for (o, e) in cast_slice_mut::<f32>(ys[0]).iter_mut().enumerate() {
                            *e = 2.0 * cast_slice::<f32>(xs)[o];
                        }
                    }),
            )
            .await;
        }
        // Stage 3 (CPU): per-block sums.
        for (b, j) in (0..n).step_by(bs).enumerate() {
            omp.submit(
                TaskSpec::new("reduce")
                    .device(Device::Smp)
                    .input(y.region(j..j + bs))
                    .output(acc.region(b..b + 1))
                    .cost_smp(SimDuration::from_micros(10))
                    .body(|v| {
                        let (ys, out) = v.split_first_mut().unwrap();
                        let s: f32 = cast_slice::<f32>(ys).iter().sum();
                        cast_slice_mut::<f32>(out[0])[0] = s;
                    }),
            )
            .await;
        }
        omp.taskwait().await;
        let partials = omp.read_array(&acc, 0..n / bs).unwrap();
        *sum2.lock() = partials.iter().map(|&p| p as f64).sum();
    });
    let expect: f64 = (0..n).map(|i| 2.0 * i as f64).sum();
    assert!((*sum.lock() - expect).abs() < 1e-3 * expect.abs());
}

/// The flagship scenario: paper-scale matmul validated end-to-end on a
/// cluster at small size, then timed at paper scale — both through the
/// identical application code.
#[test]
fn matmul_small_validates_and_paper_scale_times() {
    let small = MatmulParams::validate();
    let reference = matmul::serial::run(small);
    let got =
        matmul::ompss::run(RuntimeConfig::gpu_cluster(4), small, InitMode::Smp).check.unwrap();
    assert!(rel_error(&got, &reference) < 1e-6);

    let paper = MatmulParams::paper();
    let r = matmul::ompss::run(
        RuntimeConfig::gpu_cluster(4).with_backing(Backing::Phantom).with_presend(4),
        paper,
        InitMode::Smp,
    );
    assert!(r.metric > 1000.0, "paper-scale cluster matmul too slow: {:.0} GF", r.metric);
    assert!(r.check.is_none(), "phantom runs carry no validation payload");
}

/// Every (cache policy × scheduler × routing) combination must produce
/// identical *numerical* results — policies change time, never values.
#[test]
fn policies_never_change_results() {
    let p = MatmulParams::validate();
    let reference = matmul::serial::run(p);
    for cache in [CachePolicy::NoCache, CachePolicy::WriteThrough, CachePolicy::WriteBack] {
        for sched in [Policy::BreadthFirst, Policy::Dependencies, Policy::Affinity] {
            for routing in [SlaveRouting::ViaMaster, SlaveRouting::Direct] {
                let cfg = RuntimeConfig::gpu_cluster(2)
                    .with_cache(cache)
                    .with_sched(sched)
                    .with_routing(routing);
                let got = matmul::ompss::run(cfg, p, InitMode::Seq).check.unwrap();
                assert!(
                    rel_error(&got, &reference) < 1e-6,
                    "wrong result under {cache:?}/{sched:?}/{routing:?}"
                );
            }
        }
    }
}

/// Determinism across the whole stack: two identical cluster runs give
/// identical virtual-time reports, event counts and traffic.
#[test]
fn whole_stack_determinism() {
    let run = || {
        let r = matmul::ompss::run(
            RuntimeConfig::gpu_cluster(3).with_backing(Backing::Phantom).with_presend(2),
            MatmulParams { tiles: 6, bs: 256, real: false },
            InitMode::Smp,
        );
        let rep = r.report.unwrap();
        (r.elapsed, rep.events, rep.net.messages, rep.coherence.transfers, rep.sched.steals)
    };
    assert_eq!(run(), run());
}

/// Building a machine by hand from the substrate layer: a GPU device
/// driven directly under the DES, verifying stream/event semantics from
/// the facade.
#[test]
fn substrate_layer_usable_directly() {
    use ompss::substrate::{CopyDir, GpuDevice, Sim};
    use ompss::GpuSpec;

    let sim = Sim::new();
    sim.spawn("driver", async {
        let dev = GpuDevice::new("g", GpuSpec::tesla_s2050());
        let s = dev.create_stream("s");
        let k = s.launch_async(KernelCost::fixed(SimDuration::from_millis(2)), None);
        let c = s.memcpy_async(CopyDir::D2H, 1 << 20, false, None);
        // Same stream: FIFO — the copy completes after the kernel.
        c.synchronize().await.unwrap();
        assert!(k.query());
        let st = dev.stats();
        assert_eq!(st.kernels, 1);
        assert_eq!(st.d2h_copies, 1);
    });
    sim.run().unwrap();
}

/// `taskwait on` synchronises one region; `taskwait noflush` leaves
/// device copies in place — checked through traffic accounting.
#[test]
fn taskwait_variants_through_facade() {
    // Two GPUs so the short task is not queued behind the long one.
    Runtime::run(RuntimeConfig::multi_gpu(2), |omp| async move {
        let a = omp.alloc_array::<f32>(256);
        let b = omp.alloc_array::<f32>(256);
        omp.submit(
            TaskSpec::new("wa")
                .device(Device::Cuda)
                .output(a.full())
                .cost_gpu(KernelCost::fixed(SimDuration::from_millis(5)))
                .body(|v| cast_slice_mut::<f32>(v[0]).fill(1.0)),
        )
        .await;
        omp.submit(
            TaskSpec::new("wb")
                .device(Device::Cuda)
                .output(b.full())
                .cost_gpu(KernelCost::fixed(SimDuration::from_micros(50)))
                .body(|v| cast_slice_mut::<f32>(v[0]).fill(2.0)),
        )
        .await;
        let t0 = omp.now();
        omp.taskwait_on(b.full()).await;
        assert!(omp.now() - t0 < SimDuration::from_millis(2), "must not wait for task wa");
        assert_eq!(omp.read_array(&b, 0..1).unwrap(), vec![2.0]);
        omp.taskwait_noflush().await;
        // a finished but was not flushed:
        assert_eq!(omp.read_array(&a, 0..1).unwrap(), vec![0.0]);
        omp.taskwait().await;
        assert_eq!(omp.read_array(&a, 0..1).unwrap(), vec![1.0]);
    });
}

/// An 8-node cluster with mixed SMP/CUDA tasks shuts down cleanly and
/// reports consistent accounting.
#[test]
fn large_cluster_mixed_device_accounting() {
    let report = Runtime::run(
        RuntimeConfig::gpu_cluster(8).with_backing(Backing::Phantom),
        |omp| async move {
            let a = omp.alloc_array::<f32>(64 * 1024);
            for j in (0..64 * 1024).step_by(4096) {
                let r = a.region(j..j + 4096);
                omp.submit(
                    TaskSpec::new("gpu")
                        .device(Device::Cuda)
                        .inout(r)
                        .cost_gpu(KernelCost::fixed(SimDuration::from_micros(400))),
                )
                .await;
            }
            omp.taskwait_noflush().await;
            for j in (0..64 * 1024).step_by(4096) {
                let r = a.region(j..j + 4096);
                omp.submit(
                    TaskSpec::new("cpu")
                        .device(Device::Smp)
                        .inout(r)
                        .cost_smp(SimDuration::from_micros(300)),
                )
                .await;
            }
            omp.taskwait().await;
        },
    );
    assert_eq!(report.tasks, 32);
    assert_eq!(report.gpus.len(), 8);
    let kernels: u64 = report.gpus.iter().map(|(_, g)| g.kernels).sum();
    assert_eq!(kernels, 16, "every GPU task launched exactly one kernel");
    assert!(report.net.bytes_total > 0, "cluster execution moved data over the fabric");
}
