//! Perlin noise as an image-filter pipeline (Figures 7 and 12): the
//! cost of flushing intermediate frames to the host.
//!
//! When noise is one filter in a pipeline, the frame can stay on the
//! GPUs between steps (*NoFlush*); if the host needs each frame
//! (*Flush*), a flushing `taskwait` after every step drains the devices
//! and the throughput collapses — most visibly with many devices.
//!
//! Run with: `cargo run --release --example perlin_pipeline`

use ompss::apps::perlin::{self, PerlinParams};
use ompss::prelude::*;

fn main() {
    // Small validated run first: identical pixels to the serial filter.
    let small = PerlinParams::validate();
    let reference = perlin::serial::run(small);
    let got = perlin::ompss::run(RuntimeConfig::multi_gpu(2), small, false).check.unwrap();
    let same = got.iter().map(|v| v.to_bits()).eq(reference.iter().copied());
    println!(
        "validation: {}x{} image, {} steps on 2 GPUs — pixels bit-identical to serial: {same}\n",
        small.width, small.height, small.steps
    );
    assert!(same);

    // Paper-scale pipeline: 1024x1024, 10 filter steps.
    let p = PerlinParams::paper();
    println!("{}x{} image, {} filter steps\n", p.width, p.height, p.steps);
    println!("{:<10}{:>16}{:>16}{:>9}", "GPUs", "Flush (Mpx/s)", "NoFlush (Mpx/s)", "ratio");
    for gpus in [1u32, 2, 4] {
        let cfg = || {
            RuntimeConfig::multi_gpu(gpus)
                .with_backing(Backing::Phantom)
                .with_sched(Policy::Affinity)
        };
        let flush = perlin::ompss::run(cfg(), p, true);
        let noflush = perlin::ompss::run(cfg(), p, false);
        println!(
            "{:<10}{:>16.0}{:>16.0}{:>8.1}x",
            gpus,
            flush.metric,
            noflush.metric,
            noflush.metric / flush.metric
        );
    }
    println!(
        "\nKeeping intermediate frames device-resident (`taskwait noflush` /\n\
         dependence chaining) is worth several-fold throughput — the reason\n\
         the paper evaluates both variants."
    );
}
