//! The STREAM benchmark on a multi-GPU node (Figure 6): why the cache
//! write policy decides everything for bandwidth-bound task graphs.
//!
//! With write-back, each array block stays resident on the device that
//! owns its kernel chain and the measured bandwidth is the aggregate of
//! the GPUs' memory systems; with write-through or no caching, every
//! task's writes cross PCIe and the run collapses to bus speed.
//!
//! Run with: `cargo run --release --example stream_multigpu`

use ompss::apps::stream::{self, StreamParams};
use ompss::prelude::*;

fn main() {
    println!("STREAM (copy/scale/add/triad), 768 MB of arrays per GPU\n");
    println!("{:<10}{:>12}{:>12}{:>12}", "GPUs", "nocache", "wt", "wb (GB/s)");
    for gpus in [1u32, 2, 4] {
        let p = StreamParams::paper(gpus as usize);
        let mut row = format!("{gpus:<10}");
        for cache in [CachePolicy::NoCache, CachePolicy::WriteThrough, CachePolicy::WriteBack] {
            let cfg =
                RuntimeConfig::multi_gpu(gpus).with_backing(Backing::Phantom).with_cache(cache);
            let r = stream::ompss::run(cfg, p);
            row.push_str(&format!("{:>12.1}", r.metric));
        }
        println!("{row}");
    }

    // The scheduler barely matters for STREAM's simple structure —
    // the paper's observation, reproduced.
    println!("\nwrite-back across schedulers at 4 GPUs:");
    let p = StreamParams::paper(4);
    for sched in [Policy::BreadthFirst, Policy::Dependencies, Policy::Affinity] {
        let cfg = RuntimeConfig::multi_gpu(4).with_backing(Backing::Phantom).with_sched(sched);
        let r = stream::ompss::run(cfg, p);
        println!("  {:<14}{:>10.1} GB/s", sched.chart_label(), r.metric);
    }
}
