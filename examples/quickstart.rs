//! Quickstart: the OmpSs programming model in one small program.
//!
//! A blocked SAXPY (`y = a·x + y`) written once as annotated tasks,
//! then run on three different machines — one GPU, a 4-GPU node, and a
//! 4-node GPU cluster — without touching the program. The runtime moves
//! the data, schedules the tasks and overlaps the communication; the
//! program just states the data flow.
//!
//! Run with: `cargo run --example quickstart`

use ompss::prelude::*;
use ompss::{cast_slice, cast_slice_mut};

const N: usize = 1 << 14;
const BS: usize = 1 << 11;
const A: f32 = 2.5;

/// The annotated program: the paper's `#pragma omp target device(cuda)
/// copy_deps` + `#pragma omp task input([BS]x) inout([BS]y)` pair,
/// lowered to the runtime API.
async fn saxpy(omp: &ompss::Omp) -> Vec<f32> {
    let x = omp.alloc_array::<f32>(N);
    let y = omp.alloc_array::<f32>(N);
    omp.write_array(&x, 0, &(0..N).map(|i| i as f32).collect::<Vec<_>>());
    omp.write_array(&y, 0, &vec![1.0f32; N]);

    for j in (0..N).step_by(BS) {
        omp.submit(
            TaskSpec::new("saxpy")
                .device(Device::Cuda)
                .input(x.region(j..j + BS))
                .inout(y.region(j..j + BS))
                .cost_gpu(KernelCost::memory_bound((BS * 12) as f64, 0.8))
                .body(|v| {
                    let (xs, ys) = v.split_first_mut().unwrap();
                    for (yv, xv) in
                        cast_slice_mut::<f32>(ys[0]).iter_mut().zip(cast_slice::<f32>(xs))
                    {
                        *yv += A * xv;
                    }
                }),
        )
        .await;
    }
    omp.taskwait().await; // wait + flush results back to the host
    omp.read_array(&y, 0..N).expect("real backing")
}

fn main() {
    let machines = [
        ("one GPU", RuntimeConfig::multi_gpu(1)),
        ("4-GPU node", RuntimeConfig::multi_gpu(4)),
        ("4-node GPU cluster", RuntimeConfig::gpu_cluster(4)),
    ];
    for (name, cfg) in machines {
        let out = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let out2 = out.clone();
        let report = Runtime::run(cfg, move |omp| async move {
            *out2.lock() = saxpy(&omp).await;
        });
        let y = out.lock().clone();
        // Validate against the closed form: y[i] = 1 + A·i.
        for (i, &v) in y.iter().enumerate() {
            assert_eq!(v, 1.0 + A * i as f32, "wrong y[{i}]");
        }
        println!(
            "{name:>20}: {} tasks in {} of virtual time, {} bytes moved by coherence — results verified",
            report.tasks,
            report.elapsed,
            report.coherence.bytes_moved,
        );
    }
    println!("\nThe same program ran on all three machines unchanged.");
}
