//! N-Body on the GPU cluster (Figure 13): an all-to-all communication
//! pattern, with numerical validation against the serial simulator.
//!
//! Every body's force sums over all bodies, so each iteration's new
//! positions must reach every GPU in the cluster. The OmpSs version
//! expresses that as `input` clauses on all position blocks; the
//! runtime's coherence layer performs the redistribution. The MPI+CUDA
//! baseline does the same with an explicit allgather.
//!
//! Run with: `cargo run --release --example nbody_cluster`

use ompss::apps::common::rel_error;
use ompss::apps::nbody::{self, NbodyParams};
use ompss::prelude::*;
use ompss::substrate::FabricConfig;

fn main() {
    // First: a small validated run — the cluster must produce exactly
    // the serial simulator's trajectories.
    let small = NbodyParams::validate();
    let reference = nbody::serial::run(small);
    let cluster = nbody::ompss::run(RuntimeConfig::gpu_cluster(4), small).check.unwrap();
    let err = rel_error(&cluster, &reference);
    println!(
        "validation: {} bodies, {} iterations on 4 nodes — relative error vs serial: {err:.2e}\n",
        small.n, small.iters
    );
    assert!(err < 1e-6);

    // Then: the paper-scale run, OmpSs vs MPI+CUDA.
    let p = NbodyParams::paper();
    println!("{} bodies, {} iterations (all-pairs, single precision)\n", p.n, p.iters);
    println!("{:<8}{:>14}{:>16}", "nodes", "OmpSs (GF)", "MPI+CUDA (GF)");
    for nodes in [1u32, 2, 4, 8] {
        let cfg = RuntimeConfig::gpu_cluster(nodes)
            .with_backing(Backing::Phantom)
            .with_routing(SlaveRouting::Direct)
            .with_presend(1);
        let r = nbody::ompss::run(cfg, p);
        let m = nbody::mpi::run(nodes, GpuSpec::gtx_480(), FabricConfig::qdr_infiniband(nodes), p);
        println!("{:<8}{:>14.0}{:>16.0}", nodes, r.metric, m.metric);
    }
    println!(
        "\nThe all-to-all pattern leaves little room to overlap communication\n\
         with computation (the paper's observation for this benchmark)."
    );
}
