//! Building a custom machine from the substrates: a two-tier GPU
//! cluster with heterogeneous interconnect parameters, plus direct use
//! of the simulated CUDA layer.
//!
//! The runtime's presets reproduce the paper's two testbeds, but every
//! knob is open: device specs, fabric latency/bandwidth, cache policy,
//! scheduler, presend. This example sweeps interconnect bandwidth to
//! find where a communication-heavy workload stops scaling — the kind
//! of what-if study the simulated substrate makes cheap.
//!
//! Run with: `cargo run --release --example custom_machine`

use ompss::apps::matmul::{self, ompss::InitMode, MatmulParams};
use ompss::prelude::*;
use ompss::substrate::{CopyDir, GpuDevice, Sim};

fn main() {
    // Part 1: drive the simulated CUDA layer directly — the substrate
    // the runtime's GPU managers are built on.
    let sim = Sim::new();
    sim.spawn("cuda-demo", async {
        let dev = GpuDevice::new("demo", GpuSpec::gtx_480());
        let compute = dev.create_stream("compute");
        let copies = dev.create_stream("copies");
        // A 4 ms kernel and a pinned 8 MB upload, on separate streams:
        let k = compute.launch_async(KernelCost::fixed(SimDuration::from_millis(4)), None);
        let c = copies.memcpy_async(CopyDir::H2D, 8 << 20, true, None);
        c.synchronize().await.unwrap();
        let copy_done = now();
        k.synchronize().await.unwrap();
        println!(
            "substrate demo: pinned copy finished at {copy_done}, kernel at {} — they overlapped",
            now()
        );
    });
    sim.run().unwrap();

    // Part 2: what-if — how does the cluster matmul respond to the
    // interconnect? Sweep the fabric bandwidth on an 8-node machine.
    let p = MatmulParams::paper();
    println!("\nmatmul 12288^2 on 8 nodes vs interconnect bandwidth:");
    println!("{:<18}{:>12}", "fabric (GB/s)", "GFLOPS");
    for bw in [0.4e9, 0.8e9, 1.6e9, 3.2e9, 6.4e9] {
        let mut cfg = RuntimeConfig::gpu_cluster(8).with_backing(Backing::Phantom).with_presend(8);
        cfg.fabric.bandwidth = bw;
        let r = matmul::ompss::run(cfg, p, InitMode::Smp);
        println!("{:<18}{:>12.0}", bw / 1e9, r.metric);
    }
    println!("\nBelow ~1 GB/s the run is wire-bound; above ~3 GB/s the GPUs saturate.");
}
