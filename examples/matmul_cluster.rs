//! Tiled matrix multiply on a simulated GPU cluster — the paper's
//! headline workload (Figures 9 and 10).
//!
//! Runs the OmpSs version at paper scale (12288² floats, 1024² tiles,
//! phantom-backed) across 1–8 nodes, comparing cluster configuration
//! options (slave-to-slave transfers, parallel initialisation, presend)
//! against the MPI+CUDA SUMMA baseline.
//!
//! Run with: `cargo run --release --example matmul_cluster`

use ompss::apps::matmul::{self, ompss::InitMode, MatmulParams};
use ompss::prelude::*;
use ompss::substrate::FabricConfig;

fn main() {
    let p = MatmulParams::paper();
    println!("Matrix multiply {}x{} single precision, {}x{} tiles\n", p.n(), p.n(), p.bs, p.bs);
    println!(
        "{:<8}{:>14}{:>14}{:>16}{:>14}",
        "nodes", "naive (GF)", "best (GF)", "MPI+CUDA (GF)", "best config"
    );
    for nodes in [1u32, 2, 4, 8] {
        // Naive: master-routed transfers, sequential init, no presend.
        let naive = matmul::ompss::run(
            RuntimeConfig::gpu_cluster(nodes)
                .with_backing(Backing::Phantom)
                .with_routing(SlaveRouting::ViaMaster)
                .with_presend(0),
            p,
            InitMode::Seq,
        );
        // Best: direct slave-to-slave, parallel SMP init, presend 8.
        let best = matmul::ompss::run(
            RuntimeConfig::gpu_cluster(nodes)
                .with_backing(Backing::Phantom)
                .with_routing(SlaveRouting::Direct)
                .with_presend(8),
            p,
            InitMode::Smp,
        );
        let mpi =
            matmul::mpi::run(nodes, GpuSpec::gtx_480(), FabricConfig::qdr_infiniband(nodes), p);
        println!(
            "{:<8}{:>14.0}{:>14.0}{:>16.0}{:>14}",
            nodes, naive.metric, best.metric, mpi.metric, "StoS/smp/p8"
        );
    }
    println!(
        "\nThe configuration options matter: slave-to-slave transfers, parallel\n\
         initialisation and presend (Fig. 9) take OmpSs from trailing the\n\
         hand-written SUMMA baseline to beating it at scale (Fig. 10)."
    );
}
