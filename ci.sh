#!/usr/bin/env bash
# Full CI gate: formatting, lints, build, tests.
#
#   ./ci.sh          # everything
#   ./ci.sh quick    # skip the release build (lints + tests only)
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" != "quick" ]]; then
    echo "==> cargo build --release"
    cargo build --release
fi

echo "==> cargo test"
cargo test --workspace -q

echo "CI green."
