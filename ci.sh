#!/usr/bin/env bash
# Full CI gate: formatting, lints, build, tests, clause verification,
# fault-injection sweep.
#
#   ./ci.sh          # everything
#   ./ci.sh quick    # skip the release build (lints + tests + verify)
#   ./ci.sh verify   # only the ompss-verify sweep over the apps
#   ./ci.sh chaos    # only the fault-injection sweep over the apps
#   ./ci.sh churn    # elastic-membership grid: joins/drains/kill races
#   ./ci.sh bench    # wall-clock spine: fail on >20% macro regression
#   ./ci.sh scale    # 1000-node demo + 64-node weak-scaling gate (release)
#   ./ci.sh mc       # bounded model-check of matmul+stream schedules
#   ./ci.sh serve    # job-server soak: overload, cancels, fairness
set -euo pipefail
cd "$(dirname "$0")"

verify() {
    echo "==> ompss-verify (all apps, multi-GPU + flat cluster + sharded cluster, schedule sweep)"
    cargo run -q --release -p ompss-verify --bin verify -- --all
}

chaos() {
    echo "==> ompss-chaos (all apps, two rates x three seeds, both topologies)"
    cargo run -q --release -p ompss-chaos --bin chaos -- --rates 0.05,0.1 --seeds 1,2,3
    echo "==> ompss-chaos --node-kill (all apps, flat clusters 2+3 + sharded cluster 3, every slave, three kill points)"
    cargo run -q --release -p ompss-chaos --bin chaos -- --node-kill --kill-points 20,45,70
}

churn() {
    echo "==> ompss-chaos --churn (perlin+stream, flat + sharded 3-node cluster, join/drain/kill races)"
    cargo run -q --release -p ompss-chaos --bin chaos -- --churn perlin stream
}

bench() {
    echo "==> bench_sim (host wall-clock vs committed BENCH_sim.json, +20% budget)"
    cargo run -q --release -p ompss-bench --bin bench_sim -- --check
    echo "==> serve --bench (daemon throughput vs committed BENCH_serve.json, -20% budget)"
    cargo run -q --release -p ompss-serve --bin serve -- --bench --check --jobs 4
}

serve() {
    echo "==> ompss-serve soak (500 mixed-priority jobs, overload bursts, cancels, drain)"
    cargo run -q --release -p ompss-serve --bin serve -- --soak 500 --jobs 4
}

scale() {
    echo "==> 1000-node cluster demonstration (release, in-memory)"
    cargo test -q --release -p ompss-runtime --test runtime_tests -- --ignored thousand_node
    echo "==> weak scaling at 64 nodes (sharded control plane must beat the flat master)"
    cargo test -q --release -p ompss-apps --lib -- --ignored weak_scaling
}

mc() {
    echo "==> ompss-mc (matmul+stream, 2-node cluster, >=1000 interleavings each)"
    cargo run -q --release -p ompss-mc --bin mc -- \
        --apps matmul,stream --nodes 2 --max-interleavings 1200 --min-interleavings 1000
}

mc_defects() {
    echo "==> ompss-mc seeded-defect corpus (cfg mc_defects build)"
    RUSTFLAGS="--cfg mc_defects" CARGO_TARGET_DIR=target/mc-defects \
        cargo test -q -p ompss-mc --test defects
}

if [[ "${1:-}" == "verify" ]]; then
    verify
    echo "CI green."
    exit 0
fi

if [[ "${1:-}" == "chaos" ]]; then
    chaos
    echo "CI green."
    exit 0
fi

if [[ "${1:-}" == "churn" ]]; then
    churn
    echo "CI green."
    exit 0
fi

if [[ "${1:-}" == "bench" ]]; then
    bench
    echo "CI green."
    exit 0
fi

if [[ "${1:-}" == "scale" ]]; then
    scale
    echo "CI green."
    exit 0
fi

if [[ "${1:-}" == "mc" ]]; then
    mc
    echo "CI green."
    exit 0
fi

if [[ "${1:-}" == "serve" ]]; then
    serve
    echo "CI green."
    exit 0
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" != "quick" ]]; then
    echo "==> cargo build --release"
    cargo build --release
    scale
fi

echo "==> cargo test"
cargo test --workspace -q

verify

chaos

churn

mc

serve

if [[ "${1:-}" != "quick" ]]; then
    mc_defects
fi

echo "CI green."
