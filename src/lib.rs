//! # OmpSs for GPU clusters — a Rust reproduction
//!
//! This crate is the facade of a full reproduction of *Productive
//! Programming of GPU Clusters with OmpSs* (Bueno et al., IPPS 2012):
//! the OmpSs task-parallel programming model and its Nanos++-style
//! runtime, rebuilt over deterministic simulated hardware (Fermi-era
//! GPUs, a QDR-Infiniband cluster) so that the paper's entire
//! evaluation regenerates on a laptop.
//!
//! The same annotated program runs unchanged on one GPU, a multi-GPU
//! node, or a cluster of GPU nodes:
//!
//! ```
//! use ompss::{Device, KernelCost, Runtime, RuntimeConfig, TaskSpec};
//!
//! // Two GPUs in one node; swap for `RuntimeConfig::gpu_cluster(8)`
//! // and the program below is untouched.
//! let report = Runtime::run(RuntimeConfig::multi_gpu(2), |omp| async move {
//!     let a = omp.alloc_array::<f32>(1 << 12);
//!     for j in (0..1 << 12).step_by(1 << 10) {
//!         let r = a.region(j..j + (1 << 10));
//!         omp.submit(
//!             TaskSpec::new("scale")
//!                 .device(Device::Cuda)
//!                 .inout(r)
//!                 .cost_gpu(KernelCost::memory_bound(8.0 * (1 << 10) as f64, 0.8))
//!                 .body(|v| {
//!                     for x in ompss::cast_slice_mut::<f32>(v[0]) {
//!                         *x = 2.0 * *x + 1.0;
//!                     }
//!                 }),
//!         )
//!         .await;
//!     }
//!     omp.taskwait().await;
//! });
//! assert_eq!(report.tasks, 4);
//! ```
//!
//! See the workspace crates for the pieces: `ompss-sim` (deterministic
//! DES), `ompss-mem`, `ompss-net`, `ompss-cudasim` (substrates),
//! `ompss-core`/`ompss-sched`/`ompss-coherence`/`ompss-runtime` (the
//! model and runtime), `ompss-apps` (the four evaluation benchmarks in
//! four programming styles), and `ompss-bench` (one harness per figure
//! and table of the paper).

#![warn(missing_docs)]

pub use ompss_core::{Device, TaskGraph, TaskId};
pub use ompss_cudasim::{GpuSpec, KernelCost};
pub use ompss_mem::{cast_slice, cast_slice_mut, Backing, Region};
pub use ompss_runtime::trace;
pub use ompss_runtime::SlaveRouting;
pub use ompss_runtime::{
    ArrayHandle, CachePolicy, CounterSnapshot, FaultClass, FaultPlan, FaultStats, Omp,
    ParaverTrace, Policy, RunError, RunReport, Runtime, RuntimeConfig, SimDuration, SimTime,
    TaskCost, TaskHandle, TaskSpec,
};

/// Everything an annotated program needs, in one import.
///
/// ```
/// use ompss::prelude::*;
///
/// let report = Runtime::run(RuntimeConfig::multi_gpu(1), |omp| async move {
///     let a = omp.alloc_array::<f32>(256);
///     // A bare handle in a clause means the whole array; `submit`
///     // returns a handle for `taskwait on`-style point waits.
///     let h = omp.submit(TaskSpec::new("init").device(Device::Smp).output(a)).await;
///     omp.taskwait_on_handle(&h).await;
/// });
/// assert_eq!(report.tasks, 1);
/// ```
pub mod prelude {
    pub use ompss_core::Device;
    pub use ompss_cudasim::{GpuSpec, KernelCost};
    pub use ompss_mem::{Backing, Region};
    pub use ompss_runtime::{
        ArrayHandle, CachePolicy, Omp, Policy, RunReport, Runtime, RuntimeConfig, SimDuration,
        SlaveRouting, TaskHandle, TaskSpec,
    };
    // Ambient-context accessors, usable directly inside any `async`
    // task or process body — no handle threading required.
    pub use ompss_sim::{abort_run, delay, now, pid, yield_now};
}

/// The evaluation applications (Matmul, STREAM, Perlin, N-Body) in
/// serial / CUDA / MPI+CUDA / OmpSs versions.
pub use ompss_apps as apps;

/// The clause/dependence race detector and invariant checker: turns
/// verify-mode run evidence ([`RuntimeConfig::with_verify`]) into
/// actionable findings.
///
/// ```
/// use ompss::{Device, Runtime, RuntimeConfig, TaskSpec};
///
/// let report = Runtime::run(RuntimeConfig::multi_gpu(1).with_verify(true), |omp| async move {
///     let a = omp.alloc_array::<f32>(64);
///     let r = a.region(0..64);
///     // Mutates its view despite declaring only `input` — the byte
///     // diff catches it.
///     omp.submit(TaskSpec::new("sneaky").device(Device::Smp).input(r).body(|v| {
///         v[0][0] ^= 1;
///     }))
///     .await;
/// });
/// let findings = ompss::verify::validate(&report);
/// assert_eq!(findings.len(), 1);
/// assert_eq!(findings[0].kind, ompss::verify::FindingKind::WriteThroughInput);
/// assert_eq!(findings[0].label, "sneaky");
/// ```
pub use ompss_verify as verify;

/// The simulation substrates, for building custom machines.
pub mod substrate {
    pub use ompss_coherence::{Coherence, HopKind, Loc, Topology, TransferExec};
    pub use ompss_cudasim::{CopyDir, CudaEvent, GpuDevice, PinnedPool, Stream};
    pub use ompss_mem::{MemoryManager, SpaceId, SpaceKind};
    pub use ompss_net::{AmEndpoint, AmNet, Fabric, FabricConfig, Mpi, MpiRank};
    pub use ompss_sim::{
        delay, now, pid, process, spawn, yield_now, Bell, Channel, Latch, Semaphore, Signal, Sim,
    };
}
