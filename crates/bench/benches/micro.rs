//! Criterion micro-benchmarks of the runtime's building blocks: the
//! DES engine's event throughput, channel hand-offs, dependence-graph
//! maintenance, scheduler decisions and the coherence fast path. These
//! are the per-task overheads behind every simulated experiment, so
//! regressions here inflate every figure's wall-clock cost.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use ompss_core::{AccessExt, TaskGraph, TaskId};
use ompss_mem::{Access, Backing, DataId, MemoryManager, Region, SpaceKind};
use ompss_sched::{NoLocality, Policy, ResourceInfo, ResourceKind, Scheduler};
use ompss_sim::{delay, Channel, Sim, SimDuration};

fn des_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("des-engine");
    // 1000 delay events through the kernel: measures the handshake cost
    // that dominates simulation wall-clock.
    g.throughput(Throughput::Elements(1000));
    g.bench_function("delay-events-x1000", |b| {
        b.iter(|| {
            let sim = Sim::new();
            sim.spawn("p", async {
                for _ in 0..1000 {
                    delay(SimDuration::from_nanos(1)).await.unwrap();
                }
            });
            sim.run().unwrap()
        })
    });
    // Process spawn/teardown cost.
    g.throughput(Throughput::Elements(100));
    g.bench_function("spawn-join-x100", |b| {
        b.iter(|| {
            let sim = Sim::new();
            for i in 0..100 {
                sim.spawn(format!("p{i}"), async {
                    delay(SimDuration::from_nanos(1)).await.unwrap();
                });
            }
            sim.run().unwrap()
        })
    });
    g.finish();
}

fn channels(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim-channel");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("pingpong-x1000", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let a: Channel<u32> = Channel::new();
            let bq: Channel<u32> = Channel::new();
            let (a1, b1) = (a.clone(), bq.clone());
            sim.spawn("ping", async move {
                for i in 0..1000 {
                    a1.send(i);
                    b1.recv().await.unwrap();
                }
            });
            sim.process("pong").daemon().spawn(async move {
                while let Ok(v) = a.recv().await {
                    bq.send(v);
                }
            });
            sim.run().unwrap()
        })
    });
    g.finish();
}

fn task_graph(c: &mut Criterion) {
    let mut g = c.benchmark_group("task-graph");
    // A matmul-shaped graph: 8x8 tile grid, 8-deep chains.
    let accesses: Vec<Vec<Access>> = {
        let mut v = Vec::new();
        let reg =
            |d: u64, i: usize, j: usize| Region::new(DataId(d), ((i * 8 + j) * 64) as u64, 64);
        for i in 0..8 {
            for j in 0..8 {
                for k in 0..8 {
                    v.push(vec![
                        Access::read(reg(0, i, k)),
                        Access::read(reg(1, k, j)),
                        Access::update(reg(2, i, j)),
                    ]);
                }
            }
        }
        v
    };
    g.throughput(Throughput::Elements(accesses.len() as u64));
    g.bench_function("matmul-shape-add-complete-512", |b| {
        b.iter_batched(
            || accesses.clone(),
            |accs| {
                let mut graph = TaskGraph::new();
                let mut ready = Vec::new();
                for (i, a) in accs.iter().enumerate() {
                    if graph.add_task(TaskId(i as u64), a).unwrap() {
                        ready.push(TaskId(i as u64));
                    }
                }
                let mut idx = 0;
                while idx < ready.len() {
                    let t = ready[idx];
                    idx += 1;
                    ready.extend(graph.complete(t));
                }
                assert_eq!(ready.len(), accs.len());
            },
            BatchSize::SmallInput,
        )
    });
    // Pure submission throughput at depth: 10k tasks, three accesses
    // each, long reduction chains — the workload the bounded overlap
    // scan in `find_partial_overlap` exists for.
    let big: Vec<Vec<Access>> = {
        let reg = |d: u64, i: usize, j: usize| {
            Region::new(DataId(d), ((i % 8 * 8 + j % 8) * 64) as u64, 64)
        };
        (0..10_000)
            .map(|t| {
                let (i, j, k) = (t / 64, t / 8, t);
                vec![
                    Access::read(reg(0, i, k)),
                    Access::read(reg(1, k, j)),
                    Access::update(reg(2, i, j)),
                ]
            })
            .collect()
    };
    g.throughput(Throughput::Elements(big.len() as u64));
    g.bench_function("add-task-x10000", |b| {
        b.iter_batched(
            || big.clone(),
            |accs| {
                let mut graph = TaskGraph::new();
                for (i, a) in accs.iter().enumerate() {
                    graph.add_task(TaskId(i as u64), a).unwrap();
                }
                assert_eq!(graph.submitted(), accs.len());
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler");
    for policy in [Policy::BreadthFirst, Policy::Dependencies, Policy::Affinity] {
        g.throughput(Throughput::Elements(1000));
        g.bench_function(format!("submit-next-x1000-{}", policy.chart_label()), |b| {
            b.iter(|| {
                let mut s = Scheduler::new(policy);
                let res: Vec<_> = (0..4)
                    .map(|i| {
                        s.register(ResourceInfo {
                            kind: ResourceKind::GpuManager,
                            space: ompss_mem::SpaceId(i),
                            steal_group: 0,
                        })
                    })
                    .collect();
                for i in 0..1000u64 {
                    let desc = ompss_core::TaskDesc {
                        id: TaskId(i),
                        label: String::new(),
                        device: ompss_core::Device::Cuda,
                        deps: vec![Access::update(Region::new(DataId(i % 16), 0, 64))],
                        copy_deps: true,
                        extra_copies: vec![],
                        priority: 0,
                    };
                    s.submit(&desc, &NoLocality);
                }
                let mut n = 0;
                'outer: loop {
                    for &r in &res {
                        if s.next(r).is_some() {
                            n += 1;
                        } else if s.queued() == 0 {
                            break 'outer;
                        }
                    }
                }
                assert_eq!(n, 1000);
            })
        });
    }
    g.finish();
}

fn coherence_fast_path(c: &mut Criterion) {
    use ompss_coherence::{
        CachePolicy, Coherence, HopKind, Loc, SlaveRouting, Topology, TransferExec, TransferPurpose,
    };
    use ompss_sim::SimResult;

    struct NullExec;
    impl TransferExec for NullExec {
        fn transfer<'a>(
            &'a self,
            _k: HopKind,
            _p: TransferPurpose,
            _s: Loc,
            _d: Loc,
            bytes: u64,
        ) -> std::pin::Pin<Box<dyn std::future::Future<Output = SimResult<bool>> + Send + 'a>>
        {
            Box::pin(async move {
                delay(SimDuration::from_nanos(bytes)).await?;
                Ok(true)
            })
        }
    }

    let mut g = c.benchmark_group("coherence");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("acquire-commit-hit-x1000", |b| {
        b.iter(|| {
            let mem = Arc::new(MemoryManager::new(Backing::Phantom));
            let host = mem.add_space("h", SpaceKind::Host(0), None, 1 << 30);
            let gpu = mem.add_space("g", SpaceKind::Gpu(0, 0), Some(host), 1 << 30);
            let mut topo = Topology::new(host, SlaveRouting::Direct);
            topo.add_gpu(gpu, host);
            let coh = Arc::new(Coherence::new(mem.clone(), topo, CachePolicy::WriteBack));
            let data = mem.register_data(64, host).unwrap();
            let region = Region::new(data, 0, 64);
            let sim = Sim::new();
            sim.spawn("p", async move {
                for _ in 0..1000 {
                    coh.acquire(&NullExec, &region, true, gpu).await.unwrap();
                    coh.commit(&NullExec, &[Access::inout(region)], gpu).await.unwrap();
                }
            });
            sim.run().unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, des_engine, channels, task_graph, scheduler, coherence_fast_path);
criterion_main!(benches);
