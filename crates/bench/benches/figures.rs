//! Criterion end-to-end benchmarks: one representative configuration
//! per evaluation figure, at paper scale. These measure the *simulator's*
//! wall-clock cost of regenerating each figure point (the virtual-time
//! results themselves are deterministic), and double as ablation
//! benches: a change to the scheduler, coherence engine or cluster
//! protocol shows up here as a simulation-speed or result change.

use criterion::{criterion_group, criterion_main, Criterion};

use ompss_apps::matmul::{self, ompss::InitMode, MatmulParams};
use ompss_apps::{nbody, perlin, stream};
use ompss_runtime::{Backing, CachePolicy, RuntimeConfig, SlaveRouting};

fn phantom_mg(gpus: u32) -> RuntimeConfig {
    RuntimeConfig::multi_gpu(gpus).with_backing(Backing::Phantom)
}

fn phantom_cl(nodes: u32) -> RuntimeConfig {
    RuntimeConfig::gpu_cluster(nodes)
        .with_backing(Backing::Phantom)
        .with_routing(SlaveRouting::Direct)
        .with_presend(8)
}

fn fig_points(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure-points");
    g.sample_size(10);

    g.bench_function("fig05-matmul-4gpu-wb", |b| {
        b.iter(|| matmul::ompss::run(phantom_mg(4), MatmulParams::paper(), InitMode::Seq))
    });
    g.bench_function("fig05-matmul-4gpu-nocache", |b| {
        b.iter(|| {
            matmul::ompss::run(
                phantom_mg(4).with_cache(CachePolicy::NoCache),
                MatmulParams::paper(),
                InitMode::Seq,
            )
        })
    });
    g.bench_function("fig06-stream-4gpu-wb", |b| {
        b.iter(|| stream::ompss::run(phantom_mg(4), stream::StreamParams::paper(4)))
    });
    g.bench_function("fig07-perlin-4gpu-noflush", |b| {
        b.iter(|| perlin::ompss::run(phantom_mg(4), perlin::PerlinParams::paper(), false))
    });
    g.bench_function("fig09-matmul-8node-best", |b| {
        b.iter(|| matmul::ompss::run(phantom_cl(8), MatmulParams::paper(), InitMode::Smp))
    });
    g.bench_function("fig13-nbody-8node", |b| {
        b.iter(|| nbody::ompss::run(phantom_cl(8).with_presend(1), nbody::NbodyParams::paper()))
    });
    g.finish();
}

criterion_group!(benches, fig_points);
criterion_main!(benches);
