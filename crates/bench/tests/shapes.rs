//! Shape certification: the paper's qualitative claims, asserted
//! against paper-scale runs of the harness configurations. These are
//! the reproduction criteria of EXPERIMENTS.md in executable form.
//!
//! Absolute values are platform-model-dependent; every assertion here
//! is about *ordering* or *ratio* — who wins, what scales, what
//! collapses.

use ompss_apps::matmul::{self, ompss::InitMode, MatmulParams};
use ompss_apps::{nbody, perlin, stream};
use ompss_cudasim::GpuSpec;
use ompss_net::FabricConfig;
use ompss_runtime::{Backing, CachePolicy, Policy, RuntimeConfig, SlaveRouting};

fn mg(gpus: u32) -> RuntimeConfig {
    RuntimeConfig::multi_gpu(gpus).with_backing(Backing::Phantom)
}

fn cl(nodes: u32) -> RuntimeConfig {
    RuntimeConfig::gpu_cluster(nodes).with_backing(Backing::Phantom)
}

// ----------------------------------------------------------- Fig 5

#[test]
fn fig05_cache_policy_ordering_on_matmul() {
    let p = MatmulParams::paper();
    let run = |cache| matmul::ompss::run(mg(4).with_cache(cache), p, InitMode::Seq).metric;
    let nocache = run(CachePolicy::NoCache);
    let wt = run(CachePolicy::WriteThrough);
    let wb = run(CachePolicy::WriteBack);
    assert!(nocache < wt, "no cache ({nocache:.0}) must trail write-through ({wt:.0})");
    assert!(wt < wb, "write-through ({wt:.0}) must trail write-back ({wb:.0})");
    assert!(wb > 1.5 * nocache, "data reuse should be worth >1.5x on matmul");
}

#[test]
fn fig05_dependency_aware_schedulers_beat_bf_at_4_gpus() {
    let p = MatmulParams::paper();
    let run = |sched| matmul::ompss::run(mg(4).with_sched(sched), p, InitMode::Seq).metric;
    let bf = run(Policy::BreadthFirst);
    let dep = run(Policy::Dependencies);
    let aff = run(Policy::Affinity);
    assert!(dep > 1.3 * bf, "dependencies ({dep:.0}) should clearly beat bf ({bf:.0})");
    assert!(aff > 1.3 * bf, "affinity ({aff:.0}) should clearly beat bf ({bf:.0})");
}

// ----------------------------------------------------------- Fig 6

#[test]
fn fig06_stream_writeback_dominates_and_schedulers_tie() {
    let p = stream::StreamParams::paper(4);
    let run =
        |cache, sched| stream::ompss::run(mg(4).with_cache(cache).with_sched(sched), p).metric;
    let wb = run(CachePolicy::WriteBack, Policy::Dependencies);
    let wt = run(CachePolicy::WriteThrough, Policy::Dependencies);
    let nocache = run(CachePolicy::NoCache, Policy::Dependencies);
    assert!(wb > 5.0 * wt, "wb ({wb:.0}) must dwarf wt ({wt:.0}) on STREAM");
    assert!(wb > 5.0 * nocache, "wb ({wb:.0}) must dwarf nocache ({nocache:.0})");
    // "Every scheduler performs well enough": within 10% of each other.
    let bf = run(CachePolicy::WriteBack, Policy::BreadthFirst);
    let aff = run(CachePolicy::WriteBack, Policy::Affinity);
    for (label, v) in [("bf", bf), ("affinity", aff)] {
        assert!(
            (v - wb).abs() < 0.1 * wb,
            "{label} ({v:.0}) should be within 10% of default ({wb:.0}) on STREAM"
        );
    }
}

#[test]
fn fig06_stream_scales_with_gpus_under_writeback() {
    let run =
        |gpus: u32| stream::ompss::run(mg(gpus), stream::StreamParams::paper(gpus as usize)).metric;
    let one = run(1);
    let four = run(4);
    assert!(four > 3.5 * one, "4 GPUs ({four:.0}) should near-linearly scale 1 GPU ({one:.0})");
}

// ----------------------------------------------------------- Fig 7

#[test]
fn fig07_noflush_beats_flush_and_caching_pays() {
    let p = perlin::PerlinParams::paper();
    let cfg = || mg(4).with_sched(Policy::Affinity);
    let noflush_wb = perlin::ompss::run(cfg(), p, false).metric;
    let flush_wb = perlin::ompss::run(cfg(), p, true).metric;
    let noflush_nc = perlin::ompss::run(cfg().with_cache(CachePolicy::NoCache), p, false).metric;
    assert!(
        noflush_wb > 2.0 * flush_wb,
        "NoFlush ({noflush_wb:.0}) must far exceed Flush ({flush_wb:.0})"
    );
    assert!(
        noflush_wb > 2.0 * noflush_nc,
        "caching ({noflush_wb:.0}) must pay off vs nocache ({noflush_nc:.0})"
    );
}

// ----------------------------------------------------------- Fig 8

#[test]
fn fig08_nbody_scales_and_nocache_is_competitive_under_pressure() {
    let p = nbody::NbodyParams { n: 20_000, blocks: 4, iters: 10, real: false };
    let run = |cache, gpus: u32| {
        nbody::ompss::run(mg(gpus).with_cache(cache).with_gpu_mem(1 << 20), p).metric
    };
    // Under memory pressure the policies converge: no-cache stays within
    // a few percent of write-back (the paper reports it winning; see
    // EXPERIMENTS.md for the deviation analysis).
    let nc = run(CachePolicy::NoCache, 4);
    let wb = run(CachePolicy::WriteBack, 4);
    assert!(nc > 0.9 * wb, "nocache ({nc:.0}) must be competitive with wb ({wb:.0})");
    // Secondary claim: good scalability with 2 and 4 GPUs.
    let one = run(CachePolicy::NoCache, 1);
    let four = run(CachePolicy::NoCache, 4);
    assert!(four > 3.0 * one, "4 GPUs ({four:.0}) should scale 1 GPU ({one:.0}) well");
}

// ----------------------------------------------------------- Fig 9

#[test]
fn fig09_slave_to_slave_transfers_are_a_must() {
    let p = MatmulParams::paper();
    let run = |routing| {
        matmul::ompss::run(cl(8).with_routing(routing).with_presend(8), p, InitMode::Smp).metric
    };
    let stos = run(SlaveRouting::Direct);
    let mtos = run(SlaveRouting::ViaMaster);
    assert!(stos > 1.25 * mtos, "StoS ({stos:.0}) must clearly beat MtoS ({mtos:.0}) at 8 nodes");
}

#[test]
fn fig09_parallel_initialisation_is_critical() {
    let p = MatmulParams::paper();
    let run = |init| {
        matmul::ompss::run(cl(8).with_routing(SlaveRouting::Direct).with_presend(8), p, init).metric
    };
    let seq = run(InitMode::Seq);
    let smp = run(InitMode::Smp);
    let gpu = run(InitMode::Gpu);
    assert!(smp > 1.4 * seq, "smp init ({smp:.0}) must far exceed seq init ({seq:.0})");
    assert!(gpu > 1.2 * seq, "gpu init ({gpu:.0}) must beat seq init ({seq:.0})");
    // The paper reports smp init generally ahead of gpu init; in our
    // model they are close, with gpu init sometimes ahead (the
    // GPU-resident placement saves later H2D transfers) — recorded as a
    // deviation in EXPERIMENTS.md. Assert only that they are same-league.
    assert!(smp > 0.8 * gpu, "smp ({smp:.0}) and gpu ({gpu:.0}) init must be comparable");
}

#[test]
fn fig09_presend_helps_with_stos() {
    let p = MatmulParams::paper();
    let run = |presend| {
        matmul::ompss::run(
            cl(8).with_routing(SlaveRouting::Direct).with_presend(presend),
            p,
            InitMode::Smp,
        )
        .metric
    };
    let p0 = run(0);
    let p8 = run(8);
    assert!(p8 > 1.15 * p0, "presend 8 ({p8:.0}) must improve on presend 0 ({p0:.0})");
}

// ---------------------------------------------------------- Fig 10

#[test]
fn fig10_ompss_overtakes_summa_at_scale() {
    let p = MatmulParams::paper();
    let om8 = matmul::ompss::run(
        cl(8).with_routing(SlaveRouting::Direct).with_presend(8),
        p,
        InitMode::Smp,
    )
    .metric;
    let mpi8 = matmul::mpi::run(8, GpuSpec::gtx_480(), FabricConfig::qdr_infiniband(8), p).metric;
    assert!(om8 >= mpi8, "OmpSs ({om8:.0}) must at least match SUMMA ({mpi8:.0}) at 8 nodes");
    // And both must be far above a single node.
    let om1 = matmul::ompss::run(cl(1), p, InitMode::Smp).metric;
    assert!(om8 > 3.5 * om1, "8-node OmpSs ({om8:.0}) must scale over 1 node ({om1:.0})");
}

// ---------------------------------------------------------- Fig 11

#[test]
fn fig11_stream_cluster_scales_for_both_models() {
    let run_om = |nodes: u32| {
        stream::ompss::run(
            cl(nodes).with_routing(SlaveRouting::Direct).with_presend(8),
            stream::StreamParams::paper(nodes as usize),
        )
        .metric
    };
    let run_mpi = |nodes: u32| {
        stream::mpi::run(
            nodes,
            GpuSpec::gtx_480(),
            FabricConfig::qdr_infiniband(nodes),
            stream::StreamParams::paper(nodes as usize),
        )
        .metric
    };
    let (om1, om8) = (run_om(1), run_om(8));
    let (mp1, mp8) = (run_mpi(1), run_mpi(8));
    assert!(om8 > 5.0 * om1, "OmpSs STREAM must scale ({om1:.0} -> {om8:.0})");
    assert!(mp8 > 5.0 * mp1, "MPI STREAM must scale ({mp1:.0} -> {mp8:.0})");
    // Comparable levels ("a good performance using MPI+CUDA and OmpSs").
    assert!(om8 > 0.7 * mp8, "OmpSs ({om8:.0}) must be comparable to MPI ({mp8:.0})");
}

// ---------------------------------------------------------- Fig 12

#[test]
fn fig12_flush_cannot_scale_noflush_can() {
    let p = perlin::PerlinParams {
        width: 1024,
        height: 1024,
        steps: 10,
        rows_per_block: 128,
        real: false,
    };
    let run = |nodes: u32, flush| {
        perlin::ompss::run(cl(nodes).with_routing(SlaveRouting::Direct).with_presend(1), p, flush)
            .metric
    };
    let (nf1, nf8) = (run(1, false), run(8, false));
    let (fl1, fl8) = (run(1, true), run(8, true));
    assert!(nf8 > 1.4 * nf1, "NoFlush should scale some ({nf1:.0} -> {nf8:.0})");
    assert!(fl8 < 1.4 * fl1, "Flush must not scale ({fl1:.0} -> {fl8:.0})");
    assert!(nf8 > 3.0 * fl8, "NoFlush ({nf8:.0}) must dwarf Flush ({fl8:.0}) at 8 nodes");
}

// ---------------------------------------------------------- Fig 13

#[test]
fn fig13_nbody_cluster_scales_and_tracks_mpi() {
    let p = nbody::NbodyParams::paper();
    let run_om = |nodes: u32| {
        nbody::ompss::run(cl(nodes).with_routing(SlaveRouting::Direct).with_presend(1), p).metric
    };
    let om1 = run_om(1);
    let om8 = run_om(8);
    let mp1 = nbody::mpi::run(1, GpuSpec::gtx_480(), FabricConfig::qdr_infiniband(1), p).metric;
    let mp8 = nbody::mpi::run(8, GpuSpec::gtx_480(), FabricConfig::qdr_infiniband(8), p).metric;
    // Tied at one node.
    assert!((om1 - mp1).abs() < 0.1 * mp1, "1-node tie expected ({om1:.0} vs {mp1:.0})");
    // Both scale; OmpSs stays within reach of MPI at 8 nodes (the paper
    // shows OmpSs slightly ahead; see EXPERIMENTS.md for the gap).
    assert!(om8 > 4.5 * om1, "OmpSs N-Body must scale ({om1:.0} -> {om8:.0})");
    assert!(om8 > 0.7 * mp8, "OmpSs ({om8:.0}) must track MPI ({mp8:.0}) at 8 nodes");
}

// ---------------------------------------------------------- Table I

#[test]
fn table1_ompss_adds_fewer_lines_than_mpi_cuda() {
    let fig = ompss_bench::figures::table1();
    for app in ["matmul", "perlin", "nbody"] {
        let serial = fig.series("serial").unwrap().at(app).unwrap();
        let mpi = fig.series("mpi").unwrap().at(app).unwrap();
        let om = fig.series("ompss").unwrap().at(app).unwrap();
        assert!(
            om - serial < mpi - serial,
            "{app}: OmpSs adds {} lines vs MPI+CUDA's {}",
            om - serial,
            mpi - serial
        );
    }
    for app in ["matmul", "stream", "perlin", "nbody"] {
        let cuda = fig.series("cuda").unwrap().at(app).unwrap();
        let mpi = fig.series("mpi").unwrap().at(app).unwrap();
        assert!(cuda < mpi, "{app}: MPI+CUDA must be the largest version");
    }
}

// --------------------------------------------------- determinism

#[test]
fn paper_scale_runs_are_deterministic() {
    let p = MatmulParams::paper();
    let run = || {
        let r = matmul::ompss::run(
            cl(4).with_routing(SlaveRouting::Direct).with_presend(2),
            p,
            InitMode::Smp,
        );
        let rep = r.report.unwrap();
        (r.elapsed, rep.events, rep.net.bytes_total, rep.coherence.bytes_moved)
    };
    assert_eq!(run(), run());
}
