//! Host-performance machinery must never change what a run computes.
//!
//! Two invariants pin the perf work (parallel sweeps, DES fast paths)
//! to the determinism contract, in the same spirit as
//! `fault_zero_cost.rs`:
//!
//! * **Sweep-width neutrality** — running the same configurations
//!   through the sweep runner at `--jobs 4` must produce byte-identical
//!   report JSON to `--jobs 1`. Parallelism may only change *when* a
//!   configuration runs, never *what* it computes.
//! * **Fast-path neutrality** — the kernel's inline-delay and
//!   wakeup-dedup fast paths (disabled via `OMPSS_SIM_NO_FASTPATH=1`)
//!   must leave the virtual-time fingerprint — makespan, event count,
//!   clock advances, task count — and the computed results unchanged.
//!
//! Host wall-clock fields (`host_ns`, `events_per_sec`) are *expected*
//! to differ run to run; the JSON serialisation must therefore exclude
//! them, which the byte comparison below also enforces.

use std::sync::Mutex;

use ompss_apps::common::AppRun;
use ompss_apps::matmul::ompss::InitMode;
use ompss_apps::matmul::{self, MatmulParams};
use ompss_apps::nbody::{self, NbodyParams};
use ompss_apps::ws::{self, WsParams};
use ompss_json::ToJson;
use ompss_runtime::{RunReport, RuntimeConfig};

/// Serialises the env-sensitive parts of these tests: `ENV_LOCK` keeps
/// the `OMPSS_SIM_NO_FASTPATH` flip from interleaving with the sweep
/// test's simulations inside this test binary.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn fingerprint(r: &RunReport) -> (u64, u64, u64, u64) {
    (r.makespan.as_nanos(), r.events, r.clock_advances, r.tasks)
}

/// The validate-scale configurations the sweep test fans out: two apps
/// across the paper's two topologies, plus the weak-scaling apps on a
/// sharded-control-plane cluster — the figWS configurations, so the
/// sharded directory/sub-master machinery is held to the same
/// byte-identity contract as the flat plane.
fn sweep_tasks() -> Vec<Box<dyn FnOnce() -> AppRun + Send>> {
    let mut tasks: Vec<Box<dyn FnOnce() -> AppRun + Send>> = Vec::new();
    for cfg in [RuntimeConfig::multi_gpu(2), RuntimeConfig::gpu_cluster(2)] {
        let c = cfg.clone();
        tasks
            .push(Box::new(move || matmul::ompss::run(c, MatmulParams::validate(), InitMode::Smp)));
        tasks.push(Box::new(move || nbody::ompss::run(cfg, NbodyParams::validate())));
    }
    tasks.push(Box::new(|| ws::run_stream(ws::ws_config(8, true), WsParams::paper())));
    tasks.push(Box::new(|| ws::run_matmul(ws::ws_config(8, true), WsParams::paper())));
    tasks
}

/// One byte-comparable digest per run: the full report JSON plus the
/// computed output.
fn digests(runs: Vec<AppRun>) -> Vec<(String, Option<Vec<f32>>)> {
    runs.into_iter()
        .map(|r| {
            let rep = r.report.as_ref().expect("ompss app run carries a report");
            (rep.to_json().to_pretty_string(), r.check)
        })
        .collect()
}

#[test]
fn sweep_width_does_not_change_report_bytes() {
    let _guard = ENV_LOCK.lock().unwrap();
    let serial = digests(ompss_sweep::run_jobs(1, sweep_tasks()));
    let parallel = digests(ompss_sweep::run_jobs(4, sweep_tasks()));
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s.0, p.0, "config {i}: report JSON differs between --jobs 1 and --jobs 4");
        assert_eq!(s.1, p.1, "config {i}: computed results differ between --jobs 1 and --jobs 4");
    }
}

#[test]
fn fast_paths_do_not_change_fingerprint_or_results() {
    let _guard = ENV_LOCK.lock().unwrap();
    let run =
        || matmul::ompss::run(RuntimeConfig::multi_gpu(2), MatmulParams::validate(), InitMode::Smp);
    let fast = run();
    // The kernel samples the variable at `Sim::new`, so flipping it
    // between runs (under ENV_LOCK) gives a clean A/B.
    std::env::set_var("OMPSS_SIM_NO_FASTPATH", "1");
    let slow = run();
    std::env::remove_var("OMPSS_SIM_NO_FASTPATH");

    let (fast_rep, slow_rep) = (fast.report.as_ref().unwrap(), slow.report.as_ref().unwrap());
    assert_eq!(
        fingerprint(fast_rep),
        fingerprint(slow_rep),
        "fast paths changed the virtual-time fingerprint"
    );
    assert_eq!(fast.check, slow.check, "fast paths changed the computed results");
    assert_eq!(
        fast_rep.to_json().to_pretty_string(),
        slow_rep.to_json().to_pretty_string(),
        "fast paths changed the serialised report"
    );
    assert_eq!(slow_rep.wakes_coalesced, 0, "OMPSS_SIM_NO_FASTPATH=1 must disable wake coalescing");
    assert!(fast_rep.host_ns > 0, "the kernel must record host wall-clock time");
}

mod jobs_width_props {
    //! Satellite of the async-executor redesign: the executor invariant
    //! pinned at the DES level. Interleaved spawn/delay/channel
    //! workloads — the full primitive mix — must produce identical
    //! event orders and RunReport fingerprints whether the batch of
    //! simulations runs serially (`--jobs 1`) or fanned out over host
    //! threads (`--jobs 4`). Each `Sim` is self-contained, so host
    //! parallelism may change *when* a simulation runs, never *what*
    //! it computes.

    use std::sync::Arc;

    use parking_lot::Mutex;
    use proptest::prelude::*;

    use ompss_sim::{delay, now, spawn, Channel, Sim, SimDuration};

    /// Trace of `(virtual time, group, value)` observations plus the
    /// report fingerprint of one workload run.
    type Digest = (Vec<(u64, u64, u64)>, (u64, u64, u64, u64));

    fn run_workload(groups: &[(u64, u64, u64)]) -> Digest {
        let trace = Arc::new(Mutex::new(Vec::new()));
        let sim = Sim::new();
        let ch: Channel<u64> = Channel::new();
        for (g, &(d, msgs, kids)) in groups.iter().enumerate() {
            let tx = ch.clone();
            let tr = trace.clone();
            sim.spawn(format!("g{g}"), async move {
                for k in 0..kids {
                    let tx = tx.clone();
                    let tr = tr.clone();
                    spawn(format!("g{g}k{k}"), async move {
                        delay(SimDuration::from_nanos(d * (k + 1))).await.unwrap();
                        for m in 0..msgs {
                            tx.send(g as u64 * 1000 + k * 100 + m);
                            delay(SimDuration::from_nanos(d % 7 + 1)).await.unwrap();
                        }
                        tr.lock().push((now().as_nanos(), g as u64, k));
                    });
                }
                delay(SimDuration::from_nanos(d)).await.unwrap();
            });
        }
        let total: u64 = groups.iter().map(|&(_, m, k)| m * k).sum();
        let rx = ch.clone();
        let tr = trace.clone();
        sim.spawn("drain", async move {
            for _ in 0..total {
                let v = rx.recv().await.unwrap();
                tr.lock().push((now().as_nanos(), u64::MAX, v));
            }
        });
        let r = sim.run().unwrap();
        let t = trace.lock().clone();
        (t, (r.end_time.as_nanos(), r.events, r.clock_advances, r.processes as u64))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn interleaved_workloads_fingerprint_identically_at_any_jobs_count(
            batch in proptest::collection::vec(
                proptest::collection::vec((1u64..60, 1u64..8, 1u64..6), 1..8),
                4..8,
            )
        ) {
            let tasks = |batch: &[Vec<(u64, u64, u64)>]| -> Vec<Box<dyn FnOnce() -> Digest + Send>> {
                batch
                    .iter()
                    .cloned()
                    .map(|groups| {
                        Box::new(move || run_workload(&groups)) as Box<dyn FnOnce() -> Digest + Send>
                    })
                    .collect()
            };
            let serial = ompss_sweep::run_jobs(1, tasks(&batch));
            let parallel = ompss_sweep::run_jobs(4, tasks(&batch));
            prop_assert_eq!(serial.len(), parallel.len());
            for (i, (s, p)) in serial.into_iter().zip(parallel).enumerate() {
                prop_assert_eq!(
                    &s.0, &p.0,
                    "workload {}: event order diverged between --jobs 1 and --jobs 4", i
                );
                prop_assert_eq!(
                    s.1, p.1,
                    "workload {}: RunReport fingerprint diverged between --jobs 1 and --jobs 4", i
                );
            }
        }
    }
}
