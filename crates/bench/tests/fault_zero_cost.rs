//! The fault-injection machinery must cost nothing when disarmed.
//!
//! Every timing in EXPERIMENTS.md predates the chaos subsystem, so the
//! injection sites and the reliable-delivery protocol may only exist
//! behind `Option` checks that a fault-free run never enters: with
//! `OMPSS_FAULT_RATE=0` (the default) the run's deterministic
//! fingerprint — makespan, event count, clock advances, task count —
//! and the computed results must be byte-identical to a config that
//! never heard of faults, and every recovery counter must stay zero.

use ompss_apps::matmul::ompss::InitMode;
use ompss_apps::matmul::{self, MatmulParams};
use ompss_runtime::{RunReport, RuntimeConfig};

fn fingerprint(r: &RunReport) -> (u64, u64, u64, u64) {
    (r.makespan.as_nanos(), r.events, r.clock_advances, r.tasks)
}

fn assert_disarmed_is_free(cfg: RuntimeConfig) {
    let run = |cfg: RuntimeConfig| matmul::ompss::run(cfg, MatmulParams::validate(), InitMode::Smp);
    // Rate 0 with a seed and raised budgets: the knobs are set but no
    // fault can ever fire, so the plan must not be armed at all.
    let disarmed =
        cfg.clone().with_faults(42, 0.0).with_task_retry_budget(10).with_am_retry_budget(10);
    let (base, zero) = (run(cfg), run(disarmed));
    let (base_rep, zero_rep) = (base.report.as_ref().unwrap(), zero.report.as_ref().unwrap());
    assert_eq!(
        fingerprint(base_rep),
        fingerprint(zero_rep),
        "a disarmed fault plan changed the virtual-time fingerprint"
    );
    assert_eq!(base.check, zero.check, "a disarmed fault plan changed the results");
    assert!(zero_rep.faults.is_none(), "rate 0 must not arm a plan");
    let c = &zero_rep.counters;
    assert_eq!(
        (c.am_retries, c.tasks_reexecuted, c.devices_lost, c.msgs_dropped),
        (0, 0, 0, 0),
        "recovery counters must stay zero without faults"
    );
    assert_eq!(
        (c.nodes_lost, c.tasks_relineaged, c.bytes_reconstructed, c.heartbeats_missed),
        (0, 0, 0, 0),
        "node-loss counters must stay zero without faults"
    );
}

/// Node-loss knobs (heartbeat period, lease window, lineage budget) are
/// inert without an armed kill: no heartbeat traffic, no lease
/// tracking, no lineage retention — the fingerprint and the results
/// must be byte-identical to a config that never heard of them.
fn assert_node_loss_knobs_are_free(cfg: RuntimeConfig) {
    use ompss_runtime::SimDuration;
    let run = |cfg: RuntimeConfig| matmul::ompss::run(cfg, MatmulParams::validate(), InitMode::Smp);
    let tuned = cfg
        .clone()
        .with_heartbeat(SimDuration::from_micros(50), SimDuration::from_micros(250))
        .with_lineage_depth(7);
    let (base, idle) = (run(cfg), run(tuned));
    let (base_rep, idle_rep) = (base.report.as_ref().unwrap(), idle.report.as_ref().unwrap());
    assert_eq!(
        fingerprint(base_rep),
        fingerprint(idle_rep),
        "unarmed node-loss knobs changed the virtual-time fingerprint"
    );
    assert_eq!(base.check, idle.check, "unarmed node-loss knobs changed the results");
    assert!(idle_rep.faults.is_none(), "heartbeat/lineage knobs alone must not arm a plan");
    let c = &idle_rep.counters;
    assert_eq!(
        (c.nodes_lost, c.heartbeats_missed, c.tasks_relineaged, c.bytes_reconstructed),
        (0, 0, 0, 0),
        "node-loss counters must stay zero without an armed kill"
    );
}

/// Elastic-membership machinery is opt-in twice over: arming a drain
/// far past the makespan means the daemon stands down without firing,
/// and the run must be byte-identical to one that never heard of
/// membership — same makespan, same task count, same results, zero
/// membership counters, and a counters JSON report with no
/// `membership` section (the section is conditional so historical
/// report bytes stay stable). Events are not pinned: the parked
/// daemon's own timer exists, as with `kill_after_completion`.
fn assert_membership_knobs_are_free(cfg: RuntimeConfig) {
    use ompss_json::ToJson;
    use ompss_runtime::SimDuration;
    let run = |cfg: RuntimeConfig| matmul::ompss::run(cfg, MatmulParams::validate(), InitMode::Smp);
    let armed = cfg.clone().with_node_drain(1, SimDuration::from_millis(100));
    let (base, idle) = (run(cfg), run(armed));
    let (base_rep, idle_rep) = (base.report.as_ref().unwrap(), idle.report.as_ref().unwrap());
    assert_eq!(
        (base_rep.makespan, base_rep.tasks),
        (idle_rep.makespan, idle_rep.tasks),
        "a drain planned past the makespan changed the schedule"
    );
    assert_eq!(base.check, idle.check, "a drain planned past the makespan changed the results");
    let c = &idle_rep.counters;
    assert_eq!(
        (c.nodes_joined, c.nodes_drained, c.regions_rebalanced, c.bytes_migrated),
        (0, 0, 0, 0),
        "membership counters must stay zero when no churn fired"
    );
    let (base_json, idle_json) = (
        base_rep.counters.to_json().to_pretty_string(),
        idle_rep.counters.to_json().to_pretty_string(),
    );
    assert_eq!(base_json, idle_json, "unfired membership knobs changed the report bytes");
    assert!(
        !idle_json.contains("\"membership\""),
        "a quiet run must not grow a membership report section"
    );
}

#[test]
fn matmul_multigpu_timing_unchanged_by_disarmed_faults() {
    assert_disarmed_is_free(RuntimeConfig::multi_gpu(2));
}

#[test]
fn matmul_cluster_timing_unchanged_by_disarmed_faults() {
    assert_disarmed_is_free(RuntimeConfig::gpu_cluster(2));
}

#[test]
fn matmul_multigpu_timing_unchanged_by_unarmed_node_loss_knobs() {
    assert_node_loss_knobs_are_free(RuntimeConfig::multi_gpu(2));
}

#[test]
fn matmul_cluster_timing_unchanged_by_unarmed_node_loss_knobs() {
    assert_node_loss_knobs_are_free(RuntimeConfig::gpu_cluster(2));
}

#[test]
fn matmul_cluster_timing_unchanged_by_unfired_membership_knobs() {
    assert_membership_knobs_are_free(RuntimeConfig::gpu_cluster(2));
}

#[test]
fn matmul_sharded_cluster_timing_unchanged_by_unfired_membership_knobs() {
    assert_membership_knobs_are_free(RuntimeConfig::gpu_cluster(3).with_sharded_control(3));
}
