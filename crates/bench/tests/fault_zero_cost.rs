//! The fault-injection machinery must cost nothing when disarmed.
//!
//! Every timing in EXPERIMENTS.md predates the chaos subsystem, so the
//! injection sites and the reliable-delivery protocol may only exist
//! behind `Option` checks that a fault-free run never enters: with
//! `OMPSS_FAULT_RATE=0` (the default) the run's deterministic
//! fingerprint — makespan, event count, clock advances, task count —
//! and the computed results must be byte-identical to a config that
//! never heard of faults, and every recovery counter must stay zero.

use ompss_apps::matmul::ompss::InitMode;
use ompss_apps::matmul::{self, MatmulParams};
use ompss_runtime::{RunReport, RuntimeConfig};

fn fingerprint(r: &RunReport) -> (u64, u64, u64, u64) {
    (r.makespan.as_nanos(), r.events, r.clock_advances, r.tasks)
}

fn assert_disarmed_is_free(cfg: RuntimeConfig) {
    let run = |cfg: RuntimeConfig| matmul::ompss::run(cfg, MatmulParams::validate(), InitMode::Smp);
    // Rate 0 with a seed and raised budgets: the knobs are set but no
    // fault can ever fire, so the plan must not be armed at all.
    let disarmed =
        cfg.clone().with_faults(42, 0.0).with_task_retry_budget(10).with_am_retry_budget(10);
    let (base, zero) = (run(cfg), run(disarmed));
    let (base_rep, zero_rep) = (base.report.as_ref().unwrap(), zero.report.as_ref().unwrap());
    assert_eq!(
        fingerprint(base_rep),
        fingerprint(zero_rep),
        "a disarmed fault plan changed the virtual-time fingerprint"
    );
    assert_eq!(base.check, zero.check, "a disarmed fault plan changed the results");
    assert!(zero_rep.faults.is_none(), "rate 0 must not arm a plan");
    let c = &zero_rep.counters;
    assert_eq!(
        (c.am_retries, c.tasks_reexecuted, c.devices_lost, c.msgs_dropped),
        (0, 0, 0, 0),
        "recovery counters must stay zero without faults"
    );
}

#[test]
fn matmul_multigpu_timing_unchanged_by_disarmed_faults() {
    assert_disarmed_is_free(RuntimeConfig::multi_gpu(2));
}

#[test]
fn matmul_cluster_timing_unchanged_by_disarmed_faults() {
    assert_disarmed_is_free(RuntimeConfig::gpu_cluster(2));
}
