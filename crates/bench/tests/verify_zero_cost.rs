//! Verification mode must not perturb the benchmarks.
//!
//! The fig05/fig09 harnesses (and every other timing in EXPERIMENTS.md)
//! are only comparable to the paper if the verification hooks cost
//! nothing in *virtual* time: with `verify` off, the runtime takes one
//! `Option` check per task; with it on, the byte snapshots and access
//! recording are host-side work that the DES never sees. Both
//! properties reduce to one assertion — the run's deterministic
//! fingerprint (makespan, event count, clock advances, task count) is
//! byte-identical whether verification is enabled or not.

use ompss_apps::matmul::ompss::InitMode;
use ompss_apps::matmul::{self, MatmulParams};
use ompss_apps::stream::{self, StreamParams};
use ompss_runtime::{RunReport, RuntimeConfig};

fn fingerprint(r: &RunReport) -> (u64, u64, u64, u64) {
    (r.makespan.as_nanos(), r.events, r.clock_advances, r.tasks)
}

#[test]
fn matmul_multigpu_timing_unchanged_by_verify_mode() {
    // Fig. 5's app/topology at validation scale.
    let run = |verify| {
        matmul::ompss::run(
            RuntimeConfig::multi_gpu(2).with_verify(verify),
            MatmulParams::validate(),
            InitMode::Smp,
        )
    };
    let (off, on) = (run(false), run(true));
    assert_eq!(
        fingerprint(off.report.as_ref().unwrap()),
        fingerprint(on.report.as_ref().unwrap()),
        "verification mode changed the virtual-time fingerprint"
    );
    assert_eq!(off.check, on.check, "verification mode changed the results");
}

#[test]
fn matmul_cluster_timing_unchanged_by_verify_mode() {
    // Fig. 9's app/topology at validation scale.
    let run = |verify| {
        matmul::ompss::run(
            RuntimeConfig::gpu_cluster(2).with_verify(verify),
            MatmulParams::validate(),
            InitMode::Smp,
        )
    };
    let (off, on) = (run(false), run(true));
    assert_eq!(fingerprint(off.report.as_ref().unwrap()), fingerprint(on.report.as_ref().unwrap()),);
}

#[test]
fn stream_timing_unchanged_by_verify_mode() {
    let run = |verify| {
        stream::ompss::run(
            RuntimeConfig::multi_gpu(2).with_verify(verify),
            StreamParams::validate(),
        )
    };
    let (off, on) = (run(false), run(true));
    assert_eq!(fingerprint(off.report.as_ref().unwrap()), fingerprint(on.report.as_ref().unwrap()),);
    assert_eq!(off.check, on.check);
}
