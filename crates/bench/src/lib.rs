//! # ompss-bench — the paper's evaluation, regenerated
//!
//! One binary per figure/table of Bueno et al. (IPPS 2012) §IV–V:
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `fig05_matmul_multigpu` | Fig. 5 — matmul, multi-GPU, cache × scheduler |
//! | `fig06_stream_multigpu` | Fig. 6 — STREAM, multi-GPU, cache × scheduler |
//! | `fig07_perlin_multigpu` | Fig. 7 — Perlin, multi-GPU, Flush/NoFlush × cache |
//! | `fig08_nbody_multigpu`  | Fig. 8 — N-Body, multi-GPU, cache policies |
//! | `fig09_matmul_cluster`  | Fig. 9 — matmul, cluster, StoS × init × presend |
//! | `fig10_matmul_vs_mpi`   | Fig. 10 — matmul, best OmpSs vs MPI+CUDA |
//! | `fig11_stream_cluster`  | Fig. 11 — STREAM, cluster, OmpSs vs MPI+CUDA |
//! | `fig12_perlin_cluster`  | Fig. 12 — Perlin, cluster, Flush/NoFlush |
//! | `fig13_nbody_cluster`   | Fig. 13 — N-Body, cluster, OmpSs vs MPI+CUDA |
//! | `table1_productivity`   | Table I — useful lines of code per version |
//! | `all_figures`           | everything above plus `figWS` (weak scaling, flat vs sharded control plane — beyond the paper), saving JSON to `results/` |
//!
//! Each harness prints an aligned text table (series × sweep points)
//! and can save machine-readable JSON. Absolute values come from the
//! simulated platform models; the *shapes* — who wins, by what factor,
//! where the crossovers sit — are the reproduction targets recorded in
//! `EXPERIMENTS.md`.

#![warn(missing_docs)]

use std::fs;
use std::path::{Path, PathBuf};

use ompss_json::{Json, ToJson};

/// One data point of a series.
#[derive(Debug, Clone)]
pub struct Point {
    /// Sweep coordinate (e.g. "2 GPUs", "4").
    pub x: String,
    /// Metric value.
    pub y: f64,
}

/// One line/bar-group of a figure.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label (e.g. "wb / affinity").
    pub label: String,
    /// Points in sweep order.
    pub points: Vec<Point>,
}

impl Series {
    /// New empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series { label: label.into(), points: Vec::new() }
    }

    /// Append a point.
    pub fn push(&mut self, x: impl Into<String>, y: f64) {
        self.points.push(Point { x: x.into(), y });
    }

    /// The value at sweep coordinate `x`.
    pub fn at(&self, x: &str) -> Option<f64> {
        self.points.iter().find(|p| p.x == x).map(|p| p.y)
    }
}

/// A regenerated figure or table.
#[derive(Debug, Clone)]
pub struct FigureData {
    /// Identifier (`fig05`, `table1`, ...).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Metric/unit of the y values.
    pub y_label: String,
    /// All series.
    pub series: Vec<Series>,
    /// Shape findings and reproduction notes.
    pub notes: Vec<String>,
    /// Machine-readable run reports keyed by configuration label
    /// (`"<series> @ <x>"`); embedded verbatim in the saved JSON.
    pub reports: Vec<(String, Json)>,
}

impl FigureData {
    /// Start a figure.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        FigureData {
            id: id.into(),
            title: title.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            notes: Vec::new(),
            reports: Vec::new(),
        }
    }

    /// Add a completed series.
    pub fn add(&mut self, s: Series) {
        self.series.push(s);
    }

    /// Record a reproduction note (printed and saved).
    pub fn note(&mut self, n: impl Into<String>) {
        self.notes.push(n.into());
    }

    /// Attach the [`RunReport`](ompss_runtime::RunReport) JSON of one
    /// measured configuration, keyed by a label such as `"wb/affinity @ 4"`.
    pub fn attach_report(&mut self, key: impl Into<String>, report: Json) {
        self.reports.push((key.into(), report));
    }

    /// Find a series by label.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Render an aligned text table: one row per series, one column per
    /// sweep coordinate.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} [{}]\n", self.id, self.title, self.y_label));
        let xs: Vec<String> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|p| p.x.clone()).collect())
            .unwrap_or_default();
        let label_w = self.series.iter().map(|s| s.label.len()).max().unwrap_or(8).max(8);
        out.push_str(&format!("{:label_w$}", ""));
        for x in &xs {
            out.push_str(&format!(" {x:>10}"));
        }
        out.push('\n');
        for s in &self.series {
            out.push_str(&format!("{:label_w$}", s.label));
            for x in &xs {
                match s.at(x) {
                    Some(y) => out.push_str(&format!(" {y:>10.1}")),
                    None => out.push_str(&format!(" {:>10}", "-")),
                }
            }
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }

    /// Print the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Save as JSON under `dir/<id>.json`.
    pub fn save(&self, dir: &Path) {
        fs::create_dir_all(dir).expect("create results dir");
        let path = dir.join(format!("{}.json", self.id));
        fs::write(&path, self.to_json().to_pretty_string())
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    }
}

impl ToJson for Point {
    fn to_json(&self) -> Json {
        Json::object().field("x", self.x.as_str()).field("y", self.y)
    }
}

impl ToJson for Series {
    fn to_json(&self) -> Json {
        Json::object()
            .field("label", self.label.as_str())
            .field("points", Json::Arr(self.points.iter().map(ToJson::to_json).collect()))
    }
}

impl ToJson for FigureData {
    fn to_json(&self) -> Json {
        let mut reports = Json::object();
        for (k, v) in &self.reports {
            reports.set(k, v.clone());
        }
        Json::object()
            .field("id", self.id.as_str())
            .field("title", self.title.as_str())
            .field("y_label", self.y_label.as_str())
            .field("series", Json::Arr(self.series.iter().map(ToJson::to_json).collect()))
            .field("notes", Json::Arr(self.notes.iter().map(|n| Json::Str(n.clone())).collect()))
            .field("reports", reports)
    }
}

/// The default results directory (`<workspace>/results`).
///
/// Under cargo the manifest dir locates the workspace root; a bare
/// binary invocation (no `CARGO_MANIFEST_DIR`) writes to `./results`
/// rather than guessing at parent directories.
pub fn results_dir() -> PathBuf {
    let p = match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(m) => Path::new(&m).join("../../results"),
        Err(_) => PathBuf::from("results"),
    };
    fs::create_dir_all(&p).expect("create results dir");
    p.canonicalize().expect("canonicalize results dir")
}

/// Path to the apps crate sources (for Table I line counting). Same
/// fallback rule as [`results_dir`]: without cargo's manifest dir,
/// resolve from the workspace root as the working directory.
pub fn apps_src_dir() -> PathBuf {
    let p = match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(m) => Path::new(&m).join("../apps/src"),
        Err(_) => PathBuf::from("crates/apps/src"),
    };
    p.canonicalize().expect("apps source dir")
}

/// Count "useful" lines of a Rust source file, the paper's Table I
/// metric: non-blank lines that are not pure comments (line comments,
/// doc comments, `//!` headers).
pub fn useful_lines(path: &Path) -> usize {
    let text = fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    text.lines().map(str::trim).filter(|l| !l.is_empty()).filter(|l| !l.starts_with("//")).count()
}

pub mod figures;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_and_lookup() {
        let mut s = Series::new("wb");
        s.push("1", 10.0);
        s.push("2", 20.0);
        assert_eq!(s.at("2"), Some(20.0));
        assert_eq!(s.at("4"), None);
    }

    #[test]
    fn render_aligns_columns() {
        let mut f = FigureData::new("figX", "test", "GFLOPS");
        let mut s = Series::new("a");
        s.push("1", 1.0);
        s.push("2", 2.0);
        f.add(s);
        f.note("shape ok");
        let r = f.render();
        assert!(r.contains("figX"));
        assert!(r.contains("note: shape ok"));
        assert!(r.lines().count() >= 4);
    }

    #[test]
    fn useful_lines_skips_comments_and_blanks() {
        let dir = std::env::temp_dir().join("ompss-bench-test");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("loc.rs");
        fs::write(&p, "// comment\n\nfn main() {\n    //! doc\n    let x = 1; // trailing\n}\n")
            .unwrap();
        assert_eq!(useful_lines(&p), 3);
    }
}
