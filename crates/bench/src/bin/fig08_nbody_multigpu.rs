//! Regenerates Figure 8 of the paper; prints the table and saves
//! JSON under `results/`.
fn main() {
    let fig = ompss_bench::figures::fig08();
    fig.print();
    fig.save(&ompss_bench::results_dir());
}
