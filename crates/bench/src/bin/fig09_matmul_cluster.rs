//! Regenerates Figure 9 of the paper; prints the table and saves
//! JSON under `results/`, plus a Paraver trace pair
//! (`fig09_cluster.prv`/`.row`) of the best 8-node configuration.
use ompss_apps::matmul::{self, ompss::InitMode};
use ompss_runtime::{Backing, ParaverTrace, RuntimeConfig, SlaveRouting};

fn main() {
    let fig = ompss_bench::figures::fig09();
    fig.print();
    let dir = ompss_bench::results_dir();
    fig.save(&dir);

    // One traced run of the paper's best cluster setup (StoS routing,
    // SMP-parallel init, deep presend), exported for Paraver.
    let cfg = RuntimeConfig::gpu_cluster(8)
        .with_backing(Backing::Phantom)
        .with_routing(SlaveRouting::Direct)
        .with_presend(8)
        .with_tracing(true);
    let r = matmul::ompss::run(cfg, matmul::MatmulParams::paper(), InitMode::Smp);
    let rep = r.report.expect("ompss run carries a report");
    let events = rep.trace.as_deref().expect("tracing was enabled");
    let prv = ParaverTrace::from_events(events, rep.makespan);
    match prv.save(&dir, "fig09_cluster") {
        Ok((p, _)) => println!("paraver trace: {}", p.display()),
        Err(e) => eprintln!("paraver trace export failed: {e}"),
    }
}
