//! Regenerates Figure 10 of the paper; prints the table and saves
//! JSON under `results/`.
fn main() {
    let fig = ompss_bench::figures::fig10();
    fig.print();
    fig.save(&ompss_bench::results_dir());
}
