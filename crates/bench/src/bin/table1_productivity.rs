//! Regenerates Table I of the paper (lines-of-code productivity
//! comparison) from this repository's own sources.
fn main() {
    let fig = ompss_bench::figures::table1();
    fig.print();
    fig.save(&ompss_bench::results_dir());
}
