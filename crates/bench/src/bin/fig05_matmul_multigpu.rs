//! Regenerates Figure 5 of the paper; prints the table and saves
//! JSON under `results/`, plus a Paraver trace pair
//! (`fig05_multigpu.prv`/`.row`) of the best 4-GPU configuration.
use ompss_apps::matmul::{self, ompss::InitMode};
use ompss_runtime::{Backing, CachePolicy, ParaverTrace, Policy, RuntimeConfig};

fn main() {
    let fig = ompss_bench::figures::fig05();
    fig.print();
    let dir = ompss_bench::results_dir();
    fig.save(&dir);

    // One traced run of the winning configuration, exported for
    // Paraver: the timeline behind the wb/affinity bar.
    let cfg = RuntimeConfig::multi_gpu(4)
        .with_backing(Backing::Phantom)
        .with_cache(CachePolicy::WriteBack)
        .with_sched(Policy::Affinity)
        .with_tracing(true);
    let r = matmul::ompss::run(cfg, matmul::MatmulParams::paper(), InitMode::Seq);
    let rep = r.report.expect("ompss run carries a report");
    let events = rep.trace.as_deref().expect("tracing was enabled");
    let prv = ParaverTrace::from_events(events, rep.makespan);
    match prv.save(&dir, "fig05_multigpu") {
        Ok((p, _)) => println!("paraver trace: {}", p.display()),
        Err(e) => eprintln!("paraver trace export failed: {e}"),
    }
}
