//! Regenerates every figure and table of the paper's evaluation,
//! printing each and saving JSON under `results/`.
fn main() {
    let dir = ompss_bench::results_dir();
    let figs = [
        ompss_bench::figures::fig05(),
        ompss_bench::figures::fig06(),
        ompss_bench::figures::fig07(),
        ompss_bench::figures::fig08(),
        ompss_bench::figures::fig09(),
        ompss_bench::figures::fig10(),
        ompss_bench::figures::fig11(),
        ompss_bench::figures::fig12(),
        ompss_bench::figures::fig13(),
        ompss_bench::figures::table1(),
    ];
    for fig in &figs {
        fig.print();
        fig.save(&dir);
    }
    println!("saved {} result files to {}", figs.len(), dir.display());
}
