//! Regenerates every figure and table of the paper's evaluation,
//! printing each and saving JSON under `results/`.
//!
//! Independent configurations within each figure run on `--jobs N` host
//! threads (default: `OMPSS_BENCH_JOBS` or the host's parallelism); the
//! output is byte-identical at any job count. Naming figure ids (e.g.
//! `all_figures figWS`) regenerates just those.
fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    ompss_sweep::parse_jobs_flag(&mut args);
    let dir = ompss_bench::results_dir();
    type Entry = (&'static str, fn() -> ompss_bench::FigureData);
    let all: [Entry; 11] = [
        ("fig05", ompss_bench::figures::fig05),
        ("fig06", ompss_bench::figures::fig06),
        ("fig07", ompss_bench::figures::fig07),
        ("fig08", ompss_bench::figures::fig08),
        ("fig09", ompss_bench::figures::fig09),
        ("fig10", ompss_bench::figures::fig10),
        ("fig11", ompss_bench::figures::fig11),
        ("fig12", ompss_bench::figures::fig12),
        ("fig13", ompss_bench::figures::fig13),
        ("figWS", ompss_bench::figures::figws),
        ("table1", ompss_bench::figures::table1),
    ];
    for a in &args {
        assert!(
            all.iter().any(|(id, _)| id == a),
            "unknown figure id '{a}'; usage: all_figures [--jobs N] [figure-id...]"
        );
    }
    let mut saved = 0;
    for (id, make) in all {
        if !args.is_empty() && !args.iter().any(|a| a == id) {
            continue;
        }
        let fig = make();
        fig.print();
        fig.save(&dir);
        saved += 1;
    }
    println!("saved {saved} result files to {}", dir.display());
}
