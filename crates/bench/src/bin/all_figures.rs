//! Regenerates every figure and table of the paper's evaluation,
//! printing each and saving JSON under `results/`.
//!
//! Independent configurations within each figure run on `--jobs N` host
//! threads (default: `OMPSS_BENCH_JOBS` or the host's parallelism); the
//! output is byte-identical at any job count.
fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    ompss_sweep::parse_jobs_flag(&mut args);
    assert!(args.is_empty(), "usage: all_figures [--jobs N]");
    let dir = ompss_bench::results_dir();
    let figs = [
        ompss_bench::figures::fig05(),
        ompss_bench::figures::fig06(),
        ompss_bench::figures::fig07(),
        ompss_bench::figures::fig08(),
        ompss_bench::figures::fig09(),
        ompss_bench::figures::fig10(),
        ompss_bench::figures::fig11(),
        ompss_bench::figures::fig12(),
        ompss_bench::figures::fig13(),
        ompss_bench::figures::table1(),
    ];
    for fig in &figs {
        fig.print();
        fig.save(&dir);
    }
    println!("saved {} result files to {}", figs.len(), dir.display());
}
