//! `bench_sim` — wall-clock benchmark spine for the simulator itself.
//!
//! Everything else in `results/` measures the *modelled* platform in
//! virtual time; this harness measures the *host* cost of producing
//! those results, so speedups (or regressions) of the DES engine and
//! the runtime's bookkeeping show up as one committed number.
//!
//! ```text
//! bench_sim [--jobs N]   # measure, print, rewrite BENCH_sim.json
//! bench_sim --check      # measure, compare against the committed
//!                        # BENCH_sim.json, exit 1 on a >20% regression
//! ```
//!
//! Three tiers:
//!
//! * **DES micro** — a single process issuing 200 000 unit delays
//!   (the inline-advance fast path) and a two-process channel pingpong
//!   (the direct baton handoff), each reported as events/second from
//!   the kernel's own `events` and `host_ns` counters.
//! * **Graph micro** — `TaskGraph::add_task` throughput over a
//!   10 000-task matmul-shaped graph (tasks/second).
//! * **Figure macro** — regenerates every figure/table exactly as
//!   `all_figures` does (same sweep, same job count), timing each.
//!
//! All numbers in `BENCH_sim.json` are **host measurements**: they vary
//! run to run and machine to machine, and are deliberately kept out of
//! `results/*.json`, whose bytes are deterministic. The committed file
//! is the recorded baseline the `--check` mode (wired into
//! `./ci.sh bench`) compares against.

use std::time::Instant;

use ompss_bench::FigureData;
use ompss_core::{AccessExt, TaskGraph, TaskId};
use ompss_json::Json;
use ompss_mem::{Access, DataId, Region};
use ompss_sim::{delay, Channel, Sim, SimDuration};

/// Delay events issued by the single-process DES micro-benchmark.
const DES_DELAYS: u64 = 200_000;
/// Round trips of the two-process pingpong micro-benchmark.
const PINGPONG_ROUNDS: u64 = 50_000;
/// Trivial processes spawned by the cluster-scale spawn micro-benchmark.
const SPAWN_PROCESSES: u64 = 1_000_000;
/// Peak-RSS growth allowed while running the spawn micro-benchmark:
/// ~512 bytes of heap per in-flight process, with slack for the run
/// queue and allocator overhead. A thread-per-process design (8 MiB
/// stacks) would need terabytes.
const SPAWN_RSS_BOUND_BYTES: u64 = 512 << 20;
/// Tasks submitted by the graph micro-benchmark.
const GRAPH_TASKS: usize = 10_000;
/// `--check` fails when the macro total exceeds baseline × this factor.
const REGRESSION_HEADROOM: f64 = 1.20;

/// Events/second of a single process spinning on unit delays — the
/// inline clock-advance fast path, with the event count taken from the
/// kernel's report so fast-path and slow-path builds stay comparable.
fn des_delay_micro() -> (f64, u64) {
    let sim = Sim::new();
    sim.spawn("spin", async {
        for _ in 0..DES_DELAYS {
            delay(SimDuration::from_nanos(1)).await.unwrap();
        }
    });
    let rep = sim.run().expect("delay micro-benchmark completes");
    (rep.events as f64 / (rep.host_ns as f64 / 1e9), rep.events)
}

/// Events/second of a two-process channel pingpong — every event is a
/// cross-process resume, so this measures the wake/poll handoff.
fn des_pingpong_micro() -> (f64, u64) {
    let sim = Sim::new();
    let a: Channel<u32> = Channel::new();
    let b: Channel<u32> = Channel::new();
    let (a1, b1) = (a.clone(), b.clone());
    sim.spawn("ping", async move {
        for i in 0..PINGPONG_ROUNDS as u32 {
            a1.send(i);
            b1.recv().await.unwrap();
        }
    });
    sim.process("pong").daemon().spawn(async move {
        while let Ok(v) = a.recv().await {
            b.send(v);
        }
    });
    let rep = sim.run().expect("pingpong micro-benchmark completes");
    (rep.events as f64 / (rep.host_ns as f64 / 1e9), rep.events)
}

/// Peak resident set size of this process so far, in bytes (Linux
/// `VmHWM`; 0 where unavailable).
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|kb| kb.parse::<u64>().ok())
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

/// Spawn throughput and memory footprint at cluster scale: one million
/// trivial processes (spawn, one yield, exit), as a stand-in for the
/// thousand-node × multi-GPU worker/manager/pump population. Reports
/// events/second and asserts the peak-RSS *delta* stays under a bound
/// that an OS-thread-per-process design would exceed by orders of
/// magnitude.
fn des_spawn_micro() -> (f64, u64, u64) {
    let rss_before = peak_rss_bytes();
    let sim = Sim::new();
    sim.spawn("spawner", async {
        for i in 0..SPAWN_PROCESSES {
            ompss_sim::spawn(("p", i), async {
                ompss_sim::yield_now().await.unwrap();
            });
        }
    });
    let rep = sim.run().expect("spawn micro-benchmark completes");
    assert_eq!(rep.processes as u64, SPAWN_PROCESSES + 1);
    let rss_delta = peak_rss_bytes().saturating_sub(rss_before);
    assert!(
        rss_delta < SPAWN_RSS_BOUND_BYTES,
        "1M stackless processes grew peak RSS by {} MiB (bound {} MiB); \
         a process stopped being one small heap object",
        rss_delta >> 20,
        SPAWN_RSS_BOUND_BYTES >> 20,
    );
    (rep.events as f64 / (rep.host_ns as f64 / 1e9), rep.events, rss_delta)
}

/// `TaskGraph::add_task` throughput (tasks/second) over a 10 000-task
/// matmul-shaped graph: three accesses per task, 8×8 tile grid, deep
/// reduction chains on the output tiles.
fn graph_micro() -> (f64, u64) {
    let reg =
        |d: u64, i: usize, j: usize| Region::new(DataId(d), ((i % 8 * 8 + j % 8) * 64) as u64, 64);
    let accesses: Vec<Vec<Access>> = (0..GRAPH_TASKS)
        .map(|t| {
            let (i, j, k) = (t / 64, t / 8, t);
            vec![
                Access::read(reg(0, i, k)),
                Access::read(reg(1, k, j)),
                Access::update(reg(2, i, j)),
            ]
        })
        .collect();
    let t0 = Instant::now();
    let mut graph = TaskGraph::new();
    for (i, a) in accesses.iter().enumerate() {
        graph.add_task(TaskId(i as u64), a).expect("graph micro-benchmark accepts tasks");
    }
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(graph.submitted(), GRAPH_TASKS);
    (GRAPH_TASKS as f64 / secs, GRAPH_TASKS as u64)
}

/// One timed entry of the figure macro-suite.
type FigureEntry = (&'static str, fn() -> FigureData);

/// Every figure/table `all_figures` regenerates, in its order.
fn figure_suite() -> Vec<FigureEntry> {
    use ompss_bench::figures as f;
    vec![
        ("fig05", f::fig05),
        ("fig06", f::fig06),
        ("fig07", f::fig07),
        ("fig08", f::fig08),
        ("fig09", f::fig09),
        ("fig10", f::fig10),
        ("fig11", f::fig11),
        ("fig12", f::fig12),
        ("fig13", f::fig13),
        ("figWS", f::figws),
        ("table1", f::table1),
    ]
}

/// Path of the committed baseline / output file: `<workspace>/BENCH_sim.json`.
fn bench_path() -> std::path::PathBuf {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(m) => std::path::Path::new(&m).join("../../BENCH_sim.json"),
        Err(_) => std::path::PathBuf::from("BENCH_sim.json"),
    }
}

/// Pull `"total_wall_s": <number>` out of a committed `BENCH_sim.json`.
///
/// `ompss_json` is writer-only by design, and this file is machine
/// written by this binary, so a field scan is all the parsing needed.
fn baseline_total(text: &str) -> Option<f64> {
    let key = "\"total_wall_s\":";
    let at = text.find(key)? + key.len();
    let rest = text[at..].trim_start();
    let end = rest.find(|c: char| {
        !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
    })?;
    rest[..end].parse().ok()
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = ompss_sweep::parse_jobs_flag(&mut args);
    let check = args.iter().any(|a| a == "--check");
    args.retain(|a| a != "--check");
    assert!(args.is_empty(), "usage: bench_sim [--jobs N] [--check]");

    println!("bench_sim: {jobs} job(s)");
    let (delay_eps, delay_events) = des_delay_micro();
    println!("  des delay       {delay_eps:>14.0} events/s  ({delay_events} events)");
    let (ping_eps, ping_events) = des_pingpong_micro();
    println!("  des pingpong    {ping_eps:>14.0} events/s  ({ping_events} events)");
    let (spawn_eps, spawn_events, spawn_rss) = des_spawn_micro();
    println!(
        "  des spawn 1m    {spawn_eps:>14.0} events/s  ({spawn_events} events, +{} MiB peak RSS)",
        spawn_rss >> 20
    );
    let (graph_tps, graph_tasks) = graph_micro();
    println!("  graph add_task  {graph_tps:>14.0} tasks/s   ({graph_tasks} tasks)");

    let mut figures = Json::array();
    let mut total = 0.0f64;
    for (id, make) in figure_suite() {
        let t0 = Instant::now();
        let fig = make();
        let wall = t0.elapsed().as_secs_f64();
        total += wall;
        println!("  {id:<8} {wall:>8.2} s  ({} series)", fig.series.len());
        figures.push(Json::object().field("id", id).field("wall_s", wall));
    }
    println!("  macro total {total:>8.2} s");

    let path = bench_path();
    let baseline = std::fs::read_to_string(&path).ok().as_deref().and_then(baseline_total);
    let speedup = baseline.map(|b| b / total);
    if let (Some(b), Some(s)) = (baseline, speedup) {
        println!("  baseline    {b:>8.2} s  (speedup {s:.2}x)");
    }

    if check {
        let b = baseline
            .unwrap_or_else(|| panic!("--check needs a committed baseline at {}", path.display()));
        if total > b * REGRESSION_HEADROOM {
            eprintln!(
                "bench_sim: macro total {total:.2}s exceeds baseline {b:.2}s by more than {:.0}%",
                (REGRESSION_HEADROOM - 1.0) * 100.0
            );
            std::process::exit(1);
        }
        println!("bench_sim: within {:.0}% of baseline", (REGRESSION_HEADROOM - 1.0) * 100.0);
        return;
    }

    let doc = Json::object()
        .field("tool", "bench_sim")
        .field("note", "host wall-clock measurements; not deterministic, kept out of results/")
        .field("jobs", jobs as u64)
        .field(
            "micro",
            Json::object()
                .field("des_delay_events_per_sec", delay_eps)
                .field("des_delay_events", delay_events)
                .field("des_pingpong_events_per_sec", ping_eps)
                .field("des_pingpong_events", ping_events)
                .field("des_spawn_1m_processes_events_per_sec", spawn_eps)
                .field("des_spawn_1m_processes_events", spawn_events)
                .field("des_spawn_1m_processes_peak_rss_delta_bytes", spawn_rss)
                .field("graph_add_task_per_sec", graph_tps)
                .field("graph_tasks", graph_tasks),
        )
        .field("macro", Json::object().field("figures", figures).field("total_wall_s", total))
        .field("speedup_vs_previous", speedup);
    std::fs::write(&path, doc.to_pretty_string() + "\n")
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("wrote {}", path.display());
}
