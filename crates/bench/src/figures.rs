//! Generation of every figure and table of the paper's evaluation.
//!
//! Each `figNN()` function runs the corresponding experiment sweep on
//! the simulated platform (phantom-backed, paper-scale workloads) and
//! returns the series. Shape assertions — the reproduction criteria —
//! live in the crate's integration tests and in `EXPERIMENTS.md`.
//!
//! Every configuration in a sweep is an independent simulation, so each
//! figure queues its runs and fans them across host threads with
//! [`ompss_sweep::run_jobs`] (`--jobs N` / `OMPSS_BENCH_JOBS`). Results
//! come back in submission order and the series are assembled by the
//! same loops that queued the runs, so the figure JSON is byte-identical
//! at any job count.

use ompss_apps::common::AppRun;
use ompss_apps::matmul::{self, ompss::InitMode};
use ompss_apps::{nbody, perlin, stream, ws};
use ompss_cudasim::GpuSpec;
use ompss_json::ToJson;
use ompss_net::FabricConfig;
use ompss_runtime::{Backing, CachePolicy, Policy, RuntimeConfig, SlaveRouting};

use crate::{FigureData, Series};

const CACHES: [CachePolicy; 3] =
    [CachePolicy::NoCache, CachePolicy::WriteThrough, CachePolicy::WriteBack];
const SCHEDS: [Policy; 3] = [Policy::BreadthFirst, Policy::Dependencies, Policy::Affinity];
const GPUS: [u32; 3] = [1, 2, 4];
const NODES: [u32; 4] = [1, 2, 4, 8];

fn mg(gpus: u32) -> RuntimeConfig {
    RuntimeConfig::multi_gpu(gpus).with_backing(Backing::Phantom)
}

fn cl(nodes: u32) -> RuntimeConfig {
    RuntimeConfig::gpu_cluster(nodes).with_backing(Backing::Phantom)
}

/// The paper's "best setup" for cluster OmpSs runs (§IV-B2): direct
/// slave-to-slave transfers, SMP-parallel initialisation, deep presend.
fn cl_best(nodes: u32) -> RuntimeConfig {
    cl(nodes).with_routing(SlaveRouting::Direct).with_presend(8)
}

/// Best setup for the fine-grained apps (Perlin, N-Body): shallow
/// presend — deep lookahead pins small tasks to nodes before the
/// balancer can react (the paper likewise reports the cluster options
/// making no positive difference for these apps).
fn cl_light(nodes: u32) -> RuntimeConfig {
    cl(nodes).with_routing(SlaveRouting::Direct).with_presend(1)
}

/// Embed the run's full [`RunReport`](ompss_runtime::RunReport) JSON in
/// the figure, keyed by configuration label. Every figure attaches the
/// report of each series' largest configuration, so the observability
/// data (per-resource utilisation, cache counters, bytes by medium)
/// ships with the chart it explains.
fn attach(fig: &mut FigureData, key: String, r: &AppRun) {
    if let Some(rep) = &r.report {
        fig.attach_report(key, rep.to_json());
    }
}

/// A queued figure run, executed on the host-thread sweep.
type Task = Box<dyn FnOnce() -> AppRun + Send>;

/// Fan the queued runs across host threads, yielding results in
/// submission order so the assembly loops below consume them exactly
/// as the serial code did.
fn sweep(tasks: Vec<Task>) -> std::vec::IntoIter<AppRun> {
    ompss_sweep::run_jobs(ompss_sweep::jobs(), tasks).into_iter()
}

// ---------------------------------------------------------------- Fig 5

/// Fig. 5: Matrix multiply on the multi-GPU node — GFLOPS for every
/// cache policy × scheduling policy × GPU count.
pub fn fig05() -> FigureData {
    let mut fig =
        FigureData::new("fig05", "Matrix multiply, multi-GPU node (12288², 1024² tiles)", "GFLOPS");
    let p = matmul::MatmulParams::paper();
    let mut runs: Vec<Task> = Vec::new();
    for cache in CACHES {
        for sched in SCHEDS {
            for gpus in GPUS {
                runs.push(Box::new(move || {
                    matmul::ompss::run(
                        mg(gpus).with_cache(cache).with_sched(sched),
                        p,
                        InitMode::Seq,
                    )
                }));
            }
        }
    }
    let mut results = sweep(runs);
    for cache in CACHES {
        for sched in SCHEDS {
            let mut s = Series::new(format!("{}/{}", cache.chart_label(), sched.chart_label()));
            for gpus in GPUS {
                let r = results.next().expect("one result per queued config");
                if gpus == 4 {
                    attach(&mut fig, format!("{}@4gpus", s.label), &r);
                }
                s.push(gpus.to_string(), r.metric);
            }
            fig.add(s);
        }
    }
    fig.note("expected shape: nocache < wt < wb; dep/affinity pull ahead of bf as GPUs grow");
    fig
}

// ---------------------------------------------------------------- Fig 6

/// Fig. 6: STREAM on the multi-GPU node — GB/s for cache × scheduler ×
/// GPU count (768 MB of arrays per GPU).
pub fn fig06() -> FigureData {
    let mut fig = FigureData::new("fig06", "STREAM, multi-GPU node (768 MB/GPU)", "GB/s");
    let mut runs: Vec<Task> = Vec::new();
    for cache in CACHES {
        for sched in SCHEDS {
            for gpus in GPUS {
                runs.push(Box::new(move || {
                    let p = stream::StreamParams::paper(gpus as usize);
                    stream::ompss::run(mg(gpus).with_cache(cache).with_sched(sched), p)
                }));
            }
        }
    }
    let mut results = sweep(runs);
    for cache in CACHES {
        for sched in SCHEDS {
            let mut s = Series::new(format!("{}/{}", cache.chart_label(), sched.chart_label()));
            for gpus in GPUS {
                let r = results.next().expect("one result per queued config");
                if gpus == 4 {
                    attach(&mut fig, format!("{}@4gpus", s.label), &r);
                }
                s.push(gpus.to_string(), r.metric);
            }
            fig.add(s);
        }
    }
    fig.note("expected shape: wb far above nocache/wt; scheduler choice barely matters");
    fig
}

// ---------------------------------------------------------------- Fig 7

/// Fig. 7: Perlin noise on the multi-GPU node — Mpixels/s for
/// Flush/NoFlush × cache policy × GPU count.
pub fn fig07() -> FigureData {
    let mut fig = FigureData::new("fig07", "Perlin noise, multi-GPU node (1024×1024)", "Mpixels/s");
    let p = perlin::PerlinParams::paper();
    let mut runs: Vec<Task> = Vec::new();
    for flush in [true, false] {
        for cache in CACHES {
            for gpus in GPUS {
                runs.push(Box::new(move || {
                    // Locality-aware scheduling keeps row blocks anchored
                    // across the Flush variant's per-step taskwaits.
                    let cfg = mg(gpus).with_cache(cache).with_sched(Policy::Affinity);
                    perlin::ompss::run(cfg, p, flush)
                }));
            }
        }
    }
    let mut results = sweep(runs);
    for flush in [true, false] {
        for cache in CACHES {
            let mode = if flush { "flush" } else { "noflush" };
            let mut s = Series::new(format!("{}/{}", mode, cache.chart_label()));
            for gpus in GPUS {
                let r = results.next().expect("one result per queued config");
                if gpus == 4 {
                    attach(&mut fig, format!("{}@4gpus", s.label), &r);
                }
                s.push(gpus.to_string(), r.metric);
            }
            fig.add(s);
        }
    }
    fig.note("expected shape: NoFlush above Flush; caching helps NoFlush most");
    fig
}

// ---------------------------------------------------------------- Fig 8

/// GPU memory made visible to the cache for the Fig. 8 pressure study.
///
/// The paper attributes no-cache's win to N-Body filling GPU memory and
/// triggering replacement with delayed write-back. We reproduce the
/// *mechanism* by capping the cache capacity relative to the N-Body
/// working set (all-to-all blocks × double-buffered positions), as
/// documented in DESIGN.md.
pub const FIG8_GPU_MEM: u64 = 1 << 20;

/// Fig. 8: N-Body on the multi-GPU node — GFLOPS per cache policy ×
/// GPU count, under GPU memory pressure.
pub fn fig08() -> FigureData {
    let mut fig = FigureData::new(
        "fig08",
        "N-Body, multi-GPU node (20000 bodies, 10 iters, memory-pressured GPUs)",
        "GFLOPS",
    );
    // Coarse blocks (one per GPU at 4 GPUs, NVIDIA multi-GPU example
    // style) and a capped cache reproduce the pressure regime.
    let p = nbody::NbodyParams { n: 20_000, blocks: 4, iters: 10, real: false };
    let mut runs: Vec<Task> = Vec::new();
    for cache in CACHES {
        for gpus in GPUS {
            runs.push(Box::new(move || {
                nbody::ompss::run(mg(gpus).with_cache(cache).with_gpu_mem(FIG8_GPU_MEM), p)
            }));
        }
    }
    let mut results = sweep(runs);
    for cache in CACHES {
        let mut s = Series::new(cache.chart_label().to_string());
        for gpus in GPUS {
            let r = results.next().expect("one result per queued config");
            if gpus == 4 {
                attach(&mut fig, format!("{}@4gpus", s.label), &r);
            }
            s.push(gpus.to_string(), r.metric);
        }
        fig.add(s);
    }
    fig.note(
        "paper shape: nocache outperforms wt/wb; reproduced as near-parity (see EXPERIMENTS.md)",
    );
    fig.note("secondary shape: good scalability to 2-4 GPUs holds for all policies");
    fig
}

// ---------------------------------------------------------------- Fig 9

/// Fig. 9: Matrix multiply on the GPU cluster — GFLOPS for routing
/// (MtoS/StoS) × initialisation (seq/smp/gpu) × presend {0,2,8} ×
/// node count.
pub fn fig09() -> FigureData {
    let mut fig =
        FigureData::new("fig09", "Matrix multiply, GPU cluster configuration sweep", "GFLOPS");
    let p = matmul::MatmulParams::paper();
    let mut runs: Vec<Task> = Vec::new();
    for (routing, _) in [(SlaveRouting::ViaMaster, "MtoS"), (SlaveRouting::Direct, "StoS")] {
        for (init, _) in [(InitMode::Seq, "seq"), (InitMode::Smp, "smp"), (InitMode::Gpu, "gpu")] {
            for presend in [0u32, 2, 8] {
                for nodes in NODES {
                    runs.push(Box::new(move || {
                        let cfg = cl(nodes).with_routing(routing).with_presend(presend);
                        matmul::ompss::run(cfg, p, init)
                    }));
                }
            }
        }
    }
    let mut results = sweep(runs);
    for (_, rl) in [(SlaveRouting::ViaMaster, "MtoS"), (SlaveRouting::Direct, "StoS")] {
        for (_, il) in [(InitMode::Seq, "seq"), (InitMode::Smp, "smp"), (InitMode::Gpu, "gpu")] {
            for presend in [0u32, 2, 8] {
                let mut s = Series::new(format!("{rl}/{il}/presend{presend}"));
                for nodes in NODES {
                    let r = results.next().expect("one result per queued config");
                    if nodes == 8 {
                        attach(&mut fig, format!("{}@8nodes", s.label), &r);
                    }
                    s.push(nodes.to_string(), r.metric);
                }
                fig.add(s);
            }
        }
    }
    fig.note(
        "expected shapes: StoS >> MtoS at scale; parallel init >> seq; presend helps (with StoS)",
    );
    fig
}

// --------------------------------------------------------------- Fig 10

/// Fig. 10: Matrix multiply — best OmpSs setup vs MPI+CUDA SUMMA.
pub fn fig10() -> FigureData {
    let mut fig =
        FigureData::new("fig10", "Matrix multiply: OmpSs vs MPI+CUDA on the cluster", "GFLOPS");
    let p = matmul::MatmulParams::paper();
    let mut runs: Vec<Task> = Vec::new();
    for nodes in NODES {
        runs.push(Box::new(move || matmul::ompss::run(cl_best(nodes), p, InitMode::Smp)));
        runs.push(Box::new(move || {
            matmul::mpi::run(nodes, GpuSpec::gtx_480(), FabricConfig::qdr_infiniband(nodes), p)
        }));
    }
    let mut results = sweep(runs);
    let mut om = Series::new("OmpSs");
    let mut mp = Series::new("MPI+CUDA");
    for nodes in NODES {
        let r = results.next().expect("one result per queued config");
        if nodes == 8 {
            attach(&mut fig, "OmpSs@8nodes".to_string(), &r);
        }
        om.push(nodes.to_string(), r.metric);
        let m = results.next().expect("one result per queued config");
        mp.push(nodes.to_string(), m.metric);
    }
    fig.add(om);
    fig.add(mp);
    fig.note("expected shape: MPI ahead at 1-2 nodes, OmpSs ahead at 4-8");
    fig
}

// --------------------------------------------------------------- Fig 11

/// Fig. 11: STREAM on the GPU cluster — OmpSs vs MPI+CUDA.
pub fn fig11() -> FigureData {
    let mut fig = FigureData::new("fig11", "STREAM on the GPU cluster (768 MB/node)", "GB/s");
    let mut runs: Vec<Task> = Vec::new();
    for nodes in NODES {
        runs.push(Box::new(move || {
            stream::ompss::run(cl_best(nodes), stream::StreamParams::paper(nodes as usize))
        }));
        runs.push(Box::new(move || {
            let p = stream::StreamParams::paper(nodes as usize);
            stream::mpi::run(nodes, GpuSpec::gtx_480(), FabricConfig::qdr_infiniband(nodes), p)
        }));
    }
    let mut results = sweep(runs);
    let mut om = Series::new("OmpSs");
    let mut mp = Series::new("MPI+CUDA");
    for nodes in NODES {
        let r = results.next().expect("one result per queued config");
        if nodes == 8 {
            attach(&mut fig, "OmpSs@8nodes".to_string(), &r);
        }
        om.push(nodes.to_string(), r.metric);
        let m = results.next().expect("one result per queued config");
        mp.push(nodes.to_string(), m.metric);
    }
    fig.add(om);
    fig.add(mp);
    fig.note("expected shape: both scale ~linearly (no inter-node traffic), comparable levels");
    fig
}

// --------------------------------------------------------------- Fig 12

/// Fig. 12: Perlin noise on the GPU cluster — Flush/NoFlush, OmpSs vs
/// MPI+CUDA.
pub fn fig12() -> FigureData {
    let mut fig =
        FigureData::new("fig12", "Perlin noise on the GPU cluster (1024×1024)", "Mpixels/s");
    // One row-block per node at 8 nodes: cluster-grain tasks, so the
    // per-step dispatch latency is amortised as in the paper's runs.
    let p = perlin::PerlinParams {
        width: 1024,
        height: 1024,
        steps: 10,
        rows_per_block: 128,
        real: false,
    };
    let mut runs: Vec<Task> = Vec::new();
    for (flush, _) in [(true, "flush"), (false, "noflush")] {
        for nodes in NODES {
            runs.push(Box::new(move || perlin::ompss::run(cl_light(nodes), p, flush)));
            runs.push(Box::new(move || {
                perlin::mpi::run(
                    nodes,
                    GpuSpec::gtx_480(),
                    FabricConfig::qdr_infiniband(nodes),
                    p,
                    flush,
                )
            }));
        }
    }
    let mut results = sweep(runs);
    for (_, ml) in [(true, "flush"), (false, "noflush")] {
        let mut om = Series::new(format!("OmpSs/{ml}"));
        let mut mp = Series::new(format!("MPI+CUDA/{ml}"));
        for nodes in NODES {
            let r = results.next().expect("one result per queued config");
            if nodes == 8 {
                attach(&mut fig, format!("OmpSs/{ml}@8nodes"), &r);
            }
            om.push(nodes.to_string(), r.metric);
            let m = results.next().expect("one result per queued config");
            mp.push(nodes.to_string(), m.metric);
        }
        fig.add(om);
        fig.add(mp);
    }
    fig.note("expected shape: Flush flat/poor for both models; NoFlush scales; OmpSs ≈ MPI");
    fig
}

// --------------------------------------------------------------- Fig 13

/// Fig. 13: N-Body on the GPU cluster — OmpSs vs MPI+CUDA.
pub fn fig13() -> FigureData {
    let mut fig = FigureData::new(
        "fig13",
        "N-Body on the GPU cluster (20000 bodies, 10 iterations)",
        "GFLOPS",
    );
    let p = nbody::NbodyParams::paper();
    let mut runs: Vec<Task> = Vec::new();
    for nodes in NODES {
        runs.push(Box::new(move || nbody::ompss::run(cl_light(nodes), p)));
        runs.push(Box::new(move || {
            nbody::mpi::run(nodes, GpuSpec::gtx_480(), FabricConfig::qdr_infiniband(nodes), p)
        }));
    }
    let mut results = sweep(runs);
    let mut om = Series::new("OmpSs");
    let mut mp = Series::new("MPI+CUDA");
    for nodes in NODES {
        let r = results.next().expect("one result per queued config");
        if nodes == 8 {
            attach(&mut fig, "OmpSs@8nodes".to_string(), &r);
        }
        om.push(nodes.to_string(), r.metric);
        let m = results.next().expect("one result per queued config");
        mp.push(nodes.to_string(), m.metric);
    }
    fig.add(om);
    fig.add(mp);
    fig.note("expected shape: MPI ahead at 1-2 nodes; OmpSs scales better toward 8");
    fig
}

// --------------------------------------------------------------- Fig WS

/// Node counts of the weak-scaling sweep — past the paper's scale on
/// purpose: the flat master saturates inside this range, the sharded
/// plane does not.
pub const WS_NODES: [u32; 4] = [4, 16, 64, 256];

/// The cluster preset at weak-scaling node counts, flat or sharded
/// (one shard per node).
fn ws_cfg(nodes: u32, sharded: bool) -> RuntimeConfig {
    ws::ws_config(nodes, sharded)
}

/// Fig. WS: weak scaling of the control plane — aggregate task
/// throughput at fixed per-node work, flat single master vs the
/// sharded plane (`OMPSS_SHARDS`), on the two weak-scaling apps.
pub fn figws() -> FigureData {
    let mut fig = FigureData::new(
        "figWS",
        "Weak scaling, flat vs sharded control plane (4 × 256 KiB blocks/node)",
        "ktasks/s",
    );
    type WsApp = fn(RuntimeConfig, ws::WsParams) -> AppRun;
    let p = ws::WsParams::paper();
    let apps: [(&str, WsApp); 2] = [("stream_ws", ws::run_stream), ("matmul_ws", ws::run_matmul)];
    let mut runs: Vec<Task> = Vec::new();
    for (_, run) in apps {
        for sharded in [false, true] {
            for nodes in WS_NODES {
                runs.push(Box::new(move || run(ws_cfg(nodes, sharded), p)));
            }
        }
    }
    let mut results = sweep(runs);
    for (app, _) in apps {
        for sharded in [false, true] {
            let mode = if sharded { "sharded" } else { "flat" };
            let mut s = Series::new(format!("{app}/{mode}"));
            for nodes in WS_NODES {
                let r = results.next().expect("one result per queued config");
                if nodes == 64 {
                    attach(&mut fig, format!("{}@64nodes", s.label), &r);
                }
                s.push(nodes.to_string(), r.metric);
            }
            fig.add(s);
        }
    }
    fig.note("expected shape: flat saturates by 64 nodes; sharded keeps gaining through 256");
    fig.note("sharded reports carry shard_lookups/peer_resolutions/submaster_spawns counters");
    fig
}

// --------------------------------------------------------------- Table I

/// Table I: useful lines of code of each benchmark version, counted
/// from this repository's real sources (the artifacts themselves).
pub fn table1() -> FigureData {
    let mut fig = FigureData::new(
        "table1",
        "Productivity: useful LoC per version (increase vs serial)",
        "lines",
    );
    let src = crate::apps_src_dir();
    let apps = ["matmul", "stream", "perlin", "nbody"];
    let versions = ["serial", "cuda", "mpi", "ompss"];
    let mut counts = std::collections::HashMap::new();
    for app in apps {
        for v in versions {
            let path = src.join(app).join(format!("{v}.rs"));
            counts.insert((app, v), crate::useful_lines(&path));
        }
    }
    for v in versions {
        let mut s = Series::new(v.to_string());
        for app in apps {
            s.push(app.to_string(), counts[&(app, v)] as f64);
        }
        fig.add(s);
    }
    for app in apps {
        let base = counts[&(app, "serial")] as f64;
        let pct = |v: &str| (counts[&(app, v)] as f64 - base) / base * 100.0;
        fig.note(format!(
            "{app}: serial {} | cuda {} (+{:.0}%) | mpi+cuda {} (+{:.0}%) | ompss {} (+{:.0}%)",
            counts[&(app, "serial")],
            counts[&(app, "cuda")],
            pct("cuda"),
            counts[&(app, "mpi")],
            pct("mpi"),
            counts[&(app, "ompss")],
            pct("ompss"),
        ));
    }
    fig.note("expected shape per app: increase(ompss) < increase(cuda) < increase(mpi+cuda)");
    fig
}
