//! Whole-runtime property test: arbitrary task DAGs over arbitrary
//! machines must compute exactly what sequential submission-order
//! execution computes.
//!
//! Each generated task applies a non-commutative affine update
//! (`x = 2x + c`) to the regions it declares `inout`. The dependence
//! graph totally orders conflicting tasks by submission, so replaying
//! the task list serially is an exact oracle — any scheduling, caching,
//! routing or transfer bug that reorders or loses an update changes the
//! result.

use proptest::prelude::*;

use ompss_mem::cast_slice_mut;
use ompss_runtime::{
    CachePolicy, Device, KernelCost, Policy, Runtime, RuntimeConfig, SimDuration, SlaveRouting,
    TaskSpec,
};

const SLOTS: usize = 4;
const SLOT_ELEMS: usize = 16;
const ARRAYS: usize = 3;

#[derive(Debug, Clone)]
struct GenTask {
    /// (array, slot) regions the task updates (deduplicated).
    targets: Vec<(usize, usize)>,
    /// The constant of this task's affine update.
    c: f32,
    cuda: bool,
}

fn gen_task() -> impl Strategy<Value = GenTask> {
    (proptest::collection::vec((0usize..ARRAYS, 0usize..SLOTS), 1..3), 0u8..100, any::<bool>())
        .prop_map(|(mut targets, c, cuda)| {
            targets.sort();
            targets.dedup();
            GenTask { targets, c: c as f32, cuda }
        })
}

fn machine(sel: u8) -> RuntimeConfig {
    match sel % 4 {
        0 => RuntimeConfig::multi_gpu(1),
        1 => RuntimeConfig::multi_gpu(3).with_cache(CachePolicy::NoCache),
        2 => RuntimeConfig::gpu_cluster(2)
            .with_sched(Policy::BreadthFirst)
            .with_cache(CachePolicy::WriteThrough),
        _ => RuntimeConfig::gpu_cluster(3).with_routing(SlaveRouting::ViaMaster).with_presend(2),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_dags_match_sequential_semantics(
        tasks in proptest::collection::vec(gen_task(), 1..25),
        machine_sel in 0u8..4,
    ) {
        // Oracle: sequential replay.
        let mut oracle = vec![vec![0.0f32; SLOTS * SLOT_ELEMS]; ARRAYS];
        for t in &tasks {
            for &(a, s) in &t.targets {
                for x in &mut oracle[a][s * SLOT_ELEMS..(s + 1) * SLOT_ELEMS] {
                    *x = 2.0 * *x + t.c;
                }
            }
        }

        // Runtime execution.
        let got = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let got2 = got.clone();
        let tasks2 = tasks.clone();
        Runtime::run(machine(machine_sel), move |omp| async move {
            let arrays: Vec<_> =
                (0..ARRAYS).map(|_| omp.alloc_array::<f32>(SLOTS * SLOT_ELEMS)).collect();
            for t in &tasks2 {
                let mut spec = TaskSpec::new("affine");
                spec = if t.cuda {
                    spec.device(Device::Cuda)
                        .cost_gpu(KernelCost::fixed(SimDuration::from_micros(20)))
                } else {
                    spec.device(Device::Smp).cost_smp(SimDuration::from_micros(20))
                };
                for &(a, s) in &t.targets {
                    spec = spec.inout(arrays[a].region(s * SLOT_ELEMS..(s + 1) * SLOT_ELEMS));
                }
                let c = t.c;
                omp.submit(spec.body(move |views| {
                    for view in views.iter_mut() {
                        for x in cast_slice_mut::<f32>(view) {
                            *x = 2.0 * *x + c;
                        }
                    }
                })).await;
            }
            omp.taskwait().await;
            let mut out = Vec::new();
            for a in &arrays {
                out.push(omp.read_array(a, 0..SLOTS * SLOT_ELEMS).unwrap());
            }
            *got2.lock() = out;
        });

        let got = got.lock().clone();
        for a in 0..ARRAYS {
            prop_assert_eq!(&got[a], &oracle[a], "array {} diverged (machine {})", a, machine_sel);
        }
    }
}
