//! Elastic-membership tests: config validation (rejected before the
//! machine is built), and end-to-end planned joins/drains preserving
//! results on both control planes.

use ompss_mem::cast_slice_mut;
use ompss_runtime::{Device, RunError, RunReport, Runtime, RuntimeConfig, SimDuration, TaskSpec};

/// Two waves of blocked SMP "scale by 2" over eight arrays — enough
/// 100 µs tasks that a membership event armed a few hundred µs in lands
/// mid-run (the two-wave makespan is ~600 µs on a three-node cluster),
/// and enough distinct `DataId`s that the sharded plane homes slices on
/// every member. The taskwait between waves makes the second wave's
/// placement see the churned cluster.
fn run_two_wave(cfg: RuntimeConfig) -> (Vec<Vec<f32>>, RunReport) {
    const N: usize = 512;
    const BS: usize = 128;
    const ARRAYS: usize = 8;
    let out = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
    let out2 = out.clone();
    let report = Runtime::run(cfg, move |omp| async move {
        let arrays: Vec<_> = (0..ARRAYS).map(|_| omp.alloc_array::<f32>(N)).collect();
        for a in &arrays {
            omp.write_array(a, 0, &(0..N).map(|i| i as f32).collect::<Vec<_>>());
        }
        for _wave in 0..2 {
            for a in arrays.clone() {
                omp.for_each_block(0..N, BS, |r| {
                    TaskSpec::new("scale")
                        .device(Device::Smp)
                        .inout(a.region(r))
                        .cost_smp(SimDuration::from_micros(100))
                        .body(|views| {
                            for x in cast_slice_mut::<f32>(views[0]) {
                                *x *= 2.0;
                            }
                        })
                })
                .await;
            }
            omp.taskwait().await;
        }
        *out2.lock() = arrays.iter().map(|a| omp.read_array(a, 0..N).unwrap()).collect::<Vec<_>>();
    });
    let v = out.lock().clone();
    (v, report)
}

fn assert_scaled_4x(arrays: &[Vec<f32>], ctx: &str) {
    let want: Vec<f32> = (0..512).map(|i| (i as f32) * 4.0).collect();
    for (k, a) in arrays.iter().enumerate() {
        assert_eq!(a, &want, "array {k} wrong under {ctx}");
    }
}

#[test]
fn heartbeat_period_must_undercut_lease_window() {
    // Rejected side: a period equal to the window means a node could
    // never renew between probes — a structured error, not a crash.
    // The builder asserts the same invariant, so (like the env path)
    // the bad value is planted directly on the fields.
    let mut bad = RuntimeConfig::gpu_cluster(2);
    bad.heartbeat_period = SimDuration::from_micros(500);
    bad.lease_window = SimDuration::from_micros(500);
    match Runtime::try_run(bad, |omp| async move {
        omp.taskwait().await;
    }) {
        Err(RunError::InvalidConfig { what }) => {
            assert!(what.contains("heartbeat_period"), "unhelpful message: {what}")
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
    // Accepted side: one nanosecond under the window is valid.
    let mut good = RuntimeConfig::gpu_cluster(2);
    good.heartbeat_period = SimDuration::from_nanos(499_999);
    good.lease_window = SimDuration::from_micros(500);
    Runtime::try_run(good, |omp| async move {
        omp.taskwait().await;
    })
    .expect("period < window is a valid lease config");
}

#[test]
fn membership_targets_outside_the_cluster_are_rejected() {
    // The builder asserts node > 0; the out-of-range side reaches
    // try_run unchecked (as the env path would) and must fail closed.
    let mut cfg = RuntimeConfig::gpu_cluster(2);
    cfg.node_join = Some((5, SimDuration::from_micros(10)));
    match Runtime::try_run(cfg, |omp| async move {
        omp.taskwait().await;
    }) {
        Err(RunError::InvalidConfig { what }) => {
            assert!(what.contains("node_join"), "unhelpful message: {what}")
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
    let mut cfg = RuntimeConfig::gpu_cluster(2);
    cfg.node_drain = Some((0, SimDuration::from_micros(10)));
    assert!(matches!(
        Runtime::try_run(cfg, |omp| async move {
            omp.taskwait().await;
        }),
        Err(RunError::InvalidConfig { .. })
    ));
}

#[test]
fn planned_join_adds_a_node_mid_run_and_preserves_results() {
    for shards in [0u32, 3] {
        let mut cfg =
            RuntimeConfig::gpu_cluster(3).with_node_join(2, SimDuration::from_micros(300));
        if shards > 0 {
            cfg = cfg.with_sharded_control(shards);
        }
        let (v, report) = run_two_wave(cfg);
        assert_scaled_4x(&v, &format!("join, shards={shards}"));
        assert_eq!(report.counters.nodes_joined, 1, "shards={shards}");
        assert_eq!(report.counters.nodes_drained, 0, "shards={shards}");
        if shards > 0 {
            // The joiner took ownership of part of the DataId space;
            // the idle slices must have been re-homed onto it.
            assert!(report.counters.regions_rebalanced > 0, "sharded join moved no slices");
        }
    }
}

#[test]
fn planned_drain_retires_a_node_mid_run_and_preserves_results() {
    for shards in [0u32, 3] {
        let mut cfg =
            RuntimeConfig::gpu_cluster(3).with_node_drain(2, SimDuration::from_micros(300));
        if shards > 0 {
            cfg = cfg.with_sharded_control(shards);
        }
        let (v, report) = run_two_wave(cfg);
        assert_scaled_4x(&v, &format!("drain, shards={shards}"));
        assert_eq!(report.counters.nodes_drained, 1, "shards={shards}");
        assert_eq!(report.counters.nodes_joined, 0, "shards={shards}");
        // Draining always costs data movement: the flat plane flushes
        // the leaver's dirty cache home; the sharded plane additionally
        // re-homes every slice the leaver owned.
        assert!(report.counters.bytes_migrated > 0, "drain moved no bytes (shards={shards})");
        if shards > 0 {
            assert!(report.counters.regions_rebalanced > 0, "sharded drain moved no slices");
        }
    }
}

#[test]
fn drain_after_the_makespan_changes_nothing() {
    // A drain planned past the end of the program must stand down: no
    // membership activity, identical results and makespan to the
    // unarmed run (the zero-cost pin checks the full report bytes).
    let base = run_two_wave(RuntimeConfig::gpu_cluster(3));
    let armed = run_two_wave(
        RuntimeConfig::gpu_cluster(3).with_node_drain(2, SimDuration::from_millis(100)),
    );
    assert_eq!(armed.0, base.0);
    assert_eq!(armed.1.makespan, base.1.makespan);
    assert_eq!(armed.1.counters.nodes_drained, 0);
    assert_eq!(armed.1.counters.regions_rebalanced, 0);
    assert_eq!(armed.1.counters.bytes_migrated, 0);
}

#[test]
fn join_then_drain_of_the_same_node_round_trips() {
    // Node 2 comes up at 200 µs and leaves again at 500 µs: both
    // events land mid-run and results survive the double rebalance.
    let cfg = RuntimeConfig::gpu_cluster(3)
        .with_sharded_control(3)
        .with_node_join(2, SimDuration::from_micros(200))
        .with_node_drain(2, SimDuration::from_micros(500));
    let (v, report) = run_two_wave(cfg);
    assert_scaled_4x(&v, "join+drain round trip");
    assert_eq!(report.counters.nodes_joined, 1);
    assert_eq!(report.counters.nodes_drained, 1);
    assert!(report.counters.bytes_migrated > 0);
}
