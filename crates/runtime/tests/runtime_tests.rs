//! End-to-end runtime tests: the same annotated programs running on a
//! multi-GPU node and on a simulated GPU cluster, with numerical
//! validation (real byte backing) across policies.

use ompss_core::Device;
use ompss_mem::cast_slice_mut;
use ompss_runtime::{
    CachePolicy, KernelCost, Policy, Runtime, RuntimeConfig, SimDuration, SlaveRouting, TaskSpec,
};

/// A blocked "scale by 2" over a float array on the chosen device.
fn run_scale(cfg: RuntimeConfig, device: Device, n: usize, bs: usize) -> (Vec<f32>, u64) {
    let out = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
    let out2 = out.clone();
    let report = Runtime::run(cfg, move |omp| async move {
        let a = omp.alloc_array::<f32>(n);
        omp.write_array(&a, 0, &(0..n).map(|i| i as f32).collect::<Vec<_>>());
        for j in (0..n).step_by(bs) {
            let r = a.region(j..j + bs);
            let spec = TaskSpec::new("scale").device(device).inout(r).body(move |views| {
                for x in cast_slice_mut::<f32>(views[0]) {
                    *x *= 2.0;
                }
            });
            let spec = match device {
                Device::Smp => spec.cost_smp(SimDuration::from_micros(100)),
                Device::Cuda => spec.cost_gpu(KernelCost::memory_bound((bs * 8) as f64, 0.8)),
            };
            omp.submit(spec).await;
        }
        omp.taskwait().await;
        *out2.lock() = omp.read_array(&a, 0..n).unwrap();
    });
    let v = out.lock().clone();
    (v, report.tasks)
}

fn expect_scaled(n: usize) -> Vec<f32> {
    (0..n).map(|i| (i as f32) * 2.0).collect()
}

#[test]
fn smp_tasks_on_single_node() {
    let (v, tasks) = run_scale(RuntimeConfig::multi_gpu(1), Device::Smp, 1024, 128);
    assert_eq!(v, expect_scaled(1024));
    assert_eq!(tasks, 8);
}

#[test]
fn cuda_tasks_on_one_gpu() {
    let (v, tasks) = run_scale(RuntimeConfig::multi_gpu(1), Device::Cuda, 1024, 128);
    assert_eq!(v, expect_scaled(1024));
    assert_eq!(tasks, 8);
}

#[test]
fn cuda_tasks_on_four_gpus_all_policies() {
    for cache in [CachePolicy::NoCache, CachePolicy::WriteThrough, CachePolicy::WriteBack] {
        for sched in [Policy::BreadthFirst, Policy::Dependencies, Policy::Affinity] {
            let cfg = RuntimeConfig::multi_gpu(4).with_cache(cache).with_sched(sched);
            let (v, _) = run_scale(cfg, Device::Cuda, 2048, 128);
            assert_eq!(v, expect_scaled(2048), "cache={cache:?} sched={sched:?}");
        }
    }
}

#[test]
fn cluster_runs_cuda_tasks_remotely() {
    for nodes in [1u32, 2, 4] {
        let (v, tasks) = run_scale(RuntimeConfig::gpu_cluster(nodes), Device::Cuda, 2048, 128);
        assert_eq!(v, expect_scaled(2048), "nodes={nodes}");
        assert_eq!(tasks, 16);
    }
}

#[test]
fn cluster_smp_tasks_distribute() {
    let (v, _) = run_scale(RuntimeConfig::gpu_cluster(4), Device::Smp, 4096, 256);
    assert_eq!(v, expect_scaled(4096));
}

#[test]
fn cluster_routing_and_presend_options_preserve_results() {
    for routing in [SlaveRouting::ViaMaster, SlaveRouting::Direct] {
        for presend in [0u32, 2] {
            let cfg = RuntimeConfig::gpu_cluster(4).with_routing(routing).with_presend(presend);
            let (v, _) = run_scale(cfg, Device::Cuda, 2048, 128);
            assert_eq!(v, expect_scaled(2048), "routing={routing:?} presend={presend}");
        }
    }
}

#[test]
fn overlap_and_prefetch_preserve_results() {
    for overlap in [false, true] {
        for prefetch in [false, true] {
            let cfg = RuntimeConfig::multi_gpu(2).with_overlap(overlap).with_prefetch(prefetch);
            let (v, _) = run_scale(cfg, Device::Cuda, 2048, 128);
            assert_eq!(v, expect_scaled(2048), "overlap={overlap} prefetch={prefetch}");
        }
    }
}

#[test]
fn dependency_chain_executes_in_order_across_gpus() {
    // a -> b -> c pipeline per block, across 2 GPUs: copy then scale
    // then add 1; validates RAW chains through device caches.
    let n = 512usize;
    let bs = 128usize;
    let out = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
    let out2 = out.clone();
    Runtime::run(RuntimeConfig::multi_gpu(2), move |omp| async move {
        let a = omp.alloc_array::<f32>(n);
        let b = omp.alloc_array::<f32>(n);
        let c = omp.alloc_array::<f32>(n);
        omp.write_array(&a, 0, &(0..n).map(|i| i as f32).collect::<Vec<_>>());
        for j in (0..n).step_by(bs) {
            let (ra, rb) = (a.region(j..j + bs), b.region(j..j + bs));
            omp.submit(
                TaskSpec::new("copy")
                    .device(Device::Cuda)
                    .input(ra)
                    .output(rb)
                    .cost_gpu(KernelCost::memory_bound((bs * 8) as f64, 0.8))
                    .body(|views| {
                        let (src, dst) = views.split_first_mut().unwrap();
                        dst[0].copy_from_slice(src);
                    }),
            )
            .await;
        }
        for j in (0..n).step_by(bs) {
            let rb = b.region(j..j + bs);
            omp.submit(
                TaskSpec::new("scale")
                    .device(Device::Cuda)
                    .inout(rb)
                    .cost_gpu(KernelCost::memory_bound((bs * 8) as f64, 0.8))
                    .body(|views| {
                        for x in cast_slice_mut::<f32>(views[0]) {
                            *x *= 3.0;
                        }
                    }),
            )
            .await;
        }
        for j in (0..n).step_by(bs) {
            let (rb, rc) = (b.region(j..j + bs), c.region(j..j + bs));
            omp.submit(
                TaskSpec::new("add1")
                    .device(Device::Cuda)
                    .input(rb)
                    .output(rc)
                    .cost_gpu(KernelCost::memory_bound((bs * 8) as f64, 0.8))
                    .body(|views| {
                        let (src, rest) = views.split_first_mut().unwrap();
                        let s: &[f32] = ompss_mem::cast_slice(src);
                        let d = cast_slice_mut::<f32>(rest[0]);
                        for (x, y) in d.iter_mut().zip(s) {
                            *x = y + 1.0;
                        }
                    }),
            )
            .await;
        }
        omp.taskwait().await;
        *out2.lock() = omp.read_array(&c, 0..n).unwrap();
    });
    let got = out.lock().clone();
    let expect: Vec<f32> = (0..n).map(|i| i as f32 * 3.0 + 1.0).collect();
    assert_eq!(got, expect);
}

#[test]
fn taskwait_on_waits_for_specific_region_only() {
    let done_fast = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let df = done_fast.clone();
    Runtime::run(RuntimeConfig::multi_gpu(1), move |omp| async move {
        let a = omp.alloc_array::<f32>(128);
        let b = omp.alloc_array::<f32>(128);
        let (ra, rb) = (a.full(), b.full());
        // Slow writer to a, fast writer to b.
        omp.submit(
            TaskSpec::new("slow")
                .device(Device::Smp)
                .output(ra)
                .cost_smp(SimDuration::from_millis(10))
                .body(|v| cast_slice_mut::<f32>(v[0]).fill(1.0)),
        )
        .await;
        let df2 = df.clone();
        omp.submit(
            TaskSpec::new("fast")
                .device(Device::Smp)
                .output(rb)
                .cost_smp(SimDuration::from_micros(10))
                .body(move |v| {
                    cast_slice_mut::<f32>(v[0]).fill(2.0);
                    df2.store(true, std::sync::atomic::Ordering::SeqCst);
                }),
        )
        .await;
        let t0 = omp.now();
        omp.taskwait_on(rb).await;
        let waited = omp.now() - t0;
        assert!(
            waited < SimDuration::from_millis(5),
            "taskwait on(b) must not wait for the slow writer of a (waited {waited})"
        );
        assert_eq!(omp.read_array(&b, 0..1).unwrap(), vec![2.0]);
        omp.taskwait().await;
        assert_eq!(omp.read_array(&a, 0..1).unwrap(), vec![1.0]);
    });
    assert!(done_fast.load(std::sync::atomic::Ordering::SeqCst));
}

#[test]
fn taskwait_noflush_leaves_data_on_device() {
    let report = Runtime::run(RuntimeConfig::multi_gpu(1), |omp| async move {
        let a = omp.alloc_array::<f32>(256);
        let r = a.full();
        omp.submit(
            TaskSpec::new("w")
                .device(Device::Cuda)
                .output(r)
                .cost_gpu(KernelCost::fixed(SimDuration::from_micros(100)))
                .body(|v| cast_slice_mut::<f32>(v[0]).fill(7.0)),
        )
        .await;
        omp.taskwait_noflush().await;
        // No flush yet: home copy still zeroed.
        assert_eq!(omp.read_array(&a, 0..1).unwrap(), vec![0.0]);
        // A second GPU task reuses the device copy without transfers.
        omp.submit(
            TaskSpec::new("r")
                .device(Device::Cuda)
                .inout(r)
                .cost_gpu(KernelCost::fixed(SimDuration::from_micros(100)))
                .body(|v| {
                    for x in cast_slice_mut::<f32>(v[0]) {
                        *x += 1.0;
                    }
                }),
        )
        .await;
        omp.taskwait().await; // flushes
        assert_eq!(omp.read_array(&a, 0..1).unwrap(), vec![8.0]);
    });
    // Exactly one D2H transfer (the final flush); zero H2D.
    let (_, g) = &report.gpus[0];
    assert_eq!(g.h2d_bytes, 0, "output-only + cached reuse needs no H2D");
    assert_eq!(g.d2h_bytes, 256 * 4);
}

#[test]
fn writeback_beats_nocache_on_reuse_heavy_workload() {
    // Ten sequential inout tasks on the same block: write-back keeps
    // the data on the GPU; no-cache pays PCIe both ways every task.
    let mk = |cache| {
        let cfg = RuntimeConfig::multi_gpu(1).with_cache(cache);
        Runtime::run(cfg, |omp| async move {
            let a = omp.alloc_array::<f32>(1 << 20); // 4 MB
            let r = a.full();
            for _ in 0..10 {
                omp.submit(
                    TaskSpec::new("bump")
                        .device(Device::Cuda)
                        .inout(r)
                        .cost_gpu(KernelCost::fixed(SimDuration::from_micros(200))),
                )
                .await;
            }
            omp.taskwait().await;
        })
    };
    let wb = mk(CachePolicy::WriteBack);
    let nc = mk(CachePolicy::NoCache);
    assert!(
        wb.elapsed.as_secs_f64() * 2.0 < nc.elapsed.as_secs_f64(),
        "write-back {} should be far faster than no-cache {}",
        wb.elapsed,
        nc.elapsed
    );
    assert!(nc.coherence.bytes_moved > 5 * wb.coherence.bytes_moved);
}

#[test]
fn multi_gpu_scales_compute_bound_work() {
    let mk = |gpus| {
        let cfg = RuntimeConfig::multi_gpu(gpus);
        Runtime::run(cfg, |omp| async move {
            let a = omp.alloc_array::<f32>(64 * 64);
            for j in 0..64 {
                let r = a.region(j * 64..(j + 1) * 64);
                omp.submit(
                    TaskSpec::new("k")
                        .device(Device::Cuda)
                        .inout(r)
                        .cost_gpu(KernelCost::fixed(SimDuration::from_millis(1))),
                )
                .await;
            }
            omp.taskwait().await;
        })
    };
    let one = mk(1).elapsed.as_secs_f64();
    let four = mk(4).elapsed.as_secs_f64();
    assert!(four < one / 2.5, "4 GPUs ({four}s) must be well over 2.5x one GPU ({one}s)");
}

#[test]
fn determinism_identical_configs_identical_reports() {
    let mk = || {
        Runtime::run(RuntimeConfig::gpu_cluster(4), |omp| async move {
            let a = omp.alloc_array::<f32>(4096);
            for j in (0..4096).step_by(256) {
                let r = a.region(j..j + 256);
                omp.submit(
                    TaskSpec::new("k")
                        .device(Device::Cuda)
                        .inout(r)
                        .cost_gpu(KernelCost::fixed(SimDuration::from_micros(300))),
                )
                .await;
            }
            omp.taskwait().await;
        })
    };
    let (a, b) = (mk(), mk());
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.events, b.events);
    assert_eq!(a.net.bytes_total, b.net.bytes_total);
    assert_eq!(a.coherence.bytes_moved, b.coherence.bytes_moved);
}

#[test]
fn phantom_backing_times_without_moving_bytes() {
    let cfg = RuntimeConfig::multi_gpu(2).with_backing(ompss_runtime::Backing::Phantom);
    let report = Runtime::run(cfg, |omp| async move {
        let a = omp.alloc_array::<f32>(1 << 20);
        for j in (0..1 << 20).step_by(1 << 18) {
            let r = a.region(j..j + (1 << 18));
            omp.submit(
                TaskSpec::new("k")
                    .device(Device::Cuda)
                    .inout(r)
                    .cost_gpu(KernelCost::fixed(SimDuration::from_millis(1)))
                    .body(|_| panic!("bodies must not run under phantom backing")),
            )
            .await;
        }
        omp.taskwait().await;
    });
    assert_eq!(report.tasks, 4);
    assert!(report.elapsed >= SimDuration::from_millis(2));
    assert!(report.coherence.bytes_moved > 0, "transfer accounting still happens");
}

#[test]
#[should_panic(expected = "partial")]
fn partially_overlapping_clauses_are_rejected() {
    Runtime::run(RuntimeConfig::multi_gpu(1), |omp| async move {
        let a = omp.alloc_array::<f32>(256);
        omp.submit(TaskSpec::new("t1").device(Device::Smp).inout(a.region(0..128))).await;
        omp.submit(TaskSpec::new("t2").device(Device::Smp).inout(a.region(64..192))).await;
        omp.taskwait().await;
    });
}

#[test]
#[should_panic(expected = "no resources")]
fn cuda_task_without_gpus_is_rejected() {
    let mut cfg = RuntimeConfig::multi_gpu(1);
    cfg.gpus_per_node = 0;
    Runtime::run(cfg, |omp| async move {
        let a = omp.alloc_array::<f32>(16);
        omp.submit(TaskSpec::new("t").device(Device::Cuda).inout(a.full())).await;
    });
}

#[test]
fn tracing_records_tasks_and_transfers() {
    let cfg = RuntimeConfig::gpu_cluster(2).with_tracing(true);
    let report = Runtime::run(cfg, |omp| async move {
        let a = omp.alloc_array::<f32>(1024);
        for j in (0..1024).step_by(256) {
            omp.submit(
                TaskSpec::new("k")
                    .device(Device::Cuda)
                    .inout(a.region(j..j + 256))
                    .cost_gpu(KernelCost::fixed(SimDuration::from_micros(200))),
            )
            .await;
        }
        omp.taskwait().await;
    });
    let trace = report.trace.expect("tracing enabled");
    let tasks =
        trace.iter().filter(|e| matches!(e, ompss_runtime::TraceEvent::Task { .. })).count();
    let transfers =
        trace.iter().filter(|e| matches!(e, ompss_runtime::TraceEvent::Transfer { .. })).count();
    assert_eq!(tasks as u64, report.tasks);
    assert!(transfers > 0, "cluster run must record transfers");
    // Every interval is well-formed and within the makespan.
    for e in &trace {
        if let ompss_runtime::TraceEvent::Task { start, end, .. } = e {
            assert!(start <= end && *end <= report.makespan);
        }
    }
    // CSV and utilisation summaries render.
    let csv = ompss_runtime::trace::to_csv(&trace);
    assert!(csv.lines().count() == trace.len() + 1);
    let util = ompss_runtime::trace::utilisation(&trace, report.makespan);
    assert!(!util.is_empty());
    let total_tasks: usize = util.iter().map(|(_, n, _, _)| n).sum();
    assert_eq!(total_tasks as u64, report.tasks);
}

#[test]
fn tracing_off_by_default_costs_nothing() {
    let report = Runtime::run(RuntimeConfig::multi_gpu(1), |omp| async move {
        let a = omp.alloc_array::<f32>(64);
        omp.submit(TaskSpec::new("t").device(Device::Smp).inout(a.full())).await;
        omp.taskwait().await;
    });
    assert!(report.trace.is_none());
}

#[test]
fn priority_clause_reorders_ready_tasks() {
    // One SMP worker; three independent tasks submitted low-first. The
    // high-priority one must run before the earlier-submitted low one.
    let order = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
    let o = order.clone();
    let mut cfg = RuntimeConfig::multi_gpu(1);
    cfg.cpu_workers_per_node = 1;
    Runtime::run(cfg, move |omp| async move {
        let a = omp.alloc_array::<f32>(3);
        for (i, prio) in [(0usize, 0i32), (1, 10), (2, 5)] {
            let o2 = o.clone();
            omp.submit(
                TaskSpec::new("t")
                    .device(Device::Smp)
                    .inout(a.region(i..i + 1))
                    .priority(prio)
                    .cost_smp(SimDuration::from_micros(10))
                    .body(move |_| o2.lock().push(i)),
            )
            .await;
        }
        omp.taskwait().await;
    });
    // Task 0 may already be running when 1 and 2 arrive; among the
    // queued ones, priority decides: 1 (prio 10) before 2 (prio 5).
    let got = order.lock().clone();
    let p1 = got.iter().position(|&x| x == 1).unwrap();
    let p2 = got.iter().position(|&x| x == 2).unwrap();
    assert!(p1 < p2, "priority 10 must run before priority 5: {got:?}");
}

#[test]
fn for_each_block_worksharing_helper() {
    let sum = std::sync::Arc::new(parking_lot::Mutex::new(0.0f32));
    let s2 = sum.clone();
    Runtime::run(RuntimeConfig::multi_gpu(2), move |omp| async move {
        let a = omp.alloc_array::<f32>(1000);
        omp.for_each_block(0..1000, 256, |chunk| {
            TaskSpec::new("fill").device(Device::Cuda).output(a.region(chunk.clone())).body(
                move |v| {
                    ompss_runtime::task_views!(v => xs: f32);
                    for (o, x) in xs.iter_mut().enumerate() {
                        *x = (chunk.start + o) as f32;
                    }
                },
            )
        })
        .await;
        omp.taskwait().await;
        *s2.lock() = omp.read_array(&a, 0..1000).unwrap().iter().sum();
    });
    let expect: f32 = (0..1000).map(|i| i as f32).sum();
    assert_eq!(*sum.lock(), expect);
}

#[test]
fn env_overrides_parse() {
    // Serialise env mutation within this test only.
    std::env::set_var("OMPSS_SCHEDULE", "bf");
    std::env::set_var("OMPSS_CACHE_POLICY", "nocache");
    std::env::set_var("OMPSS_ROUTING", "mtos");
    std::env::set_var("OMPSS_PRESEND", "7");
    std::env::set_var("OMPSS_OVERLAP", "0");
    std::env::set_var("OMPSS_TRACE", "1");
    std::env::set_var("OMPSS_VERIFY", "1");
    std::env::set_var("OMPSS_SCHED_SEED", "17");
    let cfg = RuntimeConfig::gpu_cluster(2).overridden_from_env();
    assert_eq!(cfg.sched_policy, Policy::BreadthFirst);
    assert_eq!(cfg.cache_policy, CachePolicy::NoCache);
    assert_eq!(cfg.routing, SlaveRouting::ViaMaster);
    assert_eq!(cfg.presend, 7);
    assert!(!cfg.overlap);
    assert!(cfg.tracing);
    assert!(cfg.verify);
    assert_eq!(cfg.sched_seed, 17);
    for k in [
        "OMPSS_SCHEDULE",
        "OMPSS_CACHE_POLICY",
        "OMPSS_ROUTING",
        "OMPSS_PRESEND",
        "OMPSS_OVERLAP",
        "OMPSS_TRACE",
        "OMPSS_VERIFY",
        "OMPSS_SCHED_SEED",
    ] {
        std::env::remove_var(k);
    }
}

/// The headline scale claim of the async redesign: a 1000-node GPU
/// cluster — a thousand dispatchers, heartbeats, worker pools and GPU
/// managers, each a stackless future — boots, runs a task per node and
/// shuts down entirely in memory. Ignored by default because debug
/// builds pay ~100s of host time for it; `./ci.sh` runs it in release
/// (a few seconds) via the scale stage.
#[test]
#[ignore = "release-scale demonstration; run via ./ci.sh or --release -- --ignored"]
fn thousand_node_cluster_completes_in_memory() {
    let nodes = 1000usize;
    let cfg = RuntimeConfig::gpu_cluster(nodes as u32).with_backing(ompss_mem::Backing::Phantom);
    let rep = Runtime::run(cfg, move |omp| async move {
        let a = omp.alloc_array::<f32>(nodes * 1024);
        for n in 0..nodes {
            let r = a.region(n * 1024..(n + 1) * 1024);
            omp.submit(
                TaskSpec::new("touch")
                    .device(Device::Cuda)
                    .inout(r)
                    .cost_gpu(KernelCost::fixed(SimDuration::from_micros(100))),
            )
            .await;
        }
        omp.taskwait().await;
    });
    assert_eq!(rep.tasks, 1000);
    assert!(rep.events > 0);
}
