//! Observability contract tests: the RunReport is complete,
//! deterministic to the byte, and its counters are physically
//! consistent; Paraver export round-trips a real run; the TaskHandle
//! API waits on exactly the named task.

use proptest::prelude::*;

use ompss_json::ToJson;
use ompss_mem::cast_slice_mut;
use ompss_runtime::{
    Backing, Device, ParaverTrace, RunReport, Runtime, RuntimeConfig, SimDuration, TaskSpec,
};

/// A small mixed SMP/CUDA workload exercising transfers on every
/// medium of the given machine.
fn workload(cfg: RuntimeConfig) -> RunReport {
    Runtime::run(cfg, |omp| async move {
        let a = omp.alloc_array::<f32>(4096);
        omp.write_array(&a, 0, &vec![1.0f32; 4096]);
        for step in 0..3 {
            for chunk in 0..8 {
                let r = a.region(chunk * 512..(chunk + 1) * 512);
                let dev = if (step + chunk) % 2 == 0 { Device::Cuda } else { Device::Smp };
                omp.submit(
                    TaskSpec::new("scale")
                        .device(dev)
                        .inout(r)
                        .cost_smp(SimDuration::from_micros(40))
                        .body(|v| {
                            for x in cast_slice_mut::<f32>(v[0]) {
                                *x *= 2.0;
                            }
                        }),
                )
                .await;
            }
            omp.taskwait().await;
        }
    })
}

#[test]
fn run_reports_are_byte_identical_multigpu() {
    let r1 = workload(RuntimeConfig::multi_gpu(2));
    let r2 = workload(RuntimeConfig::multi_gpu(2));
    assert_eq!(r1.to_json().to_pretty_string(), r2.to_json().to_pretty_string());
}

#[test]
fn run_reports_are_byte_identical_cluster() {
    let r1 = workload(RuntimeConfig::gpu_cluster(2));
    let r2 = workload(RuntimeConfig::gpu_cluster(2));
    assert_eq!(r1.to_json().to_pretty_string(), r2.to_json().to_pretty_string());
}

#[test]
fn report_counters_are_populated() {
    let r = workload(RuntimeConfig::gpu_cluster(2));
    assert_eq!(r.tasks, 24);
    // Tasks ran on both nodes' resources and busy time was recorded.
    assert!(!r.counters.resources.is_empty());
    let total_tasks: u64 = r.counters.resources.iter().map(|(_, b)| b.tasks).sum();
    assert_eq!(total_tasks, 24);
    // Data crossed both media: PCIe to reach GPUs, the fabric to reach
    // the slave node.
    let c = &r.counters;
    assert!(c.pcie_pinned_bytes + c.pcie_pageable_bytes > 0, "no PCIe traffic counted");
    assert!(c.net_mts_bytes + c.net_sts_bytes + c.net_presend_bytes > 0, "no fabric traffic");
    // The AM-kind counters saw the task-offload protocol: Exec out to
    // the slave, Done back, data messages for the region payloads.
    assert!(c.am_exec > 0, "no Exec AMs counted");
    assert!(c.am_done > 0, "no Done AMs counted");
    assert!(c.am_data > 0, "no data AMs counted");
    // Utilisation is derived per resource and bounded.
    for (_, _, _, _, u) in r.utilisation() {
        assert!((0.0..=1.0).contains(&u), "utilisation {u} out of range");
    }
}

#[test]
fn report_json_exposes_every_section() {
    let r = workload(RuntimeConfig::multi_gpu(2));
    let s = r.to_json().to_pretty_string();
    for key in
        ["makespan_ns", "tasks", "net", "coherence", "sched", "gpus", "counters", "utilisation"]
    {
        assert!(s.contains(&format!("\"{key}\"")), "missing {key} in report JSON");
    }
}

#[test]
fn paraver_export_round_trips_real_runs() {
    for cfg in [RuntimeConfig::multi_gpu(2), RuntimeConfig::gpu_cluster(2)] {
        let r = Runtime::run(cfg.with_tracing(true), |omp| async move {
            let a = omp.alloc_array::<f32>(1024);
            for chunk in 0..4 {
                let reg = a.region(chunk * 256..(chunk + 1) * 256);
                omp.submit(
                    TaskSpec::new("k")
                        .device(Device::Cuda)
                        .inout(reg)
                        .cost_smp(SimDuration::from_micros(10)),
                )
                .await;
            }
            omp.taskwait().await;
        });
        let events = r.trace.as_deref().expect("tracing enabled");
        assert!(!events.is_empty());
        let p = ParaverTrace::from_events(events, r.makespan);
        assert!(p.prv.starts_with("#Paraver"));
        assert!(p.prv.contains(&format!(":{}_ns:", r.makespan.as_nanos())));
        // Every record line is state (1) or event (2) with 8 resp. 8 fields.
        for line in p.prv.lines().skip(1) {
            let fields: Vec<&str> = line.split(':').collect();
            assert!(matches!(fields[0], "1" | "2"), "unknown record {line}");
            assert_eq!(fields.len(), 8, "malformed record {line}");
        }
        let mut rows = p.row.lines();
        let header = rows.next().unwrap();
        let n: usize = header.rsplit(' ').next().unwrap().parse().unwrap();
        assert_eq!(rows.count(), n, "row count disagrees with header");
    }
}

#[test]
fn task_handles_wait_on_the_named_task() {
    let report = Runtime::run(RuntimeConfig::multi_gpu(1), |omp| async move {
        let a = omp.alloc_array::<f32>(256);
        omp.write_array(&a, 0, &vec![1.0f32; 256]);
        let slow = omp
            .submit(
                TaskSpec::new("slow")
                    .device(Device::Smp)
                    .inout(a.region(0..128))
                    .cost_smp(SimDuration::from_millis(5))
                    .body(|v| cast_slice_mut::<f32>(v[0]).fill(3.0)),
            )
            .await;
        let fast = omp
            .submit(
                TaskSpec::new("fast")
                    .device(Device::Smp)
                    .inout(a.region(128..256))
                    .cost_smp(SimDuration::from_micros(1))
                    .body(|v| cast_slice_mut::<f32>(v[0]).fill(7.0)),
            )
            .await;
        assert_ne!(slow.id(), fast.id());
        omp.taskwait_on_handle(&slow).await;
        omp.taskwait_on_handle(&fast).await;
        // Both bodies have run; the final taskwait flushes the data.
        omp.taskwait().await;
        assert_eq!(omp.read_array(&a, 0..1).unwrap(), vec![3.0]);
        assert_eq!(omp.read_array(&a, 128..129).unwrap(), vec![7.0]);
    });
    assert_eq!(report.tasks, 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Physical consistency: a resource is a serial executor, so its
    /// recorded busy time can never exceed the run's makespan.
    #[test]
    fn busy_time_never_exceeds_makespan(
        ntasks in 1usize..20,
        cost_us in 1u64..200,
        machine in 0u8..3,
    ) {
        let cfg = match machine {
            0 => RuntimeConfig::multi_gpu(1),
            1 => RuntimeConfig::multi_gpu(3),
            _ => RuntimeConfig::gpu_cluster(2),
        }
        .with_backing(Backing::Phantom);
        let r = Runtime::run(cfg, move |omp| async move {
            let a = omp.alloc_array::<f32>(64 * ntasks);
            for i in 0..ntasks {
                let reg = a.region(i * 64..(i + 1) * 64);
                let dev = if i % 2 == 0 { Device::Cuda } else { Device::Smp };
                omp.submit(
                    TaskSpec::new("t")
                        .device(dev)
                        .inout(reg)
                        .cost_smp(SimDuration::from_micros(cost_us)),
                ).await;
            }
            omp.taskwait().await;
        });
        let makespan = r.makespan.as_nanos();
        for ((node, name), b) in &r.counters.resources {
            prop_assert!(
                b.busy_ns <= makespan,
                "resource node{}.{} busy {}ns > makespan {makespan}ns",
                node, name, b.busy_ns,
            );
        }
    }
}
