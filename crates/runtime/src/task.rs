//! Runtime task records and the task-builder API — the calls Mercurium
//! would emit for `#pragma omp target` + `#pragma omp task`.

use std::sync::Arc;

use ompss_core::{Device, TaskDesc, TaskId};
use ompss_cudasim::KernelCost;
use ompss_mem::{Access, Region};
use ompss_sim::SimDuration;

/// The modelled execution cost of a task body.
#[derive(Debug, Clone, Copy)]
pub enum TaskCost {
    /// A GPU kernel with a roofline cost (charged on the device's
    /// engines by the GPU manager).
    Gpu(KernelCost),
    /// A host computation of fixed virtual duration.
    Smp(SimDuration),
    /// Derive a memory-bound cost from the task's copy footprint (the
    /// default): streaming kernels touch each named byte about once, so
    /// `footprint / (memory bandwidth × 0.8)` on the executing device.
    /// Compute-bound kernels should set an explicit cost.
    Auto,
    /// Free (pure bookkeeping tasks).
    Zero,
}

/// The functional body of a task: receives one mutable byte view per
/// *copy access*, in clause order. Under phantom backing the body is
/// skipped entirely (timing comes from [`TaskCost`] alone).
pub type TaskBody = Arc<dyn Fn(&mut [&mut [u8]]) + Send + Sync>;

/// Full runtime record of one task instance.
pub struct TaskRecord {
    /// The model-level descriptor (device, clauses).
    pub desc: TaskDesc,
    /// Modelled cost.
    pub cost: TaskCost,
    /// Functional body (None = metadata-only task).
    pub body: Option<TaskBody>,
    /// Completion signal (`taskwait on` waits here).
    pub done: ompss_sim::Signal,
}

impl TaskRecord {
    /// The copy-clause accesses in the deterministic order bodies see.
    pub fn copy_accesses(&self) -> Vec<Access> {
        self.desc.copies()
    }
}

/// Fluent construction of a task — the runtime-facing face of the
/// `task`/`target` pragmas:
///
/// ```text
/// #pragma omp target device(cuda) copy_deps        .device(Device::Cuda)
/// #pragma omp task input([BS]a) output([BS]c)      .input(a).output(c)
/// ```
pub struct TaskSpec {
    pub(crate) label: String,
    pub(crate) device: Device,
    pub(crate) deps: Vec<Access>,
    pub(crate) copy_deps: bool,
    pub(crate) extra_copies: Vec<Access>,
    pub(crate) cost: TaskCost,
    pub(crate) priority: i32,
    pub(crate) body: Option<TaskBody>,
}

impl TaskSpec {
    /// Start building a task with a label (kernel name).
    pub fn new(label: impl Into<String>) -> Self {
        TaskSpec {
            label: label.into(),
            device: Device::Smp,
            deps: Vec::new(),
            copy_deps: true,
            extra_copies: Vec::new(),
            cost: TaskCost::Auto,
            priority: 0,
            body: None,
        }
    }

    /// `device(...)` clause of the target construct.
    pub fn device(mut self, d: Device) -> Self {
        self.device = d;
        self
    }

    /// `input(region)` dependence clause. Accepts anything convertible
    /// to a [`Region`] — e.g. an `ArrayHandle` for the whole array.
    pub fn input(mut self, r: impl Into<Region>) -> Self {
        self.deps.push(Access::input(r.into()));
        self
    }

    /// `output(region)` dependence clause.
    pub fn output(mut self, r: impl Into<Region>) -> Self {
        self.deps.push(Access::output(r.into()));
        self
    }

    /// `inout(region)` dependence clause.
    pub fn inout(mut self, r: impl Into<Region>) -> Self {
        self.deps.push(Access::inout(r.into()));
        self
    }

    /// `copy_deps` / `no_copy_deps` choice on the target construct:
    /// whether dependence clauses also imply copies (the OmpSs default
    /// is yes; pass `false` to manage copies with explicit clauses).
    pub fn copy_deps(mut self, enabled: bool) -> Self {
        self.copy_deps = enabled;
        self
    }

    /// Explicit `copy_in` clause.
    pub fn copy_in(mut self, r: impl Into<Region>) -> Self {
        self.extra_copies.push(Access::input(r.into()));
        self
    }

    /// Explicit `copy_out` clause.
    pub fn copy_out(mut self, r: impl Into<Region>) -> Self {
        self.extra_copies.push(Access::output(r.into()));
        self
    }

    /// Explicit `copy_inout` clause.
    pub fn copy_inout(mut self, r: impl Into<Region>) -> Self {
        self.extra_copies.push(Access::inout(r.into()));
        self
    }

    /// Attach a GPU kernel cost.
    pub fn cost_gpu(mut self, c: KernelCost) -> Self {
        self.cost = TaskCost::Gpu(c);
        self
    }

    /// Attach a fixed SMP cost.
    pub fn cost_smp(mut self, d: SimDuration) -> Self {
        self.cost = TaskCost::Smp(d);
        self
    }

    /// Mark the task as free of modelled cost (pure bookkeeping).
    pub fn cost_zero(mut self) -> Self {
        self.cost = TaskCost::Zero;
        self
    }

    /// `priority(...)` clause: higher-priority ready tasks are picked
    /// first by every scheduler queue.
    pub fn priority(mut self, p: i32) -> Self {
        self.priority = p;
        self
    }

    /// Attach the functional body. It receives one `&mut [u8]` view per
    /// copy access, in clause order (dependence clauses first when
    /// `copy_deps`, then explicit copy clauses).
    pub fn body(mut self, f: impl Fn(&mut [&mut [u8]]) + Send + Sync + 'static) -> Self {
        self.body = Some(Arc::new(f));
        self
    }

    /// Finalise into a record with the given id.
    pub(crate) fn into_record(self, id: TaskId) -> TaskRecord {
        TaskRecord {
            desc: TaskDesc {
                id,
                label: self.label,
                device: self.device,
                deps: self.deps,
                copy_deps: self.copy_deps,
                extra_copies: self.extra_copies,
                priority: self.priority,
            },
            cost: self.cost,
            body: self.body,
            done: ompss_sim::Signal::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompss_mem::DataId;

    #[test]
    fn builder_produces_descriptor() {
        let a = Region::new(DataId(0), 0, 64);
        let c = Region::new(DataId(1), 0, 64);
        let spec = TaskSpec::new("copy")
            .device(Device::Cuda)
            .input(a)
            .output(c)
            .cost_gpu(KernelCost::memory_bound(128.0, 0.8));
        let rec = spec.into_record(TaskId(7));
        assert_eq!(rec.desc.id, TaskId(7));
        assert_eq!(rec.desc.device, Device::Cuda);
        assert_eq!(rec.desc.deps.len(), 2);
        assert!(rec.desc.copy_deps);
        assert_eq!(rec.copy_accesses().len(), 2);
        assert!(matches!(rec.cost, TaskCost::Gpu(_)));
    }

    #[test]
    fn no_copy_deps_with_explicit_copies() {
        let a = Region::new(DataId(0), 0, 64);
        let rec = TaskSpec::new("t").inout(a).copy_deps(false).copy_in(a).into_record(TaskId(1));
        assert_eq!(rec.copy_accesses().len(), 1);
        assert_eq!(rec.desc.deps.len(), 1);
    }
}
