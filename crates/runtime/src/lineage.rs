//! Lineage-based reconstruction of data lost with a dead node.
//!
//! When a slave node dies, regions whose latest version had copies only
//! in that node's spaces are gone from the machine. The coherence purge
//! reports each such region with the best version still held by a
//! survivor; this module rebuilds the missing versions at the master's
//! home allocation by *re-executing the retained producer subgraph*:
//! the task graph's per-region writer history (recorded only when
//! node-loss chaos is armed, see `TaskGraph::enable_lineage`) names the
//! producer of every version, and replaying the master-side-*completed*
//! writers in version order on the home bytes reproduces the lost data
//! bit-identically — task bodies are deterministic functions of their
//! declared accesses.
//!
//! Replay happens at **zero virtual time** with raw memory operations:
//! it models the master recomputing from its own retained knowledge,
//! not cluster traffic. Consequently it must not draw faults, touch the
//! verify sink, or yield to the simulator.
//!
//! Writers past the completed prefix (they were running or queued on
//! the dead node) are *not* replayed: the master has already re-homed
//! them, so the directory version is rolled back to the rebuilt point
//! and ordinary re-execution re-commits the remaining versions on top —
//! replaying them here would apply their bodies twice.
//!
//! Everything that cannot be rebuilt soundly fails **closed** with
//! [`RunError::Exhausted`]: evicted history, a missing body, an input
//! whose home bytes have advanced past what the writer originally read,
//! cyclic lineage, or a reconstruction deeper than
//! [`lineage_depth_budget`](crate::RuntimeConfig::lineage_depth_budget).
//! Wrong bytes are never an outcome.

use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

use ompss_coherence::LostRegion;
use ompss_core::{TaskId, TaskState};
use ompss_mem::Region;
use ompss_sim::{now, RunError};

use crate::engine::{MasterState, RtShared};
use crate::stats::Counters;
use crate::trace::TraceEvent;

/// Rebuild every region in `lost` at the root home. Called under the
/// master lock with no simulator yields; on error the caller aborts the
/// run (fail closed).
pub(crate) fn reconstruct(
    shared: &Arc<RtShared>,
    m: &MasterState,
    lost: &[LostRegion],
) -> Result<(), RunError> {
    let mut r = Reconstructor {
        shared,
        m,
        lost: lost.iter().map(|l| (l.region, *l)).collect(),
        repaired: HashSet::new(),
        visiting: Vec::new(),
    };
    for l in lost {
        r.reconstruct_region(&l.region, 0)?;
    }
    Ok(())
}

struct Reconstructor<'a> {
    shared: &'a Arc<RtShared>,
    m: &'a MasterState,
    /// The purge report, keyed by region.
    lost: BTreeMap<Region, LostRegion>,
    /// Regions already rebuilt this pass.
    repaired: HashSet<Region>,
    /// Recursion stack for cycle detection.
    visiting: Vec<Region>,
}

impl Reconstructor<'_> {
    fn reconstruct_region(&mut self, region: &Region, depth: u32) -> Result<(), RunError> {
        if self.repaired.contains(region) {
            return Ok(());
        }
        if self.visiting.contains(region) {
            return Err(RunError::Exhausted {
                what: format!("acyclic lineage for {region}"),
                attempts: depth,
            });
        }
        if depth > self.shared.cfg.lineage_depth_budget {
            return Err(RunError::Exhausted {
                what: format!("lineage depth budget rebuilding {region}"),
                attempts: depth,
            });
        }
        let Some(lr) = self.lost.get(region).copied() else {
            // Not lost: nothing to rebuild (inputs are checked by
            // `ensure_input` against the live home state).
            return Ok(());
        };
        self.visiting.push(*region);
        let Some((mut version, _)) = self.shared.coh.pull_best_to_root(region) else {
            // No valid copy anywhere: the root home was mid-transfer
            // when its source died, so even its bytes are of unknown
            // version — replay could compound the damage.
            return Err(RunError::Exhausted {
                what: format!("surviving copies of {region}"),
                attempts: 0,
            });
        };
        if version < lr.latest {
            let m = self.m;
            let Some((writers, dropped)) = m.graph.writer_history(region) else {
                return Err(RunError::Exhausted {
                    what: format!("lineage history for {region} (lineage disabled)"),
                    attempts: 0,
                });
            };
            let writers: Vec<TaskId> = writers.to_vec();
            for v in (version + 1)..=lr.latest {
                if v <= dropped {
                    return Err(RunError::Exhausted {
                        what: format!("retained lineage for {region} version {v} (evicted)"),
                        attempts: dropped as u32,
                    });
                }
                let Some(&w) = writers.get((v - 1 - dropped) as usize) else { break };
                if m.graph.state(w) != TaskState::Completed {
                    // The remaining writers were stranded on the dead
                    // node and have been re-homed: rolling the version
                    // back to `v - 1` lets their re-execution re-commit
                    // from here instead of applying their bodies twice.
                    break;
                }
                self.replay(w, region, depth)?;
                version = v;
            }
        }
        self.shared.coh.repair_root(region, version);
        Counters::add(&self.shared.counters.bytes_reconstructed, region.len);
        self.visiting.pop();
        self.repaired.insert(*region);
        Ok(())
    }

    /// Re-run one completed writer of `target` on the home bytes. Side
    /// outputs (regions other than `target`) are diverted to scratch
    /// allocations so the replay cannot clobber newer home data — those
    /// regions are either live (already current) or rebuilt by their
    /// own writer chains.
    fn replay(&mut self, w: TaskId, target: &Region, depth: u32) -> Result<(), RunError> {
        let Some(rec) = self.m.records.get(&w).cloned() else {
            return Err(RunError::Exhausted {
                what: format!("task record for lineage writer t{}", w.0),
                attempts: 0,
            });
        };
        let Some(body) = rec.body.clone() else {
            return Err(RunError::Exhausted {
                what: format!("replayable body for lineage writer '{}' (t{})", rec.desc.label, w.0),
                attempts: 0,
            });
        };
        let accesses = rec.copy_accesses();
        let root = self.shared.hosts[0];
        let mut requests = Vec::with_capacity(accesses.len());
        let mut scratch = Vec::new();
        for a in &accesses {
            let info = self.shared.mem.data_info(a.region.data);
            if a.region == *target {
                requests.push((info.home_space, info.home_alloc, a.region.offset, a.region.len));
                continue;
            }
            if a.kind.reads() {
                self.ensure_input(&a.region, w, depth)?;
            }
            if a.kind.writes() {
                let Ok(sa) = self.shared.mem.alloc(root, a.region.len) else {
                    for &s in &scratch {
                        self.shared.mem.free(root, s);
                    }
                    return Err(RunError::Exhausted {
                        what: format!("scratch memory replaying lineage writer t{}", w.0),
                        attempts: 0,
                    });
                };
                // Seed with the home bytes so an inout side access reads
                // what the writer originally read (verified just above).
                self.shared.mem.copy(
                    (info.home_space, info.home_alloc),
                    a.region.offset,
                    (root, sa),
                    0,
                    a.region.len,
                );
                requests.push((root, sa, 0, a.region.len));
                scratch.push(sa);
            } else {
                requests.push((info.home_space, info.home_alloc, a.region.offset, a.region.len));
            }
        }
        self.shared.mem.with_bytes_many(&requests, |views| body(views));
        for sa in scratch {
            self.shared.mem.free(root, sa);
        }
        Counters::add(&self.shared.counters.tasks_relineaged, 1);
        if let Some(tr) = &self.shared.tracer {
            tr.record(TraceEvent::Recovery { kind: "relineage", task: Some(w.0), at: now() });
        }
        Ok(())
    }

    /// A region the replayed writer `w` reads must hold, at the root
    /// home, exactly the version `w` originally read — rebuild it first
    /// if it was lost, then verify by counting `w`'s predecessors in
    /// its writer history. A home that advanced past that (a later
    /// writer of the input already committed) cannot be rewound, so the
    /// reconstruction fails closed rather than replaying on newer data.
    fn ensure_input(&mut self, input: &Region, w: TaskId, depth: u32) -> Result<(), RunError> {
        if self.lost.contains_key(input) && !self.repaired.contains(input) {
            self.reconstruct_region(input, depth + 1)?;
        }
        let read = match self.m.graph.writer_history(input) {
            None => 0,
            Some((ws, dropped)) => dropped + ws.iter().filter(|t| t.0 < w.0).count() as u64,
        };
        if !self.shared.coh.has_region(input) {
            // Never acquired by any task: the home bytes are the
            // original data, i.e. version 0.
            if read == 0 {
                return Ok(());
            }
            return Err(RunError::Exhausted {
                what: format!("directory entry for lineage input {input}"),
                attempts: 0,
            });
        }
        // Materialise the freshest surviving bytes at the home (under
        // write-back caching the latest may be dirty on a live device).
        let Some((current, _)) = self.shared.coh.pull_best_to_root(input) else {
            return Err(RunError::Exhausted {
                what: format!("surviving copies of lineage input {input}"),
                attempts: 0,
            });
        };
        if current != read {
            return Err(RunError::Exhausted {
                what: format!(
                    "rewindable input {input}: home is at version {current}, writer t{} read {read}",
                    w.0
                ),
                attempts: 0,
            });
        }
        Ok(())
    }
}
