//! Runtime configuration — the knobs the paper's evaluation sweeps.
//!
//! Every configuration axis of §IV is here: cache policy, scheduling
//! policy, slave-to-slave routing, presend depth, transfer/compute
//! overlap, prefetch, plus the platform shape (nodes, GPUs, specs).
//! Presets reproduce the paper's two testbeds.

use std::sync::Arc;

use ompss_cudasim::GpuSpec;
use ompss_mem::Backing;
use ompss_net::FabricConfig;
use ompss_sched::Policy;
use ompss_sim::{FaultPlan, SimDuration};

pub use ompss_coherence::{CachePolicy, SlaveRouting};

/// Full configuration of a runtime instance.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Cluster nodes (1 = the multi-GPU single-node environment).
    pub nodes: u32,
    /// GPUs per node.
    pub gpus_per_node: u32,
    /// SMP worker threads per node (cores left after manager threads).
    pub cpu_workers_per_node: u32,
    /// GPU model.
    pub gpu_spec: GpuSpec,
    /// Override the GPU memory the cache may use (bytes). Defaults to
    /// the spec's capacity minus a small reserve. Fig. 8's memory-
    /// pressure study uses this.
    pub gpu_mem_override: Option<u64>,
    /// Host memory per node (bytes).
    pub host_mem: u64,
    /// Interconnect model.
    pub fabric: FabricConfig,
    /// Cache write policy (`nocache` / `wt` / `wb`).
    pub cache_policy: CachePolicy,
    /// Task scheduling policy (`bf` / `default` / `affinity`).
    pub sched_policy: Policy,
    /// Inter-slave transfer routing (`MtoS` / `StoS`).
    pub routing: SlaveRouting,
    /// Tasks present to a remote node beyond its resource count, so
    /// their input transfers overlap remote compute.
    pub presend: u32,
    /// Overlap PCIe transfers with GPU compute via pinned staging
    /// buffers (off by default, as in the paper).
    pub overlap: bool,
    /// Prefetch the next scheduled task's data right after a kernel
    /// launch.
    pub prefetch: bool,
    /// Real byte backing (validated runs) or phantom (paper-scale).
    pub backing: Backing,
    /// Pinned host buffer pool per node (bytes); used when `overlap`.
    pub pinned_pool: u64,
    /// Cost charged per SMP task in addition to its own cost — models
    /// task bookkeeping overhead.
    pub task_overhead: SimDuration,
    /// Coarse-eviction slack: fraction of device capacity freed beyond
    /// the immediate need on memory pressure (0 = precise LRU). Models
    /// the aggressive replacement of the paper-era GPU cache.
    pub eviction_slack: f64,
    /// Record a Paraver-style execution trace (task intervals per
    /// resource, transfers per medium) into the run report.
    pub tracing: bool,
    /// Verification mode (`OMPSS_VERIFY`): record the regions task
    /// bodies actually touch, diff them against the declared clauses,
    /// run graph race lints over the observations, and sweep the
    /// coherence directory invariants after every operation. The
    /// findings land in [`crate::RunReport::verify`]. Zero-cost when
    /// off: the task hot path checks one `Option`.
    pub verify: bool,
    /// Scheduler tie-break perturbation seed (`OMPSS_SCHED_SEED`): `0`
    /// (default) keeps the deterministic FIFO tie-break; any other
    /// value permutes equal-priority scheduling decisions pseudo-
    /// randomly but reproducibly. The verify binary's schedule
    /// exploration reruns apps under several seeds and diffs results.
    pub sched_seed: u64,
    /// Chaos injection rate (`OMPSS_FAULT_RATE`): probability that any
    /// one fault draw fires. `0.0` (default) disables injection and the
    /// whole recovery machinery — runs are bit- and time-identical to a
    /// build without it.
    pub fault_rate: f64,
    /// Seed of the deterministic fault stream (`OMPSS_FAULT_SEED`).
    /// Same seed + same rate = the same faults at the same draws.
    pub fault_seed: u64,
    /// Times a failed task is re-executed before the run aborts with
    /// [`ompss_sim::RunError::Exhausted`].
    pub task_retry_budget: u32,
    /// Times an unacknowledged cluster message is retransmitted before
    /// the run aborts with [`ompss_sim::RunError::Exhausted`].
    pub am_retry_budget: u32,
    /// A pre-armed fault plan. Overrides `fault_seed`/`fault_rate`:
    /// harnesses use [`FaultPlan::with_forced`] to pin one specific
    /// fault class deterministically instead of sweeping a rate.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Planned whole-node kill (`OMPSS_FAULT_NODE_LOSS`): slave node
    /// index and the virtual instant it dies. Arms the heartbeat/lease
    /// protocol and lineage retention; `None` (default) spawns none of
    /// that machinery.
    pub node_loss: Option<(u32, SimDuration)>,
    /// Interval between the master's liveness probes to each slave
    /// (`OMPSS_HEARTBEAT_PERIOD_US`). Only meaningful when node-loss
    /// chaos is armed.
    pub heartbeat_period: SimDuration,
    /// Silence beyond this window declares a slave dead
    /// (`OMPSS_LEASE_WINDOW_US`). Must comfortably exceed the period
    /// plus a network round trip.
    pub lease_window: SimDuration,
    /// Most completed producer tasks lineage reconstruction may re-run
    /// per lost region before the run aborts with
    /// [`ompss_sim::RunError::Exhausted`] (`OMPSS_LINEAGE_DEPTH`).
    pub lineage_depth_budget: u32,
    /// Planned mid-run node join (`OMPSS_NODE_JOIN`): slave node index
    /// and the virtual instant it comes up. The node starts absent —
    /// NIC offline, scheduler proxy out of service, no heartbeat lease
    /// — and at the instant the Fabric brings its NIC online, the
    /// scheduler adopts its proxy and the lease tracker starts its
    /// lease. Under sharded control the join opens a new membership
    /// epoch and rebalances moved slices onto the joiner. `None`
    /// (default) spawns none of the machinery.
    pub node_join: Option<(u32, SimDuration)>,
    /// Planned graceful drain (`OMPSS_NODE_DRAIN`): slave node index
    /// and the virtual instant it starts leaving. The node stops
    /// accepting tasks, finishes what it has, flushes and migrates its
    /// home/cached regions off (no fault semantics, no lineage), then
    /// departs. A drain interrupted by a kill falls back to crash
    /// recovery or fails closed. `None` (default) spawns none of the
    /// machinery.
    pub node_drain: Option<(u32, SimDuration)>,
    /// Control-plane shards (`OMPSS_SHARDS`): `0` (default) keeps the
    /// paper's flat single-master plane — directory, homes and task
    /// generation all on node 0, bit-identical to a build without
    /// sharding. `n > 0` partitions the `DataId` space across `n`
    /// shards via [`ompss_coherence::ShardMap`]: array homes spread
    /// over shard-owner nodes, transfer sources resolve peer-to-peer,
    /// and `for_each_block` expands shard-locally through per-owner
    /// sub-masters.
    pub shards: u32,
}

impl RuntimeConfig {
    /// The paper's multi-GPU node: 2× Xeon E5440 (8 cores) with 4×
    /// Tesla S2050. One core per GPU is a manager thread; the caller
    /// picks how many GPUs to enable.
    pub fn multi_gpu(gpus: u32) -> Self {
        RuntimeConfig {
            nodes: 1,
            gpus_per_node: gpus,
            cpu_workers_per_node: 8u32.saturating_sub(gpus).max(1),
            gpu_spec: GpuSpec::tesla_s2050(),
            gpu_mem_override: None,
            host_mem: 16 << 30,
            // Single node: fabric unused but must exist.
            fabric: FabricConfig::qdr_infiniband(1),
            cache_policy: CachePolicy::WriteBack,
            sched_policy: Policy::Dependencies,
            routing: SlaveRouting::Direct,
            presend: 0,
            overlap: false,
            prefetch: false,
            backing: Backing::Real,
            pinned_pool: 2 << 30,
            task_overhead: SimDuration::from_micros(5),
            eviction_slack: 0.0,
            tracing: false,
            verify: false,
            sched_seed: 0,
            fault_rate: 0.0,
            fault_seed: 1,
            task_retry_budget: 3,
            am_retry_budget: 8,
            fault_plan: None,
            node_loss: None,
            heartbeat_period: SimDuration::from_micros(200),
            lease_window: SimDuration::from_micros(1000),
            lineage_depth_budget: 64,
            node_join: None,
            node_drain: None,
            shards: 0,
        }
    }

    /// The paper's GPU cluster: up to 8 nodes, each 2× Xeon E5620
    /// (8 cores) + 1 GTX 480, QDR Infiniband.
    pub fn gpu_cluster(nodes: u32) -> Self {
        RuntimeConfig {
            nodes,
            gpus_per_node: 1,
            cpu_workers_per_node: 6,
            gpu_spec: GpuSpec::gtx_480(),
            gpu_mem_override: None,
            host_mem: 25 << 30,
            fabric: FabricConfig::qdr_infiniband(nodes),
            cache_policy: CachePolicy::WriteBack,
            sched_policy: Policy::Affinity,
            routing: SlaveRouting::Direct,
            presend: 0,
            overlap: true,
            prefetch: true,
            backing: Backing::Real,
            pinned_pool: 2 << 30,
            task_overhead: SimDuration::from_micros(5),
            eviction_slack: 0.0,
            tracing: false,
            verify: false,
            sched_seed: 0,
            fault_rate: 0.0,
            fault_seed: 1,
            task_retry_budget: 3,
            am_retry_budget: 8,
            fault_plan: None,
            node_loss: None,
            heartbeat_period: SimDuration::from_micros(200),
            lease_window: SimDuration::from_micros(1000),
            lineage_depth_budget: 64,
            node_join: None,
            node_drain: None,
            shards: 0,
        }
    }

    /// Builder-style setters for the experiment sweeps.
    pub fn with_cache(mut self, p: CachePolicy) -> Self {
        self.cache_policy = p;
        self
    }

    /// Set the scheduling policy.
    pub fn with_sched(mut self, p: Policy) -> Self {
        self.sched_policy = p;
        self
    }

    /// Set inter-slave routing.
    pub fn with_routing(mut self, r: SlaveRouting) -> Self {
        self.routing = r;
        self
    }

    /// Set the presend depth.
    pub fn with_presend(mut self, n: u32) -> Self {
        self.presend = n;
        self
    }

    /// Enable/disable transfer–compute overlap.
    pub fn with_overlap(mut self, on: bool) -> Self {
        self.overlap = on;
        self
    }

    /// Enable/disable prefetch.
    pub fn with_prefetch(mut self, on: bool) -> Self {
        self.prefetch = on;
        self
    }

    /// Select phantom or real byte backing.
    pub fn with_backing(mut self, b: Backing) -> Self {
        self.backing = b;
        self
    }

    /// Cap the GPU memory visible to the cache.
    pub fn with_gpu_mem(mut self, bytes: u64) -> Self {
        self.gpu_mem_override = Some(bytes);
        self
    }

    /// Set the coarse-eviction slack (see the field docs).
    pub fn with_eviction_slack(mut self, slack: f64) -> Self {
        self.eviction_slack = slack;
        self
    }

    /// Enable execution tracing (see [`crate::trace`]).
    pub fn with_tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Enable verification mode (see the field docs).
    pub fn with_verify(mut self, on: bool) -> Self {
        self.verify = on;
        self
    }

    /// Set the scheduler tie-break perturbation seed (0 = off).
    pub fn with_sched_seed(mut self, seed: u64) -> Self {
        self.sched_seed = seed;
        self
    }

    /// Arm chaos injection: fault `rate` (0 disables) drawn from the
    /// deterministic stream of `seed`.
    pub fn with_faults(mut self, seed: u64, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate must be in [0, 1]");
        self.fault_seed = seed;
        self.fault_rate = rate;
        self
    }

    /// Set the per-task re-execution budget.
    pub fn with_task_retry_budget(mut self, n: u32) -> Self {
        self.task_retry_budget = n;
        self
    }

    /// Set the per-message retransmit budget.
    pub fn with_am_retry_budget(mut self, n: u32) -> Self {
        self.am_retry_budget = n;
        self
    }

    /// Arm a hand-built fault plan (see the field docs).
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Arm a planned whole-node kill: slave `node` dies at `at` of
    /// virtual time. Also arms the heartbeat/lease machinery.
    pub fn with_node_loss(mut self, node: u32, at: SimDuration) -> Self {
        assert!(node > 0, "node 0 is the master; only slaves can be killed");
        self.node_loss = Some((node, at));
        self
    }

    /// Set the lease protocol timing (probe period, death window).
    pub fn with_heartbeat(mut self, period: SimDuration, window: SimDuration) -> Self {
        assert!(window > period, "the lease window must exceed the probe period");
        self.heartbeat_period = period;
        self.lease_window = window;
        self
    }

    /// Set the lineage re-execution budget per lost region.
    pub fn with_lineage_depth(mut self, depth: u32) -> Self {
        self.lineage_depth_budget = depth;
        self
    }

    /// Plan a node join: slave `node` starts the run absent and comes
    /// up at `at` of virtual time.
    pub fn with_node_join(mut self, node: u32, at: SimDuration) -> Self {
        assert!(node > 0, "node 0 is the master; only slaves can join");
        self.node_join = Some((node, at));
        self
    }

    /// Plan a graceful drain: slave `node` starts leaving at `at` of
    /// virtual time.
    pub fn with_node_drain(mut self, node: u32, at: SimDuration) -> Self {
        assert!(node > 0, "node 0 is the master; only slaves can drain");
        self.node_drain = Some((node, at));
        self
    }

    /// Is elastic membership armed (a planned join or drain)?
    pub fn membership_enabled(&self) -> bool {
        self.node_join.is_some() || self.node_drain.is_some()
    }

    /// Shard the control plane into `n` shards (0 = flat single
    /// master; see the field docs). Shards beyond the node count still
    /// work — several shards just wrap onto the same owner node.
    pub fn with_sharded_control(mut self, n: u32) -> Self {
        self.shards = n;
        self
    }

    /// Is the sharded control plane armed?
    pub fn sharded(&self) -> bool {
        self.shards > 0
    }

    /// Are faults (and therefore the recovery machinery) enabled?
    pub fn faults_enabled(&self) -> bool {
        self.fault_plan.is_some() || self.fault_rate > 0.0 || self.node_loss.is_some()
    }

    /// Usable GPU cache capacity.
    pub fn gpu_cache_capacity(&self) -> u64 {
        self.gpu_mem_override.unwrap_or_else(|| {
            // Reserve ~5% for CUDA context and fragmentation.
            self.gpu_spec.mem_capacity - self.gpu_spec.mem_capacity / 20
        })
    }

    /// Total schedulable resources on one node (workers + GPU managers).
    pub fn node_resources(&self) -> u32 {
        self.cpu_workers_per_node + self.gpus_per_node
    }

    /// Apply `NX_ARGS`-style environment overrides, the way Nanos++ read
    /// its runtime options. Recognised variables:
    ///
    /// | variable | values |
    /// |---|---|
    /// | `OMPSS_SCHEDULE` | `bf`, `default`, `affinity` |
    /// | `OMPSS_CACHE_POLICY` | `nocache`, `wt`, `wb` |
    /// | `OMPSS_ROUTING` | `mtos`, `stos` |
    /// | `OMPSS_PRESEND` | integer depth |
    /// | `OMPSS_OVERLAP` / `OMPSS_PREFETCH` / `OMPSS_TRACE` | `0`/`1` |
    /// | `OMPSS_VERIFY` | `0`/`1` |
    /// | `OMPSS_SCHED_SEED` | integer seed (0 = off) |
    /// | `OMPSS_FAULT_RATE` | float in `[0, 1]` (0 = off) |
    /// | `OMPSS_FAULT_SEED` | integer seed of the fault stream |
    /// | `OMPSS_TASK_RETRIES` / `OMPSS_AM_RETRIES` | integer budgets |
    /// | `OMPSS_FAULT_NODE_LOSS` | `node@micros` planned kill (e.g. `1@800`) |
    /// | `OMPSS_HEARTBEAT_PERIOD_US` / `OMPSS_LEASE_WINDOW_US` | integers (µs) |
    /// | `OMPSS_LINEAGE_DEPTH` | integer re-execution budget |
    /// | `OMPSS_SHARDS` | control-plane shard count (0 = flat master) |
    /// | `OMPSS_NODE_JOIN` | `node@micros` planned join (e.g. `2@500`) |
    /// | `OMPSS_NODE_DRAIN` | `node@micros` planned drain (e.g. `1@800`) |
    ///
    /// Unknown values panic (a typo silently ignored would invalidate an
    /// experiment).
    pub fn overridden_from_env(mut self) -> Self {
        use std::env;
        if let Ok(v) = env::var("OMPSS_SCHEDULE") {
            self.sched_policy = match v.as_str() {
                "bf" => Policy::BreadthFirst,
                "default" => Policy::Dependencies,
                "affinity" => Policy::Affinity,
                other => panic!("OMPSS_SCHEDULE: unknown policy '{other}'"),
            };
        }
        if let Ok(v) = env::var("OMPSS_CACHE_POLICY") {
            self.cache_policy = match v.as_str() {
                "nocache" => CachePolicy::NoCache,
                "wt" => CachePolicy::WriteThrough,
                "wb" => CachePolicy::WriteBack,
                other => panic!("OMPSS_CACHE_POLICY: unknown policy '{other}'"),
            };
        }
        if let Ok(v) = env::var("OMPSS_ROUTING") {
            self.routing = match v.as_str() {
                "mtos" => SlaveRouting::ViaMaster,
                "stos" => SlaveRouting::Direct,
                other => panic!("OMPSS_ROUTING: unknown mode '{other}'"),
            };
        }
        if let Ok(v) = env::var("OMPSS_PRESEND") {
            self.presend = v.parse().expect("OMPSS_PRESEND: not an integer");
        }
        let flag = |name: &str| -> Option<bool> {
            env::var(name).ok().map(|v| match v.as_str() {
                "1" | "true" | "on" => true,
                "0" | "false" | "off" => false,
                other => panic!("{name}: expected 0/1, got '{other}'"),
            })
        };
        if let Some(b) = flag("OMPSS_OVERLAP") {
            self.overlap = b;
        }
        if let Some(b) = flag("OMPSS_PREFETCH") {
            self.prefetch = b;
        }
        if let Some(b) = flag("OMPSS_TRACE") {
            self.tracing = b;
        }
        if let Some(b) = flag("OMPSS_VERIFY") {
            self.verify = b;
        }
        if let Ok(v) = env::var("OMPSS_SCHED_SEED") {
            self.sched_seed = v.parse().expect("OMPSS_SCHED_SEED: not an integer");
        }
        if let Ok(v) = env::var("OMPSS_FAULT_RATE") {
            let rate: f64 = v.parse().expect("OMPSS_FAULT_RATE: not a number");
            assert!((0.0..=1.0).contains(&rate), "OMPSS_FAULT_RATE: must be in [0, 1]");
            self.fault_rate = rate;
        }
        if let Ok(v) = env::var("OMPSS_FAULT_SEED") {
            self.fault_seed = v.parse().expect("OMPSS_FAULT_SEED: not an integer");
        }
        if let Ok(v) = env::var("OMPSS_TASK_RETRIES") {
            self.task_retry_budget = v.parse().expect("OMPSS_TASK_RETRIES: not an integer");
        }
        if let Ok(v) = env::var("OMPSS_AM_RETRIES") {
            self.am_retry_budget = v.parse().expect("OMPSS_AM_RETRIES: not an integer");
        }
        if let Ok(v) = env::var("OMPSS_FAULT_NODE_LOSS") {
            let (node, micros) =
                v.split_once('@').expect("OMPSS_FAULT_NODE_LOSS: expected node@micros");
            let node: u32 = node.parse().expect("OMPSS_FAULT_NODE_LOSS: node not an integer");
            let micros: u64 = micros.parse().expect("OMPSS_FAULT_NODE_LOSS: not microseconds");
            self = self.with_node_loss(node, SimDuration::from_micros(micros));
        }
        if let Ok(v) = env::var("OMPSS_HEARTBEAT_PERIOD_US") {
            self.heartbeat_period = SimDuration::from_micros(
                v.parse().expect("OMPSS_HEARTBEAT_PERIOD_US: not an integer"),
            );
        }
        if let Ok(v) = env::var("OMPSS_LEASE_WINDOW_US") {
            self.lease_window =
                SimDuration::from_micros(v.parse().expect("OMPSS_LEASE_WINDOW_US: not an integer"));
        }
        if let Ok(v) = env::var("OMPSS_LINEAGE_DEPTH") {
            self.lineage_depth_budget = v.parse().expect("OMPSS_LINEAGE_DEPTH: not an integer");
        }
        if let Ok(v) = env::var("OMPSS_SHARDS") {
            self.shards = v.parse().expect("OMPSS_SHARDS: not an integer");
        }
        if let Ok(v) = env::var("OMPSS_NODE_JOIN") {
            let (node, micros) = v.split_once('@').expect("OMPSS_NODE_JOIN: expected node@micros");
            let node: u32 = node.parse().expect("OMPSS_NODE_JOIN: node not an integer");
            let micros: u64 = micros.parse().expect("OMPSS_NODE_JOIN: not microseconds");
            self = self.with_node_join(node, SimDuration::from_micros(micros));
        }
        if let Ok(v) = env::var("OMPSS_NODE_DRAIN") {
            let (node, micros) = v.split_once('@').expect("OMPSS_NODE_DRAIN: expected node@micros");
            let node: u32 = node.parse().expect("OMPSS_NODE_DRAIN: node not an integer");
            let micros: u64 = micros.parse().expect("OMPSS_NODE_DRAIN: not microseconds");
            self = self.with_node_drain(node, SimDuration::from_micros(micros));
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_platforms() {
        let m = RuntimeConfig::multi_gpu(4);
        assert_eq!(m.nodes, 1);
        assert_eq!(m.gpus_per_node, 4);
        assert_eq!(m.gpu_spec.name, "Tesla S2050");
        let c = RuntimeConfig::gpu_cluster(8);
        assert_eq!(c.nodes, 8);
        assert_eq!(c.gpus_per_node, 1);
        assert_eq!(c.gpu_spec.name, "GTX 480");
    }

    #[test]
    fn builders_compose() {
        let c = RuntimeConfig::gpu_cluster(4)
            .with_cache(CachePolicy::NoCache)
            .with_sched(Policy::BreadthFirst)
            .with_routing(SlaveRouting::ViaMaster)
            .with_presend(2)
            .with_overlap(false)
            .with_prefetch(false)
            .with_gpu_mem(1 << 20);
        assert_eq!(c.cache_policy, CachePolicy::NoCache);
        assert_eq!(c.presend, 2);
        assert_eq!(c.gpu_cache_capacity(), 1 << 20);
    }

    #[test]
    fn default_gpu_capacity_reserves_headroom() {
        let c = RuntimeConfig::gpu_cluster(1);
        assert!(c.gpu_cache_capacity() < c.gpu_spec.mem_capacity);
        assert!(c.gpu_cache_capacity() > c.gpu_spec.mem_capacity / 2);
    }
}
