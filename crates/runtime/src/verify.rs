//! Access observation for verification mode ([`RuntimeConfig::verify`]).
//!
//! When verification is on and the machine carries real bytes, every
//! task body execution is observed two ways:
//!
//! * **Byte diffing** — the body's views are snapshotted before the
//!   call and diffed after it. Any changed byte range becomes an
//!   observed *write* over the corresponding sub-region of the clause
//!   that mapped the view. Diffing catches writes no matter how the
//!   body is written, but cannot see reads and misses writes that
//!   happen to store the value already present.
//! * **Explicit recording** — instrumented bodies (the shipped apps in
//!   verify builds) call [`ompss_mem::track::record_read`] /
//!   [`record_write`](ompss_mem::track::record_write) with the regions
//!   their kernels actually touch. The tracker is installed on the
//!   executing thread around the body call — including inside a
//!   simulated GPU stream's effect — so recordings land on the right
//!   task.
//!
//! The merged observations accumulate in a [`VerifySink`]; when the run
//! ends they are packaged — together with the graph's submission-time
//! lints and a post-hoc race analysis over the observed accesses —
//! into [`VerifyData`] on the [`RunReport`](crate::RunReport). The
//! `ompss-verify` crate turns that into findings; this module only
//! gathers evidence.
//!
//! [`RuntimeConfig::verify`]: crate::RuntimeConfig::verify

use parking_lot::Mutex;

use ompss_core::{GraphLint, TaskId};
use ompss_mem::{track, Access, AllocId, MemoryManager, Region, SpaceId};

use crate::task::TaskBody;

/// The observed memory behaviour of one executed task body.
#[derive(Debug, Clone)]
pub struct TaskAccess {
    /// The task that ran.
    pub task: TaskId,
    /// Its label (kernel name).
    pub label: String,
    /// The clauses it declared, in body-view order.
    pub declared: Vec<Access>,
    /// Regions the body was observed to read (explicit recordings
    /// only — byte diffing cannot see reads).
    pub reads: Vec<Region>,
    /// Regions the body was observed to write (byte diffs plus
    /// explicit recordings), deduplicated.
    pub writes: Vec<Region>,
}

/// Everything verification mode gathered during a run, attached to
/// [`RunReport::verify`](crate::RunReport::verify).
#[derive(Debug, Clone, Default)]
pub struct VerifyData {
    /// Per-task observations, in completion order.
    pub tasks: Vec<TaskAccess>,
    /// Lints the task graph raised at submission time (dead writes).
    pub lints: Vec<GraphLint>,
    /// Races found by checking every pair of observed accesses against
    /// the graph's happens-before relation.
    pub races: Vec<GraphLint>,
    /// True when the run used phantom backing: bodies were skipped, so
    /// `tasks` is empty by construction and only `lints` carry signal.
    pub phantom: bool,
}

/// Run-wide collector of task observations. One per runtime instance;
/// shared by every worker and GPU-stream process.
pub(crate) struct VerifySink {
    tasks: Mutex<Vec<TaskAccess>>,
}

impl VerifySink {
    pub(crate) fn new() -> Self {
        VerifySink { tasks: Mutex::new(Vec::new()) }
    }

    pub(crate) fn take(&self) -> Vec<TaskAccess> {
        std::mem::take(&mut self.tasks.lock())
    }

    /// Execute `body` over the mapped views with observation: snapshot,
    /// install the thread-local tracker, diff, merge, record.
    pub(crate) fn run_observed(
        &self,
        mem: &MemoryManager,
        task: TaskId,
        label: &str,
        declared: &[Access],
        requests: &[(SpaceId, AllocId, u64, u64)],
        body: &TaskBody,
    ) {
        let declared = declared.to_vec();
        let observed = mem.with_bytes_many(requests, |views| {
            let before: Vec<Vec<u8>> = views.iter().map(|v| v.to_vec()).collect();
            track::begin();
            body(views);
            let tracked = track::take().unwrap_or_default();
            let mut reads = tracked.reads;
            let mut writes = tracked.writes;
            for (i, view) in views.iter().enumerate() {
                if let Some(w) = diff_region(&declared[i].region, &before[i], view) {
                    writes.push(w);
                }
            }
            reads.sort();
            reads.dedup();
            writes.sort();
            writes.dedup();
            (reads, writes)
        });
        let Some((reads, writes)) = observed else { return };
        self.tasks.lock().push(TaskAccess {
            task,
            label: label.to_string(),
            declared,
            reads,
            writes,
        });
    }

    /// Flatten the observations into the `(task, region, is_write)`
    /// triples [`TaskGraph::races`](ompss_core::TaskGraph::races) takes.
    pub(crate) fn observations(tasks: &[TaskAccess]) -> Vec<(TaskId, Region, bool)> {
        let mut out = Vec::new();
        for t in tasks {
            for &r in &t.reads {
                out.push((t.task, r, false));
            }
            for &w in &t.writes {
                out.push((t.task, w, true));
            }
        }
        out
    }
}

/// The smallest sub-region of `declared` covering every byte that
/// differs between `before` and `after`, or `None` if nothing changed.
fn diff_region(declared: &Region, before: &[u8], after: &[u8]) -> Option<Region> {
    let first = before.iter().zip(after).position(|(b, a)| b != a)?;
    let last = before
        .iter()
        .zip(after)
        .rposition(|(b, a)| b != a)
        .expect("a first differing byte implies a last");
    Some(Region {
        data: declared.data,
        offset: declared.offset + first as u64,
        len: (last - first + 1) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompss_mem::DataId;

    fn r(offset: u64, len: u64) -> Region {
        Region::new(DataId(1), offset, len)
    }

    #[test]
    fn diff_finds_tight_changed_span() {
        let declared = r(8, 8);
        let before = [0u8; 8];
        let mut after = [0u8; 8];
        after[2] = 1;
        after[5] = 7;
        assert_eq!(diff_region(&declared, &before, &after), Some(r(10, 4)));
    }

    #[test]
    fn diff_of_identical_bytes_is_none() {
        assert_eq!(diff_region(&r(0, 4), &[3; 4], &[3; 4]), None);
    }

    #[test]
    fn diff_single_byte() {
        let before = [0u8, 0, 0];
        let after = [0u8, 9, 0];
        assert_eq!(diff_region(&r(0, 3), &before, &after), Some(r(1, 1)));
    }
}
