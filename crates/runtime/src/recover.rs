//! Reliable delivery for the cluster control protocol under chaos.
//!
//! The fabric's fault plan may drop, duplicate or delay any message
//! (see `ompss_net`), so when faults are armed every *control* message
//! (`Exec`, `Done`, `Failed`, `GpuDown`) travels with a globally unique
//! id, the receiver acknowledges it, and the sender retransmits on an
//! ack timeout with exponential backoff until a budget runs out. The
//! receiver deduplicates by id (a retransmission whose original did
//! arrive is re-acked but not reprocessed), which makes duplicated
//! *and* dropped messages both safe.
//!
//! Bulk `Data` messages need none of this: they model wire occupancy,
//! and the simulated byte movement is performed by the executor after
//! the send — a dropped `Data` costs time, never data.
//!
//! When faults are off the runtime sends plain messages and none of
//! this state exists — the zero-cost contract.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use parking_lot::Mutex;

use ompss_sim::{Ctx, RunError, Signal, SimDuration, SimResult};

use crate::stats::Counters;

/// Shared reliable-delivery state: one instance per run, used by every
/// node image (the simulation is one process, so ids are globally
/// unique by construction).
pub(crate) struct Reliability {
    next_id: AtomicU64,
    /// Unacknowledged sends, keyed by message id; the signal wakes the
    /// blocked sender when the ack arrives.
    pending: Mutex<HashMap<u64, Signal>>,
    /// Every id already processed by a receiver (dedup).
    seen: Mutex<HashSet<u64>>,
    /// First ack wait; doubles per retransmission.
    base_timeout: SimDuration,
    /// Retransmissions allowed before the run aborts.
    budget: u32,
}

impl Reliability {
    /// New delivery state with `budget` retransmissions per message and
    /// an initial ack timeout of `base_timeout`.
    pub fn new(base_timeout: SimDuration, budget: u32) -> Self {
        Reliability {
            next_id: AtomicU64::new(0),
            pending: Mutex::new(HashMap::new()),
            seen: Mutex::new(HashSet::new()),
            base_timeout,
            budget,
        }
    }

    /// Send a message built by `send(id)` and park until its ack
    /// arrives, retransmitting on timeout. Each retransmission doubles
    /// the wait and bumps `am_retries`. When the budget is exhausted
    /// the whole run is aborted with [`RunError::Exhausted`] — an
    /// unreachable peer is unrecoverable.
    pub fn send_reliable(
        &self,
        ctx: &Ctx,
        counters: &Counters,
        what: &str,
        mut send: impl FnMut(u64) -> SimResult<()>,
    ) -> SimResult<()> {
        let id = self.next_id.fetch_add(1, Relaxed);
        let sig = Signal::new();
        self.pending.lock().insert(id, sig.clone());
        let mut timeout = self.base_timeout;
        let attempts = self.budget.saturating_add(1);
        for attempt in 0..attempts {
            if attempt > 0 {
                Counters::add(&counters.am_retries, 1);
            }
            send(id)?;
            if sig.wait_timeout(ctx, timeout)? {
                self.pending.lock().remove(&id);
                return Ok(());
            }
            timeout = timeout * 2;
        }
        self.pending.lock().remove(&id);
        Err(ctx
            .abort_run(RunError::Exhausted { what: format!("{what} retransmissions"), attempts }))
    }

    /// An ack for `id` arrived: wake its sender. Idempotent (duplicate
    /// acks, or acks racing a concurrent timeout, are no-ops).
    pub fn on_ack(&self, ctx: &Ctx, id: u64) {
        if let Some(sig) = self.pending.lock().remove(&id) {
            sig.set(ctx);
        }
    }

    /// Receiver-side dedup: true exactly once per id. The caller acks
    /// regardless (the sender may have missed the first ack) but only
    /// acts when this returns true.
    pub fn should_process(&self, id: u64) -> bool {
        self.seen.lock().insert(id)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use ompss_sim::Sim;

    use super::*;

    #[test]
    fn retransmission_recovers_a_dropped_message() {
        let rel = Arc::new(Reliability::new(SimDuration::from_micros(10), 3));
        let counters = Arc::new(Counters::new());
        let sent = Arc::new(AtomicU64::new(0));
        let (r2, c2, s2) = (rel.clone(), counters.clone(), sent.clone());
        let sim = Sim::new();
        sim.spawn("sender", move |ctx| {
            let r3 = &r2;
            r2.send_reliable(&ctx, &c2, "test", |id| {
                if s2.fetch_add(1, Relaxed) == 0 {
                    return Ok(()); // the first copy vanishes on the wire
                }
                let r4 = r3.clone();
                ctx.spawn_daemon("acker", move |actx| {
                    let _ = actx.delay(SimDuration::from_micros(1));
                    r4.on_ack(&actx, id);
                });
                Ok(())
            })
            .expect("retransmission must recover the message");
        });
        sim.run().expect("run completes");
        assert_eq!(sent.load(Relaxed), 2, "exactly one retransmission");
        assert_eq!(counters.snapshot().am_retries, 1);
    }

    #[test]
    fn exhausted_budget_aborts_the_run() {
        let rel = Arc::new(Reliability::new(SimDuration::from_micros(5), 2));
        let counters = Arc::new(Counters::new());
        let sim = Sim::new();
        sim.spawn("sender", move |ctx| {
            let r = rel.send_reliable(&ctx, &counters, "exec", |_| Ok(()));
            assert!(r.is_err(), "an unacknowledged message must fail the send");
        });
        match sim.run() {
            Err(RunError::Exhausted { attempts, .. }) => assert_eq!(attempts, 3),
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_ids_are_processed_once() {
        let rel = Reliability::new(SimDuration::from_micros(1), 0);
        assert!(rel.should_process(7));
        assert!(!rel.should_process(7), "retransmitted id must be deduplicated");
        assert!(rel.should_process(8));
    }
}
