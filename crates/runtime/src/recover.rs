//! Reliable delivery for the cluster control protocol under chaos.
//!
//! The fabric's fault plan may drop, duplicate or delay any message
//! (see `ompss_net`), so when faults are armed every *control* message
//! (`Exec`, `Done`, `Failed`, `GpuDown`) travels with a globally unique
//! id, the receiver acknowledges it, and the sender retransmits on an
//! ack timeout with exponential backoff until a budget runs out. The
//! receiver deduplicates by id (a retransmission whose original did
//! arrive is re-acked but not reprocessed), which makes duplicated
//! *and* dropped messages both safe.
//!
//! Bulk `Data` messages need none of this: they model wire occupancy,
//! and the simulated byte movement is performed by the executor after
//! the send — a dropped `Data` costs time, never data.
//!
//! When faults are off the runtime sends plain messages and none of
//! this state exists — the zero-cost contract.

use std::collections::{HashMap, HashSet};
use std::future::Future;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use parking_lot::Mutex;

use ompss_sim::{abort_run, Backoff, RunError, Signal, SimDuration, SimResult};

use crate::stats::Counters;

/// Shared reliable-delivery state: one instance per run, used by every
/// node image (the simulation is one process, so ids are globally
/// unique by construction).
pub(crate) struct Reliability {
    next_id: AtomicU64,
    /// Unacknowledged sends, keyed by message id; each carries its
    /// endpoint nodes `(src, dst)` (so node-loss recovery can abandon
    /// every exchange touching a dead peer — aimed at it, or stuck on
    /// it when it died) and the signal that wakes the blocked sender
    /// when the ack arrives.
    pending: Mutex<HashMap<u64, (u32, u32, Signal)>>,
    /// Every id already processed by a receiver (dedup).
    seen: Mutex<HashSet<u64>>,
    /// Nodes declared dead: sends to them resolve immediately instead
    /// of burning the retransmit budget on a peer that cannot answer.
    dead: Mutex<HashSet<u32>>,
    /// First ack wait; doubles per retransmission.
    base_timeout: SimDuration,
    /// Retransmissions allowed before the run aborts.
    budget: u32,
}

impl Reliability {
    /// New delivery state with `budget` retransmissions per message and
    /// an initial ack timeout of `base_timeout`.
    pub fn new(base_timeout: SimDuration, budget: u32) -> Self {
        Reliability {
            next_id: AtomicU64::new(0),
            pending: Mutex::new(HashMap::new()),
            seen: Mutex::new(HashSet::new()),
            dead: Mutex::new(HashSet::new()),
            base_timeout,
            budget,
        }
    }

    /// Send a message from node `src` to node `dst` built by `send(id)`
    /// and park until its ack arrives, retransmitting on timeout. Each
    /// retransmission doubles the wait and bumps `am_retries`. When the
    /// budget is exhausted the whole run is aborted with
    /// [`RunError::Exhausted`] — an unreachable peer is unrecoverable,
    /// unless node-loss recovery declared either endpoint dead, in
    /// which case the exchange is abandoned as delivered (the recovery
    /// path re-homes whatever the message was about, and a sender on a
    /// dead node is about to observe its own death and stand down).
    pub async fn send_reliable<F, Fut>(
        &self,
        counters: &Counters,
        what: &str,
        src: u32,
        dst: u32,
        mut send: F,
    ) -> SimResult<()>
    where
        F: FnMut(u64) -> Fut,
        Fut: Future<Output = SimResult<()>>,
    {
        {
            let dead = self.dead.lock();
            if dead.contains(&dst) || dead.contains(&src) {
                return Ok(());
            }
        }
        let id = self.next_id.fetch_add(1, Relaxed);
        let sig = Signal::new();
        self.pending.lock().insert(id, (src, dst, sig.clone()));
        // One ack wait per attempt, doubling: the shared deterministic
        // backoff schedule (also used by `ompss-serve` job retries).
        let attempts = self.budget.saturating_add(1);
        for (attempt, timeout) in Backoff::exponential(self.base_timeout, attempts).enumerate() {
            if attempt > 0 {
                Counters::add(&counters.am_retries, 1);
            }
            send(id).await?;
            if sig.wait_timeout(timeout).await? {
                self.pending.lock().remove(&id);
                return Ok(());
            }
        }
        self.pending.lock().remove(&id);
        Err(abort_run(RunError::Exhausted { what: format!("{what} retransmissions"), attempts }))
    }

    /// Node `node` died: wake every sender blocked on an exchange
    /// touching it — sends aimed at it *and* sends stuck on it (the
    /// fabric silences a dead node in both directions, so neither kind
    /// of exchange can ever complete) — and short-circuit all future
    /// sends involving it. Idempotent.
    pub fn abandon_node(&self, node: u32) {
        self.dead.lock().insert(node);
        let mut pending = self.pending.lock();
        for (_, (src, dst, sig)) in pending.iter() {
            if *dst == node || *src == node {
                sig.set();
            }
        }
        pending.retain(|_, (src, dst, _)| *dst != node && *src != node);
    }

    /// An ack for `id` arrived: wake its sender. Idempotent (duplicate
    /// acks, or acks racing a concurrent timeout, are no-ops).
    pub fn on_ack(&self, id: u64) {
        if let Some((_, _, sig)) = self.pending.lock().remove(&id) {
            sig.set();
        }
    }

    /// Receiver-side dedup: true exactly once per id. The caller acks
    /// regardless (the sender may have missed the first ack) but only
    /// acts when this returns true.
    pub fn should_process(&self, id: u64) -> bool {
        self.seen.lock().insert(id)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use std::future::{ready, Ready};

    use ompss_sim::{delay, now, process, Sim};

    use super::*;

    #[test]
    fn retransmission_recovers_a_dropped_message() {
        let rel = Arc::new(Reliability::new(SimDuration::from_micros(10), 3));
        let counters = Arc::new(Counters::new());
        let sent = Arc::new(AtomicU64::new(0));
        let (r2, c2, s2) = (rel.clone(), counters.clone(), sent.clone());
        let sim = Sim::new();
        sim.spawn("sender", async move {
            let r3 = &r2;
            r2.send_reliable(&c2, "test", 0, 1, |id| {
                if s2.fetch_add(1, Relaxed) == 0 {
                    return ready(Ok(())); // the first copy vanishes on the wire
                }
                let r4 = r3.clone();
                process("acker").daemon().spawn(async move {
                    let _ = delay(SimDuration::from_micros(1)).await;
                    r4.on_ack(id);
                });
                ready(Ok(()))
            })
            .await
            .expect("retransmission must recover the message");
        });
        sim.run().expect("run completes");
        assert_eq!(sent.load(Relaxed), 2, "exactly one retransmission");
        assert_eq!(counters.snapshot().am_retries, 1);
    }

    #[test]
    fn exhausted_budget_aborts_the_run() {
        let rel = Arc::new(Reliability::new(SimDuration::from_micros(5), 2));
        let counters = Arc::new(Counters::new());
        let sim = Sim::new();
        sim.spawn("sender", async move {
            let r = rel.send_reliable(&counters, "exec", 0, 1, |_| ready(Ok(()))).await;
            assert!(r.is_err(), "an unacknowledged message must fail the send");
        });
        match sim.run() {
            Err(RunError::Exhausted { attempts, .. }) => assert_eq!(attempts, 3),
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn abandon_to_resolves_pending_and_future_sends_to_a_dead_node() {
        let rel = Arc::new(Reliability::new(SimDuration::from_micros(50), 2));
        let counters = Arc::new(Counters::new());
        let (r2, c2) = (rel.clone(), counters.clone());
        let sim = Sim::new();
        sim.spawn("sender", async move {
            let r3 = r2.clone();
            process("reaper").daemon().spawn(async move {
                let _ = delay(SimDuration::from_micros(10)).await;
                r3.abandon_node(2);
            });
            // Never acked, but abandoned before any retransmission: the
            // exchange resolves without burning the budget or aborting.
            r2.send_reliable(&c2, "exec", 0, 2, |_| ready(Ok(())))
                .await
                .expect("abandoned exchange resolves as delivered");
            // Sends to an already-dead node return immediately.
            let t0 = now();
            r2.send_reliable(&c2, "exec", 0, 2, |_| -> Ready<SimResult<()>> {
                panic!("must not hit the wire")
            })
            .await
            .expect("dead-node send short-circuits");
            assert_eq!(now(), t0);
            // Exchanges with live nodes still work as before.
            let r4 = r2.clone();
            r2.send_reliable(&c2, "done", 1, 0, |id| {
                let r5 = r4.clone();
                process("acker").daemon().spawn(async move {
                    let _ = delay(SimDuration::from_micros(1)).await;
                    r5.on_ack(id);
                });
                ready(Ok(()))
            })
            .await
            .expect("live exchange unaffected");
        });
        sim.run().expect("run completes");
        assert_eq!(counters.snapshot().am_retries, 0);
    }

    #[test]
    fn duplicate_ids_are_processed_once() {
        let rel = Reliability::new(SimDuration::from_micros(1), 0);
        assert!(rel.should_process(7));
        assert!(!rel.should_process(7), "retransmitted id must be deduplicated");
        assert!(rel.should_process(8));
    }
}
