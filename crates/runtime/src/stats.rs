//! The always-on counter registry.
//!
//! Layer-local statistics (network, coherence, scheduler, GPU engines)
//! live in their own crates; this registry records what no single layer
//! can see — per-resource busy time, bytes classified by medium *and*
//! direction of the cluster protocol, active-message counts by kind —
//! and the run-report assembly joins everything at the end of a run.
//!
//! Counters are cheap (relaxed atomics for scalars, one short-held lock
//! for the per-resource map) and always on: unlike tracing, which is
//! opt-in because it allocates per event, these are a handful of adds
//! per task and are included in every [`RunReport`](crate::RunReport).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use parking_lot::Mutex;

use ompss_json::{Json, ToJson};
use ompss_sim::SimDuration;

/// Identifies a resource: `(node, name)`, e.g. `(0, "gpu1")`,
/// `(2, "worker0")`. `BTreeMap` keying makes every snapshot
/// deterministically ordered.
pub type ResourceKey = (u32, String);

/// What one resource did over the run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceBusy {
    /// Task bodies executed.
    pub tasks: u64,
    /// Time spent executing task bodies (staging + kernel/body), in
    /// nanoseconds of virtual time.
    pub busy_ns: u64,
}

/// The registry. The runtime holds one in an `Arc` shared by the
/// transfer executor, every worker/manager process and the cluster
/// dispatchers.
#[derive(Debug, Default)]
pub struct Counters {
    /// PCIe bytes that went through the pinned staging path.
    pub pcie_pinned_bytes: AtomicU64,
    /// PCIe bytes copied pageable (no overlap possible).
    pub pcie_pageable_bytes: AtomicU64,
    /// Network payload bytes on master↔slave links (demand traffic).
    pub net_mts_bytes: AtomicU64,
    /// Network payload bytes on slave↔slave links (direct StoS routing).
    pub net_sts_bytes: AtomicU64,
    /// Network payload bytes moved by the pre-send staging path.
    pub net_presend_bytes: AtomicU64,
    /// `Exec` active messages sent (master → slave task launches).
    pub am_exec: AtomicU64,
    /// `Done` active messages sent (slave → master completions).
    pub am_done: AtomicU64,
    /// `Data` active messages sent (bulk transfers).
    pub am_data: AtomicU64,
    /// Cluster messages retransmitted after an ack timeout.
    pub am_retries: AtomicU64,
    /// Task bodies re-executed after an injected failure.
    pub tasks_reexecuted: AtomicU64,
    /// GPU devices lost to injected whole-device failures.
    pub devices_lost: AtomicU64,
    /// Messages the fault plan dropped on the wire.
    pub msgs_dropped: AtomicU64,
    /// Whole slave nodes lost to planned node-kill chaos.
    pub nodes_lost: AtomicU64,
    /// Completed tasks re-executed by lineage reconstruction to rebuild
    /// data that lived only on a dead node.
    pub tasks_relineaged: AtomicU64,
    /// Bytes of lost region data rebuilt at the master home.
    pub bytes_reconstructed: AtomicU64,
    /// Heartbeat probe periods that elapsed without a lease renewal.
    pub heartbeats_missed: AtomicU64,
    /// Jobs the serve daemon admitted to its queue.
    pub serve_admitted: AtomicU64,
    /// Jobs the serve daemon rejected at admission (queue full, bad
    /// spec, draining).
    pub serve_rejected: AtomicU64,
    /// Queued jobs the serve daemon load-shed to admit higher-priority
    /// work.
    pub serve_shed: AtomicU64,
    /// Jobs cancelled by a client before completing.
    pub serve_cancelled: AtomicU64,
    /// Jobs that hit their deadline while queued or running.
    pub serve_deadlines: AtomicU64,
    /// Job re-runs after a retryable [`RunError`](crate::RunError).
    pub serve_retries: AtomicU64,
    /// Jobs that finished with a result.
    pub serve_completed: AtomicU64,
    /// Jobs that finished with a terminal error.
    pub serve_failed: AtomicU64,
    /// High-water mark of the serve daemon's admission queue.
    pub serve_queue_peak: AtomicU64,
    busy: Mutex<BTreeMap<ResourceKey, ResourceBusy>>,
}

impl Counters {
    /// Fresh registry, all zeros.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to a scalar counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Relaxed);
    }

    /// Raise a high-water-mark counter to at least `n`.
    pub fn raise(counter: &AtomicU64, n: u64) {
        counter.fetch_max(n, Relaxed);
    }

    /// Charge one executed task body of length `busy` to a resource.
    pub fn record_busy(&self, node: u32, name: &str, busy: SimDuration) {
        let mut map = self.busy.lock();
        let slot = map.entry((node, name.to_string())).or_default();
        slot.tasks += 1;
        slot.busy_ns += busy.as_nanos();
    }

    /// Snapshot of the per-resource map, sorted by `(node, name)`.
    pub fn busy_snapshot(&self) -> Vec<(ResourceKey, ResourceBusy)> {
        self.busy.lock().iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Freeze every counter into a plain-data snapshot for the report.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            pcie_pinned_bytes: self.pcie_pinned_bytes.load(Relaxed),
            pcie_pageable_bytes: self.pcie_pageable_bytes.load(Relaxed),
            net_mts_bytes: self.net_mts_bytes.load(Relaxed),
            net_sts_bytes: self.net_sts_bytes.load(Relaxed),
            net_presend_bytes: self.net_presend_bytes.load(Relaxed),
            am_exec: self.am_exec.load(Relaxed),
            am_done: self.am_done.load(Relaxed),
            am_data: self.am_data.load(Relaxed),
            am_retries: self.am_retries.load(Relaxed),
            tasks_reexecuted: self.tasks_reexecuted.load(Relaxed),
            devices_lost: self.devices_lost.load(Relaxed),
            msgs_dropped: self.msgs_dropped.load(Relaxed),
            nodes_lost: self.nodes_lost.load(Relaxed),
            tasks_relineaged: self.tasks_relineaged.load(Relaxed),
            bytes_reconstructed: self.bytes_reconstructed.load(Relaxed),
            heartbeats_missed: self.heartbeats_missed.load(Relaxed),
            serve_admitted: self.serve_admitted.load(Relaxed),
            serve_rejected: self.serve_rejected.load(Relaxed),
            serve_shed: self.serve_shed.load(Relaxed),
            serve_cancelled: self.serve_cancelled.load(Relaxed),
            serve_deadlines: self.serve_deadlines.load(Relaxed),
            serve_retries: self.serve_retries.load(Relaxed),
            serve_completed: self.serve_completed.load(Relaxed),
            serve_failed: self.serve_failed.load(Relaxed),
            serve_queue_peak: self.serve_queue_peak.load(Relaxed),
            resources: self.busy_snapshot(),
        }
    }
}

/// Plain-data copy of [`Counters`] taken at the end of a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CounterSnapshot {
    /// PCIe bytes through pinned staging buffers.
    pub pcie_pinned_bytes: u64,
    /// PCIe bytes copied pageable.
    pub pcie_pageable_bytes: u64,
    /// Master↔slave network payload bytes (demand).
    pub net_mts_bytes: u64,
    /// Slave↔slave network payload bytes.
    pub net_sts_bytes: u64,
    /// Pre-send network payload bytes.
    pub net_presend_bytes: u64,
    /// `Exec` active messages.
    pub am_exec: u64,
    /// `Done` active messages.
    pub am_done: u64,
    /// `Data` active messages.
    pub am_data: u64,
    /// Cluster messages retransmitted after an ack timeout.
    pub am_retries: u64,
    /// Task bodies re-executed after an injected failure.
    pub tasks_reexecuted: u64,
    /// GPU devices lost to injected whole-device failures.
    pub devices_lost: u64,
    /// Messages the fault plan dropped on the wire.
    pub msgs_dropped: u64,
    /// Whole slave nodes lost to planned node-kill chaos.
    pub nodes_lost: u64,
    /// Completed tasks re-executed by lineage reconstruction.
    pub tasks_relineaged: u64,
    /// Bytes of lost region data rebuilt at the master home.
    pub bytes_reconstructed: u64,
    /// Heartbeat probe periods elapsed without a lease renewal.
    pub heartbeats_missed: u64,
    /// Jobs the serve daemon admitted.
    pub serve_admitted: u64,
    /// Jobs rejected at admission.
    pub serve_rejected: u64,
    /// Queued jobs load-shed for higher-priority work.
    pub serve_shed: u64,
    /// Jobs cancelled by a client.
    pub serve_cancelled: u64,
    /// Jobs that hit their deadline.
    pub serve_deadlines: u64,
    /// Job re-runs after a retryable error.
    pub serve_retries: u64,
    /// Jobs finished with a result.
    pub serve_completed: u64,
    /// Jobs finished with a terminal error.
    pub serve_failed: u64,
    /// High-water mark of the admission queue.
    pub serve_queue_peak: u64,
    /// Per-resource activity, sorted by `(node, name)`.
    pub resources: Vec<(ResourceKey, ResourceBusy)>,
}

impl CounterSnapshot {
    /// Per-resource utilisation over a makespan of `makespan_ns`:
    /// `(node, name, tasks, busy_ns, busy/makespan)`.
    pub fn utilisation(&self, makespan_ns: u64) -> Vec<(u32, String, u64, u64, f64)> {
        let total = (makespan_ns as f64).max(f64::MIN_POSITIVE);
        self.resources
            .iter()
            .map(|((node, name), b)| {
                (*node, name.clone(), b.tasks, b.busy_ns, b.busy_ns as f64 / total)
            })
            .collect()
    }
}

impl ToJson for CounterSnapshot {
    fn to_json(&self) -> Json {
        let mut resources = Json::array();
        for ((node, name), b) in &self.resources {
            resources.push(
                Json::object()
                    .field("node", *node)
                    .field("name", name.as_str())
                    .field("tasks", b.tasks)
                    .field("busy_ns", b.busy_ns),
            );
        }
        let serve_total = self.serve_admitted
            + self.serve_rejected
            + self.serve_shed
            + self.serve_cancelled
            + self.serve_deadlines
            + self.serve_retries
            + self.serve_completed
            + self.serve_failed
            + self.serve_queue_peak;
        let mut j = Json::object()
            .field(
                "bytes",
                Json::object()
                    .field("pcie_pinned", self.pcie_pinned_bytes)
                    .field("pcie_pageable", self.pcie_pageable_bytes)
                    .field("net_mts", self.net_mts_bytes)
                    .field("net_sts", self.net_sts_bytes)
                    .field("net_presend", self.net_presend_bytes),
            )
            .field(
                "active_messages",
                Json::object()
                    .field("exec", self.am_exec)
                    .field("done", self.am_done)
                    .field("data", self.am_data),
            )
            .field(
                "recovery",
                Json::object()
                    .field("am_retries", self.am_retries)
                    .field("tasks_reexecuted", self.tasks_reexecuted)
                    .field("devices_lost", self.devices_lost)
                    .field("msgs_dropped", self.msgs_dropped)
                    .field("nodes_lost", self.nodes_lost)
                    .field("tasks_relineaged", self.tasks_relineaged)
                    .field("bytes_reconstructed", self.bytes_reconstructed)
                    .field("heartbeats_missed", self.heartbeats_missed),
            );
        // Daemon-level counters: only a running `ompss-serve` touches
        // them, so per-run reports (where they are all zero) keep their
        // historical byte-exact shape.
        if serve_total > 0 {
            j = j.field(
                "serve",
                Json::object()
                    .field("admitted", self.serve_admitted)
                    .field("rejected", self.serve_rejected)
                    .field("shed", self.serve_shed)
                    .field("cancelled", self.serve_cancelled)
                    .field("deadlines", self.serve_deadlines)
                    .field("retries", self.serve_retries)
                    .field("completed", self.serve_completed)
                    .field("failed", self.serve_failed)
                    .field("queue_peak", self.serve_queue_peak),
            );
        }
        j.field("resources", resources)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_map_accumulates_and_sorts() {
        let c = Counters::new();
        c.record_busy(1, "worker0", SimDuration::from_nanos(10));
        c.record_busy(0, "gpu0", SimDuration::from_nanos(5));
        c.record_busy(1, "worker0", SimDuration::from_nanos(7));
        let snap = c.busy_snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, (0, "gpu0".to_string()));
        assert_eq!(snap[1].1, ResourceBusy { tasks: 2, busy_ns: 17 });
    }

    #[test]
    fn snapshot_freezes_scalars() {
        let c = Counters::new();
        Counters::add(&c.pcie_pinned_bytes, 100);
        Counters::add(&c.pcie_pinned_bytes, 28);
        Counters::add(&c.am_exec, 3);
        let s = c.snapshot();
        assert_eq!(s.pcie_pinned_bytes, 128);
        assert_eq!(s.am_exec, 3);
        assert_eq!(s.net_sts_bytes, 0);
    }

    #[test]
    fn utilisation_is_busy_over_makespan() {
        let c = Counters::new();
        c.record_busy(0, "gpu0", SimDuration::from_nanos(80));
        let u = c.snapshot().utilisation(100);
        assert_eq!(u.len(), 1);
        assert!((u[0].4 - 0.8).abs() < 1e-12);
    }

    #[test]
    fn serve_section_only_appears_when_the_daemon_counted() {
        let quiet = Counters::new().snapshot().to_json();
        assert_eq!(quiet.get("serve"), None, "per-run reports must not grow a serve section");
        let c = Counters::new();
        Counters::add(&c.serve_admitted, 5);
        Counters::add(&c.serve_shed, 1);
        Counters::raise(&c.serve_queue_peak, 4);
        Counters::raise(&c.serve_queue_peak, 2); // high-water mark keeps the max
        let j = c.snapshot().to_json();
        let s = j.get("serve").expect("daemon counters must surface a serve section");
        assert_eq!(s.get("admitted"), Some(&Json::U64(5)));
        assert_eq!(s.get("shed"), Some(&Json::U64(1)));
        assert_eq!(s.get("queue_peak"), Some(&Json::U64(4)));
        assert_eq!(s.get("rejected"), Some(&Json::U64(0)));
    }

    #[test]
    fn json_shape_is_stable() {
        let c = Counters::new();
        Counters::add(&c.net_presend_bytes, 7);
        c.record_busy(2, "worker1", SimDuration::from_nanos(42));
        Counters::add(&c.am_retries, 2);
        Counters::add(&c.tasks_reexecuted, 1);
        let j = c.snapshot().to_json();
        assert_eq!(j.get("bytes").and_then(|b| b.get("net_presend")), Some(&Json::U64(7)));
        let rec = j.get("recovery").expect("counter json lost its 'recovery' field");
        assert_eq!(rec.get("am_retries"), Some(&Json::U64(2)));
        assert_eq!(rec.get("tasks_reexecuted"), Some(&Json::U64(1)));
        assert_eq!(rec.get("devices_lost"), Some(&Json::U64(0)));
        assert_eq!(rec.get("msgs_dropped"), Some(&Json::U64(0)));
        assert_eq!(rec.get("nodes_lost"), Some(&Json::U64(0)));
        assert_eq!(rec.get("tasks_relineaged"), Some(&Json::U64(0)));
        assert_eq!(rec.get("bytes_reconstructed"), Some(&Json::U64(0)));
        assert_eq!(rec.get("heartbeats_missed"), Some(&Json::U64(0)));
        let r = j.get("resources").expect("counter json lost its 'resources' field");
        assert_eq!(
            r,
            &Json::Arr(vec![Json::object()
                .field("node", 2u32)
                .field("name", "worker1")
                .field("tasks", 1u64)
                .field("busy_ns", 42u64)])
        );
    }
}
