//! The runtime engine: node images and their service processes.
//!
//! Mirrors the Nanos++ execution flow (§III-C): a submitted task enters
//! the dependency graph; when ready it goes to the scheduler; a
//! resource (SMP worker, GPU manager thread, or — via the master's
//! communication thread — a remote node) picks it up; the coherence
//! layer stages its data in the execution space; the task runs; its
//! completion releases successors.
//!
//! Cluster protocol (§III-D1): the master image runs the program and
//! owns the task graph. One *communication thread* drains the per-node
//! proxy queues round-robin, staging each dispatched task's input data
//! in the remote node's host memory (concurrently, via helper
//! processes — GASNet sends are asynchronous) before sending the `Exec`
//! active message. Slaves submit received tasks to their local
//! scheduler, execute them with their own workers/GPU managers, and
//! send `Done` back; the master releases successors and refills the
//! node up to `resources + presend` tasks in flight.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;

use parking_lot::Mutex;

use ompss_coherence::{Coherence, MembershipEpochs};
use ompss_core::{Device, TaskGraph, TaskId};
use ompss_cudasim::{GpuDevice, GpuFault, KernelCost};
use ompss_mem::Region;
use ompss_mem::{MemoryManager, SpaceId};
use ompss_net::{AmEndpoint, Fabric, LeaseTracker, NodeId};
use ompss_sched::{LocalityOracle, ResourceId, Scheduler};
use ompss_sim::{
    abort_run, delay, now, process, yield_now, Bell, FaultClass, FaultPlan, Latch, RunError,
    Signal, SimDuration, SimResult,
};

use crate::exec::{ClusterMsg, RtExec};
use crate::recover::Reliability;
use crate::task::{TaskCost, TaskRecord};
use crate::trace::{TraceEvent, TraceResource, Tracer};

/// Scheduler oracle mapping each resource's space to the set of spaces
/// whose cached data should count toward its affinity: a GPU counts
/// only itself; a host counts itself; a node proxy counts the whole
/// node (host + GPUs), matching the master's node-granularity view.
pub(crate) struct SpanOracle {
    pub coh: Arc<Coherence>,
    pub spans: HashMap<SpaceId, Vec<SpaceId>>,
}

impl LocalityOracle for SpanOracle {
    fn bytes_at(&self, region: &Region, space: SpaceId) -> u64 {
        match self.spans.get(&space) {
            Some(spaces) => self.coh.bytes_under(region, spaces),
            None => self.coh.bytes_at(region, space),
        }
    }
}

/// State owned by the master image, under one lock.
pub(crate) struct MasterState {
    pub graph: TaskGraph,
    pub sched: Scheduler,
    pub records: HashMap<TaskId, Arc<TaskRecord>>,
    pub next_id: u64,
    /// Dispatched-but-unfinished tasks per node and device kind
    /// `(smp, cuda)` (index 0 unused).
    pub inflight: Vec<(u32, u32)>,
    pub tasks_executed: u64,
    /// Reusable buffer for [`TaskGraph::complete_into`] on the
    /// completion hot path (always left empty between completions).
    pub newly_scratch: Vec<TaskId>,
    /// Live CUDA devices per node as the master knows them (index 0
    /// unused): decremented by `GpuDown` notifications so the comm
    /// thread stops dispatching CUDA tasks to a GPU-less node.
    pub cuda_alive: Vec<u32>,
    /// Tasks dispatched to each node and not yet completed or handed
    /// back (index 0 unused) — the re-home set when a node is lost.
    pub dispatched: Vec<BTreeSet<TaskId>>,
    /// Nodes the lease protocol has declared dead (index 0 unused): the
    /// comm thread stops dispatching to them and stale notifications
    /// from them are ignored.
    pub node_dead: Vec<bool>,
    /// Nodes armed to join that have not yet come up (index 0 unused):
    /// the comm thread never dispatches to an absent node; the planned
    /// [`node_join`] clears the flag at the join instant.
    pub node_absent: Vec<bool>,
}

/// Per-slave-node state.
pub(crate) struct SlaveState {
    pub sched: Mutex<Scheduler>,
    pub bell: Bell,
    pub host: SpaceId,
    /// Set once this node has lost a GPU: its dispatcher then bounces
    /// freshly arrived CUDA tasks the node can no longer serve back to
    /// the master (covers `Exec`s that raced the `GpuDown` notice).
    pub gpu_lost: AtomicBool,
    /// Ground truth of a planned node-kill: set at the fault instant.
    /// The node's own processes observe it and stop before committing
    /// anything further; the *master* reacts only once the lease
    /// protocol detects the silence.
    pub dead: AtomicBool,
}

/// Everything the service processes share.
pub(crate) struct RtShared {
    pub cfg: crate::config::RuntimeConfig,
    pub mem: Arc<MemoryManager>,
    pub coh: Arc<Coherence>,
    pub exec: Arc<RtExec>,
    pub master: Mutex<MasterState>,
    pub master_bell: Bell,
    pub comm_bell: Bell,
    pub master_oracle: SpanOracle,
    pub slaves: Vec<SlaveState>,
    /// Per-slave oracle spans (same coherence).
    pub slave_oracles: Vec<SpanOracle>,
    /// Outstanding tasks (for `taskwait`).
    pub latch: Latch,
    /// Node proxy resource ids within the master scheduler, per node
    /// (index 0 unused).
    pub proxy_res: Vec<ResourceId>,
    pub gpus: HashMap<SpaceId, GpuDevice>,
    pub hosts: Vec<SpaceId>,
    pub tracer: Option<Tracer>,
    pub counters: Arc<crate::stats::Counters>,
    /// Access-observation collector; `Some` only in verification mode
    /// ([`crate::RuntimeConfig::verify`]), so the task hot path pays
    /// one `Option` check when it is off.
    pub verify: Option<Arc<crate::verify::VerifySink>>,
    /// The armed chaos plan; `None` in fault-free runs, where every
    /// injection site costs one `Option` check.
    pub faults: Option<Arc<FaultPlan>>,
    /// Reliable-delivery state for control messages; `Some` exactly
    /// when `faults` is (plain sends otherwise — the paper's protocol).
    pub rel: Option<Arc<Reliability>>,
    /// Lease bookkeeping of the heartbeat protocol; `Some` when
    /// node-loss chaos *or* elastic membership is armed (disarmed runs
    /// track nothing and send nothing). An armed joiner starts
    /// untracked — its lease begins at the join instant; a drained node
    /// is untracked at departure — retirement, not death.
    pub lease: Option<Mutex<LeaseTracker>>,
    /// Epoch-versioned shard ownership; `Some` exactly when elastic
    /// membership is armed on the sharded control plane. Planned
    /// joins/drains advance the epoch and rebalance slice homes; static
    /// runs never construct this and resolve through the pure
    /// [`ompss_coherence::ShardMap`] alone.
    pub membership: Option<Mutex<MembershipEpochs>>,
    /// Every space of each node (host first, then its GPUs) — the purge
    /// set when that node dies.
    pub node_spaces: Vec<Vec<SpaceId>>,
    /// Set by the main program when it returns: chaos daemons (lease
    /// monitor, planned node-kill) stand down instead of holding timed
    /// events that would keep virtual time marching past the makespan.
    pub done: Signal,
}

/// How one attempt at a task body ended.
pub(crate) enum BodyOutcome {
    /// Completed and committed.
    Done,
    /// An injected failure was detected before commit: the body never
    /// ran, outputs were not written, inputs were unpinned — safe to
    /// re-execute under the retry budget.
    Failed,
    /// The executing GPU was lost outright (GPU flavour only).
    DeviceLost,
    /// The executing *node* was killed while the body ran: nothing was
    /// committed, no completion is sent, and the acquired copies are
    /// left for the master's purge — the worker just stops.
    Abandoned,
}

impl RtShared {
    /// Record a completed task body: always charges the counter
    /// registry's per-resource busy time, and additionally emits a
    /// trace event when tracing is on.
    fn trace_task(
        &self,
        rec: &TaskRecord,
        node: u32,
        name: &str,
        start: ompss_sim::SimTime,
        end: ompss_sim::SimTime,
    ) {
        self.counters.record_busy(node, name, end.saturating_since(start));
        if let Some(tr) = &self.tracer {
            tr.record(TraceEvent::Task {
                task: rec.desc.id.0,
                label: rec.desc.label.clone(),
                resource: TraceResource { node, name: name.to_string() },
                start,
                end,
            });
        }
    }

    fn record(&self, id: TaskId) -> Arc<TaskRecord> {
        self.master.lock().records.get(&id).expect("unknown task id").clone()
    }

    /// Ground truth: has `node` been killed? (The master only *acts* on
    /// this once the lease protocol detects it; the dead node's own
    /// processes consult it directly — a dead machine stops computing.)
    pub(crate) fn node_down(&self, node: NodeId) -> bool {
        node != 0 && self.slaves[node as usize].dead.load(Relaxed)
    }

    /// Acquire all of a task's copy accesses in `space` concurrently —
    /// the paper's *non-blocking cache*: every input transfer is issued
    /// at once (they pipeline on the DMA engines and NIC ports) and the
    /// caller parks until the last completes. Returns the mapped
    /// locations in access order.
    async fn acquire_all(
        self: &Arc<Self>,
        accesses: &[ompss_mem::Access],
        space: SpaceId,
    ) -> SimResult<Vec<ompss_coherence::Loc>> {
        if accesses.len() <= 1 {
            let mut locs = Vec::with_capacity(accesses.len());
            for a in accesses {
                locs.push(self.coh.acquire(&*self.exec, &a.region, a.kind.reads(), space).await?);
            }
            return Ok(locs);
        }
        let latch = ompss_sim::Latch::new();
        latch.add(accesses.len() as u64);
        let results: Arc<Mutex<Vec<Option<ompss_coherence::Loc>>>> =
            Arc::new(Mutex::new(vec![None; accesses.len()]));
        for (i, a) in accesses.iter().copied().enumerate() {
            let sh = self.clone();
            let latch = latch.clone();
            let results = results.clone();
            process(format!("acquire:{}", a.region)).daemon().spawn(async move {
                if let Ok(loc) = sh.coh.acquire(&*sh.exec, &a.region, a.kind.reads(), space).await {
                    results.lock()[i] = Some(loc);
                }
                latch.done();
            });
        }
        latch.wait_zero().await?;
        let locs: Option<Vec<_>> = results.lock().iter().copied().collect();
        locs.ok_or(ompss_sim::SimError::Shutdown)
    }

    /// Run the body + cost of `task` in `space`, assuming the caller
    /// handles graph bookkeeping. SMP flavour: cost charged as a delay.
    ///
    /// `sim`-layer injection happens here: a *stall* charges bounded
    /// extra time (the task still completes); a *timeout* charges the
    /// full cost and then reports failure without running the body, so
    /// the worker re-executes under its retry budget.
    async fn run_smp_body(
        self: &Arc<Self>,
        rec: &TaskRecord,
        space: SpaceId,
        node: NodeId,
    ) -> SimResult<BodyOutcome> {
        let accesses = rec.copy_accesses();
        let mut locs = Vec::with_capacity(accesses.len());
        for a in &accesses {
            locs.push(self.coh.acquire(&*self.exec, &a.region, a.kind.reads(), space).await?);
        }
        let base = match rec.cost {
            TaskCost::Smp(d) => Some(d),
            TaskCost::Auto => {
                // Streaming-kernel default: one pass over the footprint
                // at host memcpy bandwidth.
                let bytes = rec.desc.copy_footprint() as f64;
                Some(SimDuration::from_secs_f64(bytes / self.cfg.gpu_spec.host_memcpy_bandwidth))
            }
            TaskCost::Zero => None,
            TaskCost::Gpu(_) => unreachable!("GPU task routed to an SMP worker"),
        };
        let mut timed_out = false;
        let mut charge = base;
        if let Some(plan) = &self.faults {
            if plan.decide(FaultClass::SimTimeout) {
                timed_out = true;
            } else if plan.decide(FaultClass::SimStall) {
                let b = base.unwrap_or(SimDuration::ZERO);
                let extra = (b.as_nanos() as f64 * plan.fraction(FaultClass::SimStall)) as u64;
                charge = Some(b + SimDuration::from_nanos(extra));
            }
        }
        if let Some(d) = charge {
            delay(d).await?;
        }
        if timed_out {
            for a in &accesses {
                self.coh.unpin(&a.region, space);
            }
            return Ok(BodyOutcome::Failed);
        }
        if self.node_down(node) {
            return Ok(BodyOutcome::Abandoned);
        }
        if let Some(body) = &rec.body {
            let requests: Vec<_> = locs
                .iter()
                .zip(&accesses)
                .map(|(l, a)| (l.space, l.alloc, l.offset, a.region.len))
                .collect();
            match &self.verify {
                Some(sink) => sink.run_observed(
                    &self.mem,
                    rec.desc.id,
                    &rec.desc.label,
                    &accesses,
                    &requests,
                    body,
                ),
                None => {
                    self.mem.with_bytes_many(&requests, |views| body(views));
                }
            }
        }
        self.coh.commit(&*self.exec, &accesses, space).await?;
        Ok(BodyOutcome::Done)
    }

    /// Run `task` on a GPU through its manager's stream, with optional
    /// prefetch of `next` while the kernel executes.
    async fn run_gpu_body(
        self: &Arc<Self>,
        rec: &TaskRecord,
        space: SpaceId,
        node: NodeId,
        stream: &ompss_cudasim::Stream,
        prefetch_next: Option<&TaskRecord>,
    ) -> SimResult<BodyOutcome> {
        let accesses = rec.copy_accesses();
        let locs = self.acquire_all(&accesses, space).await?;
        let cost = match rec.cost {
            TaskCost::Gpu(k) => k,
            TaskCost::Smp(d) => KernelCost::fixed(d),
            TaskCost::Auto => {
                // Streaming-kernel default: the copy clauses name every
                // byte the kernel touches, streamed once at 80% of
                // device memory bandwidth.
                KernelCost::memory_bound(rec.desc.copy_footprint() as f64, 0.8)
            }
            TaskCost::Zero => KernelCost::fixed(SimDuration::ZERO),
        };
        // Launch asynchronously so prefetch can proceed underneath. The
        // effect runs on the stream's own process, so in verification
        // mode the observation wrapper (thread-local access tracker +
        // byte diffing) must travel inside the closure.
        let effect: Option<ompss_cudasim::Effect> = rec.body.as_ref().map(|body| {
            let body = body.clone();
            let mem = self.mem.clone();
            let requests: Vec<_> = locs
                .iter()
                .zip(&accesses)
                .map(|(l, a)| (l.space, l.alloc, l.offset, a.region.len))
                .collect();
            let verify = self.verify.clone();
            let id = rec.desc.id;
            let label = rec.desc.label.clone();
            let declared = accesses.clone();
            Box::new(move || match &verify {
                Some(sink) => sink.run_observed(&mem, id, &label, &declared, &requests, &body),
                None => {
                    mem.with_bytes_many(&requests, |views| body(views));
                }
            }) as ompss_cudasim::Effect
        });
        let ev = stream.launch_async(cost, effect);
        // Prefetch the next task's read data while the kernel runs
        // (§III-D2): effective only with overlap, since pageable copies
        // serialise after the kernel — the cudasim models that.
        if let Some(next) = prefetch_next {
            for a in next.copy_accesses() {
                if a.kind.reads() {
                    self.coh.prefetch(&*self.exec, &a.region, space).await?;
                }
            }
        }
        ev.synchronize().await?;
        if let Some(fault) = ev.fault() {
            // The kernel did not retire: its effect never ran, outputs
            // were not written. Unpin the acquired copies (commit would
            // have) so recovery can re-acquire or invalidate them.
            for a in &accesses {
                self.coh.unpin(&a.region, space);
            }
            return Ok(match fault {
                GpuFault::DeviceLost => BodyOutcome::DeviceLost,
                _ => BodyOutcome::Failed,
            });
        }
        if self.node_down(node) {
            return Ok(BodyOutcome::Abandoned);
        }
        self.coh.commit(&*self.exec, &accesses, space).await?;
        Ok(BodyOutcome::Done)
    }

    /// Account one failed attempt at `rec`'s body. True = retry; false
    /// after aborting the run because the budget ran out.
    fn note_retry(&self, rec: &TaskRecord, attempts: &mut u32) -> bool {
        *attempts += 1;
        if *attempts > self.cfg.task_retry_budget {
            abort_run(RunError::Exhausted {
                what: format!("task '{}' (t{}) re-executions", rec.desc.label, rec.desc.id.0),
                attempts: *attempts,
            });
            return false;
        }
        crate::stats::Counters::add(&self.counters.tasks_reexecuted, 1);
        if let Some(tr) = &self.tracer {
            tr.record(TraceEvent::Recovery {
                kind: "task_retry",
                task: Some(rec.desc.id.0),
                at: now(),
            });
        }
        true
    }

    /// Master-side whole-device loss: blacklist the manager's resource
    /// (migrating its queue), put the in-hand and any prefetched task
    /// back into the graph and scheduler, and drop the dead space's
    /// cached copies. The machine-wide fuse guarantees a surviving
    /// CUDA-capable resource (another local GPU, or the node proxies
    /// when clustered), so nothing becomes unservable here.
    fn master_gpu_lost(
        &self,
        res: ResourceId,
        space: SpaceId,
        tid: TaskId,
        prefetched: Option<TaskId>,
    ) {
        crate::stats::Counters::add(&self.counters.devices_lost, 1);
        {
            let mut m = self.master.lock();
            m.sched.deactivate(res);
            for t in std::iter::once(tid).chain(prefetched) {
                m.graph.reset_running(t);
                let rec = m.records[&t].clone();
                m.sched.submit(&rec.desc, &self.master_oracle);
            }
        }
        self.coh.invalidate_space(space);
        if let Some(tr) = &self.tracer {
            tr.record(TraceEvent::Recovery { kind: "device_lost", task: Some(tid.0), at: now() });
        }
        self.master_bell.ring();
        self.comm_bell.ring();
    }

    /// Master-side completion: release successors, update the
    /// scheduler, wake everyone.
    pub(crate) fn complete_on_master(&self, id: TaskId, res: ResourceId) {
        let rec = {
            let mut m = self.master.lock();
            let mut newly = std::mem::take(&mut m.newly_scratch);
            m.graph.complete_into(id, &mut newly);
            if newly.is_empty() {
                // Common case: nothing released — no allocation at all.
                m.sched.task_completed(res, &[], &self.master_oracle);
            } else {
                let descs: Vec<Arc<TaskRecord>> =
                    newly.iter().map(|t| m.records[t].clone()).collect();
                let desc_refs: Vec<&ompss_core::TaskDesc> = descs.iter().map(|r| &r.desc).collect();
                m.sched.task_completed(res, &desc_refs, &self.master_oracle);
            }
            newly.clear();
            m.newly_scratch = newly;
            m.tasks_executed += 1;
            m.records[&id].clone()
        };
        rec.done.set();
        self.latch.done();
        self.master_bell.ring();
        self.comm_bell.ring();
    }
}

/// SMP worker loop for the master node.
pub(crate) async fn master_smp_worker(shared: Arc<RtShared>, res: ResourceId) {
    let space = shared.hosts[0];
    loop {
        let tid = { shared.master.lock().sched.next(res) };
        let Some(tid) = tid else {
            if shared.master_bell.wait().await.is_err() {
                return;
            }
            continue;
        };
        shared.master.lock().graph.start(tid);
        let rec = shared.record(tid);
        let mut attempts = 0u32;
        loop {
            let t0 = now();
            match shared.run_smp_body(&rec, space, 0).await {
                Err(_) => return,
                Ok(BodyOutcome::Done) => {
                    shared.trace_task(&rec, 0, &format!("worker{}", res.0), t0, now());
                    shared.complete_on_master(tid, res);
                    break;
                }
                Ok(BodyOutcome::Failed) => {
                    if !shared.note_retry(&rec, &mut attempts) {
                        return;
                    }
                }
                Ok(BodyOutcome::DeviceLost) => unreachable!("SMP body cannot lose a device"),
                Ok(BodyOutcome::Abandoned) => unreachable!("node 0 cannot be killed"),
            }
        }
    }
}

/// GPU manager loop for a master-node GPU.
pub(crate) async fn master_gpu_manager(shared: Arc<RtShared>, res: ResourceId, space: SpaceId) {
    let dev = shared.gpus[&space].clone();
    let stream = dev.create_stream(format!("mgr{}", space.0));
    let mut next: Option<TaskId> = None;
    loop {
        let tid = match next.take() {
            Some(t) => t,
            None => {
                let t = { shared.master.lock().sched.next(res) };
                match t {
                    Some(t) => {
                        shared.master.lock().graph.start(t);
                        t
                    }
                    None => {
                        if shared.master_bell.wait().await.is_err() {
                            return;
                        }
                        continue;
                    }
                }
            }
        };
        let rec = shared.record(tid);
        if std::env::var_os("OMPSS_RT_DEBUG").is_some() {
            eprintln!(
                "[rt {:.6}s] node0 gpu runs {} (t{})",
                now().as_secs_f64(),
                rec.desc.label,
                tid.0
            );
        }
        // Pick (and start) a prefetch candidate before launching.
        let pf: Option<Arc<TaskRecord>> = if shared.cfg.prefetch {
            let t = {
                let mut m = shared.master.lock();
                match m.sched.next(res) {
                    Some(n) => {
                        m.graph.start(n);
                        Some(n)
                    }
                    None => None,
                }
            };
            next = t;
            t.map(|n| shared.record(n))
        } else {
            None
        };
        let mut attempts = 0u32;
        loop {
            let t0 = now();
            // Prefetch only rides the first attempt; a retry must not
            // re-issue it (the copies are already inbound or pinned).
            let pf_arg = if attempts == 0 { pf.as_deref() } else { None };
            match shared.run_gpu_body(&rec, space, 0, &stream, pf_arg).await {
                Err(_) => return,
                Ok(BodyOutcome::Done) => {
                    shared.trace_task(&rec, 0, &format!("gpu{}", space.0), t0, now());
                    shared.complete_on_master(tid, res);
                    break;
                }
                Ok(BodyOutcome::Failed) => {
                    if !shared.note_retry(&rec, &mut attempts) {
                        return;
                    }
                }
                Ok(BodyOutcome::DeviceLost) => {
                    shared.master_gpu_lost(res, space, tid, next.take());
                    return;
                }
                Ok(BodyOutcome::Abandoned) => unreachable!("node 0 cannot be killed"),
            }
        }
    }
}

/// The master's communication thread: drains node-proxy queues round
/// robin, staging data and dispatching `Exec` messages, keeping each
/// node at `resources + presend` tasks in flight.
pub(crate) async fn comm_thread(shared: Arc<RtShared>, ep: AmEndpoint<ClusterMsg>) {
    let nodes = shared.cfg.nodes;
    // "Presend" dispatches work to a node before its resources go idle:
    // the cap per device kind is the resource count plus the presend
    // depth (presend 0 = exactly one task per resource in flight).
    let smp_cap = shared.cfg.cpu_workers_per_node + shared.cfg.presend;
    let cuda_cap = shared.cfg.gpus_per_node + shared.cfg.presend;
    let mut cursor = 0u32; // persistent round-robin position over slaves
    loop {
        let mut progressed = false;
        // Round-robin: at most one task per node per visit ("polling the
        // task pool for each node of the cluster in a round-robin
        // fashion", §III-D1), with a persistent cursor so successive
        // dispatches rotate over the nodes; the outer loop keeps
        // sweeping while any node accepted work.
        for step in 0..nodes.saturating_sub(1) {
            let node = 1 + (cursor + step) % (nodes - 1);
            {
                let tid = {
                    let mut m = shared.master.lock();
                    if m.node_dead[node as usize] || m.node_absent[node as usize] {
                        continue;
                    }
                    let (smp_in, cuda_in) = m.inflight[node as usize];
                    if smp_in >= smp_cap && cuda_in >= cuda_cap {
                        continue;
                    }
                    // A node the master knows to be GPU-less gets no
                    // CUDA work (its dispatcher would only bounce it).
                    let cuda_ok = m.cuda_alive[node as usize] > 0;
                    let allow = |d: Device| match d {
                        Device::Smp => smp_in < smp_cap,
                        Device::Cuda => cuda_ok && cuda_in < cuda_cap,
                    };
                    match m.sched.next_matching(shared.proxy_res[node as usize], allow) {
                        Some(t) => {
                            m.graph.start(t);
                            match m.records[&t].desc.device {
                                Device::Smp => m.inflight[node as usize].0 += 1,
                                Device::Cuda => m.inflight[node as usize].1 += 1,
                            }
                            m.dispatched[node as usize].insert(t);
                            t
                        }
                        None => continue,
                    }
                };
                progressed = true;
                cursor = (cursor + step + 1) % (nodes - 1);
                let rec = shared.record(tid);
                let host = shared.slaves[node as usize].host;
                let shared2 = shared.clone();
                let ep2 = ep.clone();
                // Helper process: data staging + Exec message, so sends
                // to different nodes overlap (asynchronous GASNet puts).
                // Staging is node-granular ("a whole remote cluster node
                // is a single device", §III-C3): data already valid in
                // any space of the node needs no push.
                process(format!("comm:push:t{}", tid.0)).daemon().spawn(async move {
                    let node_span = shared2.master_oracle.spans.get(&host);
                    let needed: Vec<_> = rec
                        .copy_accesses()
                        .into_iter()
                        .filter(|a| a.kind.reads())
                        .filter(|a| {
                            !node_span
                                .map(|span| {
                                    shared2.coh.bytes_under(&a.region, span) == a.region.len
                                })
                                .unwrap_or(false)
                        })
                        .collect();
                    // Asynchronous GASNet puts: stage every input at
                    // once, then send the execution request.
                    let latch = ompss_sim::Latch::new();
                    latch.add(needed.len() as u64);
                    for a in needed {
                        let sh = shared2.clone();
                        let latch = latch.clone();
                        process(format!("comm:stage:{}", a.region)).daemon().spawn(async move {
                            let _ = sh.coh.presend(&*sh.exec, &a.region, host).await;
                            latch.done();
                        });
                    }
                    if latch.wait_zero().await.is_err() {
                        return;
                    }
                    crate::stats::Counters::add(&shared2.counters.am_exec, 1);
                    send_msg(&shared2, &ep2, node, "Exec", |rel| ClusterMsg::Exec {
                        task: rec.desc.id,
                        rel,
                    })
                    .await;
                });
            }
        }
        if !progressed && shared.comm_bell.wait().await.is_err() {
            return;
        }
        if progressed {
            // Yield so helpers and other processes advance before the
            // next round-robin sweep.
            if yield_now().await.is_err() {
                return;
            }
        }
    }
}

/// The master's AM dispatcher: completion notifications and inbound
/// data-message sinks.
pub(crate) async fn master_dispatcher(shared: Arc<RtShared>, ep: AmEndpoint<ClusterMsg>) {
    while let Ok((src, msg)) = ep.poll().await {
        match msg {
            ClusterMsg::Done { task, rel } => {
                if !ack_fresh(&shared, &ep, src, rel) {
                    continue;
                }
                let stale = {
                    let mut m = shared.master.lock();
                    if m.node_dead[src as usize] {
                        // The node was declared dead and this task was
                        // already re-homed; the straggler is dropped.
                        true
                    } else {
                        match m.records[&task].desc.device {
                            Device::Smp => m.inflight[src as usize].0 -= 1,
                            Device::Cuda => m.inflight[src as usize].1 -= 1,
                        }
                        m.dispatched[src as usize].remove(&task);
                        false
                    }
                };
                if stale {
                    continue;
                }
                shared.complete_on_master(task, shared.proxy_res[src as usize]);
            }
            ClusterMsg::Failed { task, rel } => {
                if !ack_fresh(&shared, &ep, src, rel) {
                    continue;
                }
                // The node hands the task back: put it into the graph
                // and scheduler again, free its in-flight slot.
                {
                    let mut m = shared.master.lock();
                    if m.node_dead[src as usize] {
                        continue;
                    }
                    match m.records[&task].desc.device {
                        Device::Smp => m.inflight[src as usize].0 -= 1,
                        Device::Cuda => m.inflight[src as usize].1 -= 1,
                    }
                    m.dispatched[src as usize].remove(&task);
                    m.graph.reset_running(task);
                    let rec = m.records[&task].clone();
                    m.sched.submit(&rec.desc, &shared.master_oracle);
                }
                shared.master_bell.ring();
                shared.comm_bell.ring();
            }
            ClusterMsg::GpuDown { rel } => {
                if !ack_fresh(&shared, &ep, src, rel) {
                    continue;
                }
                {
                    let mut m = shared.master.lock();
                    if m.node_dead[src as usize] {
                        continue;
                    }
                    m.cuda_alive[src as usize] = m.cuda_alive[src as usize].saturating_sub(1);
                    if m.cuda_alive[src as usize] == 0 {
                        // The node can never again serve CUDA: stop
                        // placing/hinting CUDA tasks on its proxy and
                        // migrate any already queued there to the
                        // global queue for the surviving GPUs.
                        m.sched.forbid(shared.proxy_res[src as usize], Device::Cuda);
                    }
                }
                shared.master_bell.ring();
                shared.comm_bell.ring();
            }
            ClusterMsg::Pong { node } => {
                if let Some(lease) = &shared.lease {
                    lease.lock().beat(node, now());
                }
            }
            ClusterMsg::Ack { id } => {
                if let Some(r) = &shared.rel {
                    r.on_ack(id);
                }
            }
            ClusterMsg::Data => {}
            ClusterMsg::Exec { .. } | ClusterMsg::Ping => {
                unreachable!("master never receives Exec/Ping")
            }
        }
    }
}

/// A slave node's AM dispatcher: receives `Exec` requests and submits
/// them to the local scheduler.
pub(crate) async fn slave_dispatcher(
    shared: Arc<RtShared>,
    node: NodeId,
    ep: AmEndpoint<ClusterMsg>,
) {
    while let Ok((src, msg)) = ep.poll().await {
        if shared.node_down(node) {
            // A dead machine processes nothing. (The fabric already
            // suppresses delivery to a killed node; this also covers
            // messages queued before the kill instant.)
            return;
        }
        match msg {
            ClusterMsg::Exec { task, rel } => {
                if !ack_fresh(&shared, &ep, src, rel) {
                    continue;
                }
                let rec = shared.record(task);
                let slave = &shared.slaves[node as usize];
                let orphans = {
                    let mut s = slave.sched.lock();
                    s.submit(&rec.desc, &shared.slave_oracles[node as usize]);
                    if slave.gpu_lost.load(Relaxed) {
                        // This Exec may have raced the GpuDown notice:
                        // hand back anything no local resource serves.
                        s.drain_unservable()
                    } else {
                        Vec::new()
                    }
                };
                for t in orphans {
                    let shared2 = shared.clone();
                    let ep2 = ep.clone();
                    process(format!("bounce:t{}", t.0)).daemon().spawn(async move {
                        send_msg(&shared2, &ep2, 0, "Failed", |rel| ClusterMsg::Failed {
                            task: t,
                            rel,
                        })
                        .await;
                    });
                }
                slave.bell.ring();
            }
            ClusterMsg::Ping => {
                // Renew the master's lease on this node. Detached and
                // unacknowledged by design: a silent node is the signal.
                let _ = ep.request_short_detached(0, ClusterMsg::Pong { node });
            }
            ClusterMsg::Ack { id } => {
                if let Some(r) = &shared.rel {
                    r.on_ack(id);
                }
            }
            ClusterMsg::Data => {}
            _ => unreachable!("slaves receive only Exec/Ping/Ack/Data"),
        }
    }
}

/// SMP worker loop on a slave node.
pub(crate) async fn slave_smp_worker(
    shared: Arc<RtShared>,
    node: NodeId,
    res: ResourceId,
    ep: AmEndpoint<ClusterMsg>,
) {
    let space = shared.slaves[node as usize].host;
    loop {
        if shared.node_down(node) {
            return;
        }
        let tid = { shared.slaves[node as usize].sched.lock().next(res) };
        let Some(tid) = tid else {
            if shared.slaves[node as usize].bell.wait().await.is_err() {
                return;
            }
            continue;
        };
        let rec = shared.record(tid);
        let mut attempts = 0u32;
        loop {
            let t0 = now();
            match shared.run_smp_body(&rec, space, node).await {
                Err(_) => return,
                Ok(BodyOutcome::Done) => {
                    shared.trace_task(&rec, node, &format!("worker{}", res.0), t0, now());
                    crate::stats::Counters::add(&shared.counters.am_done, 1);
                    send_msg(&shared, &ep, 0, "Done", |rel| ClusterMsg::Done { task: tid, rel })
                        .await;
                    break;
                }
                Ok(BodyOutcome::Failed) => {
                    if !shared.note_retry(&rec, &mut attempts) {
                        return;
                    }
                }
                Ok(BodyOutcome::DeviceLost) => unreachable!("SMP body cannot lose a device"),
                Ok(BodyOutcome::Abandoned) => return,
            }
        }
    }
}

/// GPU manager loop on a slave node.
pub(crate) async fn slave_gpu_manager(
    shared: Arc<RtShared>,
    node: NodeId,
    res: ResourceId,
    space: SpaceId,
    ep: AmEndpoint<ClusterMsg>,
) {
    let dev = shared.gpus[&space].clone();
    let stream = dev.create_stream(format!("mgr{}", space.0));
    let mut next: Option<TaskId> = None;
    loop {
        if shared.node_down(node) {
            return;
        }
        let tid = match next.take() {
            Some(t) => t,
            None => {
                let t = { shared.slaves[node as usize].sched.lock().next(res) };
                match t {
                    Some(t) => t,
                    None => {
                        if shared.slaves[node as usize].bell.wait().await.is_err() {
                            return;
                        }
                        continue;
                    }
                }
            }
        };
        let rec = shared.record(tid);
        if std::env::var_os("OMPSS_RT_DEBUG").is_some() {
            eprintln!(
                "[rt {:.6}s] node{node} gpu runs {} (t{})",
                now().as_secs_f64(),
                rec.desc.label,
                tid.0
            );
        }
        let pf: Option<Arc<TaskRecord>> = if shared.cfg.prefetch {
            let t = { shared.slaves[node as usize].sched.lock().next(res) };
            next = t;
            t.map(|n| shared.record(n))
        } else {
            None
        };
        let mut attempts = 0u32;
        loop {
            let t0 = now();
            let pf_arg = if attempts == 0 { pf.as_deref() } else { None };
            match shared.run_gpu_body(&rec, space, node, &stream, pf_arg).await {
                Err(_) => return,
                Ok(BodyOutcome::Done) => {
                    shared.trace_task(&rec, node, &format!("gpu{}", space.0), t0, now());
                    crate::stats::Counters::add(&shared.counters.am_done, 1);
                    send_msg(&shared, &ep, 0, "Done", |rel| ClusterMsg::Done { task: tid, rel })
                        .await;
                    break;
                }
                Ok(BodyOutcome::Failed) => {
                    if !shared.note_retry(&rec, &mut attempts) {
                        return;
                    }
                }
                Ok(BodyOutcome::DeviceLost) => {
                    slave_gpu_lost(&shared, node, res, space, tid, next.take(), &ep);
                    return;
                }
                Ok(BodyOutcome::Abandoned) => return,
            }
        }
    }
}

/// Slave-side whole-device loss: blacklist the manager's resource in
/// the local scheduler (migrating its queue), re-queue the in-hand and
/// any prefetched task, then hand everything the node can no longer
/// serve back to the master as `Failed` — after a `GpuDown` notice so
/// the master throttles CUDA dispatch to this node.
#[allow(clippy::too_many_arguments)]
fn slave_gpu_lost(
    shared: &Arc<RtShared>,
    node: NodeId,
    res: ResourceId,
    space: SpaceId,
    tid: TaskId,
    prefetched: Option<TaskId>,
    ep: &AmEndpoint<ClusterMsg>,
) {
    crate::stats::Counters::add(&shared.counters.devices_lost, 1);
    let slave = &shared.slaves[node as usize];
    slave.gpu_lost.store(true, Relaxed);
    let requeue: Vec<Arc<TaskRecord>> =
        std::iter::once(tid).chain(prefetched).map(|t| shared.record(t)).collect();
    let orphans = {
        let mut s = slave.sched.lock();
        s.deactivate(res);
        for rec in &requeue {
            s.submit(&rec.desc, &shared.slave_oracles[node as usize]);
        }
        s.drain_unservable()
    };
    shared.coh.invalidate_space(space);
    if let Some(tr) = &shared.tracer {
        tr.record(TraceEvent::Recovery { kind: "device_lost", task: Some(tid.0), at: now() });
    }
    let shared2 = shared.clone();
    let ep2 = ep.clone();
    process(format!("gpu-down:n{node}")).daemon().spawn(async move {
        send_msg(&shared2, &ep2, 0, "GpuDown", |rel| ClusterMsg::GpuDown { rel }).await;
        for t in orphans {
            send_msg(&shared2, &ep2, 0, "Failed", |rel| ClusterMsg::Failed { task: t, rel }).await;
        }
    });
    slave.bell.ring();
}

/// The planned node-kill: at the armed virtual instant the slave's
/// ground-truth dead flag goes up (its processes stop before their next
/// commit) and its NIC goes silent — messages to or from it still
/// occupy the wire but never deliver. Nothing on the master changes
/// here: detection is the lease protocol's job.
pub(crate) async fn node_kill(
    shared: Arc<RtShared>,
    fabric: Fabric<ClusterMsg>,
    node: NodeId,
    at: SimDuration,
) {
    match shared.done.wait_timeout(at).await {
        Ok(false) => {} // the planned instant arrived mid-run: kill
        _ => return,    // program finished first (or shutdown): stand down
    }
    shared.slaves[node as usize].dead.store(true, Relaxed);
    fabric.kill_node(node);
    if let Some(plan) = &shared.faults {
        plan.note_injected(FaultClass::NodeLoss);
    }
    // Wake the node's parked processes so they observe the flag and
    // stop instead of sleeping through their own death.
    shared.slaves[node as usize].bell.ring();
}

/// The planned node-join: at the armed virtual instant the new node's
/// NIC comes on the wire, the master adopts its proxy resource (with
/// affinity tie-breaks restored), its heartbeat lease starts fresh, and
/// — under sharded control — membership advances one epoch and the
/// slices the new member now owns are re-homed onto it, registry first.
/// The whole master-side handshake is atomic in virtual time (one
/// critical section, no yields), so the rest of the machine observes
/// either the pre-join cluster or the fully joined one; the epoch's
/// handoff window opens and seals inside that same section.
pub(crate) async fn node_join(
    shared: Arc<RtShared>,
    fabric: Fabric<ClusterMsg>,
    node: NodeId,
    at: SimDuration,
) {
    match shared.done.wait_timeout(at).await {
        Ok(false) => {} // the planned instant arrived mid-run: join
        _ => return,    // program finished first (or shutdown): stand down
    }
    if shared.node_down(node) {
        return; // killed before it came up: it stays down
    }
    fabric.set_online(node);
    let mut regions_moved = 0u64;
    let mut bytes_moved = 0u64;
    {
        let mut m = shared.master.lock();
        m.node_absent[node as usize] = false;
        m.sched.adopt(shared.proxy_res[node as usize]);
        if let Some(lease) = &shared.lease {
            // The joiner's lease begins now — silence before the join
            // was absence, not failure.
            lease.lock().track(node, now());
        }
        if let Some(membership) = &shared.membership {
            let mut ms = membership.lock();
            ms.join(node);
            // Rebalance: every slice whose owner the new epoch changed
            // is re-homed, registry first. A slice whose copies are
            // busy (pinned or mid-transfer) simply stays put — the
            // registry remains authoritative either way, so resolution
            // keeps returning real bytes; this is an optimisation, not
            // a correctness requirement, unlike the drain's migration.
            for h in 0..shared.cfg.nodes as usize {
                for (data, size) in shared.mem.datas_homed_at(shared.hosts[h]) {
                    let owner = ms.owner(data) as usize;
                    if m.node_dead[owner] {
                        continue; // crashed members never receive slices
                    }
                    let new_home = shared.hosts[owner];
                    if new_home == shared.hosts[h] || !shared.coh.migrate_ready(data, new_home) {
                        continue;
                    }
                    let info = shared.mem.data_info(data);
                    let Ok(new_alloc) = shared.mem.rehome_data(data, new_home) else {
                        continue; // new owner out of memory: stays put
                    };
                    let (r, b) = shared.coh.migrate_home(
                        data,
                        size,
                        (info.home_space, info.home_alloc),
                        new_home,
                        new_alloc,
                    );
                    regions_moved += r as u64;
                    bytes_moved += b;
                }
            }
            ms.seal();
        }
    }
    crate::stats::Counters::add(&shared.counters.nodes_joined, 1);
    crate::stats::Counters::add(&shared.counters.regions_rebalanced, regions_moved);
    crate::stats::Counters::add(&shared.counters.bytes_migrated, bytes_moved);
    if let Some(tr) = &shared.tracer {
        tr.record(TraceEvent::Recovery { kind: "node_join", task: None, at: now() });
    }
    // Wake the joiner's parked workers and the master's dispatch loops:
    // there is a new node to feed.
    shared.slaves[node as usize].bell.ring();
    shared.master_bell.ring();
    shared.comm_bell.ring();
}

/// The planned node-drain — graceful elastic departure, the inverse of
/// [`node_join`]. No fault semantics: nothing is lost, nothing is
/// replayed. The state machine:
///
/// 1. **Quiesce** — withdraw the node's proxy so no new work is placed
///    on it (tasks only it could serve fail closed, as with a loss).
/// 2. **Drain** — wait until every task already dispatched there has
///    completed. A kill racing the drain abandons the protocol here:
///    the lease monitor's crash recovery owns the node from then on.
/// 3. **Flush** — write every dirty region cached on the node back to
///    its home over the modeled wire (the drain's data cost).
/// 4. **Re-home** — under sharded control, advance membership one epoch
///    (opening the two-epoch handoff window) and move every slice homed
///    on the leaver to its new owner, registry first; the flat plane
///    re-homes onto the master. Busy slices are retried on a short
///    period and fail closed ([`RunError::Exhausted`]) when the budget
///    runs out — wrong bytes are never served.
/// 5. **Depart** — seal the epoch, purge the node's spaces (anything
///    still stranded fails closed), retire its lease, and take it off
///    the wire.
pub(crate) async fn node_drain(
    shared: Arc<RtShared>,
    fabric: Fabric<ClusterMsg>,
    node: NodeId,
    at: SimDuration,
) {
    match shared.done.wait_timeout(at).await {
        Ok(false) => {} // the planned instant arrived mid-run: drain
        _ => return,    // program finished first (or shutdown): stand down
    }
    // 1. Quiesce: no new dispatch to the leaver.
    {
        let mut m = shared.master.lock();
        if m.node_dead[node as usize] || m.node_absent[node as usize] || shared.node_down(node) {
            return; // already gone (killed, or never joined): nothing to drain
        }
        let orphans = m.sched.withdraw(shared.proxy_res[node as usize]);
        if !orphans.is_empty() {
            drop(m);
            abort_run(RunError::Exhausted {
                what: format!("placements for tasks only draining node {node} could serve"),
                attempts: orphans.len() as u32,
            });
            return;
        }
    }
    // 2. Drain in-flight work. Polled on a short virtual period: cheap
    // in events, and immune to completions that ring no bell.
    let poll = SimDuration::from_micros(50);
    loop {
        {
            let m = shared.master.lock();
            if m.node_dead[node as usize] || shared.node_down(node) {
                return; // killed mid-drain: crash recovery owns the node now
            }
            if m.dispatched[node as usize].is_empty() {
                break;
            }
        }
        if delay(poll).await.is_err() {
            return;
        }
    }
    // 3. Flush dirty regions home. The withdrawn node runs no further
    // tasks, so no new dirty copy can appear behind the sweep.
    let mut bytes_moved = 0u64;
    for region in shared.coh.dirty_regions_at(&shared.node_spaces[node as usize]) {
        if shared.node_down(node) {
            return;
        }
        if shared.coh.flush_region(&*shared.exec, &region).await.is_err() {
            return;
        }
        bytes_moved += region.len;
    }
    // 4. Re-home every slice the leaver homes. The epoch advances
    // before any slice moves, so lookups that race the migration
    // resolve through the two-epoch window; each move is registry-first
    // and atomic in virtual time, so neither registry ever points at
    // bytes that are not there.
    {
        let m = shared.master.lock();
        if m.node_dead[node as usize] || shared.node_down(node) {
            return;
        }
        if let Some(membership) = &shared.membership {
            membership.lock().drain(node);
        }
    }
    let leaver_host = shared.hosts[node as usize];
    let mut regions_moved = 0u64;
    let mut attempts = 0u32;
    loop {
        let busy = {
            let m = shared.master.lock();
            if m.node_dead[node as usize] || shared.node_down(node) {
                return;
            }
            let mut busy = 0usize;
            for (data, size) in shared.mem.datas_homed_at(leaver_host) {
                let owner = match &shared.membership {
                    Some(ms) => ms.lock().owner(data),
                    None => 0, // flat plane: everything re-homes onto the master
                };
                // A *crashed* member is invisible to the epoch map
                // (only joins and drains advance it). Never re-home
                // onto a dead node: the master adopts those slices.
                let owner = if m.node_dead[owner as usize] { 0 } else { owner };
                let new_home = shared.hosts[owner as usize];
                if !shared.coh.migrate_ready(data, new_home) {
                    busy += 1;
                    continue;
                }
                let info = shared.mem.data_info(data);
                let new_alloc = match shared.mem.rehome_data(data, new_home) {
                    Ok(a) => a,
                    Err(e) => {
                        drop(m);
                        abort_run(RunError::Exhausted {
                            what: format!("re-homing {data:?} off draining node {node}: {e}"),
                            attempts: 1,
                        });
                        return;
                    }
                };
                let (r, b) = shared.coh.migrate_home(
                    data,
                    size,
                    (info.home_space, info.home_alloc),
                    new_home,
                    new_alloc,
                );
                regions_moved += r as u64;
                bytes_moved += b;
            }
            busy
        };
        if busy == 0 {
            break;
        }
        attempts += 1;
        if attempts > 64 {
            abort_run(RunError::Exhausted {
                what: format!("{busy} slices stayed busy while node {node} drained"),
                attempts,
            });
            return;
        }
        if delay(poll).await.is_err() {
            return;
        }
    }
    // 5. Depart.
    {
        let mut m = shared.master.lock();
        if m.node_dead[node as usize] || shared.node_down(node) {
            return;
        }
        if let Some(membership) = &shared.membership {
            membership.lock().seal();
        }
        let lost = shared.coh.purge_spaces(&shared.node_spaces[node as usize]);
        if !lost.is_empty() {
            drop(m);
            abort_run(RunError::Exhausted {
                what: format!("{} regions were still live on node {node} at departure", lost.len()),
                attempts: 1,
            });
            return;
        }
        m.node_dead[node as usize] = true;
        m.cuda_alive[node as usize] = 0;
        m.inflight[node as usize] = (0, 0);
        if let Some(lease) = &shared.lease {
            lease.lock().untrack(node);
        }
    }
    shared.slaves[node as usize].dead.store(true, Relaxed);
    fabric.set_offline(node);
    crate::stats::Counters::add(&shared.counters.nodes_drained, 1);
    crate::stats::Counters::add(&shared.counters.regions_rebalanced, regions_moved);
    crate::stats::Counters::add(&shared.counters.bytes_migrated, bytes_moved);
    if let Some(tr) = &shared.tracer {
        tr.record(TraceEvent::Recovery { kind: "node_drain", task: None, at: now() });
    }
    shared.slaves[node as usize].bell.ring();
    shared.master_bell.ring();
    shared.comm_bell.ring();
}

/// The master's lease monitor (armed-only): probes every live slave on
/// the heartbeat period, charges missed renewals, and hands nodes whose
/// lease expired to [`master_node_lost`].
pub(crate) async fn lease_monitor(shared: Arc<RtShared>, ep: AmEndpoint<ClusterMsg>) {
    let Some(lease) = &shared.lease else { return };
    let period = lease.lock().config().period;
    loop {
        match shared.done.wait_timeout(period).await {
            Ok(false) => {} // a full period elapsed mid-run: probe
            _ => return,    // program finished (or shutdown): stand down
        }
        let dead = {
            let mut l = lease.lock();
            let before = l.missed();
            let dead = l.expired(now());
            crate::stats::Counters::add(&shared.counters.heartbeats_missed, l.missed() - before);
            dead
        };
        for node in dead {
            master_node_lost(&shared, node);
        }
        let mut any_live = false;
        for n in 1..shared.cfg.nodes {
            // Only tracked nodes are probed: an armed joiner has no
            // lease until it comes up, a drained node retired its lease
            // at departure — silence from either is not a failure.
            let live = {
                let l = lease.lock();
                l.is_tracked(n) && !l.is_declared_dead(n)
            };
            if live {
                any_live = true;
                let _ = ep.request_short_detached(n, ClusterMsg::Ping);
            }
        }
        if !any_live {
            return;
        }
    }
}

/// Master-side whole-node loss, run at lease expiry — atomically in
/// virtual time (no yields), so the rest of the machine observes either
/// the pre-loss or the fully recovered state:
///
/// 1. withdraw the node's proxy resource (tasks only it could serve are
///    fail-closed [`RunError::Exhausted`]),
/// 2. re-home every task dispatched to it and not yet finished,
/// 3. abandon reliable exchanges aimed at it (parked senders resolve),
/// 4. purge its spaces from the coherence directory, and
/// 5. reconstruct regions whose latest version lived only there by
///    lineage re-execution ([`crate::lineage`]), rolling the version
///    back to the rebuilt point so re-homed writers re-commit on top.
pub(crate) fn master_node_lost(shared: &Arc<RtShared>, node: NodeId) {
    crate::stats::Counters::add(&shared.counters.nodes_lost, 1);
    if let Some(tr) = &shared.tracer {
        tr.record(TraceEvent::Recovery { kind: "node_lost", task: None, at: now() });
    }
    {
        let mut m = shared.master.lock();
        m.node_dead[node as usize] = true;
        m.cuda_alive[node as usize] = 0;
        m.inflight[node as usize] = (0, 0);
        let orphans = m.sched.withdraw(shared.proxy_res[node as usize]);
        if !orphans.is_empty() {
            drop(m);
            abort_run(RunError::Exhausted {
                what: format!("placements for tasks only lost node {node} could serve"),
                attempts: orphans.len() as u32,
            });
            return;
        }
        let stranded: Vec<TaskId> =
            std::mem::take(&mut m.dispatched[node as usize]).into_iter().collect();
        for t in stranded {
            m.graph.reset_running(t);
            let rec = m.records[&t].clone();
            m.sched.submit(&rec.desc, &shared.master_oracle);
        }
        if let Some(r) = &shared.rel {
            r.abandon_node(node);
        }
        let lost = shared.coh.purge_spaces(&shared.node_spaces[node as usize]);
        // Sharded control plane: the dead node may have *homed* part of
        // the data space. Re-home its shard onto the master — registry
        // first (so lineage replay targets the new home), then the
        // directory, which pulls the best surviving bytes into the new
        // home copy. No surviving copy, a coverage gap, or a busy copy
        // at the new home fails closed: wrong bytes are never served.
        let dead_host = shared.hosts[node as usize];
        for (data, size) in shared.mem.datas_homed_at(dead_host) {
            let new_alloc = match shared.mem.rehome_data(data, shared.hosts[0]) {
                Ok(a) => a,
                Err(e) => {
                    drop(m);
                    abort_run(RunError::Exhausted {
                        what: format!("master memory re-homing shard of node {node}: {e}"),
                        attempts: 1,
                    });
                    return;
                }
            };
            if let Err(e) = shared.coh.rehome_data(data, size, shared.hosts[0], new_alloc) {
                drop(m);
                abort_run(RunError::Exhausted {
                    what: format!("re-homing {data:?} off dead node {node}: {e}"),
                    attempts: 1,
                });
                return;
            }
        }
        if let Err(e) = crate::lineage::reconstruct(shared, &m, &lost) {
            drop(m);
            abort_run(e);
            return;
        }
    }
    shared.master_bell.ring();
    shared.comm_bell.ring();
}

/// Send one control message: reliably (park until the ack arrives,
/// retransmitting on timeout) when chaos is armed, as a plain
/// fire-and-forget active message otherwise.
async fn send_msg(
    shared: &Arc<RtShared>,
    ep: &AmEndpoint<ClusterMsg>,
    dst: NodeId,
    what: &str,
    make: impl Fn(Option<u64>) -> ClusterMsg,
) {
    match &shared.rel {
        Some(r) => {
            let _ = r
                .send_reliable(&shared.counters, what, ep.node(), dst, |id| {
                    ep.request_short(dst, make(Some(id)))
                })
                .await;
        }
        None => {
            let _ = ep.request_short(dst, make(None)).await;
        }
    }
}

/// Ack a received control message and report whether it is fresh
/// (first delivery). Duplicates are re-acked — the sender may have
/// missed the first ack — but must not be reprocessed.
fn ack_fresh(
    shared: &Arc<RtShared>,
    ep: &AmEndpoint<ClusterMsg>,
    src: NodeId,
    rel: Option<u64>,
) -> bool {
    let Some(id) = rel else { return true };
    let _ = ep.request_short_detached(src, ClusterMsg::Ack { id });
    shared.rel.as_ref().map(|r| r.should_process(id)).unwrap_or(true)
}

/// Device-kind check used by the submit path to validate task specs.
pub(crate) fn device_has_resource(cfg: &crate::config::RuntimeConfig, d: Device) -> bool {
    match d {
        Device::Smp => cfg.cpu_workers_per_node > 0,
        Device::Cuda => cfg.gpus_per_node > 0,
    }
}
