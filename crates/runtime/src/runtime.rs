//! The public runtime API: build a machine from a [`RuntimeConfig`],
//! run an OmpSs program against it, and collect a [`RunReport`].
//!
//! The user program is an `async` closure receiving an [`Omp`] handle —
//! the programming model surface: allocate arrays, submit tasks built
//! with [`TaskSpec`](crate::TaskSpec), and synchronise with
//! `taskwait().await`. The same program runs unchanged on one GPU, a
//! multi-GPU node, or a cluster of GPU nodes — only the config differs
//! (the paper's central productivity claim).

use std::future::Future;
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use parking_lot::Mutex;

use ompss_coherence::{
    CachePolicy, Coherence, CoherenceStats, MembershipEpochs, ShardMap, Topology,
};
use ompss_core::{TaskGraph, TaskId};
use ompss_cudasim::{GpuDevice, GpuStats, PinnedPool};
use ompss_json::{Json, ToJson};
use ompss_mem::{DataId, MemoryManager, Region, Scalar, SpaceId, SpaceKind};
use ompss_net::{AmNet, AmStats, NetStats};
use ompss_sched::{ResourceInfo, ResourceKind, SchedStats, Scheduler};
use ompss_sim::{
    delay, now, process, Bell, DeviceFuse, FaultClass, FaultPlan, FaultStats, Latch, RunError,
    Signal, Sim, SimDuration, SimTime,
};

use crate::config::RuntimeConfig;
use crate::engine::{
    comm_thread, device_has_resource, lease_monitor, master_dispatcher, master_gpu_manager,
    master_smp_worker, node_drain, node_join, node_kill, slave_dispatcher, slave_gpu_manager,
    slave_smp_worker, MasterState, RtShared, SlaveState, SpanOracle,
};
use crate::exec::RtExec;
use crate::recover::Reliability;
use crate::stats::{CounterSnapshot, Counters};
use crate::task::TaskSpec;
use crate::trace::{TraceEvent, Tracer};
use crate::verify::{VerifyData, VerifySink};

/// Measured outcome of a run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Virtual time from program start to the end of the user closure
    /// (including its implicit final `taskwait`).
    pub elapsed: SimDuration,
    /// Absolute end time of the program.
    pub makespan: SimTime,
    /// Tasks executed.
    pub tasks: u64,
    /// Fabric traffic.
    pub net: NetStats,
    /// Active-message counts by wire kind (short/long).
    pub am: AmStats,
    /// Coherence activity.
    pub coherence: CoherenceStats,
    /// Master scheduler decisions.
    pub sched: SchedStats,
    /// Per-GPU device counters, `(name, stats)`, sorted by name.
    pub gpus: Vec<(String, GpuStats)>,
    /// The always-on runtime counter registry: per-resource busy time,
    /// bytes by medium, AM counts by protocol kind.
    pub counters: CounterSnapshot,
    /// DES events processed (a determinism fingerprint).
    pub events: u64,
    /// Distinct virtual-clock advances in the DES kernel.
    pub clock_advances: u64,
    /// Host wall-clock nanoseconds the DES kernel spent running this
    /// program. **Not deterministic** — it varies run to run and host
    /// to host, so [`ToJson`] leaves it out; use [`Self::events_per_sec`]
    /// or read it directly for wall-clock reporting (`bench_sim`).
    pub host_ns: u64,
    /// Wakeups the kernel's dedup fast path skipped (they could only
    /// ever have popped stale). Zero under `OMPSS_SIM_NO_FASTPATH=1`;
    /// excluded from the JSON report for that reason.
    pub wakes_coalesced: u64,
    /// Execution trace, when [`RuntimeConfig::tracing`] was enabled.
    pub trace: Option<Vec<TraceEvent>>,
    /// Verification evidence, when [`RuntimeConfig::verify`] was
    /// enabled: per-task observed accesses, graph lints, and races
    /// among the observations. The `ompss-verify` crate turns this
    /// into findings.
    pub verify: Option<VerifyData>,
    /// Injection tallies of the armed fault plan; `None` in fault-free
    /// runs.
    pub faults: Option<FaultStats>,
}

impl RunReport {
    /// Per-resource utilisation from the always-on counters:
    /// `(node, name, tasks, busy_ns, busy/makespan)`.
    pub fn utilisation(&self) -> Vec<(u32, String, u64, u64, f64)> {
        self.counters.utilisation(self.makespan.as_nanos())
    }

    /// Host throughput of the simulation that produced this report:
    /// DES events per host second. Like [`Self::host_ns`] this is a
    /// wall-clock measurement, not a deterministic field.
    pub fn events_per_sec(&self) -> f64 {
        if self.host_ns == 0 {
            return 0.0;
        }
        self.events as f64 / (self.host_ns as f64 / 1e9)
    }
}

impl ToJson for RunReport {
    fn to_json(&self) -> Json {
        let mut gpus = Json::array();
        for (name, g) in &self.gpus {
            gpus.push(
                Json::object()
                    .field("name", name.as_str())
                    .field("kernels", g.kernels)
                    .field("kernel_time_ns", g.kernel_time.as_nanos())
                    .field("h2d_copies", g.h2d_copies)
                    .field("h2d_bytes", g.h2d_bytes)
                    .field("d2h_copies", g.d2h_copies)
                    .field("d2h_bytes", g.d2h_bytes)
                    .field("pinned_bytes", g.pinned_bytes)
                    .field("pageable_bytes", g.pageable_bytes)
                    .field("copy_time_ns", g.copy_time.as_nanos()),
            );
        }
        let mut utilisation = Json::array();
        for (node, name, tasks, busy_ns, u) in self.utilisation() {
            utilisation.push(
                Json::object()
                    .field("node", node)
                    .field("name", name)
                    .field("tasks", tasks)
                    .field("busy_ns", busy_ns)
                    .field("utilisation", u),
            );
        }
        let mut j = Json::object()
            .field("elapsed_ns", self.elapsed.as_nanos())
            .field("makespan_ns", self.makespan.as_nanos())
            .field("tasks", self.tasks)
            .field(
                "net",
                Json::object()
                    .field("bytes_total", self.net.bytes_total)
                    .field("messages", self.net.messages)
                    .field("tx_bytes", self.net.tx_bytes.as_slice())
                    .field("rx_bytes", self.net.rx_bytes.as_slice())
                    .field("master_link_bytes", self.net.master_link_bytes())
                    .field("slave_link_bytes", self.net.slave_link_bytes())
                    .field("am_shorts", self.am.shorts)
                    .field("am_longs", self.am.longs)
                    .field("am_long_payload_bytes", self.am.long_payload_bytes),
            )
            .field(
                "coherence",
                Json::object()
                    .field("hits", self.coherence.hits)
                    .field("misses", self.coherence.misses)
                    .field("transfers", self.coherence.transfers)
                    .field("bytes_moved", self.coherence.bytes_moved)
                    .field("pcie_bytes", self.coherence.pcie_bytes)
                    .field("net_bytes", self.coherence.net_bytes)
                    .field("demand_bytes", self.coherence.demand_bytes)
                    .field("prefetch_bytes", self.coherence.prefetch_bytes)
                    .field("presend_bytes", self.coherence.presend_bytes)
                    .field("push_bytes", self.coherence.push_bytes)
                    .field("flush_bytes", self.coherence.flush_bytes)
                    .field("writebacks", self.coherence.writebacks)
                    .field("writeback_bytes", self.coherence.writeback_bytes)
                    .field("evictions", self.coherence.evictions),
            )
            .field(
                "sched",
                Json::object()
                    .field("local_hits", self.sched.local_hits)
                    .field("global_hits", self.sched.global_hits)
                    .field("steals", self.sched.steals)
                    .field("successor_hits", self.sched.successor_hits)
                    .field("submitted", self.sched.submitted)
                    .field("max_queued", self.sched.max_queued),
            )
            .field("gpus", gpus)
            .field("counters", self.counters.to_json())
            .field("utilisation", utilisation)
            .field("events", self.events)
            .field("clock_advances", self.clock_advances);
        if let Some(f) = &self.faults {
            j = j.field(
                "faults",
                Json::object()
                    .field("injected", f.total())
                    .field("net_drop", f.count(FaultClass::NetDrop))
                    .field("net_dup", f.count(FaultClass::NetDup))
                    .field("net_delay", f.count(FaultClass::NetDelay))
                    .field("kernel_fail", f.count(FaultClass::KernelFail))
                    .field("copy_corrupt", f.count(FaultClass::CopyCorrupt))
                    .field("device_loss", f.count(FaultClass::DeviceLoss))
                    .field("sim_stall", f.count(FaultClass::SimStall))
                    .field("sim_timeout", f.count(FaultClass::SimTimeout))
                    .field("node_loss", f.count(FaultClass::NodeLoss)),
            );
        }
        j
    }
}

/// A handle to one submitted task, returned by [`Omp::submit`]. Lets a
/// program wait on that task alone (finer than a full `taskwait`).
#[derive(Clone)]
pub struct TaskHandle {
    id: TaskId,
    done: Signal,
}

impl TaskHandle {
    /// The runtime-assigned task id.
    pub fn id(&self) -> u64 {
        self.id.0
    }
}

/// A typed handle to a runtime-registered array living in the master's
/// host memory, addressed by dependence clauses through byte regions.
pub struct ArrayHandle<T: Scalar> {
    data: DataId,
    len: usize,
    _t: PhantomData<T>,
}

impl<T: Scalar> Clone for ArrayHandle<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T: Scalar> Copy for ArrayHandle<T> {}

impl<T: Scalar> ArrayHandle<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The underlying data object.
    pub fn data(&self) -> DataId {
        self.data
    }

    /// Byte region covering elements `range` — what a dependence clause
    /// like `input([BS] &a[j])` evaluates to.
    pub fn region(&self, range: Range<usize>) -> Region {
        assert!(range.start < range.end && range.end <= self.len, "region out of bounds");
        let es = std::mem::size_of::<T>() as u64;
        Region::new(self.data, range.start as u64 * es, (range.end - range.start) as u64 * es)
    }

    /// Byte region covering the whole array.
    pub fn full(&self) -> Region {
        self.region(0..self.len)
    }
}

/// A bare handle in a dependence clause means "the whole array" —
/// `input(a)` reads like `input([N]a)` in the pragma syntax.
impl<T: Scalar> From<ArrayHandle<T>> for Region {
    fn from(h: ArrayHandle<T>) -> Region {
        h.full()
    }
}

impl<T: Scalar> From<&ArrayHandle<T>> for Region {
    fn from(h: &ArrayHandle<T>) -> Region {
        h.full()
    }
}

/// The OmpSs programming-model handle passed to the user program.
///
/// Clones share the same runtime; the handle is freely movable into
/// helper processes spawned by the program.
#[derive(Clone)]
pub struct Omp {
    shared: Arc<RtShared>,
}

impl Omp {
    /// Current virtual time (for phase timing in harnesses).
    pub fn now(&self) -> SimTime {
        now()
    }

    /// The machine's memory manager (host-side initialisation and
    /// validation go straight to the home allocations).
    pub fn mem(&self) -> &Arc<MemoryManager> {
        &self.shared.mem
    }

    /// The active configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.shared.cfg
    }

    /// Allocate a typed array in its home host memory: the master's
    /// under the flat control plane, the shard owner's under
    /// [`RuntimeConfig::with_sharded_control`] — every node computes
    /// the owner locally from the [`ShardMap`], no directory round
    /// trip.
    pub fn alloc_array<T: Scalar>(&self, len: usize) -> ArrayHandle<T> {
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        let cfg = &self.shared.cfg;
        let home = if cfg.sharded() && cfg.nodes > 1 {
            // Under elastic membership the owner comes from the current
            // epoch's member list; a static cluster is just epoch 0, so
            // the unarmed path is the identical pure-function lookup.
            let owner = match &self.shared.membership {
                Some(ms) => ms.lock().owner(self.shared.mem.next_data_id()),
                None => {
                    ShardMap::new(cfg.shards).owner_node(self.shared.mem.next_data_id(), cfg.nodes)
                }
            };
            Counters::add(&self.shared.counters.shard_lookups, 1);
            self.shared.hosts[owner as usize]
        } else {
            self.shared.hosts[0]
        };
        let data = self.shared.mem.register_data(bytes, home).expect("home host out of memory");
        ArrayHandle { data, len, _t: PhantomData }
    }

    /// Write elements into an array's home copy (sequential host
    /// initialisation — zero virtual-time cost; the *placement* is what
    /// matters to the experiments).
    pub fn write_array<T: Scalar>(&self, h: &ArrayHandle<T>, offset: usize, values: &[T]) {
        let info = self.shared.mem.data_info(h.data);
        let es = std::mem::size_of::<T>();
        self.shared.mem.with_slice_mut::<T, _>(
            info.home_space,
            info.home_alloc,
            (offset * es) as u64,
            std::mem::size_of_val(values) as u64,
            |dst| dst.copy_from_slice(values),
        );
    }

    /// Read elements from an array's home copy (call after a flushing
    /// `taskwait` for up-to-date values). Returns `None` under phantom
    /// backing.
    pub fn read_array<T: Scalar>(&self, h: &ArrayHandle<T>, range: Range<usize>) -> Option<Vec<T>> {
        let info = self.shared.mem.data_info(h.data);
        let es = std::mem::size_of::<T>();
        self.shared.mem.with_slice::<T, _>(
            info.home_space,
            info.home_alloc,
            (range.start * es) as u64,
            ((range.end - range.start) * es) as u64,
            |src| src.to_vec(),
        )
    }

    /// Submit a task (the lowered `#pragma omp task`). Charges the
    /// per-task creation overhead on the submitting process. Returns a
    /// [`TaskHandle`] for fine-grained synchronisation with
    /// [`taskwait_on_handle`](Omp::taskwait_on_handle); the handle may
    /// be dropped freely when only barrier-style `taskwait` is needed.
    pub async fn submit(&self, spec: TaskSpec) -> TaskHandle {
        assert!(
            device_has_resource(&self.shared.cfg, spec.device),
            "task '{}' targets a device kind with no resources in this configuration",
            spec.label
        );
        delay(self.shared.cfg.task_overhead).await.expect("submit during shutdown");
        self.latch().add(1);
        let handle = {
            let mut m = self.shared.master.lock();
            let id = TaskId(m.next_id);
            m.next_id += 1;
            let rec = Arc::new(spec.into_record(id));
            let handle = TaskHandle { id, done: rec.done.clone() };
            let ready = match m.graph.add_task_labeled(id, &rec.desc.label, &rec.desc.deps) {
                Ok(r) => r,
                Err(e) => panic!("invalid task submission: {e}"),
            };
            if ready {
                m.sched.submit(&rec.desc, &self.shared.master_oracle);
            }
            m.records.insert(id, rec);
            handle
        };
        self.shared.master_bell.ring();
        self.shared.comm_bell.ring();
        handle
    }

    fn latch(&self) -> &Latch {
        &self.shared.latch
    }

    /// Wait for all submitted tasks and flush device data to the host
    /// (the default `#pragma omp taskwait`). All dirty regions are
    /// flushed concurrently — the non-blocking cache issues every
    /// write-back at once and waits for the set.
    pub async fn taskwait(&self) {
        self.latch().wait_zero().await.expect("taskwait during shutdown");
        let dirty = self.shared.coh.dirty_regions();
        if dirty.is_empty() {
            return;
        }
        let latch = ompss_sim::Latch::new();
        latch.add(dirty.len() as u64);
        for region in dirty {
            let sh = self.shared.clone();
            let latch = latch.clone();
            process(format!("flush:{region}")).daemon().spawn(async move {
                let _ = sh.coh.flush_region(&*sh.exec, &region).await;
                latch.done();
            });
        }
        latch.wait_zero().await.expect("taskwait during shutdown");
    }

    /// Wait for all submitted tasks without flushing device copies
    /// (`taskwait noflush`).
    pub async fn taskwait_noflush(&self) {
        self.latch().wait_zero().await.expect("taskwait during shutdown");
    }

    /// Wait until one specific task (identified by the handle its
    /// submission returned) has completed. Does not flush; pair with
    /// [`taskwait_on`](Omp::taskwait_on) when the host must read the
    /// task's output.
    pub async fn taskwait_on_handle(&self, handle: &TaskHandle) {
        handle.done.wait().await.expect("taskwait during shutdown");
    }

    /// Wait until the pending writer of `region` (if any) completes,
    /// then flush that region home (`taskwait on(...)`).
    pub async fn taskwait_on(&self, region: Region) {
        let writer = {
            let m = self.shared.master.lock();
            m.graph.pending_writer(&region).map(|t| m.records[&t].clone())
        };
        if let Some(rec) = writer {
            rec.done.wait().await.expect("taskwait during shutdown");
        }
        self.shared
            .coh
            .flush_region(&*self.shared.exec, &region)
            .await
            .expect("flush during shutdown");
    }

    /// Sleep for virtual time (harness pacing).
    pub async fn delay(&self, d: SimDuration) {
        let _ = delay(d).await;
    }

    /// Blocked worksharing: submit one task per `block`-sized chunk of
    /// `range`, built by `make` from the chunk's element range. This is
    /// the tasking equivalent of applying the `target` construct to a
    /// worksharing loop — the extension the paper lists as future work
    /// (§VII) — and what every blocked loop in the evaluation does by
    /// hand.
    /// Under the sharded control plane the blocks are partitioned by
    /// shard owner and expanded by per-owner *sub-master* processes, so
    /// the per-task creation overhead is paid in parallel across shards
    /// instead of serialising through one loop. Worksharing semantics
    /// are assumed: the blocks of one call are mutually independent
    /// (dependences on *earlier* submissions are preserved either way —
    /// every task of the call is in the graph before the call returns).
    pub async fn for_each_block(
        &self,
        range: Range<usize>,
        block: usize,
        make: impl Fn(Range<usize>) -> TaskSpec,
    ) {
        assert!(block > 0, "block size must be positive");
        let cfg = &self.shared.cfg;
        if cfg.sharded() && cfg.nodes > 1 {
            // Route each block to the owner of the data it writes (its
            // first dependence when it writes nothing).
            let map = ShardMap::new(cfg.shards);
            let mut parts: Vec<Vec<TaskSpec>> = (0..cfg.nodes).map(|_| Vec::new()).collect();
            let mut start = range.start;
            while start < range.end {
                let end = (start + block).min(range.end);
                let spec = make(start..end);
                let key = spec
                    .deps
                    .iter()
                    .find(|a| a.kind.writes())
                    .or_else(|| spec.deps.first())
                    .map(|a| a.region.data)
                    .unwrap_or(DataId(0));
                let owner = match &self.shared.membership {
                    Some(ms) => ms.lock().owner(key),
                    None => map.owner_node(key, cfg.nodes),
                };
                parts[owner as usize].push(spec);
                start = end;
            }
            let latch = Latch::new();
            for (owner, specs) in parts.into_iter().enumerate() {
                if specs.is_empty() {
                    continue;
                }
                latch.add(1);
                let omp = self.clone();
                let latch = latch.clone();
                let n = specs.len() as u64;
                process(format!("submaster:node{owner}")).daemon().spawn(async move {
                    for spec in specs {
                        omp.submit(spec).await;
                    }
                    Counters::add(&omp.shared.counters.submaster_spawns, n);
                    latch.done();
                });
            }
            latch.wait_zero().await.expect("for_each_block during shutdown");
            return;
        }
        let mut start = range.start;
        while start < range.end {
            let end = (start + block).min(range.end);
            self.submit(make(start..end)).await;
            start = end;
        }
    }
}

/// The runtime: builds the simulated machine and runs a program.
pub struct Runtime;

impl Runtime {
    /// Run `program` on a machine described by `cfg`; returns the
    /// measured report. Panics (mirroring a crashed run) if the program
    /// deadlocks or a process panics; use [`Runtime::try_run`] to
    /// handle those outcomes as values.
    pub fn run<F, Fut>(cfg: RuntimeConfig, program: F) -> RunReport
    where
        F: FnOnce(Omp) -> Fut + Send + 'static,
        Fut: Future<Output = ()> + Send + 'static,
    {
        match Self::try_run(cfg, program) {
            Ok(report) => report,
            Err(RunError::Deadlock { blocked }) => {
                let names: Vec<&str> = blocked.iter().map(|p| p.name.as_str()).collect();
                panic!("runtime deadlock; stuck: {names:?}")
            }
            Err(RunError::ProcessPanic(name, msg)) => panic!("process '{name}' panicked: {msg}"),
            Err(e) => panic!("run failed: {e}"),
        }
    }

    /// Like [`Runtime::run`], but returns the failure as a value when
    /// the program deadlocks ([`RunError::Deadlock`], carrying the
    /// stuck process names) or a process panics
    /// ([`RunError::ProcessPanic`]). Harnesses that probe pathological
    /// schedules want the error, not a crash.
    pub fn try_run<F, Fut>(cfg: RuntimeConfig, program: F) -> Result<RunReport, RunError>
    where
        F: FnOnce(Omp) -> Fut + Send + 'static,
        Fut: Future<Output = ()> + Send + 'static,
    {
        assert!(cfg.nodes >= 1, "need at least the master node");

        // ---- configuration validation ---------------------------------
        // A self-contradictory config is rejected before any machine is
        // built — a structured error, not a mid-run surprise. The
        // builder asserts the same invariants, but the env-var path
        // (`OMPSS_HEARTBEAT_*`, `OMPSS_NODE_JOIN`/`OMPSS_NODE_DRAIN`)
        // reaches here unchecked.
        if cfg.heartbeat_period >= cfg.lease_window {
            return Err(RunError::InvalidConfig {
                what: format!(
                    "heartbeat_period ({} ns) must be shorter than lease_window ({} ns): \
                     a node could never renew its lease between probes",
                    cfg.heartbeat_period.as_nanos(),
                    cfg.lease_window.as_nanos()
                ),
            });
        }
        for (knob, armed) in [("node_join", cfg.node_join), ("node_drain", cfg.node_drain)] {
            if let Some((node, _)) = armed {
                if node == 0 || node >= cfg.nodes {
                    return Err(RunError::InvalidConfig {
                        what: format!(
                            "{knob} targets node {node}, but valid slaves are 1..{} \
                             (node 0 is the master and can neither join nor drain)",
                            cfg.nodes
                        ),
                    });
                }
            }
        }

        // ---- chaos arming ---------------------------------------------
        let faults: Option<Arc<FaultPlan>> = match &cfg.fault_plan {
            Some(plan) => Some(plan.clone()),
            None if cfg.fault_rate > 0.0 || cfg.node_loss.is_some() => {
                Some(Arc::new(FaultPlan::new(cfg.fault_seed, cfg.fault_rate)))
            }
            None => None,
        };
        if let (Some(plan), Some((node, at))) = (&faults, cfg.node_loss) {
            assert!(node < cfg.nodes, "node-loss target {node} outside the cluster");
            plan.arm_node_loss(node, at.as_nanos());
        }
        // Rate-based recovery assumes a failed or lost device never
        // holds the only up-to-date copy of anything, so that chaos pins
        // write-back caching down to write-through (commit leaves device
        // copies clean). Node loss keeps the configured policy: lineage
        // reconstruction exists precisely to rebuild dirty data the dead
        // node took with it.
        let mut cfg = cfg;
        if (cfg.fault_plan.is_some() || cfg.fault_rate > 0.0)
            && cfg.cache_policy == CachePolicy::WriteBack
        {
            cfg.cache_policy = CachePolicy::WriteThrough;
        }
        let cfg = cfg;

        // ---- machine construction ------------------------------------
        let mem = Arc::new(MemoryManager::new(cfg.backing));
        let mut hosts = Vec::new();
        let mut gpu_spaces: Vec<Vec<SpaceId>> = Vec::new();
        for n in 0..cfg.nodes {
            let host =
                mem.add_space(format!("node{n}:host"), SpaceKind::Host(n), None, cfg.host_mem);
            hosts.push(host);
            let mut gs = Vec::new();
            for g in 0..cfg.gpus_per_node {
                gs.push(mem.add_space(
                    format!("node{n}:gpu{g}"),
                    SpaceKind::Gpu(n, g),
                    Some(host),
                    cfg.gpu_cache_capacity(),
                ));
            }
            gpu_spaces.push(gs);
        }

        let mut topo = Topology::new(hosts[0], cfg.routing);
        let mut gpus = std::collections::HashMap::new();
        let mut node_of = std::collections::HashMap::new();
        for n in 0..cfg.nodes as usize {
            node_of.insert(hosts[n], n as u32);
            for (g, &gs) in gpu_spaces[n].iter().enumerate() {
                topo.add_gpu(gs, hosts[n]);
                node_of.insert(gs, n as u32);
                gpus.insert(gs, GpuDevice::new(format!("node{n}:gpu{g}"), cfg.gpu_spec.clone()));
            }
        }

        if let Some(plan) = &faults {
            // One fuse across the whole machine: device-loss draws are
            // granted only while more than one GPU survives, so the
            // scheduler always has a CUDA-capable resource left.
            let fuse = DeviceFuse::new(gpus.len() as u64);
            for dev in gpus.values() {
                dev.set_fault_plan(plan.clone(), fuse.clone());
            }
        }

        let tracer = cfg.tracing.then(Tracer::new);
        let counters = Arc::new(Counters::new());
        let am: AmNet<crate::exec::ClusterMsg> = AmNet::new(cfg.fabric.clone());
        if let Some(plan) = &faults {
            am.set_fault_plan(plan.clone());
        }
        let rel = faults.as_ref().map(|_| {
            // Base ack timeout: a generous round trip on the configured
            // fabric; doubles per retransmission.
            Arc::new(Reliability::new(
                cfg.fabric.latency * 8 + SimDuration::from_micros(100),
                cfg.am_retry_budget,
            ))
        });
        let pinned: Vec<Arc<PinnedPool>> =
            (0..cfg.nodes).map(|_| Arc::new(PinnedPool::new(cfg.pinned_pool))).collect();
        // The fabric inside the AM net is what the executor shares.
        let exec = Arc::new(RtExec::new(
            mem.clone(),
            gpus.clone(),
            node_of.clone(),
            pinned,
            am_fabric(&am),
            cfg.overlap,
            tracer.clone(),
            counters.clone(),
            cfg.sharded(),
        ));
        let coh = Arc::new(
            Coherence::new(mem.clone(), topo, cfg.cache_policy)
                .with_evict_slack(cfg.eviction_slack)
                .with_validation(cfg.verify),
        );

        // ---- master scheduler and resources --------------------------
        let mut sched = Scheduler::new(cfg.sched_policy).with_seed(cfg.sched_seed);
        let mut spans = std::collections::HashMap::new();
        let mut master_workers = Vec::new();
        for _ in 0..cfg.cpu_workers_per_node {
            master_workers.push(sched.register(ResourceInfo {
                kind: ResourceKind::SmpWorker,
                space: hosts[0],
                steal_group: 0,
            }));
        }
        let mut master_gpu_res = Vec::new();
        for &gs in &gpu_spaces[0] {
            master_gpu_res.push((
                sched.register(ResourceInfo {
                    kind: ResourceKind::GpuManager,
                    space: gs,
                    steal_group: 0,
                }),
                gs,
            ));
        }
        // Node proxies, one per slave. All master-level resources share
        // one steal group: an idle node's proxy may re-route (steal) a
        // task still queued for another node — the load balancing the
        // paper's locality scheduler does. (Slaves never steal from each
        // other *after* dispatch; their schedulers are separate.)
        let mut proxy_res = vec![ompss_sched::ResourceId(usize::MAX)];
        for n in 1..cfg.nodes {
            proxy_res.push(sched.register(ResourceInfo {
                kind: ResourceKind::NodeProxy,
                space: hosts[n as usize],
                steal_group: 0,
            }));
            let mut span = vec![hosts[n as usize]];
            span.extend(gpu_spaces[n as usize].iter().copied());
            spans.insert(hosts[n as usize], span);
        }
        // An armed joiner starts absent: its proxy is out of service
        // (no placement, no affinity hints) until the planned join
        // adopts it back.
        if let Some((j, _)) = cfg.node_join {
            sched.deactivate(proxy_res[j as usize]);
        }
        let master_oracle = SpanOracle { coh: coh.clone(), spans };

        // ---- slave schedulers ----------------------------------------
        let mut slaves = vec![SlaveState {
            sched: Mutex::new(Scheduler::new(cfg.sched_policy).with_seed(cfg.sched_seed)),
            bell: Bell::new(),
            host: hosts[0],
            gpu_lost: AtomicBool::new(false),
            dead: AtomicBool::new(false),
        }];
        let mut slave_oracles =
            vec![SpanOracle { coh: coh.clone(), spans: std::collections::HashMap::new() }];
        type SlaveRes = (Vec<ompss_sched::ResourceId>, Vec<(ompss_sched::ResourceId, SpaceId)>);
        let mut slave_res: Vec<SlaveRes> = vec![(Vec::new(), Vec::new())];
        for n in 1..cfg.nodes as usize {
            let mut s = Scheduler::new(cfg.sched_policy).with_seed(cfg.sched_seed);
            let mut workers = Vec::new();
            for _ in 0..cfg.cpu_workers_per_node {
                workers.push(s.register(ResourceInfo {
                    kind: ResourceKind::SmpWorker,
                    space: hosts[n],
                    steal_group: n as u32,
                }));
            }
            let mut gres = Vec::new();
            for &gs in &gpu_spaces[n] {
                gres.push((
                    s.register(ResourceInfo {
                        kind: ResourceKind::GpuManager,
                        space: gs,
                        steal_group: n as u32,
                    }),
                    gs,
                ));
            }
            slaves.push(SlaveState {
                sched: Mutex::new(s),
                bell: Bell::new(),
                host: hosts[n],
                gpu_lost: AtomicBool::new(false),
                dead: AtomicBool::new(false),
            });
            slave_oracles
                .push(SpanOracle { coh: coh.clone(), spans: std::collections::HashMap::new() });
            slave_res.push((workers, gres));
        }

        // Per-node purge set for node loss: losing a node loses its host
        // memory and every GPU attached to it.
        let node_spaces: Vec<Vec<SpaceId>> = (0..cfg.nodes as usize)
            .map(|n| {
                let mut v = vec![hosts[n]];
                v.extend(gpu_spaces[n].iter().copied());
                v
            })
            .collect();
        let mut graph = TaskGraph::new();
        if cfg.node_loss.is_some() {
            graph.enable_lineage(cfg.lineage_depth_budget);
        }
        let shared = Arc::new(RtShared {
            cfg: cfg.clone(),
            mem: mem.clone(),
            coh: coh.clone(),
            exec,
            master: Mutex::new(MasterState {
                graph,
                sched,
                records: std::collections::HashMap::new(),
                next_id: 0,
                inflight: vec![(0, 0); cfg.nodes as usize],
                tasks_executed: 0,
                newly_scratch: Vec::new(),
                cuda_alive: vec![cfg.gpus_per_node; cfg.nodes as usize],
                dispatched: vec![std::collections::BTreeSet::new(); cfg.nodes as usize],
                node_dead: vec![false; cfg.nodes as usize],
                node_absent: {
                    let mut v = vec![false; cfg.nodes as usize];
                    if let Some((j, _)) = cfg.node_join {
                        v[j as usize] = true;
                    }
                    v
                },
            }),
            master_bell: Bell::new(),
            comm_bell: Bell::new(),
            master_oracle,
            slaves,
            slave_oracles,
            latch: Latch::new(),
            proxy_res,
            gpus: gpus.clone(),
            hosts: hosts.clone(),
            tracer: tracer.clone(),
            counters: counters.clone(),
            verify: cfg.verify.then(|| Arc::new(VerifySink::new())),
            faults: faults.clone(),
            rel,
            lease: (cfg.node_loss.is_some() || cfg.membership_enabled()).then(|| {
                // An armed joiner is not tracked from the start: its
                // lease begins at the join instant, so pre-join silence
                // is absence, not failure.
                let tracked: Vec<ompss_net::NodeId> =
                    (1..cfg.nodes).filter(|&n| cfg.node_join.is_none_or(|(j, _)| j != n)).collect();
                Mutex::new(ompss_net::LeaseTracker::new(
                    ompss_net::LeaseConfig {
                        period: cfg.heartbeat_period,
                        window: cfg.lease_window,
                    },
                    tracked,
                    SimTime(0),
                ))
            }),
            membership: (cfg.membership_enabled() && cfg.sharded() && cfg.nodes > 1).then(|| {
                let members: Vec<u32> =
                    (0..cfg.nodes).filter(|&n| cfg.node_join.is_none_or(|(j, _)| j != n)).collect();
                Mutex::new(MembershipEpochs::new(cfg.shards, members))
            }),
            node_spaces,
            done: ompss_sim::Signal::new(),
        });

        // ---- processes ------------------------------------------------
        let sim = Sim::new();
        for (i, res) in master_workers.into_iter().enumerate() {
            let sh = shared.clone();
            sim.process(format!("node0:worker{i}")).daemon().spawn(master_smp_worker(sh, res));
        }
        for (res, gs) in master_gpu_res {
            let sh = shared.clone();
            sim.process(format!("node0:gpumgr{}", gs.0))
                .daemon()
                .spawn(master_gpu_manager(sh, res, gs));
        }
        if cfg.nodes > 1 {
            let sh = shared.clone();
            let ep = am.endpoint(0);
            sim.process("node0:comm").daemon().spawn(comm_thread(sh, ep));
            let sh = shared.clone();
            let ep = am.endpoint(0);
            sim.process("node0:dispatch").daemon().spawn(master_dispatcher(sh, ep));
            for n in 1..cfg.nodes {
                let sh = shared.clone();
                let ep = am.endpoint(n);
                sim.process(format!("node{n}:dispatch"))
                    .daemon()
                    .spawn(slave_dispatcher(sh, n, ep));
                let (workers, gres) = slave_res[n as usize].clone();
                for (i, res) in workers.into_iter().enumerate() {
                    let sh = shared.clone();
                    let ep = am.endpoint(n);
                    sim.process(format!("node{n}:worker{i}"))
                        .daemon()
                        .spawn(slave_smp_worker(sh, n, res, ep));
                }
                for (res, gs) in gres {
                    let sh = shared.clone();
                    let ep = am.endpoint(n);
                    sim.process(format!("node{n}:gpumgr{}", gs.0))
                        .daemon()
                        .spawn(slave_gpu_manager(sh, n, res, gs, ep));
                }
            }
            if cfg.node_loss.is_some() {
                let sh = shared.clone();
                let ep = am.endpoint(0);
                sim.process("node0:lease").daemon().spawn(lease_monitor(sh, ep));
            }
            if let Some((node, at)) = cfg.node_loss {
                let sh = shared.clone();
                let fabric = am.fabric_clone();
                sim.process("chaos:nodekill").daemon().spawn(node_kill(sh, fabric, node, at));
            }
            if let Some((node, at)) = cfg.node_join {
                // The joiner starts off the wire; its (already spawned)
                // service processes idle until the join feeds them.
                am.fabric_clone().set_offline(node);
                let sh = shared.clone();
                let fabric = am.fabric_clone();
                sim.process("elastic:join").daemon().spawn(node_join(sh, fabric, node, at));
            }
            if let Some((node, at)) = cfg.node_drain {
                let sh = shared.clone();
                let fabric = am.fabric_clone();
                sim.process("elastic:drain").daemon().spawn(node_drain(sh, fabric, node, at));
            }
        }

        // ---- main program ---------------------------------------------
        let result: Arc<Mutex<Option<(SimTime, SimTime)>>> = Arc::new(Mutex::new(None));
        let result2 = result.clone();
        let sh_main = shared.clone();
        sim.spawn("main", async move {
            let start = now();
            let omp = Omp { shared: sh_main };
            program(omp.clone()).await;
            // Implicit final taskwait with flush (end of OmpSs program).
            omp.taskwait().await;
            *result2.lock() = Some((start, now()));
            // Program over: release the chaos daemons (lease monitor,
            // planned kill) so their timers stop driving virtual time.
            omp.shared.done.set();
        });

        // Tag failures from armed-chaos runs with the fault coordinates
        // so a sweep harness can reproduce the exact run from the error
        // alone.
        let run = match sim.run() {
            Ok(run) => run,
            Err(e) if faults.is_some() => {
                return Err(e.with_fault_context(cfg.fault_seed, cfg.fault_rate))
            }
            Err(e) => return Err(e),
        };
        if let Some(plan) = &faults {
            Counters::add(&counters.msgs_dropped, plan.stats().count(FaultClass::NetDrop));
        }
        let (start, end) = result.lock().take().expect("main completed");
        let m = shared.master.lock();
        let verify = shared.verify.as_ref().map(|sink| {
            let tasks = sink.take();
            let races = m.graph.races(&VerifySink::observations(&tasks));
            VerifyData { tasks, lints: m.graph.lints().to_vec(), races, phantom: !mem.is_real() }
        });
        // HashMap iteration order is nondeterministic; the report sorts
        // so identical runs serialise byte-identically.
        let mut gpu_stats: Vec<(String, GpuStats)> =
            gpus.values().map(|d| (d.name().to_string(), d.stats())).collect();
        gpu_stats.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(RunReport {
            elapsed: end - start,
            makespan: end,
            tasks: m.tasks_executed,
            net: am.stats(),
            am: am.am_stats(),
            coherence: coh.stats(),
            sched: m.sched.stats(),
            gpus: gpu_stats,
            counters: counters.snapshot(),
            events: run.events,
            clock_advances: run.clock_advances,
            host_ns: run.host_ns,
            wakes_coalesced: run.wakes_coalesced,
            trace: tracer.map(|t| t.take()),
            verify,
            faults: faults.as_ref().map(|p| p.stats()),
        })
    }
}

/// Extract the shared fabric from an AM network (they are the same
/// object; the executor sends `Data` messages on it so bulk transfers
/// contend with control traffic for NIC ports).
fn am_fabric(am: &AmNet<crate::exec::ClusterMsg>) -> ompss_net::Fabric<crate::exec::ClusterMsg> {
    am.fabric_clone()
}
