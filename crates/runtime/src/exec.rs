//! The runtime's transfer executor: how planned coherence hops become
//! modelled hardware activity.
//!
//! * **PCIe hops** drive the owning GPU's DMA engine. With `overlap`
//!   enabled the runtime stages data through pinned host buffers
//!   (paying a host memcpy, §III-D2) so the DMA can proceed
//!   concurrently with kernels; otherwise the copy is pageable and
//!   CUDA-style serialisation with compute applies.
//! * **Network hops** become GASNet-style long active messages on the
//!   cluster fabric, contending for NIC ports (which is what makes
//!   master-routed transfers a bottleneck).
//!
//! The executor also moves the real bytes through the memory manager,
//! so functional results survive arbitrary routings.

use std::collections::HashMap;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;

use ompss_coherence::{HopKind, Loc, TransferExec, TransferPurpose};
use ompss_core::TaskId;
use ompss_cudasim::{CopyDir, GpuDevice, GpuFault, PinnedPool};
use ompss_mem::{MemoryManager, SpaceId};
use ompss_net::{Fabric, NodeId};
use ompss_sim::{abort_run, delay, now, RunError, SimResult};

/// DMA re-issues allowed when an injected fault corrupts a PCIe copy
/// before the run aborts. Corruption is detected per transfer and each
/// retry pays the full copy time, so a small budget suffices.
const PCIE_RETRIES: u32 = 8;

use crate::stats::Counters;
use crate::trace::{TraceEvent, Tracer};

/// Control / data messages of the cluster protocol (§III-D1).
///
/// The `rel` field of each control message is its reliable-delivery id:
/// `Some` when chaos is armed (the receiver acks and deduplicates by
/// it, see [`crate::recover`]), `None` in fault-free runs, where the
/// protocol is exactly the paper's.
#[derive(Debug, Clone, Copy)]
pub enum ClusterMsg {
    /// Master → slave: run this task (its data is already staged).
    Exec {
        /// The task to run.
        task: TaskId,
        /// Reliable-delivery id.
        rel: Option<u64>,
    },
    /// Slave → master: the task finished.
    Done {
        /// The finished task.
        task: TaskId,
        /// Reliable-delivery id.
        rel: Option<u64>,
    },
    /// Slave → master: this dispatched task cannot run here any more
    /// (its device was lost) — take it back and reschedule.
    Failed {
        /// The handed-back task.
        task: TaskId,
        /// Reliable-delivery id.
        rel: Option<u64>,
    },
    /// Slave → master: the sending node lost one GPU; throttle CUDA
    /// dispatch to it accordingly.
    GpuDown {
        /// Reliable-delivery id.
        rel: Option<u64>,
    },
    /// Acknowledgement of the reliable control message `id`.
    Ack {
        /// The acknowledged id.
        id: u64,
    },
    /// Master → slave: liveness probe of the lease protocol. Sent only
    /// when node-loss chaos is armed; never retried or acknowledged —
    /// a missing reply *is* the detection signal.
    Ping,
    /// Slave → master: lease renewal answering a [`ClusterMsg::Ping`].
    Pong {
        /// The replying node.
        node: NodeId,
    },
    /// A bulk data payload (byte movement itself is done by the
    /// executor; the message models the wire traffic).
    Data,
}

/// The runtime's [`TransferExec`].
pub struct RtExec {
    mem: Arc<MemoryManager>,
    /// GPU space → device.
    gpus: HashMap<SpaceId, GpuDevice>,
    /// Any space → owning node.
    node_of: HashMap<SpaceId, NodeId>,
    /// Per-node pinned staging pools.
    pinned: Vec<Arc<PinnedPool>>,
    fabric: Fabric<ClusterMsg>,
    overlap: bool,
    tracer: Option<Tracer>,
    counters: Arc<Counters>,
    /// Sharded control plane armed: slave↔slave hops are peer-resolved
    /// ownership traffic and counted as such.
    sharded: bool,
}

impl RtExec {
    /// Assemble the executor from machine parts.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        mem: Arc<MemoryManager>,
        gpus: HashMap<SpaceId, GpuDevice>,
        node_of: HashMap<SpaceId, NodeId>,
        pinned: Vec<Arc<PinnedPool>>,
        fabric: Fabric<ClusterMsg>,
        overlap: bool,
        tracer: Option<Tracer>,
        counters: Arc<Counters>,
        sharded: bool,
    ) -> Self {
        RtExec { mem, gpus, node_of, pinned, fabric, overlap, tracer, counters, sharded }
    }
}

impl TransferExec for RtExec {
    fn transfer<'a>(
        &'a self,
        kind: HopKind,
        purpose: TransferPurpose,
        src: Loc,
        dst: Loc,
        bytes: u64,
    ) -> Pin<Box<dyn Future<Output = SimResult<bool>> + Send + 'a>> {
        Box::pin(async move {
            let t0 = now();
            match kind {
                HopKind::Pcie => {
                    let (gpu_space, dir) = if self.gpus.contains_key(&dst.space) {
                        (dst.space, CopyDir::H2D)
                    } else {
                        (src.space, CopyDir::D2H)
                    };
                    let dev = self.gpus.get(&gpu_space).expect("PCIe hop must touch a GPU space");
                    let node = self.node_of[&gpu_space] as usize;
                    let pool = &self.pinned[node];
                    let use_pinned = self.overlap && pool.try_alloc(bytes);
                    Counters::add(
                        if use_pinned {
                            &self.counters.pcie_pinned_bytes
                        } else {
                            &self.counters.pcie_pageable_bytes
                        },
                        bytes,
                    );
                    let r = pcie_copy(dev, dir, bytes, use_pinned).await;
                    if use_pinned {
                        pool.free(bytes);
                    }
                    r?;
                }
                HopKind::Network => {
                    let sn = self.node_of[&src.space];
                    let dn = self.node_of[&dst.space];
                    debug_assert_ne!(sn, dn, "network hop within one node");
                    // Classify the wire traffic: pre-send staging is its own
                    // bucket; everything else splits by whether the master
                    // is an endpoint (MtoS) or the hop is slave-direct (StoS).
                    Counters::add(
                        if purpose == TransferPurpose::Presend {
                            &self.counters.net_presend_bytes
                        } else if sn == 0 || dn == 0 {
                            &self.counters.net_mts_bytes
                        } else {
                            &self.counters.net_sts_bytes
                        },
                        bytes,
                    );
                    // Under the sharded plane a slave↔slave hop means the
                    // consumer resolved the owner locally via the ShardMap
                    // and pulled peer-to-peer — no master round trip.
                    if self.sharded && sn != 0 && dn != 0 {
                        Counters::add(&self.counters.peer_resolutions, 1);
                    }
                    Counters::add(&self.counters.am_data, 1);
                    self.fabric
                        .send(sn, dn, ompss_net::AM_HEADER_BYTES + bytes, ClusterMsg::Data)
                        .await?;
                }
            }
            // The wire/DMA time is spent either way, but if an endpoint's
            // node has been killed the bytes never land: copying here would
            // let a stale in-flight transfer clobber data that node-loss
            // recovery reconstructs at the destination.
            let delivered = !self.fabric.is_dead(self.node_of[&src.space])
                && !self.fabric.is_dead(self.node_of[&dst.space]);
            if delivered {
                self.mem.copy(
                    (src.space, src.alloc),
                    src.offset,
                    (dst.space, dst.alloc),
                    dst.offset,
                    bytes,
                );
            }
            if let Some(tr) = &self.tracer {
                tr.record(TraceEvent::Transfer {
                    medium: match kind {
                        HopKind::Pcie => "pcie",
                        HopKind::Network => "network",
                    },
                    bytes,
                    start: t0,
                    end: now(),
                });
            }
            Ok(delivered)
        })
    }
}

/// One PCIe hop on `dev`, re-issued (paying the copy time again) when
/// the armed fault plan corrupts it. Pinned copies stage through the
/// host buffer on the way in (H2D) or out (D2H), as in the paper's
/// overlap path. A lost device short-circuits to success: the byte
/// movement is performed by the caller in simulator memory, and the
/// space is being torn down by its manager — there is no DMA left to
/// charge.
async fn pcie_copy(dev: &GpuDevice, dir: CopyDir, bytes: u64, pinned: bool) -> SimResult<()> {
    let mut attempts = 0u32;
    loop {
        if pinned && dir == CopyDir::H2D {
            delay(dev.spec().staging_time(bytes)).await?;
        }
        match dev.try_memcpy(dir, bytes, pinned, None).await? {
            Ok(()) => {}
            Err(GpuFault::DeviceLost) => return Ok(()),
            Err(_) => {
                attempts += 1;
                if attempts > PCIE_RETRIES {
                    return Err(abort_run(RunError::Exhausted {
                        what: "pcie copy re-issues".into(),
                        attempts,
                    }));
                }
                continue;
            }
        }
        if pinned && dir == CopyDir::D2H {
            // Unstage after the DMA.
            delay(dev.spec().staging_time(bytes)).await?;
        }
        return Ok(());
    }
}
