//! # ompss-runtime — the Nanos++-equivalent runtime
//!
//! The task-parallel runtime of Bueno et al. (IPPS 2012), rebuilt over
//! deterministic simulated hardware. The same annotated program —
//! tasks with `input`/`output`/`inout` clauses targeting `smp` or
//! `cuda` — runs unchanged on one GPU, a multi-GPU node, or a cluster
//! of GPU nodes; the runtime distributes the work, moves the data
//! (hierarchical caches, write-back by default), overlaps communication
//! with computation (presend, prefetch, pinned-buffer overlap), and
//! schedules for locality.
//!
//! ```
//! use ompss_core::Device;
//! use ompss_runtime::{Runtime, RuntimeConfig, TaskSpec};
//! use ompss_sim::SimDuration;
//!
//! let report = Runtime::run(RuntimeConfig::multi_gpu(2), |omp| async move {
//!     let a = omp.alloc_array::<f32>(1024);
//!     omp.write_array(&a, 0, &vec![1.0f32; 1024]);
//!     for chunk in 0..4 {
//!         let r = a.region(chunk * 256..(chunk + 1) * 256);
//!         omp.submit(
//!             TaskSpec::new("scale")
//!                 .device(Device::Smp)
//!                 .inout(r)
//!                 .cost_smp(SimDuration::from_micros(50))
//!                 .body(move |views| {
//!                     for x in ompss_mem::cast_slice_mut::<f32>(views[0]) {
//!                         *x *= 2.0;
//!                     }
//!                 }),
//!         )
//!         .await;
//!     }
//!     omp.taskwait().await;
//!     assert_eq!(omp.read_array(&a, 0..1).unwrap(), vec![2.0]);
//! });
//! assert_eq!(report.tasks, 4);
//! ```

#![warn(missing_docs)]

mod config;
mod engine;
mod exec;
mod lineage;
mod recover;
mod runtime;
pub mod stats;
mod task;
pub mod trace;
mod verify;

pub use config::{CachePolicy, RuntimeConfig, SlaveRouting};
pub use exec::ClusterMsg;
pub use runtime::{ArrayHandle, Omp, RunReport, Runtime, TaskHandle};
pub use stats::{CounterSnapshot, Counters, ResourceBusy};
pub use task::{TaskBody, TaskCost, TaskRecord, TaskSpec};
pub use trace::{ParaverTrace, TraceEvent, TraceResource};
pub use verify::{TaskAccess, VerifyData};

// Re-exports for downstream ergonomics (apps, benches).
pub use ompss_core::{Device, GraphLint, TaskId};
pub use ompss_cudasim::{GpuSpec, KernelCost};
pub use ompss_mem::{Backing, Region};
pub use ompss_sched::Policy;
pub use ompss_sim::{
    Backoff, DeviceFuse, FaultClass, FaultPlan, FaultStats, ProcState, RunError, SimDuration,
    SimTime,
};

/// Destructure a task body's byte views into typed mutable slices, in
/// clause order:
///
/// ```
/// # use ompss_runtime::task_views;
/// # let mut a = [0u8; 8]; let mut b = [0u8; 8];
/// # let mut views_vec: Vec<&mut [u8]> = vec![&mut a, &mut b];
/// # let v: &mut [&mut [u8]] = &mut views_vec;
/// task_views!(v => xs: f32, ys: f32);
/// ys[0] = xs[1] * 2.0;
/// ```
///
/// Inputs may of course be used immutably; the macro exists so task
/// bodies read like the kernels they wrap instead of slice plumbing.
#[macro_export]
macro_rules! task_views {
    ($v:expr => $($name:ident : $ty:ty),+ $(,)?) => {
        let mut __views = $v.iter_mut();
        $(
            let $name: &mut [$ty] = $crate::cast_slice_mut::<$ty>(
                &mut **__views.next().expect("task body: missing view"),
            );
        )+
    };
}

// The macro body needs these at `$crate::` paths.
#[doc(hidden)]
pub use ompss_mem::cast_slice_mut;
