//! Execution tracing — a Paraver-flavoured timeline of what every
//! resource did on the virtual clock.
//!
//! The original Nanos++ emitted Paraver traces for BSC's performance
//! tools; this module records the equivalent events (task executions
//! per resource, data transfers per medium) when
//! [`RuntimeConfig::tracing`](crate::RuntimeConfig) is enabled, and can
//! render them as CSV for external tooling, as a per-resource
//! utilisation summary, or as a Paraver `.prv`/`.row` trace pair via
//! [`ParaverTrace`].

mod paraver;

pub use paraver::ParaverTrace;

use std::sync::Arc;

use parking_lot::Mutex;

use ompss_sim::{SimDuration, SimTime};

/// Where a traced activity ran.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceResource {
    /// Cluster node index.
    pub node: u32,
    /// Resource name within the node (e.g. `gpu0`, `worker2`, `comm`).
    pub name: String,
}

/// One traced event.
#[derive(Debug, Clone)]
pub enum TraceEvent {
    /// A task body executed on a resource.
    Task {
        /// Task id.
        task: u64,
        /// Kernel label.
        label: String,
        /// Executing resource.
        resource: TraceResource,
        /// Start of execution (data staged, kernel launched).
        start: SimTime,
        /// Completion time.
        end: SimTime,
    },
    /// A coherence transfer moved bytes between spaces.
    Transfer {
        /// `"pcie"` or `"network"`.
        medium: &'static str,
        /// Payload bytes.
        bytes: u64,
        /// Transfer start.
        start: SimTime,
        /// Transfer end.
        end: SimTime,
    },
    /// The runtime recovered from an injected fault.
    Recovery {
        /// `"task_retry"`, `"device_lost"`, `"node_lost"` or
        /// `"relineage"`.
        kind: &'static str,
        /// The affected task, when one was in hand.
        task: Option<u64>,
        /// When recovery was initiated.
        at: SimTime,
    },
}

impl TraceEvent {
    fn start(&self) -> SimTime {
        match self {
            TraceEvent::Task { start, .. } | TraceEvent::Transfer { start, .. } => *start,
            TraceEvent::Recovery { at, .. } => *at,
        }
    }
}

/// A shared, append-only event sink.
#[derive(Clone, Default)]
pub struct Tracer {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl Tracer {
    /// New empty tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event.
    pub fn record(&self, ev: TraceEvent) {
        self.events.lock().push(ev);
    }

    /// Drain all events, sorted by start time.
    pub fn take(&self) -> Vec<TraceEvent> {
        let mut v = std::mem::take(&mut *self.events.lock());
        v.sort_by_key(|e| e.start());
        v
    }
}

/// Render events as CSV (`kind,task,label,node,resource,medium,bytes,start_ns,end_ns`).
pub fn to_csv(events: &[TraceEvent]) -> String {
    let mut out = String::from("kind,task,label,node,resource,medium,bytes,start_ns,end_ns\n");
    for e in events {
        match e {
            TraceEvent::Task { task, label, resource, start, end } => {
                out.push_str(&format!(
                    "task,{task},{label},{},{},,,{},{}\n",
                    resource.node,
                    resource.name,
                    start.as_nanos(),
                    end.as_nanos()
                ));
            }
            TraceEvent::Transfer { medium, bytes, start, end } => {
                out.push_str(&format!(
                    "transfer,,,,,{medium},{bytes},{},{}\n",
                    start.as_nanos(),
                    end.as_nanos()
                ));
            }
            TraceEvent::Recovery { kind, task, at } => {
                let task = task.map(|t| t.to_string()).unwrap_or_default();
                out.push_str(&format!(
                    "recovery,{task},{kind},,,,,{},{}\n",
                    at.as_nanos(),
                    at.as_nanos()
                ));
            }
        }
    }
    out
}

/// Per-resource busy-time summary over a run of `makespan` length:
/// `(resource, tasks executed, busy time, utilisation)`.
pub fn utilisation(
    events: &[TraceEvent],
    makespan: SimTime,
) -> Vec<(TraceResource, usize, SimDuration, f64)> {
    use std::collections::BTreeMap;
    let mut per: BTreeMap<TraceResource, (usize, SimDuration)> = BTreeMap::new();
    for e in events {
        if let TraceEvent::Task { resource, start, end, .. } = e {
            let slot = per.entry(resource.clone()).or_insert((0, SimDuration::ZERO));
            slot.0 += 1;
            slot.1 += *end - *start;
        }
    }
    let total = makespan.as_secs_f64().max(f64::MIN_POSITIVE);
    per.into_iter()
        .map(|(r, (n, busy))| {
            let u = busy.as_secs_f64() / total;
            (r, n, busy, u)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task_ev(task: u64, node: u32, name: &str, s: u64, e: u64) -> TraceEvent {
        TraceEvent::Task {
            task,
            label: "k".into(),
            resource: TraceResource { node, name: name.into() },
            start: SimTime(s),
            end: SimTime(e),
        }
    }

    #[test]
    fn tracer_collects_and_sorts() {
        let t = Tracer::new();
        t.record(task_ev(2, 0, "gpu0", 50, 80));
        t.record(task_ev(1, 0, "gpu0", 10, 40));
        t.record(TraceEvent::Transfer {
            medium: "pcie",
            bytes: 1024,
            start: SimTime(20),
            end: SimTime(30),
        });
        let evs = t.take();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].start(), SimTime(10));
        assert_eq!(evs[1].start(), SimTime(20));
        assert!(t.take().is_empty(), "take drains");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let evs = vec![
            task_ev(1, 0, "gpu0", 10, 40),
            TraceEvent::Transfer {
                medium: "network",
                bytes: 64,
                start: SimTime(5),
                end: SimTime(9),
            },
        ];
        let csv = to_csv(&evs);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("kind,"));
        assert!(lines[1].contains("task,1,k,0,gpu0"));
        assert!(lines[2].contains("transfer,,,,,network,64,5,9"));
    }

    #[test]
    fn recovery_rows_in_csv() {
        let evs =
            vec![TraceEvent::Recovery { kind: "device_lost", task: Some(9), at: SimTime(17) }];
        let csv = to_csv(&evs);
        assert!(csv.lines().nth(1).expect("one row").contains("recovery,9,device_lost,,,,,17,17"));
    }

    #[test]
    fn utilisation_sums_busy_time() {
        let evs = vec![
            task_ev(1, 0, "gpu0", 0, 40),
            task_ev(2, 0, "gpu0", 50, 90),
            task_ev(3, 1, "gpu0", 0, 10),
        ];
        let u = utilisation(&evs, SimTime(100));
        assert_eq!(u.len(), 2);
        let (r0, n0, busy0, util0) = &u[0];
        assert_eq!((r0.node, n0, busy0.as_nanos()), (0, &2, 80));
        assert!((util0 - 0.8).abs() < 1e-12);
    }
}
