//! Paraver trace export.
//!
//! BSC's Paraver visualiser consumes a `.prv` record file plus a `.row`
//! naming file; Nanos++ instrumented runs produced exactly that pair.
//! This exporter renders the runtime's [`TraceEvent`] stream in the
//! same format so recorded runs load into the same tooling the paper's
//! authors used.
//!
//! Mapping: every traced resource (`node0.worker0`, `node1.gpu2`, …)
//! becomes one Paraver *thread* of a single application, in `.row`
//! order; each transfer medium (`pcie`, `network`) becomes one extra
//! synthetic thread carrying transfer states. Task executions are state
//! records (state [`STATE_RUNNING`]) with a paired event record giving
//! the kernel label id; transfers are state records on their medium's
//! thread with an event carrying the byte count.
//!
//! The header's date field is fixed at a constant: the export is a pure
//! function of the events, so identical runs produce byte-identical
//! trace pairs (the observability subsystem's determinism contract).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use ompss_sim::SimTime;

use super::{TraceEvent, TraceResource};

/// Paraver state value for "running a task body".
pub const STATE_RUNNING: u32 = 1;
/// Paraver state value for "bytes on the wire" on a medium thread.
pub const STATE_TRANSFER: u32 = 12;
/// Event type carrying the task label id (0 = end of task).
pub const EVENT_TASK_LABEL: u64 = 60_000_001;
/// Event type carrying a transfer's payload bytes (0 = end).
pub const EVENT_TRANSFER_BYTES: u64 = 60_000_002;
/// Punctual event type marking a recovery action on the synthetic
/// `recovery` thread; the value encodes the kind
/// (see [`recovery_kind_id`]).
pub const EVENT_RECOVERY: u64 = 60_000_003;

/// Paraver value for a recovery kind string. Elastic-membership events
/// (planned joins/drains, not faults) share the recovery thread: they
/// are the same class of "the cluster changed shape under the run"
/// punctual marks an analyst scrubs for.
pub fn recovery_kind_id(kind: &str) -> u64 {
    match kind {
        "task_retry" => 1,
        "device_lost" => 2,
        "node_lost" => 3,
        "relineage" => 4,
        "node_join" => 5,
        "node_drain" => 6,
        _ => 99,
    }
}

/// A rendered Paraver trace pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParaverTrace {
    /// The `.prv` record file contents.
    pub prv: String,
    /// The `.row` object-naming file contents.
    pub row: String,
}

impl ParaverTrace {
    /// Render `events` (as drained from the tracer, i.e. sorted by
    /// start time) over a run of length `makespan`.
    pub fn from_events(events: &[TraceEvent], makespan: SimTime) -> Self {
        // Stable object numbering: traced resources sorted by
        // (node, name), then the media threads.
        let mut resources: BTreeMap<TraceResource, usize> = BTreeMap::new();
        let mut media: BTreeMap<&'static str, usize> = BTreeMap::new();
        let mut has_recovery = false;
        for e in events {
            match e {
                TraceEvent::Task { resource, .. } => {
                    let next = resources.len();
                    resources.entry(resource.clone()).or_insert(next);
                }
                TraceEvent::Transfer { medium, .. } => {
                    media.entry(medium).or_insert(0);
                }
                TraceEvent::Recovery { .. } => has_recovery = true,
            }
        }
        // BTreeMap insertion above can assign ids out of key order;
        // renumber in key order.
        for (i, (_, id)) in resources.iter_mut().enumerate() {
            *id = i;
        }
        let base = resources.len();
        for (i, (_, id)) in media.iter_mut().enumerate() {
            *id = base + i;
        }
        let labels: BTreeMap<String, usize> = {
            let mut set: Vec<String> = events
                .iter()
                .filter_map(|e| match e {
                    TraceEvent::Task { label, .. } => Some(label.clone()),
                    _ => None,
                })
                .collect();
            set.sort();
            set.dedup();
            set.into_iter().enumerate().map(|(i, l)| (l, i + 1)).collect()
        };

        // Recovery marks ride one synthetic thread after the media.
        let rec_obj = base + media.len();
        let nthreads = rec_obj + usize::from(has_recovery);
        let mut prv = String::new();
        // Header. The date is constant by design (see module docs); the
        // object hierarchy is 1 node × nthreads CPUs, 1 application
        // whose single task has nthreads threads.
        let _ = writeln!(
            prv,
            "#Paraver (01/01/2012 at 00:00):{}_ns:1({nthreads}):1:1({nthreads}:1)",
            makespan.as_nanos()
        );
        let mut records: Vec<(u64, usize, String)> = Vec::new();
        for e in events {
            match e {
                TraceEvent::Task { task: _, label, resource, start, end } => {
                    let obj = resources[resource] + 1;
                    let (s, t) = (start.as_nanos(), end.as_nanos());
                    let lid = labels[label];
                    records.push((s, obj, format!("1:{obj}:1:1:{obj}:{s}:{t}:{STATE_RUNNING}")));
                    records.push((
                        s,
                        obj,
                        format!("2:{obj}:1:1:{obj}:{s}:{EVENT_TASK_LABEL}:{lid}"),
                    ));
                    records.push((t, obj, format!("2:{obj}:1:1:{obj}:{t}:{EVENT_TASK_LABEL}:0")));
                }
                TraceEvent::Transfer { medium, bytes, start, end } => {
                    let obj = media[medium] + 1;
                    let (s, t) = (start.as_nanos(), end.as_nanos());
                    records.push((s, obj, format!("1:{obj}:1:1:{obj}:{s}:{t}:{STATE_TRANSFER}")));
                    records.push((
                        s,
                        obj,
                        format!("2:{obj}:1:1:{obj}:{s}:{EVENT_TRANSFER_BYTES}:{bytes}"),
                    ));
                    records.push((
                        t,
                        obj,
                        format!("2:{obj}:1:1:{obj}:{t}:{EVENT_TRANSFER_BYTES}:0"),
                    ));
                }
                TraceEvent::Recovery { kind, at, .. } => {
                    let obj = rec_obj + 1;
                    let s = at.as_nanos();
                    let kid = recovery_kind_id(kind);
                    records.push((s, obj, format!("2:{obj}:1:1:{obj}:{s}:{EVENT_RECOVERY}:{kid}")));
                }
            }
        }
        // Paraver wants records ordered by time; tie-break on object id
        // then text for full determinism.
        records.sort();
        for (_, _, line) in &records {
            prv.push_str(line);
            prv.push('\n');
        }

        let mut row = String::new();
        let _ = writeln!(row, "LEVEL THREAD SIZE {nthreads}");
        for r in resources.keys() {
            let _ = writeln!(row, "node{}.{}", r.node, r.name);
        }
        for m in media.keys() {
            let _ = writeln!(row, "transfers.{m}");
        }
        if has_recovery {
            let _ = writeln!(row, "recovery");
        }
        ParaverTrace { prv, row }
    }

    /// Write `<stem>.prv` and `<stem>.row` under `dir`; returns both
    /// paths.
    pub fn save(&self, dir: &Path, stem: &str) -> io::Result<(PathBuf, PathBuf)> {
        fs::create_dir_all(dir)?;
        let prv_path = dir.join(format!("{stem}.prv"));
        let row_path = dir.join(format!("{stem}.row"));
        fs::write(&prv_path, &self.prv)?;
        fs::write(&row_path, &self.row)?;
        Ok((prv_path, row_path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task_ev(task: u64, node: u32, name: &str, label: &str, s: u64, e: u64) -> TraceEvent {
        TraceEvent::Task {
            task,
            label: label.into(),
            resource: TraceResource { node, name: name.into() },
            start: SimTime(s),
            end: SimTime(e),
        }
    }

    #[test]
    fn header_names_objects_and_endtime() {
        let evs = vec![task_ev(1, 0, "gpu0", "k", 0, 10), task_ev(2, 1, "worker0", "k", 5, 25)];
        let p = ParaverTrace::from_events(&evs, SimTime(25));
        assert!(p.prv.starts_with("#Paraver (01/01/2012 at 00:00):25_ns:1(2):1:1(2:1)\n"));
        assert_eq!(p.row, "LEVEL THREAD SIZE 2\nnode0.gpu0\nnode1.worker0\n");
    }

    #[test]
    fn task_becomes_state_plus_label_events() {
        let evs = vec![task_ev(7, 0, "worker0", "scale", 10, 40)];
        let p = ParaverTrace::from_events(&evs, SimTime(40));
        let lines: Vec<&str> = p.prv.lines().collect();
        assert_eq!(lines[1], format!("1:1:1:1:1:10:40:{STATE_RUNNING}"));
        assert_eq!(lines[2], format!("2:1:1:1:1:10:{EVENT_TASK_LABEL}:1"));
        assert_eq!(lines[3], format!("2:1:1:1:1:40:{EVENT_TASK_LABEL}:0"));
    }

    #[test]
    fn transfers_ride_a_medium_thread() {
        let evs = vec![
            task_ev(1, 0, "gpu0", "k", 0, 10),
            TraceEvent::Transfer { medium: "pcie", bytes: 512, start: SimTime(2), end: SimTime(6) },
        ];
        let p = ParaverTrace::from_events(&evs, SimTime(10));
        // Object 2 is the pcie medium thread (after 1 resource).
        assert!(p.prv.contains(&format!("1:2:1:1:2:2:6:{STATE_TRANSFER}")));
        assert!(p.prv.contains(&format!("2:2:1:1:2:2:{EVENT_TRANSFER_BYTES}:512")));
        assert!(p.row.ends_with("transfers.pcie\n"));
    }

    #[test]
    fn recovery_marks_ride_their_own_thread() {
        let evs = vec![
            task_ev(1, 0, "gpu0", "k", 0, 10),
            TraceEvent::Transfer { medium: "pcie", bytes: 64, start: SimTime(1), end: SimTime(3) },
            TraceEvent::Recovery { kind: "task_retry", task: Some(1), at: SimTime(5) },
            TraceEvent::Recovery { kind: "device_lost", task: None, at: SimTime(8) },
        ];
        let p = ParaverTrace::from_events(&evs, SimTime(10));
        // Objects: 1 resource, 1 medium, then the recovery thread (3).
        assert!(p.prv.starts_with("#Paraver (01/01/2012 at 00:00):10_ns:1(3):1:1(3:1)\n"));
        assert!(p.prv.contains(&format!("2:3:1:1:3:5:{EVENT_RECOVERY}:1")));
        assert!(p.prv.contains(&format!("2:3:1:1:3:8:{EVENT_RECOVERY}:2")));
        assert!(p.row.ends_with("transfers.pcie\nrecovery\n"));
    }

    #[test]
    fn no_recovery_thread_without_recovery_events() {
        let evs = vec![task_ev(1, 0, "gpu0", "k", 0, 10)];
        let p = ParaverTrace::from_events(&evs, SimTime(10));
        assert!(p.prv.starts_with("#Paraver (01/01/2012 at 00:00):10_ns:1(1):1:1(1:1)\n"));
        assert!(!p.row.contains("recovery"));
    }

    #[test]
    fn records_are_time_sorted_and_deterministic() {
        let evs = vec![task_ev(2, 0, "b", "k2", 50, 80), task_ev(1, 0, "a", "k1", 10, 40)];
        let p1 = ParaverTrace::from_events(&evs, SimTime(80));
        let p2 = ParaverTrace::from_events(&evs, SimTime(80));
        assert_eq!(p1, p2);
        let times: Vec<u64> = p1
            .prv
            .lines()
            .skip(1)
            .map(|l| {
                l.split(':')
                    .nth(5)
                    .expect("prv record is missing field 6 (begin time)")
                    .parse()
                    .expect("prv begin-time field is not an integer")
            })
            .collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
    }
}
