//! Task descriptors — what a `#pragma omp task` + `#pragma omp target`
//! pair lowers to.
//!
//! Mercurium translates the directives into runtime calls carrying: the
//! target device, the dependence clauses (evaluated to address ranges),
//! and whether those clauses also have copy semantics (`copy_deps`).
//! [`TaskDesc`] is that lowered form.

use ompss_mem::{Access, AccessKind, Region};

/// Identifier of a task instance, unique within a runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u64);

/// Target device of a task (`device(...)` clause of the `target`
/// construct). Only the two the paper evaluates are supported.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Device {
    /// Run on a host CPU core.
    Smp,
    /// Run on a GPU (the paper's `device(cuda)`).
    Cuda,
}

/// The lowered form of one task instance.
#[derive(Debug, Clone)]
pub struct TaskDesc {
    /// Unique id.
    pub id: TaskId,
    /// Human-readable kernel name, for traces and stats.
    pub label: String,
    /// Target device kind.
    pub device: Device,
    /// Dependence clauses (`input`/`output`/`inout`).
    pub deps: Vec<Access>,
    /// `copy_deps`: dependence clauses double as copy clauses.
    pub copy_deps: bool,
    /// Explicit `copy_in`/`copy_out`/`copy_inout` clauses beyond the
    /// dependence clauses.
    pub extra_copies: Vec<Access>,
    /// Scheduling priority (`priority` clause); higher runs earlier
    /// among ready tasks. Default 0.
    pub priority: i32,
}

impl TaskDesc {
    /// All regions with copy semantics: the dependence clauses when
    /// `copy_deps` is set, plus any explicit copy clauses. This is what
    /// the coherence layer must make available in the execution space.
    pub fn copies(&self) -> Vec<Access> {
        let mut out = Vec::new();
        if self.copy_deps {
            out.extend(self.deps.iter().copied());
        }
        out.extend(self.extra_copies.iter().copied());
        out
    }

    /// Regions the task will read in its execution space.
    pub fn copy_inputs(&self) -> Vec<Region> {
        self.copies().iter().filter(|a| a.kind.reads()).map(|a| a.region).collect()
    }

    /// Regions the task will produce in its execution space.
    pub fn copy_outputs(&self) -> Vec<Region> {
        self.copies().iter().filter(|a| a.kind.writes()).map(|a| a.region).collect()
    }

    /// Total bytes named by copy clauses — the task's data footprint,
    /// used by the locality-aware scheduler's affinity score.
    pub fn copy_footprint(&self) -> u64 {
        self.copies().iter().map(|a| a.region.len).sum()
    }
}

/// Convenience constructors for the three dependence clauses.
pub trait AccessExt {
    /// `input(region)` clause.
    fn read(region: Region) -> Access;
    /// `output(region)` clause.
    fn write(region: Region) -> Access;
    /// `inout(region)` clause.
    fn update(region: Region) -> Access;
}

impl AccessExt for Access {
    fn read(region: Region) -> Access {
        Access { region, kind: AccessKind::Input }
    }
    fn write(region: Region) -> Access {
        Access { region, kind: AccessKind::Output }
    }
    fn update(region: Region) -> Access {
        Access { region, kind: AccessKind::InOut }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompss_mem::DataId;

    fn desc(copy_deps: bool) -> TaskDesc {
        let a = Region::new(DataId(1), 0, 64);
        let b = Region::new(DataId(2), 0, 32);
        let c = Region::new(DataId(3), 0, 16);
        TaskDesc {
            id: TaskId(1),
            label: "t".into(),
            device: Device::Cuda,
            deps: vec![Access::input(a), Access::inout(b)],
            copy_deps,
            extra_copies: vec![Access::output(c)],
            priority: 0,
        }
    }

    #[test]
    fn copies_merge_deps_when_copy_deps() {
        let t = desc(true);
        assert_eq!(t.copies().len(), 3);
        assert_eq!(t.copy_footprint(), 64 + 32 + 16);
        assert_eq!(t.copy_inputs().len(), 2); // a (input) + b (inout)
        assert_eq!(t.copy_outputs().len(), 2); // b (inout) + c (output)
    }

    #[test]
    fn copies_exclude_deps_without_copy_deps() {
        let t = desc(false);
        assert_eq!(t.copies().len(), 1);
        assert_eq!(t.copy_footprint(), 16);
    }
}
