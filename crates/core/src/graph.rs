//! The task dependency graph (paper §III-C1).
//!
//! Nanos++ maintains a DAG connecting sibling tasks by the dependence
//! kinds read-after-write, write-after-read and write-after-write,
//! derived from `input`/`output`/`inout` clauses over *exact-match*
//! regions. Tasks become *ready* when their predecessor count drains;
//! completing a task releases its successors. The OmpSs model only
//! relates siblings (tasks created by the same parent), so nested
//! parallelism uses one graph per parent — that is what lets the
//! cluster runtime distribute hierarchy cheaply.
//!
//! Partial region overlap is not supported (as in the paper's
//! implementation) and is *detected*: submitting a task whose clause
//! partially overlaps a previously-seen region is a model error, not
//! silent misbehaviour.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

use ompss_mem::{Access, DataId, Region};

use crate::task::TaskId;

/// Lifecycle of a task within the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Waiting on predecessors.
    Pending,
    /// All predecessors completed; eligible for scheduling.
    Ready,
    /// Handed to a resource and executing.
    Running,
    /// Finished; successors released.
    Completed,
}

/// Errors detected at task submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A dependence clause partially overlaps a region already tracked
    /// for the same data object — undefined behaviour in the OmpSs
    /// model, rejected here. Boxed: the diagnostic payload is large
    /// and the `Ok` path pays for the biggest variant.
    PartialOverlap(Box<PartialOverlap>),
    /// The same task id was submitted twice.
    DuplicateTask(TaskId),
}

/// The payload of [`GraphError::PartialOverlap`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialOverlap {
    /// The submitting task.
    pub task: TaskId,
    /// Label of the submitting task (empty if none was given).
    pub task_label: String,
    /// The newly-declared region.
    pub new: Region,
    /// The previously-tracked region it collides with.
    pub existing: Region,
    /// The task that declared `existing` most recently, if any
    /// (`None` when the collision is between two clauses of the
    /// submitting task itself).
    pub existing_task: Option<TaskId>,
    /// Label of `existing_task` (empty if unknown or unlabeled).
    pub existing_label: String,
    /// Suggested exact-match split: the union of both regions cut
    /// at every boundary. Declaring these sub-regions instead of
    /// `new`/`existing` keeps dependence matching exact.
    pub splits: Vec<Region>,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::PartialOverlap(o) => {
                let who = fmt_task(o.task, &o.task_label);
                let owner = match o.existing_task {
                    Some(t) => format!(" (declared by {})", fmt_task(t, &o.existing_label)),
                    None => " (declared by the same task)".to_string(),
                };
                let cut = o.splits.iter().map(|r| r.to_string()).collect::<Vec<_>>().join(", ");
                write!(
                    f,
                    "{who} declares region {} partially overlapping {}{owner}; \
                     partial overlap is unsupported (undefined behaviour in OmpSs) — \
                     split both clauses into exact tiles: {cut}",
                    o.new, o.existing
                )
            }
            GraphError::DuplicateTask(id) => write!(f, "task {id:?} submitted twice"),
        }
    }
}

fn fmt_task(id: TaskId, label: &str) -> String {
    if label.is_empty() {
        format!("task {}", id.0)
    } else {
        format!("task {} '{label}'", id.0)
    }
}

impl std::error::Error for GraphError {}

/// An advisory finding detected over the graph: not an error (the run
/// stays well-defined) but a strong smell the verify subsystem reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphLint {
    /// A region produced by `writer` was overwritten by a non-reading
    /// (`output`) clause of `overwriter` with no task reading it in
    /// between — the value never escaped (dead / never-released write).
    /// Host-side reads between taskwaits are not tracked here, so this
    /// is advisory.
    DeadWrite {
        /// The overwritten region.
        region: Region,
        /// The task whose write was lost.
        writer: TaskId,
        /// Label of `writer`.
        writer_label: String,
        /// The task that overwrote it without reading.
        overwriter: TaskId,
        /// Label of `overwriter`.
        overwriter_label: String,
    },
    /// Two tasks wrote overlapping bytes with no ordering path between
    /// them in either direction — a write/write race.
    ConcurrentWrite {
        /// First writer (lower id).
        a: TaskId,
        /// Label of `a`.
        a_label: String,
        /// Bytes written by `a`.
        a_region: Region,
        /// Second writer.
        b: TaskId,
        /// Label of `b`.
        b_label: String,
        /// Bytes written by `b`.
        b_region: Region,
    },
    /// A task read bytes another task wrote, with no ordering path
    /// between them — the reader may observe a stale (or torn) value.
    UnorderedReadWrite {
        /// The reading task.
        reader: TaskId,
        /// Label of `reader`.
        reader_label: String,
        /// Bytes read.
        read: Region,
        /// The writing task.
        writer: TaskId,
        /// Label of `writer`.
        writer_label: String,
        /// Bytes written.
        written: Region,
    },
}

impl fmt::Display for GraphLint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphLint::DeadWrite { region, writer, writer_label, overwriter, overwriter_label } => {
                write!(
                    f,
                    "dead write: {} produced {region} but {} overwrote it before any task read it",
                    fmt_task(*writer, writer_label),
                    fmt_task(*overwriter, overwriter_label)
                )
            }
            GraphLint::ConcurrentWrite { a, a_label, a_region, b, b_label, b_region } => write!(
                f,
                "concurrent writers: {} wrote {a_region} and {} wrote {b_region} \
                 with no ordering path between them",
                fmt_task(*a, a_label),
                fmt_task(*b, b_label)
            ),
            GraphLint::UnorderedReadWrite {
                reader,
                reader_label,
                read,
                writer,
                writer_label,
                written,
            } => write!(
                f,
                "stale read: {} read {read} while {} wrote {written} \
                 with no ordering path between them",
                fmt_task(*reader, reader_label),
                fmt_task(*writer, writer_label)
            ),
        }
    }
}

struct Node {
    preds: usize,
    succs: Vec<TaskId>,
    state: TaskState,
    label: String,
    /// Position in the global submit/complete sequence when submitted.
    seq: u64,
    /// Position in the sequence when completed, if completed.
    completed_seq: Option<u64>,
}

#[derive(Default)]
struct RegionState {
    last_writer: Option<TaskId>,
    readers: Vec<TaskId>,
    /// Most recent task to declare any clause on this exact region —
    /// used to name the owner in `PartialOverlap` diagnostics.
    declared_by: Option<TaskId>,
    /// Every writer of this region in submission order, retained only
    /// while lineage tracking is enabled and bounded by its depth. The
    /// exact-match dependence rules serialise writers of one region
    /// (WAW/RAW/WAR chaining), so position `k` in the *absolute* history
    /// is the producer of version `k + 1` — the fact the node-loss
    /// recovery path re-executes from.
    writers: Vec<TaskId>,
    /// Writers trimmed off the front of `writers` by the depth bound;
    /// `writers[i]` is absolute writer index `dropped + i`.
    dropped: u64,
}

/// Regions tracked for one datum, with the longest region length ever
/// declared on it. The bound lets partial-overlap validation scan only
/// keys in `(offset + 1 − max_len)..end` instead of every region below
/// `end` — O(candidates) instead of O(all prior regions) per access,
/// which keeps submission linear for tiled apps.
#[derive(Default)]
struct DataRegions {
    max_len: u64,
    map: BTreeMap<(u64, u64), RegionState>,
}

/// A single-level (sibling) task dependency graph.
#[derive(Default)]
pub struct TaskGraph {
    nodes: HashMap<TaskId, Node>,
    regions: HashMap<DataId, DataRegions>,
    live: usize,
    /// Logical clock over submit/complete events, backing the
    /// happens-before oracle (a completed-before-b-was-submitted is an
    /// ordering even though no edge was recorded).
    clock: u64,
    lints: Vec<GraphLint>,
    /// Per-region writer-history retention depth; `None` (the default)
    /// retains nothing — the zero-cost path when node-loss recovery is
    /// disarmed.
    lineage: Option<u32>,
}

impl TaskGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Submit a task with its dependence clauses. Returns `true` if the
    /// task is immediately ready (no outstanding predecessors).
    pub fn add_task(&mut self, id: TaskId, accesses: &[Access]) -> Result<bool, GraphError> {
        self.add_task_labeled(id, "", accesses)
    }

    /// [`TaskGraph::add_task`] with a human-readable task label, threaded
    /// into diagnostics and lints.
    pub fn add_task_labeled(
        &mut self,
        id: TaskId,
        label: &str,
        accesses: &[Access],
    ) -> Result<bool, GraphError> {
        if self.nodes.contains_key(&id) {
            return Err(GraphError::DuplicateTask(id));
        }
        // Validate against tracked regions and against the task's own
        // clauses before mutating any state.
        for (i, a) in accesses.iter().enumerate() {
            if let Some((existing, owner)) = self.find_partial_overlap(&a.region) {
                return Err(self.partial_overlap(id, label, a.region, existing, owner));
            }
            for b in &accesses[i + 1..] {
                if a.region.partially_overlaps(&b.region) {
                    return Err(self.partial_overlap(id, label, b.region, a.region, None));
                }
            }
        }

        let mut preds: HashSet<TaskId> = HashSet::new();
        let mut dead: Vec<(Region, TaskId)> = Vec::new();
        let lineage = self.lineage;
        for a in accesses {
            let dr = self.regions.entry(a.region.data).or_default();
            dr.max_len = dr.max_len.max(a.region.len);
            let st = dr.map.entry((a.region.offset, a.region.len)).or_default();
            if a.kind.reads() {
                if let Some(w) = st.last_writer {
                    if w != id {
                        preds.insert(w);
                    }
                }
            }
            if a.kind.writes() {
                // A non-reading write that supersedes an unread write:
                // the previous value never escaped. Advisory lint.
                if !a.kind.reads() {
                    if let Some(w) = st.last_writer {
                        if st.readers.is_empty() && w != id {
                            dead.push((a.region, w));
                        }
                    }
                }
                // WAR on every reader since the last write, WAW on the
                // last writer (covers the no-reader case).
                for &r in &st.readers {
                    if r != id {
                        preds.insert(r);
                    }
                }
                if let Some(w) = st.last_writer {
                    if w != id {
                        preds.insert(w);
                    }
                }
                st.last_writer = Some(id);
                st.readers.clear();
                if let Some(depth) = lineage {
                    st.writers.push(id);
                    let over = st.writers.len().saturating_sub(depth.max(1) as usize);
                    if over > 0 {
                        st.writers.drain(..over);
                        st.dropped += over as u64;
                    }
                }
            } else {
                // Pure reader.
                if !st.readers.contains(&id) {
                    st.readers.push(id);
                }
            }
            st.declared_by = Some(id);
        }
        for (region, w) in dead {
            self.lints.push(GraphLint::DeadWrite {
                region,
                writer: w,
                writer_label: self.label_of(w).to_string(),
                overwriter: id,
                overwriter_label: label.to_string(),
            });
        }

        // Count only predecessors that have not already completed.
        let mut pred_count = 0;
        for p in preds {
            let pnode = self.nodes.get_mut(&p).expect("predecessor must exist");
            if pnode.state != TaskState::Completed {
                pnode.succs.push(id);
                pred_count += 1;
            }
        }

        let ready = pred_count == 0;
        self.clock += 1;
        self.nodes.insert(
            id,
            Node {
                preds: pred_count,
                succs: Vec::new(),
                state: if ready { TaskState::Ready } else { TaskState::Pending },
                label: label.to_string(),
                seq: self.clock,
                completed_seq: None,
            },
        );
        self.live += 1;
        Ok(ready)
    }

    fn partial_overlap(
        &self,
        id: TaskId,
        label: &str,
        new: Region,
        existing: Region,
        owner: Option<TaskId>,
    ) -> GraphError {
        GraphError::PartialOverlap(Box::new(PartialOverlap {
            task: id,
            task_label: label.to_string(),
            new,
            existing,
            existing_task: owner,
            existing_label: owner.map(|t| self.label_of(t).to_string()).unwrap_or_default(),
            splits: suggest_splits(&new, &existing),
        }))
    }

    fn find_partial_overlap(&self, r: &Region) -> Option<(Region, Option<TaskId>)> {
        let dr = self.regions.get(&r.data)?;
        // A region (o, l) overlaps `r` only if o < r.end() and
        // o + l > r.offset; with l ≤ max_len that bounds o from below.
        let start = (r.offset + 1).saturating_sub(dr.max_len);
        for (&(offset, len), st) in dr.map.range((start, 0)..(r.end(), 0)) {
            let existing = Region { data: r.data, offset, len };
            if r.partially_overlaps(&existing) {
                return Some((existing, st.declared_by));
            }
        }
        None
    }

    fn label_of(&self, id: TaskId) -> &str {
        self.nodes.get(&id).map(|n| n.label.as_str()).unwrap_or("")
    }

    /// Mark a ready task as running (handed to a resource).
    pub fn start(&mut self, id: TaskId) {
        let n = self.nodes.get_mut(&id).expect("unknown task");
        assert_eq!(n.state, TaskState::Ready, "start() on a task that is not ready");
        n.state = TaskState::Running;
    }

    /// Return a running task to the ready state without releasing its
    /// successors — its resource was lost before the task could finish,
    /// and the runtime is migrating it to a surviving resource, which
    /// will [`start`](TaskGraph::start) it again.
    pub fn reset_running(&mut self, id: TaskId) {
        let n = self.nodes.get_mut(&id).expect("unknown task");
        assert_eq!(n.state, TaskState::Running, "reset_running() on a task that is not running");
        n.state = TaskState::Ready;
    }

    /// Complete a task, releasing successors. Returns the tasks that
    /// became ready.
    pub fn complete(&mut self, id: TaskId) -> Vec<TaskId> {
        let mut newly_ready = Vec::new();
        self.complete_into(id, &mut newly_ready);
        newly_ready
    }

    /// [`TaskGraph::complete`] into a caller-supplied buffer (cleared
    /// first), so the per-completion allocation disappears from hot
    /// loops that complete many tasks with a reusable scratch vector.
    pub fn complete_into(&mut self, id: TaskId, newly_ready: &mut Vec<TaskId>) {
        newly_ready.clear();
        self.clock += 1;
        let clock = self.clock;
        let succs = {
            let n = self.nodes.get_mut(&id).expect("unknown task");
            assert_ne!(n.state, TaskState::Completed, "task completed twice");
            n.state = TaskState::Completed;
            n.completed_seq = Some(clock);
            // Edges move out and back below (not cloned) so the verify
            // subsystem can still query reachability after the run.
            // Nothing appends to a completed task's edge list, so the
            // round trip is invisible.
            std::mem::take(&mut n.succs)
        };
        self.live -= 1;
        for &s in &succs {
            let sn = self.nodes.get_mut(&s).expect("successor must exist");
            sn.preds -= 1;
            if sn.preds == 0 {
                sn.state = TaskState::Ready;
                newly_ready.push(s);
            }
        }
        self.nodes.get_mut(&id).expect("unknown task").succs = succs;
    }

    /// State of a task.
    pub fn state(&self, id: TaskId) -> TaskState {
        self.nodes.get(&id).expect("unknown task").state
    }

    /// Current successors of a task (direct dependents submitted so
    /// far), borrowed — no per-query allocation. The `dependencies`
    /// scheduler consults this to run a freed successor immediately.
    pub fn successors(&self, id: TaskId) -> &[TaskId] {
        self.nodes.get(&id).map(|n| n.succs.as_slice()).unwrap_or(&[])
    }

    /// Number of tasks not yet completed.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Tasks ever submitted.
    pub fn submitted(&self) -> usize {
        self.nodes.len()
    }

    /// The task that most recently declared a write on exactly `region`,
    /// if it has not completed. Used by `taskwait on(...)`.
    pub fn pending_writer(&self, region: &Region) -> Option<TaskId> {
        let st = self.regions.get(&region.data)?.map.get(&(region.offset, region.len))?;
        let w = st.last_writer?;
        if self.nodes.get(&w).map(|n| n.state) == Some(TaskState::Completed) {
            None
        } else {
            Some(w)
        }
    }

    /// Advisory lints accumulated at submission time (dead writes).
    pub fn lints(&self) -> &[GraphLint] {
        &self.lints
    }

    /// Introspection for ahead-of-run analysis (the `ompss-mc` static
    /// lints): every submitted task in submission order, with its label
    /// and the dependence successors recorded at submission time. Edges
    /// only exist toward tasks submitted while the predecessor was
    /// still live — completed-before-submission orderings are temporal,
    /// not edges (see [`TaskGraph::happens_before`]).
    pub fn tasks_snapshot(&self) -> Vec<(TaskId, &str, &[TaskId])> {
        let mut v: Vec<(&TaskId, &Node)> = self.nodes.iter().collect();
        v.sort_by_key(|(_, n)| n.seq);
        v.into_iter().map(|(id, n)| (*id, n.label.as_str(), n.succs.as_slice())).collect()
    }

    /// Retain up to `depth` writers per region for lineage-based
    /// reconstruction (node-loss recovery). Enable *before* submitting
    /// tasks — history is recorded at submission, not retroactively.
    pub fn enable_lineage(&mut self, depth: u32) {
        self.lineage = Some(depth);
    }

    /// The retained writer history of exactly `region`: the slice of
    /// retained writer ids plus the count of older writers trimmed by
    /// the depth bound. The producer of version `v` (versions are
    /// 1-based; version 0 is the pre-task home copy) is absolute writer
    /// index `v - 1`, i.e. `writers[v - 1 - dropped]` when retained.
    /// `None` when lineage is disabled or the region has no writers.
    pub fn writer_history(&self, region: &Region) -> Option<(&[TaskId], u64)> {
        self.lineage?;
        let st = self.regions.get(&region.data)?.map.get(&(region.offset, region.len))?;
        if st.writers.is_empty() && st.dropped == 0 {
            return None;
        }
        Some((&st.writers, st.dropped))
    }

    /// The label a task was submitted with (empty if unknown).
    pub fn task_label(&self, id: TaskId) -> &str {
        self.label_of(id)
    }

    /// Is `a` ordered before `b`? True when `a == b`, when `a` completed
    /// before `b` was submitted (temporal order — the graph records no
    /// edge for an already-completed predecessor), or when a dependence
    /// path `a → … → b` exists. Sound and complete over the orderings
    /// the runtime actually enforces: any enforced chain either consists
    /// purely of edges (found by the walk) or contains a
    /// completed-before-submitted link, in which case `a` itself
    /// completed before `b` was submitted.
    pub fn happens_before(&self, a: TaskId, b: TaskId) -> bool {
        if a == b {
            return true;
        }
        let (Some(na), Some(nb)) = (self.nodes.get(&a), self.nodes.get(&b)) else {
            return false;
        };
        if na.completed_seq.is_some_and(|ca| ca < nb.seq) {
            return true;
        }
        let mut stack = vec![a];
        let mut seen = HashSet::new();
        while let Some(x) = stack.pop() {
            if x == b {
                return true;
            }
            if !seen.insert(x) {
                continue;
            }
            if let Some(n) = self.nodes.get(&x) {
                stack.extend(n.succs.iter().copied());
            }
        }
        false
    }

    /// Race detection over *observed* accesses `(task, region, is_write)`
    /// — typically the regions task bodies actually touched, as recorded
    /// by the verify subsystem's access-tracking mode. Declared clauses
    /// never race (the graph orders them by construction), so this is
    /// where mis-declared clauses surface: any overlapping pair with at
    /// least one write and no ordering path in either direction is a
    /// race. One lint per unordered task pair and kind.
    pub fn races(&self, observed: &[(TaskId, Region, bool)]) -> Vec<GraphLint> {
        let mut out = Vec::new();
        let mut reported: HashSet<(TaskId, TaskId, bool)> = HashSet::new();
        for (i, &(ta, ra, wa)) in observed.iter().enumerate() {
            for &(tb, rb, wb) in &observed[i + 1..] {
                if ta == tb || (!wa && !wb) || !ra.overlaps(&rb) {
                    continue;
                }
                if self.happens_before(ta, tb) || self.happens_before(tb, ta) {
                    continue;
                }
                let (lo, hi) = if ta.0 <= tb.0 { (ta, tb) } else { (tb, ta) };
                let both_write = wa && wb;
                if !reported.insert((lo, hi, both_write)) {
                    continue;
                }
                if both_write {
                    let ((a, a_region), (b, b_region)) =
                        if ta.0 <= tb.0 { ((ta, ra), (tb, rb)) } else { ((tb, rb), (ta, ra)) };
                    out.push(GraphLint::ConcurrentWrite {
                        a,
                        a_label: self.label_of(a).to_string(),
                        a_region,
                        b,
                        b_label: self.label_of(b).to_string(),
                        b_region,
                    });
                } else {
                    let ((reader, read), (writer, written)) =
                        if wa { ((tb, rb), (ta, ra)) } else { ((ta, ra), (tb, rb)) };
                    out.push(GraphLint::UnorderedReadWrite {
                        reader,
                        reader_label: self.label_of(reader).to_string(),
                        read,
                        writer,
                        writer_label: self.label_of(writer).to_string(),
                        written,
                    });
                }
            }
        }
        out
    }
}

/// Cut the union of two partially-overlapping regions at every start/end
/// boundary, yielding the exact-match tiles a correct decomposition
/// would use.
fn suggest_splits(a: &Region, b: &Region) -> Vec<Region> {
    debug_assert_eq!(a.data, b.data);
    let mut cuts = [a.offset, a.end(), b.offset, b.end()];
    cuts.sort_unstable();
    let mut out = Vec::new();
    for w in cuts.windows(2) {
        if w[1] > w[0] {
            out.push(Region { data: a.data, offset: w[0], len: w[1] - w[0] });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::AccessExt;

    fn r(data: u64, offset: u64, len: u64) -> Region {
        Region::new(DataId(data), offset, len)
    }

    fn t(n: u64) -> TaskId {
        TaskId(n)
    }

    #[test]
    fn independent_tasks_are_immediately_ready() {
        let mut g = TaskGraph::new();
        assert!(g.add_task(t(1), &[Access::write(r(1, 0, 8))]).unwrap());
        assert!(g.add_task(t(2), &[Access::write(r(1, 8, 8))]).unwrap());
        assert_eq!(g.live(), 2);
    }

    #[test]
    fn raw_chain_serialises() {
        let mut g = TaskGraph::new();
        assert!(g.add_task(t(1), &[Access::write(r(1, 0, 8))]).unwrap());
        assert!(!g.add_task(t(2), &[Access::read(r(1, 0, 8))]).unwrap());
        assert_eq!(g.state(t(2)), TaskState::Pending);
        let ready = g.complete(t(1));
        assert_eq!(ready, vec![t(2)]);
        assert_eq!(g.state(t(2)), TaskState::Ready);
    }

    #[test]
    fn multiple_readers_run_concurrently_then_war() {
        let mut g = TaskGraph::new();
        g.add_task(t(1), &[Access::write(r(1, 0, 8))]).unwrap();
        assert!(!g.add_task(t(2), &[Access::read(r(1, 0, 8))]).unwrap());
        assert!(!g.add_task(t(3), &[Access::read(r(1, 0, 8))]).unwrap());
        // Writer after the readers: WAR on both.
        assert!(!g.add_task(t(4), &[Access::write(r(1, 0, 8))]).unwrap());
        let ready = g.complete(t(1));
        assert_eq!(ready, vec![t(2), t(3)]);
        assert!(g.complete(t(2)).is_empty(), "writer still blocked on t3");
        assert_eq!(g.complete(t(3)), vec![t(4)]);
    }

    #[test]
    fn reset_running_allows_a_clean_restart() {
        let mut g = TaskGraph::new();
        g.add_task(t(1), &[Access::write(r(1, 0, 8))]).unwrap();
        assert!(!g.add_task(t(2), &[Access::read(r(1, 0, 8))]).unwrap());
        g.start(t(1));
        assert_eq!(g.state(t(1)), TaskState::Running);
        // The resource running t1 dies; the task migrates.
        g.reset_running(t(1));
        assert_eq!(g.state(t(1)), TaskState::Ready);
        assert_eq!(g.state(t(2)), TaskState::Pending, "successors stay blocked");
        g.start(t(1));
        assert_eq!(g.complete(t(1)), vec![t(2)]);
    }

    #[test]
    fn waw_orders_writers() {
        let mut g = TaskGraph::new();
        g.add_task(t(1), &[Access::write(r(1, 0, 8))]).unwrap();
        assert!(!g.add_task(t(2), &[Access::write(r(1, 0, 8))]).unwrap());
        assert_eq!(g.complete(t(1)), vec![t(2)]);
    }

    #[test]
    fn inout_is_both_raw_and_war() {
        let mut g = TaskGraph::new();
        g.add_task(t(1), &[Access::write(r(1, 0, 8))]).unwrap();
        g.add_task(t(2), &[Access::read(r(1, 0, 8))]).unwrap();
        assert!(!g.add_task(t(3), &[Access::update(r(1, 0, 8))]).unwrap());
        g.complete(t(1));
        // t3 needs both t1 (RAW) and t2 (WAR).
        assert_eq!(g.state(t(3)), TaskState::Pending);
        assert_eq!(g.complete(t(2)), vec![t(3)]);
    }

    #[test]
    fn diamond_dependency() {
        // t1 writes a; t2, t3 read a and write b0/b1; t4 reads b0+b1.
        let mut g = TaskGraph::new();
        g.add_task(t(1), &[Access::write(r(1, 0, 8))]).unwrap();
        g.add_task(t(2), &[Access::read(r(1, 0, 8)), Access::write(r(2, 0, 8))]).unwrap();
        g.add_task(t(3), &[Access::read(r(1, 0, 8)), Access::write(r(2, 8, 8))]).unwrap();
        g.add_task(t(4), &[Access::read(r(2, 0, 8)), Access::read(r(2, 8, 8))]).unwrap();
        assert_eq!(g.complete(t(1)), vec![t(2), t(3)]);
        assert!(g.complete(t(2)).is_empty());
        assert_eq!(g.complete(t(3)), vec![t(4)]);
    }

    #[test]
    fn dependency_on_completed_task_is_skipped() {
        let mut g = TaskGraph::new();
        g.add_task(t(1), &[Access::write(r(1, 0, 8))]).unwrap();
        g.complete(t(1));
        // Reader of data written by an already-completed task is ready.
        assert!(g.add_task(t(2), &[Access::read(r(1, 0, 8))]).unwrap());
    }

    #[test]
    fn partial_overlap_rejected_across_tasks() {
        let mut g = TaskGraph::new();
        g.add_task_labeled(t(1), "init", &[Access::write(r(1, 0, 16))]).unwrap();
        let err = g.add_task_labeled(t(2), "gemm", &[Access::read(r(1, 8, 16))]).unwrap_err();
        match err {
            GraphError::PartialOverlap(o) => {
                assert_eq!(o.task, t(2));
                assert_eq!(o.task_label, "gemm");
                assert_eq!(o.new, r(1, 8, 16));
                assert_eq!(o.existing, r(1, 0, 16));
                assert_eq!(o.existing_task, Some(t(1)), "names the declaring task");
                assert_eq!(o.existing_label, "init");
                assert_eq!(o.splits, vec![r(1, 0, 8), r(1, 8, 8), r(1, 16, 8)]);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn partial_overlap_diagnostic_mentions_labels_and_splits() {
        let mut g = TaskGraph::new();
        g.add_task_labeled(t(1), "init", &[Access::write(r(1, 0, 16))]).unwrap();
        let msg =
            g.add_task_labeled(t(2), "gemm", &[Access::read(r(1, 8, 16))]).unwrap_err().to_string();
        assert!(msg.contains("task 2 'gemm'"), "{msg}");
        assert!(msg.contains("task 1 'init'"), "{msg}");
        assert!(msg.contains("D1[0..8), D1[8..16), D1[16..24)"), "{msg}");
    }

    #[test]
    fn nested_overlap_suggests_three_way_split() {
        let mut g = TaskGraph::new();
        g.add_task(t(1), &[Access::write(r(1, 0, 24))]).unwrap();
        let err = g.add_task(t(2), &[Access::read(r(1, 8, 8))]).unwrap_err();
        match err {
            GraphError::PartialOverlap(o) => {
                assert_eq!(o.splits, vec![r(1, 0, 8), r(1, 8, 8), r(1, 16, 8)]);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn partial_overlap_rejected_within_one_task() {
        let mut g = TaskGraph::new();
        let err =
            g.add_task(t(1), &[Access::write(r(1, 0, 16)), Access::read(r(1, 4, 4))]).unwrap_err();
        assert!(matches!(err, GraphError::PartialOverlap(_)));
    }

    #[test]
    fn exact_match_regions_are_fine() {
        let mut g = TaskGraph::new();
        g.add_task(t(1), &[Access::write(r(1, 0, 16))]).unwrap();
        assert!(g.add_task(t(2), &[Access::read(r(1, 16, 16))]).unwrap(), "adjacent ok");
        assert!(!g.add_task(t(3), &[Access::read(r(1, 0, 16))]).unwrap(), "exact ok");
    }

    #[test]
    fn duplicate_task_rejected() {
        let mut g = TaskGraph::new();
        g.add_task(t(1), &[]).unwrap();
        assert_eq!(g.add_task(t(1), &[]).unwrap_err(), GraphError::DuplicateTask(t(1)));
    }

    #[test]
    fn successors_visible_for_scheduler() {
        let mut g = TaskGraph::new();
        g.add_task(t(1), &[Access::write(r(1, 0, 8))]).unwrap();
        g.add_task(t(2), &[Access::read(r(1, 0, 8))]).unwrap();
        g.add_task(t(3), &[Access::read(r(1, 0, 8))]).unwrap();
        assert_eq!(g.successors(t(1)), vec![t(2), t(3)]);
    }

    #[test]
    fn pending_writer_supports_taskwait_on() {
        let mut g = TaskGraph::new();
        g.add_task(t(1), &[Access::write(r(1, 0, 8))]).unwrap();
        assert_eq!(g.pending_writer(&r(1, 0, 8)), Some(t(1)));
        assert_eq!(g.pending_writer(&r(1, 8, 8)), None);
        g.complete(t(1));
        assert_eq!(g.pending_writer(&r(1, 0, 8)), None);
    }

    #[test]
    fn start_transitions_and_double_complete_panics() {
        let mut g = TaskGraph::new();
        g.add_task(t(1), &[]).unwrap();
        g.start(t(1));
        assert_eq!(g.state(t(1)), TaskState::Running);
        g.complete(t(1));
        assert_eq!(g.state(t(1)), TaskState::Completed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            g.complete(t(1));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn dead_write_lint_fires_on_unread_overwrite() {
        let mut g = TaskGraph::new();
        g.add_task_labeled(t(1), "init", &[Access::write(r(1, 0, 8))]).unwrap();
        // Output over an unread output: the init value never escaped.
        g.add_task_labeled(t(2), "scale", &[Access::write(r(1, 0, 8))]).unwrap();
        assert_eq!(g.lints().len(), 1);
        match &g.lints()[0] {
            GraphLint::DeadWrite { region, writer, writer_label, overwriter, overwriter_label } => {
                assert_eq!(*region, r(1, 0, 8));
                assert_eq!((*writer, writer_label.as_str()), (t(1), "init"));
                assert_eq!((*overwriter, overwriter_label.as_str()), (t(2), "scale"));
            }
            other => panic!("unexpected lint: {other:?}"),
        }
    }

    #[test]
    fn dead_write_lint_spares_read_values_and_inout() {
        let mut g = TaskGraph::new();
        g.add_task(t(1), &[Access::write(r(1, 0, 8))]).unwrap();
        g.add_task(t(2), &[Access::read(r(1, 0, 8))]).unwrap();
        // Overwrite after a read: value escaped, no lint.
        g.add_task(t(3), &[Access::write(r(1, 0, 8))]).unwrap();
        // InOut reads the prior version itself: no lint either.
        g.add_task(t(4), &[Access::update(r(1, 0, 8))]).unwrap();
        assert!(g.lints().is_empty(), "{:?}", g.lints());
    }

    #[test]
    fn happens_before_edges_temporal_and_unordered() {
        let mut g = TaskGraph::new();
        g.add_task(t(1), &[Access::write(r(1, 0, 8))]).unwrap();
        g.add_task(t(2), &[Access::read(r(1, 0, 8))]).unwrap(); // edge 1→2
        g.add_task(t(3), &[Access::write(r(2, 0, 8))]).unwrap(); // independent
        assert!(g.happens_before(t(1), t(2)), "dependence edge");
        assert!(!g.happens_before(t(2), t(1)));
        assert!(!g.happens_before(t(1), t(3)) && !g.happens_before(t(3), t(1)), "unordered");
        g.complete(t(1));
        g.complete(t(2));
        g.complete(t(3));
        // Temporal: t4 submitted after everything completed — ordered
        // after all of them even with no shared region.
        g.add_task(t(4), &[Access::write(r(3, 0, 8))]).unwrap();
        assert!(g.happens_before(t(1), t(4)) && g.happens_before(t(3), t(4)));
        assert!(!g.happens_before(t(4), t(1)));
        // Edges survive completion so reachability still answers.
        assert!(g.happens_before(t(1), t(2)));
    }

    #[test]
    fn races_found_only_between_unordered_tasks() {
        let mut g = TaskGraph::new();
        g.add_task_labeled(t(1), "a", &[Access::write(r(1, 0, 8))]).unwrap();
        g.add_task_labeled(t(2), "b", &[Access::read(r(1, 0, 8))]).unwrap(); // ordered after t1
        g.add_task_labeled(t(3), "c", &[Access::write(r(2, 0, 8))]).unwrap(); // unordered vs both
        let s = r(9, 0, 16); // a region nobody declared
                             // Ordered pair writing the same bytes: no race.
        assert!(g.races(&[(t(1), s, true), (t(2), s, true)]).is_empty());
        // Unordered write/write: one ConcurrentWrite.
        let ww = g.races(&[(t(1), s, true), (t(3), s, true)]);
        assert_eq!(ww.len(), 1);
        assert!(
            matches!(&ww[0], GraphLint::ConcurrentWrite { a, b, .. } if *a == t(1) && *b == t(3)),
            "{ww:?}"
        );
        // Unordered read vs write: one UnorderedReadWrite with roles.
        let rw = g.races(&[(t(3), s, false), (t(1), s, true)]);
        assert_eq!(rw.len(), 1);
        assert!(
            matches!(&rw[0], GraphLint::UnorderedReadWrite { reader, writer, .. }
                if *reader == t(3) && *writer == t(1)),
            "{rw:?}"
        );
        // Read/read never races.
        assert!(g.races(&[(t(1), s, false), (t(3), s, false)]).is_empty());
    }

    #[test]
    fn lineage_disabled_retains_nothing() {
        let mut g = TaskGraph::new();
        g.add_task(t(1), &[Access::write(r(1, 0, 8))]).unwrap();
        g.add_task(t(2), &[Access::update(r(1, 0, 8))]).unwrap();
        assert_eq!(g.writer_history(&r(1, 0, 8)), None, "no retention when disabled");
    }

    #[test]
    fn lineage_records_writers_in_version_order() {
        let mut g = TaskGraph::new();
        g.enable_lineage(64);
        let region = r(1, 0, 8);
        g.add_task(t(1), &[Access::write(region)]).unwrap();
        g.add_task(t(2), &[Access::read(region)]).unwrap(); // readers don't count
        g.add_task(t(3), &[Access::update(region)]).unwrap();
        g.add_task(t(4), &[Access::write(region)]).unwrap();
        let (writers, dropped) = g.writer_history(&region).unwrap();
        assert_eq!(writers, &[t(1), t(3), t(4)]);
        assert_eq!(dropped, 0);
        assert_eq!(g.writer_history(&r(1, 8, 8)), None, "unwritten region has no history");
    }

    #[test]
    fn lineage_depth_bound_trims_front_and_keeps_absolute_indexing() {
        let mut g = TaskGraph::new();
        g.enable_lineage(3);
        let region = r(1, 0, 8);
        for i in 1..=10 {
            g.add_task(t(i), &[Access::update(region)]).unwrap();
        }
        let (writers, dropped) = g.writer_history(&region).unwrap();
        assert_eq!(writers, &[t(8), t(9), t(10)]);
        assert_eq!(dropped, 7);
        // The producer of version v is absolute index v-1: version 9's
        // producer is writers[9 - 1 - dropped] = writers[1] = t(9).
        assert_eq!(writers[(9 - 1 - dropped) as usize], t(9));
    }

    #[test]
    fn long_chain_completes_in_order() {
        let mut g = TaskGraph::new();
        let region = r(1, 0, 8);
        for i in 0..100 {
            let ready = g.add_task(t(i), &[Access::update(region)]).unwrap();
            assert_eq!(ready, i == 0);
        }
        for i in 0..100 {
            let next = g.complete(t(i));
            if i < 99 {
                assert_eq!(next, vec![t(i + 1)]);
            } else {
                assert!(next.is_empty());
            }
        }
        assert_eq!(g.live(), 0);
        assert_eq!(g.submitted(), 100);
    }
}
