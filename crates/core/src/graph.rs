//! The task dependency graph (paper §III-C1).
//!
//! Nanos++ maintains a DAG connecting sibling tasks by the dependence
//! kinds read-after-write, write-after-read and write-after-write,
//! derived from `input`/`output`/`inout` clauses over *exact-match*
//! regions. Tasks become *ready* when their predecessor count drains;
//! completing a task releases its successors. The OmpSs model only
//! relates siblings (tasks created by the same parent), so nested
//! parallelism uses one graph per parent — that is what lets the
//! cluster runtime distribute hierarchy cheaply.
//!
//! Partial region overlap is not supported (as in the paper's
//! implementation) and is *detected*: submitting a task whose clause
//! partially overlaps a previously-seen region is a model error, not
//! silent misbehaviour.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

use ompss_mem::{Access, DataId, Region};

use crate::task::TaskId;

/// Lifecycle of a task within the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Waiting on predecessors.
    Pending,
    /// All predecessors completed; eligible for scheduling.
    Ready,
    /// Handed to a resource and executing.
    Running,
    /// Finished; successors released.
    Completed,
}

/// Errors detected at task submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A dependence clause partially overlaps a region already tracked
    /// for the same data object — undefined behaviour in the OmpSs
    /// model, rejected here.
    PartialOverlap {
        /// The submitting task.
        task: TaskId,
        /// The newly-declared region.
        new: Region,
        /// The previously-tracked region it collides with.
        existing: Region,
    },
    /// The same task id was submitted twice.
    DuplicateTask(TaskId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::PartialOverlap { task, new, existing } => write!(
                f,
                "task {task:?} declares region {new} partially overlapping {existing}; \
                 partial overlap is unsupported (undefined behaviour in OmpSs)"
            ),
            GraphError::DuplicateTask(id) => write!(f, "task {id:?} submitted twice"),
        }
    }
}

impl std::error::Error for GraphError {}

struct Node {
    preds: usize,
    succs: Vec<TaskId>,
    state: TaskState,
}

#[derive(Default)]
struct RegionState {
    last_writer: Option<TaskId>,
    readers: Vec<TaskId>,
}

/// A single-level (sibling) task dependency graph.
#[derive(Default)]
pub struct TaskGraph {
    nodes: HashMap<TaskId, Node>,
    regions: HashMap<DataId, BTreeMap<(u64, u64), RegionState>>,
    live: usize,
}

impl TaskGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Submit a task with its dependence clauses. Returns `true` if the
    /// task is immediately ready (no outstanding predecessors).
    pub fn add_task(&mut self, id: TaskId, accesses: &[Access]) -> Result<bool, GraphError> {
        if self.nodes.contains_key(&id) {
            return Err(GraphError::DuplicateTask(id));
        }
        // Validate against tracked regions and against the task's own
        // clauses before mutating any state.
        for (i, a) in accesses.iter().enumerate() {
            if let Some(existing) = self.find_partial_overlap(&a.region) {
                return Err(GraphError::PartialOverlap { task: id, new: a.region, existing });
            }
            for b in &accesses[i + 1..] {
                if a.region.partially_overlaps(&b.region) {
                    return Err(GraphError::PartialOverlap {
                        task: id,
                        new: b.region,
                        existing: a.region,
                    });
                }
            }
        }

        let mut preds: HashSet<TaskId> = HashSet::new();
        for a in accesses {
            let st = self
                .regions
                .entry(a.region.data)
                .or_default()
                .entry((a.region.offset, a.region.len))
                .or_default();
            if a.kind.reads() {
                if let Some(w) = st.last_writer {
                    if w != id {
                        preds.insert(w);
                    }
                }
            }
            if a.kind.writes() {
                // WAR on every reader since the last write, WAW on the
                // last writer (covers the no-reader case).
                for &r in &st.readers {
                    if r != id {
                        preds.insert(r);
                    }
                }
                if let Some(w) = st.last_writer {
                    if w != id {
                        preds.insert(w);
                    }
                }
                st.last_writer = Some(id);
                st.readers.clear();
            } else {
                // Pure reader.
                if !st.readers.contains(&id) {
                    st.readers.push(id);
                }
            }
        }

        // Count only predecessors that have not already completed.
        let mut pred_count = 0;
        for p in preds {
            let pnode = self.nodes.get_mut(&p).expect("predecessor must exist");
            if pnode.state != TaskState::Completed {
                pnode.succs.push(id);
                pred_count += 1;
            }
        }

        let ready = pred_count == 0;
        self.nodes.insert(
            id,
            Node {
                preds: pred_count,
                succs: Vec::new(),
                state: if ready { TaskState::Ready } else { TaskState::Pending },
            },
        );
        self.live += 1;
        Ok(ready)
    }

    fn find_partial_overlap(&self, r: &Region) -> Option<Region> {
        let map = self.regions.get(&r.data)?;
        for (&(offset, len), _) in map.range(..(r.end(), 0)) {
            let existing = Region { data: r.data, offset, len };
            if r.partially_overlaps(&existing) {
                return Some(existing);
            }
        }
        None
    }

    /// Mark a ready task as running (handed to a resource).
    pub fn start(&mut self, id: TaskId) {
        let n = self.nodes.get_mut(&id).expect("unknown task");
        assert_eq!(n.state, TaskState::Ready, "start() on a task that is not ready");
        n.state = TaskState::Running;
    }

    /// Complete a task, releasing successors. Returns the tasks that
    /// became ready.
    pub fn complete(&mut self, id: TaskId) -> Vec<TaskId> {
        let succs = {
            let n = self.nodes.get_mut(&id).expect("unknown task");
            assert_ne!(n.state, TaskState::Completed, "task completed twice");
            n.state = TaskState::Completed;
            std::mem::take(&mut n.succs)
        };
        self.live -= 1;
        let mut newly_ready = Vec::new();
        for s in succs {
            let sn = self.nodes.get_mut(&s).expect("successor must exist");
            sn.preds -= 1;
            if sn.preds == 0 {
                sn.state = TaskState::Ready;
                newly_ready.push(s);
            }
        }
        newly_ready
    }

    /// State of a task.
    pub fn state(&self, id: TaskId) -> TaskState {
        self.nodes.get(&id).expect("unknown task").state
    }

    /// Current successors of a task (direct dependents submitted so
    /// far). The `dependencies` scheduler consults this to run a freed
    /// successor immediately.
    pub fn successors(&self, id: TaskId) -> Vec<TaskId> {
        self.nodes.get(&id).map(|n| n.succs.clone()).unwrap_or_default()
    }

    /// Number of tasks not yet completed.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Tasks ever submitted.
    pub fn submitted(&self) -> usize {
        self.nodes.len()
    }

    /// The task that most recently declared a write on exactly `region`,
    /// if it has not completed. Used by `taskwait on(...)`.
    pub fn pending_writer(&self, region: &Region) -> Option<TaskId> {
        let st = self.regions.get(&region.data)?.get(&(region.offset, region.len))?;
        let w = st.last_writer?;
        if self.nodes.get(&w).map(|n| n.state) == Some(TaskState::Completed) {
            None
        } else {
            Some(w)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::AccessExt;

    fn r(data: u64, offset: u64, len: u64) -> Region {
        Region::new(DataId(data), offset, len)
    }

    fn t(n: u64) -> TaskId {
        TaskId(n)
    }

    #[test]
    fn independent_tasks_are_immediately_ready() {
        let mut g = TaskGraph::new();
        assert!(g.add_task(t(1), &[Access::write(r(1, 0, 8))]).unwrap());
        assert!(g.add_task(t(2), &[Access::write(r(1, 8, 8))]).unwrap());
        assert_eq!(g.live(), 2);
    }

    #[test]
    fn raw_chain_serialises() {
        let mut g = TaskGraph::new();
        assert!(g.add_task(t(1), &[Access::write(r(1, 0, 8))]).unwrap());
        assert!(!g.add_task(t(2), &[Access::read(r(1, 0, 8))]).unwrap());
        assert_eq!(g.state(t(2)), TaskState::Pending);
        let ready = g.complete(t(1));
        assert_eq!(ready, vec![t(2)]);
        assert_eq!(g.state(t(2)), TaskState::Ready);
    }

    #[test]
    fn multiple_readers_run_concurrently_then_war() {
        let mut g = TaskGraph::new();
        g.add_task(t(1), &[Access::write(r(1, 0, 8))]).unwrap();
        assert!(!g.add_task(t(2), &[Access::read(r(1, 0, 8))]).unwrap());
        assert!(!g.add_task(t(3), &[Access::read(r(1, 0, 8))]).unwrap());
        // Writer after the readers: WAR on both.
        assert!(!g.add_task(t(4), &[Access::write(r(1, 0, 8))]).unwrap());
        let ready = g.complete(t(1));
        assert_eq!(ready, vec![t(2), t(3)]);
        assert!(g.complete(t(2)).is_empty(), "writer still blocked on t3");
        assert_eq!(g.complete(t(3)), vec![t(4)]);
    }

    #[test]
    fn waw_orders_writers() {
        let mut g = TaskGraph::new();
        g.add_task(t(1), &[Access::write(r(1, 0, 8))]).unwrap();
        assert!(!g.add_task(t(2), &[Access::write(r(1, 0, 8))]).unwrap());
        assert_eq!(g.complete(t(1)), vec![t(2)]);
    }

    #[test]
    fn inout_is_both_raw_and_war() {
        let mut g = TaskGraph::new();
        g.add_task(t(1), &[Access::write(r(1, 0, 8))]).unwrap();
        g.add_task(t(2), &[Access::read(r(1, 0, 8))]).unwrap();
        assert!(!g.add_task(t(3), &[Access::update(r(1, 0, 8))]).unwrap());
        g.complete(t(1));
        // t3 needs both t1 (RAW) and t2 (WAR).
        assert_eq!(g.state(t(3)), TaskState::Pending);
        assert_eq!(g.complete(t(2)), vec![t(3)]);
    }

    #[test]
    fn diamond_dependency() {
        // t1 writes a; t2, t3 read a and write b0/b1; t4 reads b0+b1.
        let mut g = TaskGraph::new();
        g.add_task(t(1), &[Access::write(r(1, 0, 8))]).unwrap();
        g.add_task(t(2), &[Access::read(r(1, 0, 8)), Access::write(r(2, 0, 8))]).unwrap();
        g.add_task(t(3), &[Access::read(r(1, 0, 8)), Access::write(r(2, 8, 8))]).unwrap();
        g.add_task(t(4), &[Access::read(r(2, 0, 8)), Access::read(r(2, 8, 8))]).unwrap();
        assert_eq!(g.complete(t(1)), vec![t(2), t(3)]);
        assert!(g.complete(t(2)).is_empty());
        assert_eq!(g.complete(t(3)), vec![t(4)]);
    }

    #[test]
    fn dependency_on_completed_task_is_skipped() {
        let mut g = TaskGraph::new();
        g.add_task(t(1), &[Access::write(r(1, 0, 8))]).unwrap();
        g.complete(t(1));
        // Reader of data written by an already-completed task is ready.
        assert!(g.add_task(t(2), &[Access::read(r(1, 0, 8))]).unwrap());
    }

    #[test]
    fn partial_overlap_rejected_across_tasks() {
        let mut g = TaskGraph::new();
        g.add_task(t(1), &[Access::write(r(1, 0, 16))]).unwrap();
        let err = g.add_task(t(2), &[Access::read(r(1, 8, 16))]).unwrap_err();
        match err {
            GraphError::PartialOverlap { task, new, existing } => {
                assert_eq!(task, t(2));
                assert_eq!(new, r(1, 8, 16));
                assert_eq!(existing, r(1, 0, 16));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn partial_overlap_rejected_within_one_task() {
        let mut g = TaskGraph::new();
        let err =
            g.add_task(t(1), &[Access::write(r(1, 0, 16)), Access::read(r(1, 4, 4))]).unwrap_err();
        assert!(matches!(err, GraphError::PartialOverlap { .. }));
    }

    #[test]
    fn exact_match_regions_are_fine() {
        let mut g = TaskGraph::new();
        g.add_task(t(1), &[Access::write(r(1, 0, 16))]).unwrap();
        assert!(g.add_task(t(2), &[Access::read(r(1, 16, 16))]).unwrap(), "adjacent ok");
        assert!(!g.add_task(t(3), &[Access::read(r(1, 0, 16))]).unwrap(), "exact ok");
    }

    #[test]
    fn duplicate_task_rejected() {
        let mut g = TaskGraph::new();
        g.add_task(t(1), &[]).unwrap();
        assert_eq!(g.add_task(t(1), &[]).unwrap_err(), GraphError::DuplicateTask(t(1)));
    }

    #[test]
    fn successors_visible_for_scheduler() {
        let mut g = TaskGraph::new();
        g.add_task(t(1), &[Access::write(r(1, 0, 8))]).unwrap();
        g.add_task(t(2), &[Access::read(r(1, 0, 8))]).unwrap();
        g.add_task(t(3), &[Access::read(r(1, 0, 8))]).unwrap();
        assert_eq!(g.successors(t(1)), vec![t(2), t(3)]);
    }

    #[test]
    fn pending_writer_supports_taskwait_on() {
        let mut g = TaskGraph::new();
        g.add_task(t(1), &[Access::write(r(1, 0, 8))]).unwrap();
        assert_eq!(g.pending_writer(&r(1, 0, 8)), Some(t(1)));
        assert_eq!(g.pending_writer(&r(1, 8, 8)), None);
        g.complete(t(1));
        assert_eq!(g.pending_writer(&r(1, 0, 8)), None);
    }

    #[test]
    fn start_transitions_and_double_complete_panics() {
        let mut g = TaskGraph::new();
        g.add_task(t(1), &[]).unwrap();
        g.start(t(1));
        assert_eq!(g.state(t(1)), TaskState::Running);
        g.complete(t(1));
        assert_eq!(g.state(t(1)), TaskState::Completed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            g.complete(t(1));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn long_chain_completes_in_order() {
        let mut g = TaskGraph::new();
        let region = r(1, 0, 8);
        for i in 0..100 {
            let ready = g.add_task(t(i), &[Access::update(region)]).unwrap();
            assert_eq!(ready, i == 0);
        }
        for i in 0..100 {
            let next = g.complete(t(i));
            if i < 99 {
                assert_eq!(next, vec![t(i + 1)]);
            } else {
                assert!(next.is_empty());
            }
        }
        assert_eq!(g.live(), 0);
        assert_eq!(g.submitted(), 100);
    }
}
