//! # ompss-core — the OmpSs programming-model core
//!
//! The data-flow task model of Bueno et al. (IPPS 2012): tasks annotated
//! with `input`/`output`/`inout` dependence clauses over byte regions,
//! a `target` construct selecting the device (`smp`/`cuda`) and copy
//! semantics (`copy_deps`), and a sibling task dependency graph built
//! from RAW/WAR/WAW relations over *exact-match* regions.
//!
//! This crate is pure model — no virtual time, no devices: the runtime
//! crate drives it. That separation mirrors the paper's architecture,
//! where the dependence machinery is part of Nanos++'s
//! architecture-independent layer (§III-C).
//!
//! ```
//! use ompss_core::{AccessExt, TaskGraph, TaskId};
//! use ompss_mem::{Access, DataId, Region};
//!
//! let a = Region::new(DataId(0), 0, 1024);
//! let mut g = TaskGraph::new();
//! let producer_ready = g.add_task(TaskId(1), &[Access::write(a)]).unwrap();
//! let consumer_ready = g.add_task(TaskId(2), &[Access::read(a)]).unwrap();
//! assert!(producer_ready && !consumer_ready);
//! assert_eq!(g.complete(TaskId(1)), vec![TaskId(2)]);
//! ```

#![warn(missing_docs)]

mod graph;
mod task;

pub use graph::{GraphError, GraphLint, PartialOverlap, TaskGraph, TaskState};
pub use task::{AccessExt, Device, TaskDesc, TaskId};
