//! Property-based tests of the dependence graph: for arbitrary task
//! streams over a small region universe, any greedy execution must
//! respect the data-flow semantics of the clauses and must never get
//! stuck.

use proptest::prelude::*;

use ompss_core::{TaskGraph, TaskId, TaskState};
use ompss_mem::{Access, AccessKind, DataId, Region};

/// A compact generated clause: (data 0..3, slot 0..4, kind).
#[derive(Debug, Clone, Copy)]
struct GenAccess {
    data: u64,
    slot: u64,
    kind: AccessKind,
}

fn gen_access() -> impl Strategy<Value = GenAccess> {
    (0u64..3, 0u64..4, 0u8..3).prop_map(|(data, slot, k)| GenAccess {
        data,
        slot,
        kind: match k {
            0 => AccessKind::Input,
            1 => AccessKind::Output,
            _ => AccessKind::InOut,
        },
    })
}

fn to_access(g: GenAccess) -> Access {
    // Disjoint 8-byte slots: always exact-match, never partial overlap.
    Access { region: Region::new(DataId(g.data), g.slot * 8, 8), kind: g.kind }
}

/// One generated task: up to 3 clauses (deduplicated by region, with
/// the strongest kind winning, to keep clause lists well-formed).
fn gen_task() -> impl Strategy<Value = Vec<GenAccess>> {
    proptest::collection::vec(gen_access(), 1..4).prop_map(|mut v| {
        v.sort_by_key(|a| (a.data, a.slot));
        let mut out: Vec<GenAccess> = Vec::new();
        for a in v {
            if let Some(last) = out.last_mut() {
                if last.data == a.data && last.slot == a.slot {
                    // Merge duplicate regions into InOut when kinds differ.
                    if last.kind != a.kind {
                        last.kind = AccessKind::InOut;
                    }
                    continue;
                }
            }
            out.push(a);
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Greedy execution of any submitted task stream: (1) drains — no
    /// deadlock; (2) writers to a region complete in submission order;
    /// (3) a reader completes before the *next* writer of its region
    /// completes; (4) a reader's RAW writer completes before it does.
    #[test]
    fn execution_respects_dataflow(tasks in proptest::collection::vec(gen_task(), 1..40)) {
        let mut g = TaskGraph::new();
        let mut ready: Vec<TaskId> = Vec::new();
        let accesses: Vec<Vec<Access>> =
            tasks.iter().map(|t| t.iter().map(|&a| to_access(a)).collect()).collect();

        for (i, acc) in accesses.iter().enumerate() {
            let id = TaskId(i as u64);
            if g.add_task(id, acc).expect("disjoint slots never partially overlap") {
                ready.push(id);
            }
        }

        // Execute greedily in FIFO ready order, recording completion order.
        let mut completion_order: Vec<TaskId> = Vec::new();
        let mut idx = 0;
        while idx < ready.len() {
            let id = ready[idx];
            idx += 1;
            g.start(id);
            let newly = g.complete(id);
            completion_order.push(id);
            ready.extend(newly);
        }

        // (1) every task completed
        prop_assert_eq!(completion_order.len(), accesses.len());
        prop_assert_eq!(g.live(), 0);
        for i in 0..accesses.len() {
            prop_assert_eq!(g.state(TaskId(i as u64)), TaskState::Completed);
        }

        let completed_at: std::collections::HashMap<TaskId, usize> =
            completion_order.iter().enumerate().map(|(pos, &id)| (id, pos)).collect();

        // Per-region bookkeeping in submission order.
        use std::collections::HashMap;
        let mut last_writer: HashMap<(u64, u64, u64), TaskId> = HashMap::new();
        let mut readers_since: HashMap<(u64, u64, u64), Vec<TaskId>> = HashMap::new();
        for (i, acc) in accesses.iter().enumerate() {
            let id = TaskId(i as u64);
            for a in acc {
                let key = (a.region.data.0, a.region.offset, a.region.len);
                if a.kind.reads() {
                    if let Some(&w) = last_writer.get(&key) {
                        // (4) RAW: writer completes before this reader.
                        prop_assert!(completed_at[&w] < completed_at[&id],
                            "RAW violated: writer {:?} after reader {:?}", w, id);
                    }
                }
                if a.kind.writes() {
                    if let Some(&w) = last_writer.get(&key) {
                        // (2) WAW: earlier writer first.
                        prop_assert!(completed_at[&w] < completed_at[&id],
                            "WAW violated between {:?} and {:?}", w, id);
                    }
                    for r in readers_since.get(&key).into_iter().flatten() {
                        // (3) WAR: the readers complete before this writer.
                        prop_assert!(completed_at[r] < completed_at[&id],
                            "WAR violated: reader {:?} after writer {:?}", r, id);
                    }
                    last_writer.insert(key, id);
                    readers_since.insert(key, Vec::new());
                } else {
                    readers_since.entry(key).or_default().push(id);
                }
            }
        }
    }

    /// Submitting in any order, the set of immediately-ready tasks is
    /// exactly the set with no conflicting predecessor.
    #[test]
    fn initial_readiness_matches_conflicts(tasks in proptest::collection::vec(gen_task(), 1..25)) {
        let mut g = TaskGraph::new();
        let accesses: Vec<Vec<Access>> =
            tasks.iter().map(|t| t.iter().map(|&a| to_access(a)).collect()).collect();
        for (i, acc) in accesses.iter().enumerate() {
            let id = TaskId(i as u64);
            let ready = g.add_task(id, acc).unwrap();
            // Recompute expectation by brute force against all earlier tasks.
            let mut expect_ready = true;
            'outer: for (j, prev) in accesses[..i].iter().enumerate() {
                for a in acc {
                    for b in prev {
                        if a.region == b.region && (a.kind.writes() || b.kind.writes()) {
                            // There is an uncompleted conflicting predecessor
                            // (nothing has completed yet).
                            let _ = j;
                            expect_ready = false;
                            break 'outer;
                        }
                    }
                }
            }
            prop_assert_eq!(ready, expect_ready, "task {} readiness mismatch", i);
        }
    }
}
