//! Stateless DFS over the executor's schedule space.
//!
//! Each execution is re-run from the start under a
//! [`RecordingController`] that replays a prescribed prefix of
//! tie-break choices and records everything past it. The explorer
//! keeps one [`Frame`] per choice point on the current path and
//! backtracks depth-first, pruning with sleep sets: a candidate whose
//! process appears in a frame's sleep set starts an interleaving
//! provably equivalent (by the step-footprint independence relation,
//! [`StepFootprint::independent`]) to one already explored, so it is
//! skipped. Depth and preemption bounds keep the search finite on real
//! programs; every executed interleaving is distinct.
//!
//! Four oracles judge every execution:
//!
//! 1. **Determinism** — the run's output fingerprint must be
//!    byte-identical to the first interleaving's.
//! 2. **Deadlock freedom** — [`RunError::Deadlock`] surfaces with the
//!    per-process blocked-state dump.
//! 3. **Executor invariants** — validation mode makes the kernel check
//!    epoch/pending-wake bookkeeping on every dispatch
//!    ([`RunError::InvariantViolation`]).
//! 4. **Clause conformance** — `ompss-verify` findings from the run's
//!    evidence ride along in [`RunOutcome::findings`].
//!
//! Any finding carries the interleaving's *trace* — the comma-joined
//! choice indexes — which [`replay`] turns back into the failing run.

use std::collections::HashSet;
use std::sync::Arc;

use parking_lot::Mutex;

use ompss_sim::{install_tie_break, RunError, StepFootprint};
use ompss_verify::{Finding, FindingKind};

use crate::controller::{ChoiceRecord, RecordingController};

/// What one execution produced, as far as the oracles care.
#[derive(Debug, Clone, Default)]
pub struct RunOutcome {
    /// Output fingerprint ([`crate::fingerprint`]): identical across
    /// interleavings for a schedule-deterministic program.
    pub fingerprint: u64,
    /// `ompss-verify` findings from this run's evidence (empty when the
    /// runner does not collect verification data).
    pub findings: Vec<Finding>,
}

/// Exploration bounds and switches.
#[derive(Debug, Clone)]
pub struct McConfig {
    /// Only the first `depth` choice points branch; deeper ones always
    /// take the default order.
    pub depth: usize,
    /// Maximum number of non-default choices per interleaving.
    pub preemptions: usize,
    /// Stop after this many executed interleavings.
    pub max_interleavings: u64,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig { depth: 64, preemptions: 2, max_interleavings: 2000 }
    }
}

/// What an exploration found.
#[derive(Debug, Clone, Default)]
pub struct McReport {
    /// Distinct interleavings executed.
    pub interleavings: u64,
    /// True when the bounded schedule space was exhausted (false when
    /// `max_interleavings` cut the search short).
    pub exhausted: bool,
    /// Deepest choice point observed.
    pub max_choice_depth: usize,
    /// Deduplicated findings across all interleavings, each message
    /// ending in `[trace: ...]` for replay.
    pub findings: Vec<Finding>,
    /// The first interleaving's fingerprint.
    pub fingerprint: Option<u64>,
}

/// One choice point on the current DFS path.
struct Frame {
    candidates: Vec<ompss_sim::Pid>,
    /// Candidate index the current path takes here.
    current: usize,
    /// Footprint of the step `current` dispatched (from the latest run
    /// through this frame); retired into `explored` on backtrack.
    chosen_fp: Option<StepFootprint>,
    /// Candidates fully explored at this frame, with their footprints —
    /// the source of children's sleep sets.
    explored: Vec<(ompss_sim::Pid, StepFootprint)>,
    /// Inherited sleep set: processes whose step here commutes with
    /// every step since an already-explored sibling branch, so choosing
    /// them would replay an explored equivalence class.
    sleep: Vec<(ompss_sim::Pid, StepFootprint)>,
}

/// Render a choice stack as a replayable trace string.
pub fn trace_string(choices: &[usize]) -> String {
    if choices.is_empty() {
        "default".to_string()
    } else {
        choices.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(",")
    }
}

/// Parse a [`trace_string`] back into a choice stack.
pub fn parse_trace(s: &str) -> Result<Vec<usize>, String> {
    if s.is_empty() || s == "default" {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|p| p.trim().parse::<usize>().map_err(|e| format!("bad trace element '{p}': {e}")))
        .collect()
}

/// Run `run` once under the prescribed `trace` (with validation on)
/// and return its outcome — the counterexample replay path.
pub fn replay<R>(trace: &[usize], run: R) -> Result<RunOutcome, RunError>
where
    R: FnOnce() -> Result<RunOutcome, RunError>,
{
    let ctl = Arc::new(Mutex::new(RecordingController::new(trace.to_vec())));
    install_tie_break(ctl, true);
    run()
}

/// Explore the schedule space of `run` under `cfg`'s bounds.
///
/// `run` must construct its simulation *internally* (the tie-break
/// controller arms the thread's next `Sim::new`), be deterministic for
/// a fixed choice sequence, and return the oracle payload.
/// `target` names the program in findings.
pub fn explore<R>(target: &str, cfg: &McConfig, run: R) -> McReport
where
    R: Fn() -> Result<RunOutcome, RunError>,
{
    let mut frames: Vec<Frame> = Vec::new();
    let mut report = McReport::default();
    // Dedup key: the finding message before the trace suffix — the
    // same root cause found under many interleavings reports once,
    // with the first trace that exposed it.
    let mut seen: HashSet<String> = HashSet::new();
    let mut hidden_nondet = false;

    loop {
        if report.interleavings >= cfg.max_interleavings {
            break;
        }
        let prescribed: Vec<usize> = frames.iter().map(|f| f.current).collect();
        let trace = trace_string(&prescribed);
        let ctl = Arc::new(Mutex::new(RecordingController::new(prescribed)));
        install_tie_break(ctl.clone(), true);
        let outcome = run();
        report.interleavings += 1;
        let rec = Arc::try_unwrap(ctl)
            .unwrap_or_else(|_| panic!("run retained the tie-break controller"))
            .into_inner();
        report.max_choice_depth = report.max_choice_depth.max(rec.choices.len());

        judge(target, &trace, &outcome, &mut report, &mut seen);
        if let Some(why) = &rec.diverged {
            hidden_nondet = true;
            push_unique(
                &mut report,
                &mut seen,
                FindingKind::ExecutorInvariant,
                format!("{target} is not replay-deterministic: {why}"),
                &trace,
            );
        }

        // Fold the recorded run back into the frame stack: sanity-check
        // replayed frames, refresh chosen footprints, and grow new
        // frames (with inherited sleep sets) past the old depth.
        for i in 0..rec.choices.len() {
            if i < frames.len() {
                if frames[i].candidates != rec.choices[i].candidates && !hidden_nondet {
                    hidden_nondet = true;
                    push_unique(
                        &mut report,
                        &mut seen,
                        FindingKind::ExecutorInvariant,
                        format!(
                            "{target} is not replay-deterministic: choice {i} saw candidates \
                             {:?}, previously {:?}",
                            rec.choices[i].candidates, frames[i].candidates
                        ),
                        &trace,
                    );
                }
            } else {
                frames.push(new_frame(&frames, &rec.choices[i], &rec.segments[i]));
            }
            frames[i].chosen_fp = rec.segments[i + 1].first().cloned();
        }
        if hidden_nondet {
            // Backtracking assumes candidate sets replay identically;
            // without that the trace bookkeeping is meaningless.
            break;
        }
        frames.truncate(rec.choices.len());

        // Depth-first backtrack: retire the deepest frame's current
        // candidate and advance to its next non-sleeping sibling, under
        // the depth and preemption bounds.
        let mut advanced = false;
        while let Some(i) = frames.len().checked_sub(1) {
            let f = &mut frames[i];
            let pid = f.candidates[f.current];
            let fp = f.chosen_fp.take().unwrap_or_default();
            f.explored.push((pid, fp));
            if i >= cfg.depth {
                frames.pop();
                continue;
            }
            let mut nxt = f.current + 1;
            while nxt < f.candidates.len() && f.sleep.iter().any(|(p, _)| *p == f.candidates[nxt]) {
                nxt += 1; // asleep: an explored class covers it
            }
            let preemptions = frames[..i].iter().filter(|g| g.current != 0).count() + 1;
            if nxt < frames[i].candidates.len() && preemptions <= cfg.preemptions {
                frames[i].current = nxt;
                frames.truncate(i + 1);
                advanced = true;
                break;
            }
            frames.pop();
        }
        if !advanced {
            report.exhausted = true;
            break;
        }
    }
    report
}

/// Build the frame for a newly-reached choice point: its sleep set is
/// the parent's sleep ∪ explored entries that commute with every step
/// taken between the parent's dispatch and this choice.
fn new_frame(frames: &[Frame], choice: &ChoiceRecord, segment: &[StepFootprint]) -> Frame {
    let sleep = match frames.last() {
        None => Vec::new(),
        Some(parent) => parent
            .sleep
            .iter()
            .chain(parent.explored.iter())
            .filter(|(_, fp)| segment.iter().all(|s| fp.independent(s)))
            .cloned()
            .collect(),
    };
    Frame {
        candidates: choice.candidates.clone(),
        current: choice.chosen,
        chosen_fp: None,
        explored: Vec::new(),
        sleep,
    }
}

/// Apply the four oracles to one execution's outcome.
fn judge(
    target: &str,
    trace: &str,
    outcome: &Result<RunOutcome, RunError>,
    report: &mut McReport,
    seen: &mut HashSet<String>,
) {
    match outcome {
        Ok(out) => {
            match report.fingerprint {
                None => report.fingerprint = Some(out.fingerprint),
                Some(base) if base != out.fingerprint => push_unique(
                    report,
                    seen,
                    FindingKind::ScheduleNondeterminism,
                    format!(
                        "{target} produced fingerprint {:#018x} under a legal reordering, \
                         {base:#018x} under the default order",
                        out.fingerprint
                    ),
                    trace,
                ),
                Some(_) => {}
            }
            for f in &out.findings {
                push_unique(report, seen, f.kind, format!("{target}: {}", f.message), trace);
            }
        }
        Err(RunError::Deadlock { blocked }) => {
            let stuck: Vec<String> =
                blocked.iter().map(|p| format!("pid {} '{}' {}", p.pid, p.name, p.phase)).collect();
            push_unique(
                report,
                seen,
                FindingKind::Deadlock,
                format!("{target} deadlocked; blocked: {}", stuck.join(", ")),
                trace,
            );
        }
        Err(RunError::InvariantViolation { what }) => push_unique(
            report,
            seen,
            FindingKind::ExecutorInvariant,
            format!("{target} broke an executor invariant: {what}"),
            trace,
        ),
        Err(other) => push_unique(
            report,
            seen,
            FindingKind::Deadlock,
            format!("{target} crashed: {other}"),
            trace,
        ),
    }
}

fn push_unique(
    report: &mut McReport,
    seen: &mut HashSet<String>,
    kind: FindingKind,
    message: String,
    trace: &str,
) {
    if seen.insert(message.clone()) {
        report.findings.push(Finding {
            kind,
            task: None,
            label: String::new(),
            region: None,
            message: format!("{message} [trace: {trace}]"),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompss_sim::{mc_touch, Sim, SimDuration};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn cfg() -> McConfig {
        McConfig { depth: 64, preemptions: 16, max_interleavings: 10_000 }
    }

    /// Three processes, pairwise independent (disjoint footprints):
    /// sleep sets prune part of the 3! = 6 orders.
    #[test]
    fn independent_processes_are_pruned() {
        let rep = explore("indep", &cfg(), || {
            let sim = Sim::new();
            for i in 0..3u64 {
                sim.spawn(("p", i), async move {});
            }
            sim.run().map(|_| RunOutcome::default())
        });
        assert!(rep.exhausted);
        assert!(rep.findings.is_empty(), "{:?}", rep.findings);
        assert_eq!(rep.interleavings, 5, "one commuting order should be slept away");
    }

    /// Three processes all touching the same resource: fully dependent,
    /// so every order is distinct — all 6 run.
    #[test]
    fn dependent_processes_explore_full_factorial() {
        let rep = explore("dep", &cfg(), || {
            let sim = Sim::new();
            for i in 0..3u64 {
                sim.spawn(("p", i), async move {
                    mc_touch(99);
                });
            }
            sim.run().map(|_| RunOutcome::default())
        });
        assert!(rep.exhausted);
        assert_eq!(rep.interleavings, 6);
        assert_eq!(rep.max_choice_depth, 2);
    }

    /// An order-dependent program (fingerprint = which process ran
    /// first): the determinism oracle reports the divergence with a
    /// replayable non-default trace.
    #[test]
    fn order_dependent_result_is_caught_and_replayable() {
        let first = Arc::new(AtomicU64::new(0));
        let harness = {
            let first = first.clone();
            move || {
                first.store(0, Ordering::SeqCst);
                let sim = Sim::new();
                for i in 1..=2u64 {
                    let first = first.clone();
                    sim.spawn(("w", i), async move {
                        mc_touch(1);
                        let _ = first.compare_exchange(0, i, Ordering::SeqCst, Ordering::SeqCst);
                    });
                }
                let r = sim.run();
                let fp = first.load(Ordering::SeqCst);
                r.map(|_| RunOutcome { fingerprint: fp, findings: Vec::new() })
            }
        };
        let rep = explore("ordered", &cfg(), harness.clone());
        assert_eq!(rep.interleavings, 2);
        let f = rep
            .findings
            .iter()
            .find(|f| f.kind == FindingKind::ScheduleNondeterminism)
            .expect("fingerprint divergence found");
        assert!(f.message.contains("[trace: 1]"), "{}", f.message);
        // Replay the counterexample trace and confirm it reproduces.
        let trace = parse_trace("1").unwrap();
        let out = replay(&trace, harness).unwrap();
        assert_eq!(out.fingerprint, 2, "trace 1 dispatches w2 first");
    }

    /// A lost-wakeup-shaped deadlock that only exists in the swapped
    /// order — a bell rung before the waiter parks wakes nobody. The
    /// deadlock oracle reports the blocked process and the trace.
    #[test]
    fn order_dependent_deadlock_is_found_with_trace() {
        let rep = explore("handshake", &cfg(), || {
            let sim = Sim::new();
            let bell = ompss_sim::Bell::new();
            let bell2 = bell.clone();
            sim.spawn("waiter", async move {
                ompss_sim::delay(SimDuration::from_nanos(10)).await?;
                bell2.wait().await
            });
            sim.spawn("setter", async move {
                ompss_sim::delay(SimDuration::from_nanos(10)).await?;
                bell.ring();
                Ok(())
            });
            sim.run().map(|_| RunOutcome::default())
        });
        let f =
            rep.findings.iter().find(|f| f.kind == FindingKind::Deadlock).expect("deadlock found");
        assert!(f.message.contains("'waiter' blocked"), "{}", f.message);
        assert!(f.message.contains("[trace:"), "{}", f.message);
    }

    #[test]
    fn max_interleavings_bounds_the_search() {
        let cfg = McConfig { depth: 64, preemptions: 16, max_interleavings: 3 };
        let rep = explore("bounded", &cfg, || {
            let sim = Sim::new();
            for i in 0..4u64 {
                sim.spawn(("p", i), async move {
                    mc_touch(5);
                });
            }
            sim.run().map(|_| RunOutcome::default())
        });
        assert_eq!(rep.interleavings, 3);
        assert!(!rep.exhausted);
    }

    #[test]
    fn preemption_bound_limits_divergence_from_default() {
        // With 0 preemptions only the default order runs.
        let cfg = McConfig { depth: 64, preemptions: 0, max_interleavings: 100 };
        let rep = explore("preempt0", &cfg, || {
            let sim = Sim::new();
            for i in 0..3u64 {
                sim.spawn(("p", i), async move {
                    mc_touch(5);
                });
            }
            sim.run().map(|_| RunOutcome::default())
        });
        assert_eq!(rep.interleavings, 1);
        assert!(rep.exhausted);
    }

    #[test]
    fn trace_round_trip() {
        assert_eq!(trace_string(&[]), "default");
        assert_eq!(parse_trace("default").unwrap(), Vec::<usize>::new());
        assert_eq!(parse_trace("0,3,1").unwrap(), vec![0, 3, 1]);
        assert_eq!(trace_string(&[0, 3, 1]), "0,3,1");
        assert!(parse_trace("0,x").is_err());
    }
}
