//! Ahead-of-run task-graph lints.
//!
//! A [`GraphSpec`] is the *declared* shape of a program — its tasks'
//! dependence clauses plus any sentinel waits their bodies will block
//! on — checked before a single task runs. The pass reuses the real
//! [`TaskGraph`] builder for clause admission (so it rejects exactly
//! what the runtime would) and then analyses the combined
//! dependence + wait edge set:
//!
//! * [`FindingKind::UnsatisfiableClause`] — a declaration the graph
//!   builder rejects outright (partial region overlap, duplicate id).
//! * [`FindingKind::UnsatisfiableWait`] — a body waits on a region no
//!   task in the spec produces; under sentinel-wait semantics (wait
//!   until a producer completes) it blocks forever.
//! * [`FindingKind::WaitCycle`] — a cycle through dependence and wait
//!   edges: each task on it waits (directly or transitively) for its
//!   own completion, so no legal schedule exists.
//! * [`FindingKind::UnreachableTask`] — a task downstream of a task
//!   that can never complete; it never becomes ready.
//!
//! Dependence edges alone cannot form a cycle (submission order makes
//! them a DAG); it is the *wait* edges — a body blocking on a region
//! whose producer is ordered after the waiting task — that close
//! cycles, which is why a purely dynamic detector only sees them as an
//! opaque deadlock.

use ompss_core::{TaskGraph, TaskId};
use ompss_mem::{Access, Region};
use ompss_verify::{Finding, FindingKind};

/// One declared task: a label, its dependence clauses, and the regions
/// its body will sentinel-wait on.
#[derive(Debug, Clone)]
pub struct SpecTask {
    /// Human-readable label, threaded into findings.
    pub label: String,
    /// Dependence clauses, as submitted to the runtime.
    pub accesses: Vec<Access>,
    /// Regions the task body blocks on until a producer completes.
    pub waits: Vec<Region>,
}

/// A declared task graph, lintable before anything runs.
#[derive(Debug, Clone, Default)]
pub struct GraphSpec {
    tasks: Vec<SpecTask>,
}

impl GraphSpec {
    /// An empty spec.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a task (in submission order); returns its index.
    pub fn task(&mut self, label: &str, accesses: Vec<Access>) -> usize {
        self.tasks.push(SpecTask { label: label.to_string(), accesses, waits: Vec::new() });
        self.tasks.len() - 1
    }

    /// Declare that `task`'s body sentinel-waits on `region`.
    pub fn wait(&mut self, task: usize, region: Region) {
        self.tasks[task].waits.push(region);
    }

    /// Number of declared tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when no task is declared.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Run the full lint pass.
    pub fn lint(&self) -> Vec<Finding> {
        let mut findings = Vec::new();

        // Clause admission through the real graph builder. Rejected
        // tasks are excluded from the edge analysis (their clauses
        // recorded no edges).
        let mut graph = TaskGraph::new();
        let mut admitted: Vec<bool> = Vec::with_capacity(self.tasks.len());
        for (i, t) in self.tasks.iter().enumerate() {
            match graph.add_task_labeled(TaskId(i as u64), &t.label, &t.accesses) {
                Ok(_) => admitted.push(true),
                Err(e) => {
                    admitted.push(false);
                    findings.push(Finding {
                        kind: FindingKind::UnsatisfiableClause,
                        task: Some(TaskId(i as u64)),
                        label: t.label.clone(),
                        region: None,
                        message: e.to_string(),
                    });
                }
            }
        }

        // Forward edge set: dependence successors from the builder,
        // plus one wait edge per (writer of waited region → waiter).
        let n = self.tasks.len();
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (id, _, task_succs) in graph.tasks_snapshot() {
            for s in task_succs {
                succs[id.0 as usize].push(s.0 as usize);
            }
        }
        for (i, t) in self.tasks.iter().enumerate() {
            if !admitted[i] {
                continue;
            }
            for w in &t.waits {
                let writers: Vec<usize> = self
                    .tasks
                    .iter()
                    .enumerate()
                    .filter(|(j, u)| {
                        *j != i
                            && admitted[*j]
                            && u.accesses.iter().any(|a| a.kind.writes() && a.region.overlaps(w))
                    })
                    .map(|(j, _)| j)
                    .collect();
                if writers.is_empty() {
                    findings.push(Finding {
                        kind: FindingKind::UnsatisfiableWait,
                        task: Some(TaskId(i as u64)),
                        label: t.label.clone(),
                        region: Some(*w),
                        message: format!(
                            "{} waits on {w} but no task writes it — the wait can never \
                             be satisfied",
                            who(i, &t.label)
                        ),
                    });
                }
                for j in writers {
                    succs[j].push(i);
                }
            }
        }

        // Cycle detection over the combined edges (iterative DFS with
        // colors); every task on a cycle gets one WaitCycle finding
        // naming the loop.
        let mut color = vec![0u8; n]; // 0 white, 1 on stack, 2 done
        let mut on_cycle = vec![false; n];
        for root in 0..n {
            if color[root] != 0 {
                continue;
            }
            // stack of (node, next-successor-index); `path` mirrors it.
            let mut stack = vec![(root, 0usize)];
            color[root] = 1;
            while let Some(top) = stack.len().checked_sub(1) {
                let (node, next) = stack[top];
                if next < succs[node].len() {
                    stack[top].1 += 1;
                    let s = succs[node][next];
                    match color[s] {
                        0 => {
                            color[s] = 1;
                            stack.push((s, 0));
                        }
                        1 => {
                            // Found a cycle: the stack suffix from `s`.
                            let start = stack.iter().position(|&(v, _)| v == s).expect("on stack");
                            let cycle: Vec<usize> =
                                stack[start..].iter().map(|&(v, _)| v).collect();
                            let fresh = cycle.iter().any(|&v| !on_cycle[v]);
                            for &v in &cycle {
                                on_cycle[v] = true;
                            }
                            if fresh {
                                let names: Vec<String> =
                                    cycle.iter().map(|&v| who(v, &self.tasks[v].label)).collect();
                                findings.push(Finding {
                                    kind: FindingKind::WaitCycle,
                                    task: Some(TaskId(cycle[0] as u64)),
                                    label: self.tasks[cycle[0]].label.clone(),
                                    region: None,
                                    message: format!(
                                        "dependence/wait cycle: {} -> back to the first — \
                                         no schedule can order these tasks",
                                        names.join(" -> ")
                                    ),
                                });
                            }
                        }
                        _ => {}
                    }
                } else {
                    color[node] = 2;
                    stack.pop();
                }
            }
        }

        // Never-completes propagation: roots are cycle members and
        // unsatisfiable waiters; anything downstream (dependence or
        // wait) never becomes ready.
        let mut never: Vec<bool> = (0..n)
            .map(|i| {
                on_cycle[i]
                    || findings.iter().any(|f| {
                        f.kind == FindingKind::UnsatisfiableWait && f.task == Some(TaskId(i as u64))
                    })
            })
            .collect();
        let roots: Vec<bool> = never.clone();
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                if !never[i] {
                    continue;
                }
                for &s in &succs[i] {
                    if !never[s] {
                        never[s] = true;
                        changed = true;
                    }
                }
            }
        }
        for i in 0..n {
            if never[i] && !roots[i] {
                findings.push(Finding {
                    kind: FindingKind::UnreachableTask,
                    task: Some(TaskId(i as u64)),
                    label: self.tasks[i].label.clone(),
                    region: None,
                    message: format!(
                        "{} can never start: a predecessor it depends on never completes",
                        who(i, &self.tasks[i].label)
                    ),
                });
            }
        }

        findings
    }
}

fn who(idx: usize, label: &str) -> String {
    if label.is_empty() {
        format!("task {idx}")
    } else {
        format!("task {idx} '{label}'")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompss_mem::DataId;

    fn r(data: u64, offset: u64, len: u64) -> Region {
        Region::new(DataId(data), offset, len)
    }

    #[test]
    fn clean_chain_lints_nothing() {
        let mut s = GraphSpec::new();
        s.task("produce", vec![Access::output(r(1, 0, 8))]);
        s.task("consume", vec![Access::input(r(1, 0, 8))]);
        assert!(s.lint().is_empty());
    }

    #[test]
    fn partial_overlap_is_unsatisfiable_clause() {
        let mut s = GraphSpec::new();
        s.task("a", vec![Access::output(r(1, 0, 8))]);
        s.task("b", vec![Access::input(r(1, 4, 8))]); // half-overlap
        let f = s.lint();
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].kind, FindingKind::UnsatisfiableClause);
        assert!(f[0].message.contains("partial"), "{}", f[0].message);
    }

    #[test]
    fn wait_without_writer_is_unsatisfiable() {
        let mut s = GraphSpec::new();
        let t = s.task("lonely", vec![Access::output(r(1, 0, 8))]);
        s.wait(t, r(9, 0, 8));
        let f = s.lint();
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].kind, FindingKind::UnsatisfiableWait);
    }

    #[test]
    fn wait_on_later_producer_closes_a_cycle() {
        let mut s = GraphSpec::new();
        // a waits (in its body) on a sentinel that only b writes — but b
        // depends on a's output, so neither can finish.
        let a = s.task("a", vec![Access::output(r(1, 0, 8))]);
        s.task("b", vec![Access::input(r(1, 0, 8)), Access::output(r(2, 0, 8))]);
        s.wait(a, r(2, 0, 8));
        let f = s.lint();
        assert!(f.iter().any(|f| f.kind == FindingKind::WaitCycle), "expected a WaitCycle: {f:?}");
        let cycle = f.iter().find(|f| f.kind == FindingKind::WaitCycle).unwrap();
        assert!(
            cycle.message.contains("'a'") && cycle.message.contains("'b'"),
            "{}",
            cycle.message
        );
    }

    #[test]
    fn downstream_of_a_cycle_is_unreachable() {
        let mut s = GraphSpec::new();
        let a = s.task("a", vec![Access::output(r(1, 0, 8))]);
        s.task("b", vec![Access::input(r(1, 0, 8)), Access::output(r(2, 0, 8))]);
        s.wait(a, r(2, 0, 8));
        // c consumes b's sentinel: stuck behind the cycle.
        s.task("c", vec![Access::input(r(2, 0, 8))]);
        let f = s.lint();
        let unreachable: Vec<_> =
            f.iter().filter(|f| f.kind == FindingKind::UnreachableTask).collect();
        assert_eq!(unreachable.len(), 1, "{f:?}");
        assert_eq!(unreachable[0].label, "c");
    }

    #[test]
    fn unsatisfiable_wait_poisons_dependents() {
        let mut s = GraphSpec::new();
        let a = s.task("a", vec![Access::output(r(1, 0, 8))]);
        s.wait(a, r(9, 0, 8)); // nobody writes D9
        s.task("b", vec![Access::input(r(1, 0, 8))]);
        let f = s.lint();
        assert!(f.iter().any(|f| f.kind == FindingKind::UnsatisfiableWait));
        assert!(
            f.iter().any(|f| f.kind == FindingKind::UnreachableTask && f.label == "b"),
            "{f:?}"
        );
    }
}
