//! Model-checking harnesses for the shipped applications: one
//! [`RunOutcome`] runner per app (validation-size parameters on an
//! N-node GPU cluster) and the bridge from a recorded run's verify
//! evidence to an ahead-of-run [`GraphSpec`].

use ompss_apps::matmul::ompss::InitMode;
use ompss_apps::matmul::{self, MatmulParams};
use ompss_apps::nbody::{self, NbodyParams};
use ompss_apps::perlin::{self, PerlinParams};
use ompss_apps::stream::{self, StreamParams};
use ompss_runtime::{RunError, RunReport, RuntimeConfig};
use ompss_verify::Finding;

use crate::explore::RunOutcome;
use crate::fingerprint;
use crate::spec::GraphSpec;

/// The apps the checker knows how to drive.
pub const APPS: [&str; 4] = ["matmul", "stream", "nbody", "perlin"];

/// Execute `app` once at validation size on an `nodes`-node GPU
/// cluster and distill the oracle payload. With `verify` on, the run
/// gathers clause/race evidence and its `ompss-verify` findings ride
/// along in the outcome.
pub fn run_once(app: &str, nodes: u32, verify: bool) -> Result<RunOutcome, RunError> {
    let cfg = RuntimeConfig::gpu_cluster(nodes).with_verify(verify);
    let run = match app {
        "matmul" => matmul::ompss::try_run(cfg, MatmulParams::validate(), InitMode::Smp),
        "stream" => stream::ompss::try_run(cfg, StreamParams::validate()),
        "nbody" => nbody::ompss::try_run(cfg, NbodyParams::validate()),
        "perlin" => perlin::ompss::try_run(cfg, PerlinParams::validate(), false),
        other => panic!("unknown app '{other}'; expected one of {APPS:?}"),
    }?;
    let report = run.report.as_ref().expect("ompss app runs carry a report");
    let findings = if verify { ompss_verify::validate(report) } else { Vec::new() };
    Ok(RunOutcome { fingerprint: fingerprint(run.check.as_deref(), report.tasks), findings })
}

/// Rebuild the declared task graph of a recorded run as a
/// [`GraphSpec`] (tasks in submission order, clauses as declared).
/// `None` when the run carried no verify evidence.
pub fn spec_from_report(report: &RunReport) -> Option<GraphSpec> {
    let v = report.verify.as_ref()?;
    let mut tasks: Vec<_> = v.tasks.iter().collect();
    tasks.sort_by_key(|t| t.task.0);
    let mut spec = GraphSpec::new();
    for t in tasks {
        spec.task(&t.label, t.declared.clone());
    }
    Some(spec)
}

/// The ahead-of-run pass for one app: a single recording run (default
/// schedule) captures the declared graph, which is then linted without
/// executing anything further.
pub fn static_lints(app: &str, nodes: u32) -> Result<Vec<Finding>, RunError> {
    let cfg = RuntimeConfig::gpu_cluster(nodes).with_verify(true);
    let run = match app {
        "matmul" => matmul::ompss::try_run(cfg, MatmulParams::validate(), InitMode::Smp),
        "stream" => stream::ompss::try_run(cfg, StreamParams::validate()),
        "nbody" => nbody::ompss::try_run(cfg, NbodyParams::validate()),
        "perlin" => perlin::ompss::try_run(cfg, PerlinParams::validate(), false),
        other => panic!("unknown app '{other}'; expected one of {APPS:?}"),
    }?;
    let report = run.report.as_ref().expect("ompss app runs carry a report");
    Ok(spec_from_report(report).map(|s| s.lint()).unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_spec_round_trips_clean() {
        let lints = static_lints("stream", 2).expect("stream runs");
        assert!(lints.is_empty(), "{lints:?}");
    }

    #[test]
    fn matmul_runs_reproducibly_without_a_controller() {
        let a = run_once("matmul", 2, false).unwrap();
        let b = run_once("matmul", 2, false).unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
        assert!(a.findings.is_empty());
    }
}
