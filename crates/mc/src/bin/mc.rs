//! `mc` — model-check the shipped applications' schedule spaces and
//! lint their declared task graphs, reporting findings as JSON.
//!
//! ```text
//! mc                                # all four apps, default bounds
//! mc --apps matmul,stream           # a subset
//! mc --nodes 2 --depth 64 --preemptions 2 --max-interleavings 2000
//! mc --min-interleavings 1000 ...   # fail unless the search ran this far
//! mc --no-verify-oracle ...         # skip per-interleaving clause checks
//! mc --replay 0,3,1 --apps matmul   # re-run one recorded counterexample
//! ```
//!
//! Per app: an ahead-of-run static pass over the declared task graph
//! ([`ompss_mc::GraphSpec`]), then bounded sleep-set DFS over executor
//! tie-breaks with the four oracles ([`ompss_mc::explore`]). Sections
//! run on `--jobs N` host threads and are reported in a fixed order;
//! any finding (or an under-`--min-interleavings` search) exits 1.

use ompss_json::Json;
use ompss_mc::{apps, explore, parse_trace, replay, McConfig, McReport};
use ompss_verify::{report_json, Finding};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: mc [--apps a,b] [--nodes N] [--depth D] [--preemptions P] \
             [--max-interleavings M] [--min-interleavings K] [--no-verify-oracle] \
             [--jobs N] [--replay TRACE]\napps: {}",
            apps::APPS.join(" ")
        );
        return;
    }
    ompss_sweep::parse_jobs_flag(&mut args);
    let nodes = flag_u64(&mut args, "--nodes").unwrap_or(2) as u32;
    let mut cfg = McConfig::default();
    if let Some(d) = flag_u64(&mut args, "--depth") {
        cfg.depth = d as usize;
    }
    if let Some(p) = flag_u64(&mut args, "--preemptions") {
        cfg.preemptions = p as usize;
    }
    if let Some(m) = flag_u64(&mut args, "--max-interleavings") {
        cfg.max_interleavings = m;
    }
    let min_interleavings = flag_u64(&mut args, "--min-interleavings").unwrap_or(0);
    let verify_oracle = !take_flag(&mut args, "--no-verify-oracle");
    let replay_trace = flag_str(&mut args, "--replay");
    let selected = parse_apps(&mut args);

    if let Some(trace) = replay_trace {
        let trace = parse_trace(&trace).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(selected.len(), 1, "--replay needs exactly one app (--apps NAME)");
        let app = selected[0];
        match replay(&trace, || apps::run_once(app, nodes, verify_oracle)) {
            Ok(out) => {
                println!(
                    "{app}: replay completed; fingerprint {:#018x}, {} verify finding(s)",
                    out.fingerprint,
                    out.findings.len()
                );
                for f in &out.findings {
                    println!("  {f}");
                }
                if !out.findings.is_empty() {
                    std::process::exit(1);
                }
            }
            Err(e) => {
                println!("{app}: replay failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    // One sweep task per report section, queued in report order.
    enum Section {
        Static(Vec<Finding>),
        Mc(McReport),
    }
    type SectionTask = Box<dyn FnOnce() -> (String, Section) + Send>;
    let mut tasks: Vec<SectionTask> = Vec::new();
    for &app in &selected {
        tasks.push(Box::new(move || {
            let findings = apps::static_lints(app, nodes).unwrap_or_else(|e| {
                // The RunError Display line, then a plain nonzero exit.
                eprintln!("error: {app}: {e}");
                std::process::exit(1);
            });
            (format!("{app}/static"), Section::Static(findings))
        }));
        let cfg = cfg.clone();
        tasks.push(Box::new(move || {
            let rep = explore(app, &cfg, || apps::run_once(app, nodes, verify_oracle));
            (format!("{app}/mc"), Section::Mc(rep))
        }));
    }

    let mut sections = Json::array();
    let mut total = 0usize;
    let mut too_shallow = Vec::new();
    for (target, section) in ompss_sweep::run_jobs(ompss_sweep::jobs(), tasks) {
        match section {
            Section::Static(findings) => {
                total += findings.len();
                sections.push(report_json(&target, &findings));
            }
            Section::Mc(rep) => {
                total += rep.findings.len();
                if rep.interleavings < min_interleavings {
                    too_shallow.push(format!(
                        "{target}: {} interleavings < required {min_interleavings}",
                        rep.interleavings
                    ));
                }
                let mut j = report_json(&target, &rep.findings);
                j.set("interleavings", rep.interleavings);
                j.set("exhausted", rep.exhausted);
                j.set("max_choice_depth", rep.max_choice_depth as u64);
                if let Some(fp) = rep.fingerprint {
                    j.set("fingerprint", format!("{fp:#018x}"));
                }
                sections.push(j);
            }
        }
    }

    let report = Json::object()
        .field("tool", "ompss-mc")
        .field("nodes", nodes as u64)
        .field("total_findings", total as u64)
        .field("reports", sections);
    println!("{}", report.to_pretty_string().trim_end());
    for s in &too_shallow {
        eprintln!("mc: {s}");
    }
    if total > 0 || !too_shallow.is_empty() {
        std::process::exit(1);
    }
}

/// Resolve `--apps a,b` (default: all) against the known app list.
fn parse_apps(args: &mut Vec<String>) -> Vec<&'static str> {
    let list = flag_str(args, "--apps");
    assert!(
        args.iter().all(|a| !a.starts_with("--")),
        "unknown flags: {:?}",
        args.iter().filter(|a| a.starts_with("--")).collect::<Vec<_>>()
    );
    let names: Vec<String> = match list {
        Some(l) => l.split(',').filter(|s| !s.is_empty()).map(str::to_string).collect(),
        None => return apps::APPS.to_vec(),
    };
    names
        .iter()
        .map(|a| {
            *apps::APPS
                .iter()
                .find(|x| **x == a.as_str())
                .unwrap_or_else(|| panic!("unknown app '{a}'; expected one of {:?}", apps::APPS))
        })
        .collect()
}

/// Consume `--name V` / `--name=V` returning the raw value.
fn flag_str(args: &mut Vec<String>, name: &str) -> Option<String> {
    let eq = format!("{name}=");
    let mut out = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == name {
            out = Some(args.get(i + 1).unwrap_or_else(|| panic!("{name} needs a value")).clone());
            args.drain(i..i + 2);
        } else if let Some(v) = args[i].strip_prefix(&eq) {
            out = Some(v.to_string());
            args.remove(i);
        } else {
            i += 1;
        }
    }
    out
}

/// Consume `--name V` / `--name=V` as an integer.
fn flag_u64(args: &mut Vec<String>, name: &str) -> Option<u64> {
    flag_str(args, name)
        .map(|v| v.parse::<u64>().unwrap_or_else(|e| panic!("{name} expects an integer: {e}")))
}

/// Consume a bare `--name` flag; true when present.
fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != name);
    args.len() != before
}
