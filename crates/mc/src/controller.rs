//! Recording tie-break controller: the model checker's probe into the
//! executor. It replays a prescribed prefix of choices (taking the
//! default, lowest-sequence candidate beyond the prefix) while logging
//! every choice point's candidate set and every dispatched step's
//! footprint, which is exactly the information the DFS in
//! [`crate::explore`] needs to backtrack and to maintain sleep sets.

use ompss_sim::{Pid, SimTime, StepFootprint, TieBreak};

/// One resolved choice point: the co-enabled candidate set (default
/// sequence order, so index 0 is the legacy schedule's pick) and the
/// index actually dispatched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChoiceRecord {
    /// Virtual time of the tie.
    pub time: SimTime,
    /// Co-enabled processes in default order.
    pub candidates: Vec<Pid>,
    /// Index into `candidates` that ran.
    pub chosen: usize,
}

/// A [`TieBreak`] that follows a prescribed choice prefix and records
/// the run.
#[derive(Default)]
pub struct RecordingController {
    prescribed: Vec<usize>,
    /// Every choice point hit, in order.
    pub choices: Vec<ChoiceRecord>,
    /// `segments[k]` holds the footprints of steps dispatched after
    /// choice `k-1` and before choice `k`; `segments[0]` precedes the
    /// first choice. Always `choices.len() + 1` entries, so
    /// `segments[k + 1]` starts with the footprint of the step chosen
    /// at choice `k`.
    pub segments: Vec<Vec<StepFootprint>>,
    /// Set when a prescribed index did not fit its candidate set — the
    /// program is not replay-deterministic (hidden nondeterminism).
    pub diverged: Option<String>,
}

impl RecordingController {
    /// A controller that replays `prescribed` and defaults beyond it.
    pub fn new(prescribed: Vec<usize>) -> Self {
        RecordingController {
            prescribed,
            choices: Vec::new(),
            segments: vec![Vec::new()],
            diverged: None,
        }
    }
}

impl TieBreak for RecordingController {
    fn choose(&mut self, now: SimTime, candidates: &[Pid]) -> usize {
        let idx = self.choices.len();
        let want = self.prescribed.get(idx).copied().unwrap_or(0);
        let pick = if want < candidates.len() {
            want
        } else {
            if self.diverged.is_none() {
                self.diverged = Some(format!(
                    "choice {idx} at t={}ns: prescribed index {want} but only {} candidates",
                    now.as_nanos(),
                    candidates.len()
                ));
            }
            0
        };
        self.choices.push(ChoiceRecord {
            time: now,
            candidates: candidates.to_vec(),
            chosen: pick,
        });
        self.segments.push(Vec::new());
        pick
    }

    fn observe(&mut self, step: StepFootprint) {
        self.segments.last_mut().expect("segments never empty").push(step);
    }
}
