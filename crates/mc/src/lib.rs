//! # ompss-mc — schedule-space model checking for the OmpSs runtime
//!
//! The discrete-event executor under the whole runtime is
//! deterministic: co-enabled events (same virtual instant) dispatch in
//! sequence order. That determinism is what makes simulation results
//! reproducible — and what hides every bug that only exists under
//! *another* legal order. This crate takes control of exactly that
//! tie-break ([`ompss_sim::install_tie_break`]) and explores the
//! schedule space loom-style: stateless depth-first search over
//! re-executions, pruned with sleep sets built on a step-footprint
//! independence relation (two steps commute unless they share a
//! process, a synchronisation primitive, or a coherence region), under
//! configurable depth and preemption bounds.
//!
//! Every interleaving is judged by four oracles — output-fingerprint
//! determinism, deadlock freedom (with per-process blocked dumps),
//! executor epoch/wake-coalescing invariants, and `ompss-verify`
//! clause/race findings — and every finding carries a replayable
//! choice trace ([`explore::replay`]).
//!
//! Ahead of any exploration, [`spec::GraphSpec`] lints the *declared*
//! task graph: unsatisfiable clause declarations, waits no producer
//! can satisfy, dependence/wait cycles, unreachable tasks.
//!
//! The `mc` binary drives the shipped applications through both
//! passes; `./ci.sh mc` is the quick entry point.

#![warn(missing_docs)]

pub mod apps;
pub mod controller;
pub mod explore;
pub mod spec;

pub use controller::{ChoiceRecord, RecordingController};
pub use explore::{explore, parse_trace, replay, trace_string, McConfig, McReport, RunOutcome};
pub use spec::{GraphSpec, SpecTask};

/// FNV-1a fingerprint of an application's observable result: the
/// output's f32 bit patterns plus the executed task count. Virtual
/// times and event counts are deliberately excluded — reordering
/// co-enabled events legitimately shifts timing; only the *data* must
/// be schedule-invariant.
pub fn fingerprint(check: Option<&[f32]>, tasks: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    if let Some(vals) = check {
        for v in vals {
            eat(&v.to_bits().to_le_bytes());
        }
    }
    eat(&tasks.to_le_bytes());
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_separates_outputs_and_counts() {
        let a = fingerprint(Some(&[1.0, 2.0]), 4);
        assert_eq!(a, fingerprint(Some(&[1.0, 2.0]), 4));
        assert_ne!(a, fingerprint(Some(&[1.0, 2.5]), 4));
        assert_ne!(a, fingerprint(Some(&[1.0, 2.0]), 5));
    }
}
