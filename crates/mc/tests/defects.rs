//! Seeded-defect corpus: prove the model checker catches each planted
//! bug class within a small exploration budget. Compiled only with
//! `RUSTFLAGS="--cfg mc_defects"` (which compiles the defects into
//! `ompss-sim` and the apps); each test arms exactly one defect on its
//! thread, runs the checker, and asserts the expected oracle fires
//! with a replayable trace.
#![cfg(mc_defects)]

use ompss_mc::{apps, explore, parse_trace, replay, McConfig, RunOutcome};
use ompss_sim::{defects, delay, Signal, Sim, SimDuration};
use ompss_verify::FindingKind;

/// Disarm on drop so a failing assertion cannot leak an armed defect
/// into another test on the same thread.
struct Armed;

impl Armed {
    fn new(which: &'static str) -> Self {
        defects::arm(which);
        Armed
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        defects::disarm();
    }
}

fn budget(max: u64) -> McConfig {
    McConfig { depth: 64, preemptions: 8, max_interleavings: max }
}

/// Extract the `[trace: ...]` suffix the explorer appends to findings.
fn trace_of(message: &str) -> Vec<usize> {
    let start = message.rfind("[trace: ").expect("finding carries a trace") + "[trace: ".len();
    let end = message[start..].find(']').expect("trace is closed") + start;
    parse_trace(&message[start..end]).expect("trace parses")
}

/// "epoch": dispatch stops discarding stale (superseded) events, so a
/// timed-out waiter's dead deadline event resumes it spuriously. The
/// kernel-invariant oracle catches the stale dispatch directly.
#[test]
fn epoch_defect_trips_the_invariant_oracle() {
    let _armed = Armed::new("epoch");
    let harness = || {
        let sim = Sim::new();
        let sig = Signal::new();
        let sig2 = sig.clone();
        sim.spawn("waiter", async move {
            // Parks with a deadline event at t=100; the set at t=10
            // supersedes it, leaving a stale event in the heap.
            let got = sig2.wait_timeout(SimDuration::from_nanos(100)).await?;
            assert!(got, "signal arrives before the deadline");
            // Stay parked past t=100 so the stale event finds a live
            // (but wrong-epoch) process to resume.
            delay(SimDuration::from_nanos(200)).await?;
            Ok(())
        });
        sim.spawn("setter", async move {
            delay(SimDuration::from_nanos(10)).await?;
            sig.set();
            Ok(())
        });
        sim.run().map(|_| RunOutcome::default())
    };
    let rep = explore("epoch-defect", &budget(16), harness);
    let f = rep
        .findings
        .iter()
        .find(|f| f.kind == FindingKind::ExecutorInvariant)
        .unwrap_or_else(|| panic!("invariant oracle silent: {:?}", rep.findings));
    assert!(f.message.contains("stale event reached dispatch"), "{}", f.message);
}

/// "wakeup": `Signal::set` drops the set when no waiter is parked yet.
/// Only orderings where the setter outruns the waiter hang — the
/// deadlock oracle must find one and its trace must replay.
#[test]
fn wakeup_defect_is_found_with_a_replayable_trace() {
    let _armed = Armed::new("wakeup");
    let harness = || {
        let sim = Sim::new();
        let sig = Signal::new();
        let sig2 = sig.clone();
        sim.spawn("waiter", async move {
            delay(SimDuration::from_nanos(10)).await?;
            sig2.wait().await
        });
        sim.spawn("setter", async move {
            delay(SimDuration::from_nanos(10)).await?;
            sig.set();
            Ok(())
        });
        sim.run().map(|_| RunOutcome::default())
    };
    let rep = explore("wakeup-defect", &budget(16), harness);
    let f = rep
        .findings
        .iter()
        .find(|f| f.kind == FindingKind::Deadlock)
        .unwrap_or_else(|| panic!("deadlock oracle silent: {:?}", rep.findings));
    assert!(f.message.contains("'waiter' blocked"), "{}", f.message);

    // The counterexample must reproduce under replay, and the default
    // order must stay clean (the bug needs the adversarial schedule).
    let trace = trace_of(&f.message);
    assert!(!trace.is_empty() && trace.iter().any(|&c| c != 0), "non-default trace: {trace:?}");
    let replayed = replay(&trace, harness);
    assert!(
        matches!(replayed, Err(ompss_sim::RunError::Deadlock { .. })),
        "replay reproduces the deadlock: {replayed:?}"
    );
    let default_run = replay(&[], harness);
    assert!(default_run.is_ok(), "default order hides the bug: {default_run:?}");
}

/// "stream": the STREAM `scale` task declares its read of `c` as an
/// output clause. The WAW edge keeps every schedule's results right,
/// so only the clause-conformance oracle can see the lie.
#[test]
fn stream_defect_is_caught_by_the_clause_oracle() {
    let _armed = Armed::new("stream");
    let rep = explore("stream-defect", &budget(8), || apps::run_once("stream", 2, true));
    let f = rep
        .findings
        .iter()
        .find(|f| f.kind == FindingKind::UndeclaredRead)
        .unwrap_or_else(|| panic!("clause oracle silent: {:?}", rep.findings));
    assert!(f.message.contains("scale"), "{}", f.message);
    assert!(f.message.contains("only as output"), "{}", f.message);
}
