//! Memory spaces and the machine-wide memory manager.
//!
//! OmpSs assumes *multiple address spaces* (§II-A2 of the paper): the
//! master node's host memory, each remote node's host memory, and each
//! GPU's device memory are separate spaces; data becomes visible in a
//! space only when the runtime copies it there. This module provides
//! that substrate:
//!
//! * [`MemorySpace`]s with finite capacity and a name/hierarchy,
//! * allocations within a space, optionally backed by real bytes,
//! * byte-level `read`/`write`/`copy` between spaces.
//!
//! # Real vs. phantom backing
//!
//! Correctness tests run with [`Backing::Real`]: every allocation holds
//! actual bytes, copies move them, and task kernels compute on them, so
//! results can be validated against a serial implementation. The
//! paper-scale experiments (e.g. 12288² matrices replicated across 8
//! simulated nodes) would need tens of GB of host RAM, so benchmark
//! harnesses use [`Backing::Phantom`]: allocations are accounting-only,
//! copies still *cost virtual time* (charged by the transfer layers) but
//! move no bytes, and kernels skip their arithmetic.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::region::DataId;
use crate::scalar::{cast_slice, cast_slice_mut, Scalar};

/// Identifier of a memory space, unique within a [`MemoryManager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpaceId(pub u32);

/// Identifier of an allocation, unique across all spaces of a manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AllocId(pub u64);

/// Whether allocations carry real bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backing {
    /// Allocations hold real, initialised-to-zero bytes.
    Real,
    /// Allocations are size accounting only; data operations are no-ops.
    Phantom,
}

/// What kind of hardware a space models — used by affinity scoring and
/// the hierarchical directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpaceKind {
    /// Host memory of a cluster node (node index).
    Host(u32),
    /// Device memory of a GPU (`node`, `gpu index within node`).
    Gpu(u32, u32),
}

impl SpaceKind {
    /// The cluster node this space belongs to.
    pub fn node(self) -> u32 {
        match self {
            SpaceKind::Host(n) => n,
            SpaceKind::Gpu(n, _) => n,
        }
    }

    /// True if this is device (GPU) memory.
    pub fn is_gpu(self) -> bool {
        matches!(self, SpaceKind::Gpu(..))
    }
}

/// Allocation failure: the space cannot hold the request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    /// The space that rejected the allocation.
    pub space: SpaceId,
    /// Bytes requested.
    pub requested: u64,
    /// Bytes still free in the space.
    pub available: u64,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "space {:?} out of memory: requested {} bytes, {} available",
            self.space, self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// 16-byte-aligned byte storage, so scalar views are always sound.
struct AlignedBytes {
    /// Backing store; `u128` guarantees 16-byte alignment.
    words: Vec<u128>,
    len: usize,
}

impl AlignedBytes {
    fn zeroed(len: usize) -> Self {
        AlignedBytes { words: vec![0u128; len.div_ceil(16)], len }
    }

    fn as_bytes(&self) -> &[u8] {
        // SAFETY: `words` owns at least `len` initialised bytes.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr() as *const u8, self.len) }
    }

    fn as_bytes_mut(&mut self) -> &mut [u8] {
        // SAFETY: `words` owns at least `len` initialised bytes.
        unsafe { std::slice::from_raw_parts_mut(self.words.as_mut_ptr() as *mut u8, self.len) }
    }
}

struct Allocation {
    size: u64,
    /// `None` for phantom allocations.
    bytes: Option<Arc<Mutex<AlignedBytes>>>,
}

/// One address space: capacity accounting plus its allocations.
struct SpaceInner {
    name: String,
    kind: SpaceKind,
    parent: Option<SpaceId>,
    capacity: u64,
    used: u64,
    allocs: HashMap<AllocId, Allocation>,
    peak_used: u64,
}

/// Descriptive, copyable facts about a space.
#[derive(Debug, Clone)]
pub struct SpaceInfo {
    /// Human-readable name (e.g. `node1:gpu0`).
    pub name: String,
    /// Hardware kind.
    pub kind: SpaceKind,
    /// Enclosing space in the memory hierarchy (a GPU's parent is its
    /// node's host space; a slave host's parent is the master host).
    pub parent: Option<SpaceId>,
    /// Total capacity in bytes.
    pub capacity: u64,
}

/// Registered data-object metadata.
#[derive(Debug, Clone, Copy)]
pub struct DataInfo {
    /// Total object size in bytes.
    pub size: u64,
    /// The space holding the authoritative initial copy.
    pub home_space: SpaceId,
    /// Allocation of the home copy.
    pub home_alloc: AllocId,
}

struct ManagerInner {
    spaces: Vec<SpaceInner>,
    next_alloc: u64,
    next_data: u64,
    data: HashMap<DataId, DataInfo>,
}

/// The machine-wide memory model: all spaces, allocations and registered
/// data objects. Byte movement here is *instantaneous* — virtual-time
/// cost is charged by the transfer layers (PCIe links, network) that
/// call into it.
pub struct MemoryManager {
    backing: Backing,
    inner: Mutex<ManagerInner>,
}

impl MemoryManager {
    /// Create a manager; `backing` applies to every allocation.
    pub fn new(backing: Backing) -> Self {
        MemoryManager {
            backing,
            inner: Mutex::new(ManagerInner {
                spaces: Vec::new(),
                next_alloc: 0,
                next_data: 0,
                data: HashMap::new(),
            }),
        }
    }

    /// The backing mode of this manager.
    pub fn backing(&self) -> Backing {
        self.backing
    }

    /// True if allocations carry real bytes.
    pub fn is_real(&self) -> bool {
        self.backing == Backing::Real
    }

    /// Add a space with the given capacity (bytes).
    pub fn add_space(
        &self,
        name: impl Into<String>,
        kind: SpaceKind,
        parent: Option<SpaceId>,
        capacity: u64,
    ) -> SpaceId {
        let mut inner = self.inner.lock();
        let id = SpaceId(inner.spaces.len() as u32);
        inner.spaces.push(SpaceInner {
            name: name.into(),
            kind,
            parent,
            capacity,
            used: 0,
            allocs: HashMap::new(),
            peak_used: 0,
        });
        id
    }

    /// Facts about a space.
    pub fn space_info(&self, space: SpaceId) -> SpaceInfo {
        let inner = self.inner.lock();
        let s = &inner.spaces[space.0 as usize];
        SpaceInfo { name: s.name.clone(), kind: s.kind, parent: s.parent, capacity: s.capacity }
    }

    /// Number of spaces registered.
    pub fn space_count(&self) -> usize {
        self.inner.lock().spaces.len()
    }

    /// Bytes currently allocated in a space.
    pub fn used(&self, space: SpaceId) -> u64 {
        self.inner.lock().spaces[space.0 as usize].used
    }

    /// High-water mark of bytes allocated in a space.
    pub fn peak_used(&self, space: SpaceId) -> u64 {
        self.inner.lock().spaces[space.0 as usize].peak_used
    }

    /// Bytes still free in a space.
    pub fn available(&self, space: SpaceId) -> u64 {
        let inner = self.inner.lock();
        let s = &inner.spaces[space.0 as usize];
        s.capacity - s.used
    }

    /// Allocate `size` bytes in `space`. Zero-initialised when real.
    pub fn alloc(&self, space: SpaceId, size: u64) -> Result<AllocId, OutOfMemory> {
        let mut inner = self.inner.lock();
        let next = inner.next_alloc;
        let s = &mut inner.spaces[space.0 as usize];
        if s.used + size > s.capacity {
            return Err(OutOfMemory { space, requested: size, available: s.capacity - s.used });
        }
        s.used += size;
        s.peak_used = s.peak_used.max(s.used);
        let id = AllocId(next);
        let bytes = match self.backing {
            Backing::Real => Some(Arc::new(Mutex::new(AlignedBytes::zeroed(size as usize)))),
            Backing::Phantom => None,
        };
        s.allocs.insert(id, Allocation { size, bytes });
        inner.next_alloc += 1;
        Ok(id)
    }

    /// Free an allocation, returning its bytes to the space.
    ///
    /// # Panics
    ///
    /// Panics if the allocation does not exist in the space — a
    /// double-free in the coherence layer.
    pub fn free(&self, space: SpaceId, alloc: AllocId) {
        let mut inner = self.inner.lock();
        let s = &mut inner.spaces[space.0 as usize];
        let a = s
            .allocs
            .remove(&alloc)
            .unwrap_or_else(|| panic!("free of unknown allocation {alloc:?} in space {space:?}"));
        s.used -= a.size;
    }

    /// Size of an allocation.
    pub fn alloc_size(&self, space: SpaceId, alloc: AllocId) -> u64 {
        self.inner.lock().spaces[space.0 as usize].allocs[&alloc].size
    }

    fn bytes_handle(&self, space: SpaceId, alloc: AllocId) -> Option<Arc<Mutex<AlignedBytes>>> {
        let inner = self.inner.lock();
        inner.spaces[space.0 as usize]
            .allocs
            .get(&alloc)
            .unwrap_or_else(|| panic!("unknown allocation {alloc:?} in space {space:?}"))
            .bytes
            .clone()
    }

    /// Copy `len` bytes between allocations (possibly across spaces).
    /// No-op under phantom backing. Instantaneous — callers charge time.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds ranges, or when source and destination
    /// are the same allocation (the runtime never needs self-copies).
    pub fn copy(
        &self,
        src: (SpaceId, AllocId),
        src_off: u64,
        dst: (SpaceId, AllocId),
        dst_off: u64,
        len: u64,
    ) {
        if self.backing == Backing::Phantom {
            return;
        }
        assert_ne!(src.1, dst.1, "self-copy within one allocation is not supported");
        let src_h = self.bytes_handle(src.0, src.1).expect("real backing");
        let dst_h = self.bytes_handle(dst.0, dst.1).expect("real backing");
        let src_b = src_h.lock();
        let mut dst_b = dst_h.lock();
        let s = &src_b.as_bytes()[src_off as usize..(src_off + len) as usize];
        let d = &mut dst_b.as_bytes_mut()[dst_off as usize..(dst_off + len) as usize];
        d.copy_from_slice(s);
    }

    /// Write bytes into an allocation. No-op under phantom backing.
    pub fn write(&self, space: SpaceId, alloc: AllocId, offset: u64, data: &[u8]) {
        if self.backing == Backing::Phantom {
            return;
        }
        let h = self.bytes_handle(space, alloc).expect("real backing");
        let mut b = h.lock();
        b.as_bytes_mut()[offset as usize..offset as usize + data.len()].copy_from_slice(data);
    }

    /// Read bytes out of an allocation. Under phantom backing the
    /// destination is left untouched.
    pub fn read(&self, space: SpaceId, alloc: AllocId, offset: u64, out: &mut [u8]) {
        if self.backing == Backing::Phantom {
            return;
        }
        let h = self.bytes_handle(space, alloc).expect("real backing");
        let b = h.lock();
        out.copy_from_slice(&b.as_bytes()[offset as usize..offset as usize + out.len()]);
    }

    /// Run `f` over an immutable scalar view of `[offset, offset+len)`.
    /// Under phantom backing `f` is *not called* and `None` is returned.
    pub fn with_slice<T: Scalar, R>(
        &self,
        space: SpaceId,
        alloc: AllocId,
        offset: u64,
        len: u64,
        f: impl FnOnce(&[T]) -> R,
    ) -> Option<R> {
        let h = self.bytes_handle(space, alloc)?;
        let b = h.lock();
        Some(f(cast_slice(&b.as_bytes()[offset as usize..(offset + len) as usize])))
    }

    /// Run `f` over a mutable scalar view of `[offset, offset+len)`.
    /// Under phantom backing `f` is *not called* and `None` is returned.
    pub fn with_slice_mut<T: Scalar, R>(
        &self,
        space: SpaceId,
        alloc: AllocId,
        offset: u64,
        len: u64,
        f: impl FnOnce(&mut [T]) -> R,
    ) -> Option<R> {
        let h = self.bytes_handle(space, alloc)?;
        let mut b = h.lock();
        Some(f(cast_slice_mut(&mut b.as_bytes_mut()[offset as usize..(offset + len) as usize])))
    }

    /// Run `f` over mutable views of *several* allocations at once (e.g.
    /// the A, B and C tiles of a GEMM task). Views are passed in request
    /// order. Under phantom backing `f` is not called.
    ///
    /// Multiple requests may target the same allocation provided their
    /// byte ranges are disjoint (e.g. two tile regions of one host home
    /// allocation) — the allocation is locked once and split.
    ///
    /// # Panics
    ///
    /// Panics if two requests on the same allocation overlap — the
    /// dependence system never maps overlapping regions to one task.
    pub fn with_bytes_many<R>(
        &self,
        requests: &[(SpaceId, AllocId, u64, u64)],
        f: impl FnOnce(&mut [&mut [u8]]) -> R,
    ) -> Option<R> {
        for (i, a) in requests.iter().enumerate() {
            for b in &requests[i + 1..] {
                if a.1 == b.1 {
                    let disjoint = a.2 + a.3 <= b.2 || b.2 + b.3 <= a.2;
                    assert!(disjoint, "overlapping views of one allocation in with_bytes_many");
                }
            }
        }
        // Lock each distinct allocation exactly once.
        let mut distinct: Vec<AllocId> = requests.iter().map(|r| r.1).collect();
        distinct.sort();
        distinct.dedup();
        let handles: Option<Vec<_>> = distinct
            .iter()
            .map(|&a| {
                let &(s, _, _, _) = requests.iter().find(|r| r.1 == a).expect("from requests");
                self.bytes_handle(s, a)
            })
            .collect();
        let handles = handles?;
        let mut guards: Vec<_> = handles.iter().map(|h| h.lock()).collect();
        // Carve every requested range out of its guard. Each range is
        // disjoint (checked above), so handing out one mutable slice per
        // request is sound; we go through raw pointers because the
        // borrow checker cannot see the disjointness.
        let mut views: Vec<&mut [u8]> = Vec::with_capacity(requests.len());
        for &(_, alloc, off, len) in requests {
            let gi = distinct.binary_search(&alloc).expect("alloc collected above");
            let bytes = guards[gi].as_bytes_mut();
            assert!((off + len) as usize <= bytes.len(), "view out of bounds");
            // SAFETY: ranges within one allocation are pairwise disjoint
            // (asserted above); distinct allocations are distinct
            // buffers; the guards outlive `views` and `f`.
            let view = unsafe {
                std::slice::from_raw_parts_mut(bytes.as_mut_ptr().add(off as usize), len as usize)
            };
            views.push(view);
        }
        Some(f(&mut views))
    }

    // -- data-object registry ------------------------------------------------

    /// Register a user data object of `size` bytes with its home copy in
    /// `home_space` (allocated here).
    pub fn register_data(&self, size: u64, home_space: SpaceId) -> Result<DataId, OutOfMemory> {
        let home_alloc = self.alloc(home_space, size)?;
        let mut inner = self.inner.lock();
        let id = DataId(inner.next_data);
        inner.next_data += 1;
        inner.data.insert(id, DataInfo { size, home_space, home_alloc });
        Ok(id)
    }

    /// Metadata of a registered data object.
    pub fn data_info(&self, id: DataId) -> DataInfo {
        *self.inner.lock().data.get(&id).unwrap_or_else(|| panic!("unknown data object {id:?}"))
    }

    /// Number of registered data objects.
    pub fn data_count(&self) -> usize {
        self.inner.lock().data.len()
    }

    /// The id the next [`Self::register_data`] call will assign. Ids are
    /// sequential and never reused, so this equals [`Self::data_count`];
    /// the sharded runtime uses it to route an allocation to its shard
    /// owner *before* registering it there.
    pub fn next_data_id(&self) -> DataId {
        DataId(self.inner.lock().next_data)
    }

    /// All data objects whose home copy lives in `space`, with their
    /// sizes, sorted by id — the shard a node owns, enumerated when
    /// that node dies and its directory shard must be re-homed.
    pub fn datas_homed_at(&self, space: SpaceId) -> Vec<(DataId, u64)> {
        let inner = self.inner.lock();
        let mut v: Vec<(DataId, u64)> = inner
            .data
            .iter()
            .filter(|(_, info)| info.home_space == space)
            .map(|(id, info)| (*id, info.size))
            .collect();
        v.sort_unstable();
        v
    }

    /// Move a data object's home to `new_home`: allocates a fresh home
    /// copy there and re-points the registry. The *bytes* of the new
    /// home copy are the coherence layer's job
    /// (`Coherence::rehome_data`); the old home allocation is not freed
    /// — re-homing only happens when the old home's node is dead and
    /// its space purged. Returns the new home allocation.
    pub fn rehome_data(&self, id: DataId, new_home: SpaceId) -> Result<AllocId, OutOfMemory> {
        let size = self.data_info(id).size;
        let alloc = self.alloc(new_home, size)?;
        let mut inner = self.inner.lock();
        let info = inner.data.get_mut(&id).expect("data_info above checked existence");
        info.home_space = new_home;
        info.home_alloc = alloc;
        Ok(alloc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> MemoryManager {
        MemoryManager::new(Backing::Real)
    }

    #[test]
    fn alloc_free_accounting() {
        let m = mgr();
        let s = m.add_space("host", SpaceKind::Host(0), None, 100);
        let a = m.alloc(s, 60).unwrap();
        assert_eq!(m.used(s), 60);
        assert_eq!(m.available(s), 40);
        let b = m.alloc(s, 40).unwrap();
        assert_eq!(m.available(s), 0);
        m.free(s, a);
        assert_eq!(m.used(s), 40);
        m.free(s, b);
        assert_eq!(m.used(s), 0);
        assert_eq!(m.peak_used(s), 100);
    }

    #[test]
    fn oom_reports_availability() {
        let m = mgr();
        let s = m.add_space("gpu", SpaceKind::Gpu(0, 0), None, 10);
        let _a = m.alloc(s, 8).unwrap();
        let err = m.alloc(s, 4).unwrap_err();
        assert_eq!(err, OutOfMemory { space: s, requested: 4, available: 2 });
    }

    #[test]
    fn copy_moves_real_bytes_across_spaces() {
        let m = mgr();
        let host = m.add_space("host", SpaceKind::Host(0), None, 1024);
        let gpu = m.add_space("gpu", SpaceKind::Gpu(0, 0), Some(host), 1024);
        let a = m.alloc(host, 16).unwrap();
        let b = m.alloc(gpu, 16).unwrap();
        m.write(host, a, 0, &[1, 2, 3, 4, 5, 6, 7, 8]);
        m.copy((host, a), 2, (gpu, b), 4, 4);
        let mut out = [0u8; 4];
        m.read(gpu, b, 4, &mut out);
        assert_eq!(out, [3, 4, 5, 6]);
    }

    #[test]
    fn allocations_zero_initialised() {
        let m = mgr();
        let s = m.add_space("host", SpaceKind::Host(0), None, 64);
        let a = m.alloc(s, 32).unwrap();
        let mut out = [0xAAu8; 32];
        m.read(s, a, 0, &mut out);
        assert_eq!(out, [0u8; 32]);
    }

    #[test]
    fn typed_views_roundtrip() {
        let m = mgr();
        let s = m.add_space("host", SpaceKind::Host(0), None, 64);
        let a = m.alloc(s, 32).unwrap();
        m.with_slice_mut::<f32, _>(s, a, 0, 16, |xs| {
            xs.copy_from_slice(&[1.5, 2.5, 3.5, 4.5]);
        })
        .unwrap();
        let sum = m.with_slice::<f32, _>(s, a, 0, 16, |xs| xs.iter().sum::<f32>()).unwrap();
        assert_eq!(sum, 12.0);
        // Offset views stay aligned for f32 (offset multiple of 4).
        let v = m.with_slice::<f32, _>(s, a, 4, 8, |xs| xs.to_vec()).unwrap();
        assert_eq!(v, vec![2.5, 3.5]);
    }

    #[test]
    fn with_bytes_many_gives_simultaneous_views() {
        let m = mgr();
        let s = m.add_space("host", SpaceKind::Host(0), None, 64);
        let a = m.alloc(s, 8).unwrap();
        let b = m.alloc(s, 8).unwrap();
        m.write(s, a, 0, &[9; 8]);
        m.with_bytes_many(&[(s, a, 0, 8), (s, b, 0, 8)], |views| {
            let (src, rest) = views.split_first_mut().unwrap();
            rest[0].copy_from_slice(src);
        })
        .unwrap();
        let mut out = [0u8; 8];
        m.read(s, b, 0, &mut out);
        assert_eq!(out, [9; 8]);
    }

    #[test]
    fn with_bytes_many_splits_disjoint_ranges_of_one_allocation() {
        let m = mgr();
        let s = m.add_space("host", SpaceKind::Host(0), None, 64);
        let a = m.alloc(s, 8).unwrap();
        m.write(s, a, 0, &[1, 2, 3, 4, 0, 0, 0, 0]);
        m.with_bytes_many(&[(s, a, 0, 4), (s, a, 4, 4)], |views| {
            let (lo, hi) = views.split_first_mut().unwrap();
            hi[0].copy_from_slice(lo);
        })
        .unwrap();
        let mut out = [0u8; 8];
        m.read(s, a, 0, &mut out);
        assert_eq!(out, [1, 2, 3, 4, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "overlapping views")]
    fn with_bytes_many_rejects_overlapping_ranges() {
        let m = mgr();
        let s = m.add_space("host", SpaceKind::Host(0), None, 64);
        let a = m.alloc(s, 8).unwrap();
        m.with_bytes_many(&[(s, a, 0, 6), (s, a, 4, 4)], |_| ());
    }

    #[test]
    fn phantom_backing_accounts_but_moves_nothing() {
        let m = MemoryManager::new(Backing::Phantom);
        let s = m.add_space("host", SpaceKind::Host(0), None, 100);
        let a = m.alloc(s, 60).unwrap();
        assert_eq!(m.used(s), 60);
        // All data ops are no-ops and typed views return None.
        m.write(s, a, 0, &[1, 2, 3]);
        let mut out = [7u8; 3];
        m.read(s, a, 0, &mut out);
        assert_eq!(out, [7, 7, 7], "phantom read leaves destination untouched");
        assert!(m.with_slice::<u8, _>(s, a, 0, 3, |_| ()).is_none());
        // OOM still enforced.
        assert!(m.alloc(s, 50).is_err());
    }

    #[test]
    #[should_panic(expected = "free of unknown allocation")]
    fn double_free_panics() {
        let m = mgr();
        let s = m.add_space("host", SpaceKind::Host(0), None, 100);
        let a = m.alloc(s, 10).unwrap();
        m.free(s, a);
        m.free(s, a);
    }

    #[test]
    fn register_data_allocates_home_copy() {
        let m = mgr();
        let s = m.add_space("host", SpaceKind::Host(0), None, 1024);
        let id = m.register_data(128, s).unwrap();
        let info = m.data_info(id);
        assert_eq!(info.size, 128);
        assert_eq!(info.home_space, s);
        assert_eq!(m.used(s), 128);
        assert_eq!(m.data_count(), 1);
    }

    #[test]
    fn rehome_repoints_registry_and_enumeration() {
        let m = mgr();
        let s0 = m.add_space("host0", SpaceKind::Host(0), None, 1024);
        let s1 = m.add_space("host1", SpaceKind::Host(1), Some(s0), 1024);
        assert_eq!(m.next_data_id(), DataId(0));
        let a = m.register_data(64, s1).unwrap();
        let b = m.register_data(32, s1).unwrap();
        assert_eq!(m.next_data_id(), DataId(2));
        assert_eq!(m.datas_homed_at(s1), vec![(a, 64), (b, 32)]);
        let new_alloc = m.rehome_data(a, s0).unwrap();
        let info = m.data_info(a);
        assert_eq!(info.home_space, s0);
        assert_eq!(info.home_alloc, new_alloc);
        assert_eq!(m.datas_homed_at(s1), vec![(b, 32)]);
        assert_eq!(m.datas_homed_at(s0), vec![(a, 64)]);
    }

    #[test]
    fn space_kind_helpers() {
        assert_eq!(SpaceKind::Host(3).node(), 3);
        assert_eq!(SpaceKind::Gpu(2, 1).node(), 2);
        assert!(SpaceKind::Gpu(0, 0).is_gpu());
        assert!(!SpaceKind::Host(0).is_gpu());
    }
}
