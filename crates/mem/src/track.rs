//! Access tracking for the verify subsystem (`ompss-verify`).
//!
//! When a verification run is active, the runtime installs a per-thread
//! access log around each task body (and around each simulated kernel's
//! completion effect). Instrumented kernels report the byte regions
//! they actually touch through [`record_read`] / [`record_write`]; the
//! runtime collects the log with [`take`] and a validator later checks
//! the observed accesses against the task's declared
//! `input`/`output`/`inout` clauses.
//!
//! The design is deliberately zero-cost when disabled: no log is
//! installed, so [`record_read`]/[`record_write`] reduce to one
//! thread-local `Option` check and the task-body hot path is untouched.
//! Recording never charges virtual time — tracking is observation, not
//! simulation.

use std::cell::RefCell;

use crate::region::Region;

/// The byte regions a task body actually touched, as reported by
/// instrumented accessors (reads and writes separately).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct AccessSet {
    /// Regions read by the body.
    pub reads: Vec<Region>,
    /// Regions written by the body.
    pub writes: Vec<Region>,
}

thread_local! {
    static ACTIVE: RefCell<Option<AccessSet>> = const { RefCell::new(None) };
}

/// Begin recording accesses on the current thread. Any previously
/// active log is discarded. The runtime calls this immediately before
/// invoking a task body under verification.
pub fn begin() {
    ACTIVE.with(|a| *a.borrow_mut() = Some(AccessSet::default()));
}

/// Stop recording and return the log, or `None` if [`begin`] was never
/// called on this thread (tracking disabled).
pub fn take() -> Option<AccessSet> {
    ACTIVE.with(|a| a.borrow_mut().take())
}

/// Is an access log installed on this thread?
pub fn active() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

/// Report that the running task body read `region`. No-op unless a log
/// is active (i.e. outside verification runs).
pub fn record_read(region: Region) {
    ACTIVE.with(|a| {
        if let Some(set) = a.borrow_mut().as_mut() {
            set.reads.push(region);
        }
    });
}

/// Report that the running task body wrote `region`. No-op unless a
/// log is active.
pub fn record_write(region: Region) {
    ACTIVE.with(|a| {
        if let Some(set) = a.borrow_mut().as_mut() {
            set.writes.push(region);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::DataId;

    fn r(data: u64, offset: u64, len: u64) -> Region {
        Region::new(DataId(data), offset, len)
    }

    #[test]
    fn disabled_recording_is_dropped() {
        assert!(!active());
        record_read(r(1, 0, 8));
        record_write(r(1, 8, 8));
        assert_eq!(take(), None);
    }

    #[test]
    fn begin_record_take_roundtrip() {
        begin();
        assert!(active());
        record_read(r(1, 0, 8));
        record_write(r(2, 4, 4));
        let set = take().expect("log active");
        assert_eq!(set.reads, vec![r(1, 0, 8)]);
        assert_eq!(set.writes, vec![r(2, 4, 4)]);
        assert!(!active(), "take uninstalls the log");
        assert_eq!(take(), None);
    }

    #[test]
    fn begin_discards_stale_log() {
        begin();
        record_read(r(1, 0, 8));
        begin();
        let set = take().expect("log active");
        assert!(set.reads.is_empty() && set.writes.is_empty());
    }

    #[test]
    fn logs_are_per_thread() {
        begin();
        record_write(r(9, 0, 16));
        let other = std::thread::spawn(|| {
            record_write(r(9, 16, 16));
            take()
        })
        .join()
        .unwrap();
        assert_eq!(other, None, "sibling thread has no log");
        let set = take().expect("our log survives");
        assert_eq!(set.writes, vec![r(9, 0, 16)]);
    }
}
