//! Safe reinterpretation of byte buffers as scalar slices.
//!
//! Buffer storage is 16-byte aligned (see [`crate::space`]), so viewing
//! it as `f32`/`f64`/integer slices is sound whenever the length checks
//! pass. This gives task kernels natural `&mut [f32]` access to data
//! that the runtime moves around as raw bytes.

/// Marker for plain-old-data scalar types that may alias a byte buffer.
///
/// # Safety
///
/// Implementors must be `Copy`, have no padding, no invalid bit
/// patterns, and alignment ≤ 16.
pub unsafe trait Scalar: Copy + 'static {}

unsafe impl Scalar for u8 {}
unsafe impl Scalar for i8 {}
unsafe impl Scalar for u16 {}
unsafe impl Scalar for i16 {}
unsafe impl Scalar for u32 {}
unsafe impl Scalar for i32 {}
unsafe impl Scalar for u64 {}
unsafe impl Scalar for i64 {}
unsafe impl Scalar for f32 {}
unsafe impl Scalar for f64 {}

/// View a byte slice as a slice of `T`.
///
/// # Panics
///
/// Panics if the pointer is not aligned for `T` or the length is not a
/// multiple of `size_of::<T>()`.
pub fn cast_slice<T: Scalar>(bytes: &[u8]) -> &[T] {
    let size = std::mem::size_of::<T>();
    assert_eq!(bytes.len() % size, 0, "byte length {} not a multiple of {}", bytes.len(), size);
    assert_eq!(
        bytes.as_ptr() as usize % std::mem::align_of::<T>(),
        0,
        "buffer misaligned for {}",
        std::any::type_name::<T>()
    );
    // SAFETY: alignment and size checked above; T is POD per `Scalar`.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const T, bytes.len() / size) }
}

/// View a mutable byte slice as a mutable slice of `T`.
///
/// # Panics
///
/// Same conditions as [`cast_slice`].
pub fn cast_slice_mut<T: Scalar>(bytes: &mut [u8]) -> &mut [T] {
    let size = std::mem::size_of::<T>();
    assert_eq!(bytes.len() % size, 0, "byte length {} not a multiple of {}", bytes.len(), size);
    assert_eq!(
        bytes.as_ptr() as usize % std::mem::align_of::<T>(),
        0,
        "buffer misaligned for {}",
        std::any::type_name::<T>()
    );
    // SAFETY: alignment and size checked above; T is POD per `Scalar`.
    unsafe { std::slice::from_raw_parts_mut(bytes.as_mut_ptr() as *mut T, bytes.len() / size) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cast_f32_roundtrip() {
        let mut storage = vec![0u64; 2]; // 16 aligned bytes
        let bytes: &mut [u8] =
            unsafe { std::slice::from_raw_parts_mut(storage.as_mut_ptr() as *mut u8, 16) };
        {
            let floats = cast_slice_mut::<f32>(bytes);
            floats.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        }
        let floats = cast_slice::<f32>(bytes);
        assert_eq!(floats, &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn cast_rejects_partial_elements() {
        let storage = [0u64; 1];
        let bytes: &[u8] = unsafe { std::slice::from_raw_parts(storage.as_ptr() as *const u8, 7) };
        let _ = cast_slice::<f64>(bytes);
    }

    #[test]
    fn cast_u8_is_identity() {
        let data = [1u8, 2, 3];
        assert_eq!(cast_slice::<u8>(&data), &[1, 2, 3]);
    }
}
