//! Data objects and byte regions — the vocabulary of OmpSs dependence
//! clauses.
//!
//! A [`DataId`] names a user buffer registered with the runtime (the
//! analogue of the host pointer a `#pragma omp task input([N] a)`
//! clause evaluates to). A [`Region`] is a `(data, offset, len)` triple:
//! the byte range a clause covers. Like the paper's implementation
//! (§II-A3: "we currently do not support [partial overlap]"), dependence
//! matching is by *exact region*; partially-overlapping regions are
//! detected and reported as a programming error rather than silently
//! mis-synchronised.

use std::fmt;

/// Identifier of a registered data object (user buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DataId(pub u64);

/// A byte range of a data object, as named by a dependence/copy clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Region {
    /// The data object this region belongs to.
    pub data: DataId,
    /// Byte offset of the region start within the object.
    pub offset: u64,
    /// Length of the region in bytes. Always non-zero for regions built
    /// through [`Region::new`].
    pub len: u64,
}

impl Region {
    /// Create a region covering `[offset, offset + len)` of `data`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` — empty dependence regions are meaningless
    /// and almost always indicate a blocking-arithmetic bug in the
    /// caller.
    pub fn new(data: DataId, offset: u64, len: u64) -> Self {
        assert!(len > 0, "dependence region must be non-empty");
        Region { data, offset, len }
    }

    /// One-past-the-end byte offset.
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }

    /// True if the two regions share at least one byte. A zero-length
    /// region (constructible only as a literal — [`Region::new`] rejects
    /// it) has no bytes and therefore overlaps nothing, even when its
    /// offset falls strictly inside the other range.
    pub fn overlaps(&self, other: &Region) -> bool {
        self.data == other.data
            && self.len > 0
            && other.len > 0
            && self.offset < other.end()
            && other.offset < self.end()
    }

    /// True if the regions overlap but are not identical — the case the
    /// runtime rejects (undefined behaviour in the paper's model).
    pub fn partially_overlaps(&self, other: &Region) -> bool {
        self.overlaps(other) && self != other
    }

    /// True if `other` lies entirely within `self`.
    pub fn contains(&self, other: &Region) -> bool {
        self.data == other.data && self.offset <= other.offset && other.end() <= self.end()
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}[{}..{})", self.data.0, self.offset, self.end())
    }
}

/// How a task accesses a region — the three OmpSs dependence clauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// `input(...)`: the task reads the region.
    Input,
    /// `output(...)`: the task writes the whole region without reading.
    Output,
    /// `inout(...)`: the task reads and writes the region.
    InOut,
}

impl AccessKind {
    /// Does this access read the prior contents?
    pub fn reads(self) -> bool {
        matches!(self, AccessKind::Input | AccessKind::InOut)
    }

    /// Does this access produce a new version of the region?
    pub fn writes(self) -> bool {
        matches!(self, AccessKind::Output | AccessKind::InOut)
    }
}

/// A dependence/copy clause: a region plus how it is accessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Access {
    /// The region named by the clause.
    pub region: Region,
    /// Read/write/read-write.
    pub kind: AccessKind,
}

impl Access {
    /// `input(region)`.
    pub fn input(region: Region) -> Self {
        Access { region, kind: AccessKind::Input }
    }

    /// `output(region)`.
    pub fn output(region: Region) -> Self {
        Access { region, kind: AccessKind::Output }
    }

    /// `inout(region)`.
    pub fn inout(region: Region) -> Self {
        Access { region, kind: AccessKind::InOut }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(data: u64, offset: u64, len: u64) -> Region {
        Region::new(DataId(data), offset, len)
    }

    #[test]
    fn overlap_same_object() {
        assert!(r(1, 0, 10).overlaps(&r(1, 5, 10)));
        assert!(!r(1, 0, 10).overlaps(&r(1, 10, 10)), "touching regions do not overlap");
        assert!(!r(1, 0, 10).overlaps(&r(2, 0, 10)), "different objects never overlap");
    }

    #[test]
    fn partial_overlap_excludes_identity() {
        assert!(!r(1, 0, 10).partially_overlaps(&r(1, 0, 10)));
        assert!(r(1, 0, 10).partially_overlaps(&r(1, 4, 10)));
        assert!(r(1, 0, 10).partially_overlaps(&r(1, 0, 4)), "nested counts as partial");
    }

    #[test]
    fn contains_is_inclusive() {
        assert!(r(1, 0, 10).contains(&r(1, 0, 10)));
        assert!(r(1, 0, 10).contains(&r(1, 2, 4)));
        assert!(!r(1, 2, 4).contains(&r(1, 0, 10)));
        assert!(!r(1, 0, 10).contains(&r(2, 2, 4)));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_region_rejected() {
        let _ = r(1, 0, 0);
    }

    #[test]
    fn zero_length_regions() {
        // `Region::new` rejects empty regions, but structs can still be
        // built literally (e.g. by diffing tools); the predicates must
        // treat them consistently: an empty range shares no byte with
        // anything, yet sits inside any range covering its offset.
        let z = Region { data: DataId(1), offset: 5, len: 0 };
        assert!(!z.overlaps(&r(1, 0, 10)), "empty region overlaps nothing");
        assert!(!r(1, 0, 10).overlaps(&z));
        assert!(!z.overlaps(&z), "not even itself");
        assert!(!z.partially_overlaps(&r(1, 0, 10)));
        assert!(!r(1, 0, 10).partially_overlaps(&z));
        assert!(r(1, 0, 10).contains(&z), "empty region is contained at its offset");
        assert!(r(1, 5, 5).contains(&z), "contained at its own start boundary");
        assert!(r(1, 0, 5).contains(&z), "contained at its own end boundary");
        assert!(!z.contains(&r(1, 5, 1)), "empty region contains no non-empty one");
        assert!(z.contains(&z), "an empty region contains itself");
        assert_eq!(z.end(), 5);
    }

    #[test]
    fn adjacent_regions_are_disjoint() {
        // [0, 8) and [8, 16): touching at a boundary is not sharing a
        // byte — no overlap, no partial overlap, no containment.
        let lo = r(1, 0, 8);
        let hi = r(1, 8, 8);
        assert!(!lo.overlaps(&hi) && !hi.overlaps(&lo));
        assert!(!lo.partially_overlaps(&hi) && !hi.partially_overlaps(&lo));
        assert!(!lo.contains(&hi) && !hi.contains(&lo));
        // One byte of overlap flips all of that.
        let hi1 = r(1, 7, 8);
        assert!(lo.overlaps(&hi1) && lo.partially_overlaps(&hi1));
    }

    #[test]
    fn access_kind_semantics() {
        assert!(AccessKind::Input.reads() && !AccessKind::Input.writes());
        assert!(!AccessKind::Output.reads() && AccessKind::Output.writes());
        assert!(AccessKind::InOut.reads() && AccessKind::InOut.writes());
    }

    #[test]
    fn display_formats_region() {
        assert_eq!(r(3, 8, 4).to_string(), "D3[8..12)");
    }
}
