//! # ompss-mem — multiple address spaces for the OmpSs memory model
//!
//! OmpSs (§II-A2 of Bueno et al., IPPS 2012) assumes data may live in
//! address spaces not directly reachable from every computational
//! resource: host memories of different cluster nodes and device
//! memories of GPUs. This crate provides those spaces, allocations
//! within them (with real byte backing for validated runs or phantom
//! accounting-only backing for paper-scale benchmarks), the data-object
//! registry, and the region/access vocabulary used by dependence
//! clauses.
//!
//! ```
//! use ompss_mem::{Backing, MemoryManager, SpaceKind};
//!
//! let m = MemoryManager::new(Backing::Real);
//! let host = m.add_space("node0", SpaceKind::Host(0), None, 1 << 20);
//! let gpu = m.add_space("node0:gpu0", SpaceKind::Gpu(0, 0), Some(host), 1 << 20);
//!
//! let a = m.alloc(host, 64).unwrap();
//! let b = m.alloc(gpu, 64).unwrap();
//! m.with_slice_mut::<f32, _>(host, a, 0, 64, |xs| xs.fill(2.0));
//! m.copy((host, a), 0, (gpu, b), 0, 64);
//! let sum = m.with_slice::<f32, _>(gpu, b, 0, 64, |xs| xs.iter().sum::<f32>());
//! assert_eq!(sum, Some(32.0));
//! ```

#![warn(missing_docs)]

mod region;
mod scalar;
mod space;
pub mod track;

pub use region::{Access, AccessKind, DataId, Region};
pub use scalar::{cast_slice, cast_slice_mut, Scalar};
pub use space::{
    AllocId, Backing, DataInfo, MemoryManager, OutOfMemory, SpaceId, SpaceInfo, SpaceKind,
};
