//! Property tests of the network layer: byte conservation on the
//! fabric, MPI collective correctness over arbitrary payloads and rank
//! counts.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;

use ompss_net::{Fabric, FabricConfig, Mpi, Source};
use ompss_sim::{Sim, SimDuration};

fn cfg(nodes: u32) -> FabricConfig {
    FabricConfig { nodes, latency: SimDuration::from_micros(1), bandwidth: 1e9 }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every message injected is delivered exactly once to exactly its
    /// destination, and the stats account every byte.
    #[test]
    fn fabric_conserves_messages_and_bytes(
        msgs in proptest::collection::vec((0u32..4, 0u32..4, 1u64..10_000), 1..30)
    ) {
        let sim = Sim::new();
        let fab: Fabric<usize> = Fabric::new(cfg(4));
        let delivered = Arc::new(Mutex::new(vec![Vec::new(); 4]));
        for node in 0..4u32 {
            let f = fab.clone();
            let d = delivered.clone();
            sim.process(format!("sink{node}")).daemon().spawn(async move {
                while let Ok((src, id)) = f.recv(node).await {
                    d.lock()[node as usize].push((src, id));
                }
            });
        }
        let total: u64 = msgs.iter().map(|&(_, _, b)| b).sum();
        for (id, (src, dst, bytes)) in msgs.clone().into_iter().enumerate() {
            let f = fab.clone();
            sim.spawn(format!("tx{id}"), async move {
                f.send(src, dst, bytes, id).await.unwrap();
            });
        }
        sim.run().unwrap();
        let got = delivered.lock();
        let mut seen: Vec<usize> = got.iter().flatten().map(|&(_, id)| id).collect();
        seen.sort();
        prop_assert_eq!(seen, (0..msgs.len()).collect::<Vec<_>>());
        for (id, &(src, dst, _)) in msgs.iter().enumerate() {
            prop_assert!(got[dst as usize].contains(&(src, id)));
        }
        let st = fab.stats();
        prop_assert_eq!(st.bytes_total, total);
        prop_assert_eq!(st.messages as usize, msgs.len());
    }

    /// `bcast` delivers the root's payload verbatim to every rank, for
    /// any world size, root and payload.
    #[test]
    fn mpi_bcast_correct_for_any_root(
        nodes in 1u32..9,
        root_sel in 0u32..8,
        payload in proptest::collection::vec(any::<u8>(), 1..64)
    ) {
        let root = root_sel % nodes;
        let mpi = Mpi::new(cfg(nodes));
        let sim = Sim::new();
        let ok = Arc::new(Mutex::new(0u32));
        for r in 0..nodes {
            let rank = mpi.rank(r);
            let payload = payload.clone();
            let ok = ok.clone();
            sim.spawn(format!("rank{r}"), async move {
                let data = (rank.rank() == root).then(|| payload.clone());
                let out = rank.bcast(root, 7, payload.len() as u64, data).await.unwrap();
                if out.as_deref() == Some(&payload[..]) {
                    *ok.lock() += 1;
                }
            });
        }
        sim.run().unwrap();
        prop_assert_eq!(*ok.lock(), nodes);
    }

    /// `allgather` returns every rank's contribution, in rank order, at
    /// every rank.
    #[test]
    fn mpi_allgather_correct(nodes in 1u32..9, seed in any::<u8>()) {
        let mpi = Mpi::new(cfg(nodes));
        let sim = Sim::new();
        let ok = Arc::new(Mutex::new(0u32));
        for r in 0..nodes {
            let rank = mpi.rank(r);
            let ok = ok.clone();
            sim.spawn(format!("rank{r}"), async move {
                let mine = vec![seed.wrapping_add(rank.rank() as u8); 4];
                let all = rank.allgather(9, 4, Some(mine)).await.unwrap();
                let expect: Vec<Option<Vec<u8>>> = (0..rank.size())
                    .map(|q| Some(vec![seed.wrapping_add(q as u8); 4]))
                    .collect();
                if all == expect {
                    *ok.lock() += 1;
                }
            });
        }
        sim.run().unwrap();
        prop_assert_eq!(*ok.lock(), nodes);
    }

    /// Tag matching never misdelivers: interleaved tagged streams from
    /// two senders are each received intact.
    #[test]
    fn mpi_tag_matching_is_exact(
        tags_a in proptest::collection::vec(0u32..4, 1..10),
        tags_b in proptest::collection::vec(4u32..8, 1..10),
    ) {
        let mpi = Mpi::new(cfg(3));
        let sim = Sim::new();
        {
            let rank = mpi.rank(1);
            let tags = tags_a.clone();
            sim.spawn("sender-a", async move {
                for (i, t) in tags.into_iter().enumerate() {
                    rank.send(0, t, 1, Some(vec![i as u8])).await.unwrap();
                }
            });
        }
        {
            let rank = mpi.rank(2);
            let tags = tags_b.clone();
            sim.spawn("sender-b", async move {
                for (i, t) in tags.into_iter().enumerate() {
                    rank.send(0, t, 1, Some(vec![i as u8])).await.unwrap();
                }
            });
        }
        let ok = Arc::new(Mutex::new(false));
        {
            let rank = mpi.rank(0);
            let (ta, tb) = (tags_a.clone(), tags_b.clone());
            let ok = ok.clone();
            sim.spawn("receiver", async move {
                // Receive sender B's stream first (by source), in order,
                // then sender A's by per-message tag.
                let mut fine = true;
                for (i, t) in tb.iter().enumerate() {
                    let (_, m) = rank.recv(Source::Rank(2), Some(*t)).await.unwrap();
                    fine &= m.data == Some(vec![i as u8]);
                }
                for (i, t) in ta.iter().enumerate() {
                    let (_, m) = rank.recv(Source::Rank(1), Some(*t)).await.unwrap();
                    fine &= m.data == Some(vec![i as u8]);
                }
                *ok.lock() = fine;
            });
        }
        sim.run().unwrap();
        prop_assert!(*ok.lock());
    }
}
