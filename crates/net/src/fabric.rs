//! The cluster interconnect model.
//!
//! Models a switched fabric (the paper's QDR Infiniband) as one
//! full-duplex NIC per node and a contention-free core: a message from
//! `src` to `dst` occupies `src`'s TX port and `dst`'s RX port for
//! `latency + size / bandwidth`, then appears in `dst`'s inbox. Port
//! occupancy is what creates the effects the paper measures at the
//! cluster level — in particular the *master bottleneck* when all data
//! is routed through node 0 (`MtoS`), and its disappearance with
//! slave-to-slave transfers (`StoS`).
//!
//! The fabric carries typed messages (`M`) plus a declared wire size;
//! bulk payload bytes are accounted here but physically moved by the
//! memory manager (which may be phantom-backed for paper-scale runs).

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;

use parking_lot::Mutex;

use ompss_sim::{
    delay, process, Channel, FaultClass, FaultPlan, Semaphore, Signal, SimDuration, SimResult,
};

/// A node index within the fabric.
pub type NodeId = u32;

/// Fabric configuration.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Number of nodes.
    pub nodes: u32,
    /// One-way message latency.
    pub latency: SimDuration,
    /// Link bandwidth in bytes per second (per NIC port, each direction).
    pub bandwidth: f64,
}

impl FabricConfig {
    /// The paper's cluster interconnect: QDR Infiniband (32 Gbit/s
    /// signalling, ≈3.2 GB/s effective payload bandwidth) with 2 µs
    /// latency. The paper's text says "8 Gbits/s peak", which matches
    /// QDR's per-lane rate; the calibration that reproduces the paper's
    /// cluster results is the full 4-lane effective rate used here.
    pub fn qdr_infiniband(nodes: u32) -> Self {
        FabricConfig { nodes, latency: SimDuration::from_micros(2), bandwidth: 3.2e9 }
    }

    /// Time on the wire for a message of `size` bytes.
    pub fn wire_time(&self, size: u64) -> SimDuration {
        self.latency + SimDuration::from_secs_f64(size as f64 / self.bandwidth)
    }
}

/// Per-pair and per-node traffic accounting.
#[derive(Debug, Default, Clone)]
pub struct NetStats {
    /// Total bytes ever sent (including loopback).
    pub bytes_total: u64,
    /// Total messages ever sent.
    pub messages: u64,
    /// Bytes sent from each node.
    pub tx_bytes: Vec<u64>,
    /// Bytes received by each node.
    pub rx_bytes: Vec<u64>,
    /// Full per-link traffic matrix: `link_bytes[src][dst]` is every
    /// byte carried on that directed link (loopback on the diagonal).
    pub link_bytes: Vec<Vec<u64>>,
    /// Messages per directed link, same layout.
    pub link_messages: Vec<Vec<u64>>,
}

impl NetStats {
    /// Bytes on links with the master (node 0) as an endpoint,
    /// excluding loopback — the traffic of master-routed (`MtoS`)
    /// configurations.
    pub fn master_link_bytes(&self) -> u64 {
        let mut total = 0;
        for (s, row) in self.link_bytes.iter().enumerate() {
            for (d, &b) in row.iter().enumerate() {
                if s != d && (s == 0 || d == 0) {
                    total += b;
                }
            }
        }
        total
    }

    /// Bytes on slave↔slave links (neither endpoint is node 0).
    pub fn slave_link_bytes(&self) -> u64 {
        let mut total = 0;
        for (s, row) in self.link_bytes.iter().enumerate() {
            for (d, &b) in row.iter().enumerate() {
                if s != d && s != 0 && d != 0 {
                    total += b;
                }
            }
        }
        total
    }
}

struct Nic<M> {
    tx: Semaphore,
    rx: Semaphore,
    inbox: Channel<(NodeId, M)>,
}

struct FabricInner<M> {
    cfg: FabricConfig,
    nics: Vec<Nic<M>>,
    stats: Mutex<NetStats>,
    /// Chaos injection plan; `None` (the default) takes the exact
    /// legacy path.
    faults: Mutex<Option<Arc<FaultPlan>>>,
    /// Per-node NIC death flags (whole-node loss): a dead endpoint's
    /// messages still occupy the wire but are never delivered.
    dead: Vec<AtomicBool>,
    /// Per-node NIC offline flags (elastic membership): an offline NIC
    /// behaves like a dead one on the wire, but unlike death it is
    /// planned and reversible — a joining node's NIC starts offline and
    /// is brought up at its join instant; a drained node's goes back
    /// offline at departure.
    offline: Vec<AtomicBool>,
}

/// A simulated cluster interconnect carrying messages of type `M`.
///
/// Clones share the same fabric.
pub struct Fabric<M> {
    inner: Arc<FabricInner<M>>,
}

impl<M> Clone for Fabric<M> {
    fn clone(&self) -> Self {
        Fabric { inner: self.inner.clone() }
    }
}

impl<M: Send + Clone + 'static> Fabric<M> {
    /// Build a fabric with one NIC and inbox per node.
    pub fn new(cfg: FabricConfig) -> Self {
        let nics = (0..cfg.nodes)
            .map(|_| Nic { tx: Semaphore::new(1), rx: Semaphore::new(1), inbox: Channel::new() })
            .collect();
        Fabric {
            inner: Arc::new(FabricInner {
                stats: Mutex::new(NetStats {
                    tx_bytes: vec![0; cfg.nodes as usize],
                    rx_bytes: vec![0; cfg.nodes as usize],
                    link_bytes: vec![vec![0; cfg.nodes as usize]; cfg.nodes as usize],
                    link_messages: vec![vec![0; cfg.nodes as usize]; cfg.nodes as usize],
                    ..NetStats::default()
                }),
                dead: (0..cfg.nodes).map(|_| AtomicBool::new(false)).collect(),
                offline: (0..cfg.nodes).map(|_| AtomicBool::new(false)).collect(),
                cfg,
                nics,
                faults: Mutex::new(None),
            }),
        }
    }

    /// Fabric configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.inner.cfg
    }

    /// Arm chaos injection on every non-loopback link: messages may be
    /// dropped after occupying the wire, delivered twice, or delayed by
    /// a bounded extra latency, as the plan decides.
    pub fn set_fault_plan(&self, plan: Arc<FaultPlan>) {
        *self.inner.faults.lock() = Some(plan);
    }

    /// Declare `node`'s NIC dead (whole-node loss): messages to or from
    /// it still occupy ports and wire time (in-flight traffic does not
    /// un-happen) but are never delivered, and nothing it would send
    /// reaches an inbox again. Irreversible for the run.
    pub fn kill_node(&self, node: NodeId) {
        self.inner.dead[node as usize].store(true, Relaxed);
    }

    /// Has `node` been declared dead?
    pub fn is_dead(&self, node: NodeId) -> bool {
        self.inner.dead[node as usize].load(Relaxed)
    }

    /// Take `node`'s NIC off the wire without declaring it dead: the
    /// planned counterpart of [`Fabric::kill_node`]. Off-wire delivery
    /// semantics are identical (traffic occupies the wire but is never
    /// delivered); the difference is intent and reversibility — a
    /// joiner's NIC starts offline and comes up via
    /// [`Fabric::set_online`].
    pub fn set_offline(&self, node: NodeId) {
        self.inner.offline[node as usize].store(true, Relaxed);
    }

    /// Bring `node`'s NIC onto the wire (join bring-up). Death is not
    /// reversible: a killed NIC stays off the wire regardless.
    pub fn set_online(&self, node: NodeId) {
        self.inner.offline[node as usize].store(false, Relaxed);
    }

    /// Is `node`'s NIC currently off the wire (offline or dead)?
    pub fn is_offwire(&self, node: NodeId) -> bool {
        self.is_dead(node) || self.inner.offline[node as usize].load(Relaxed)
    }

    /// Send `msg` (declared wire size `size` bytes) from `src` to `dst`,
    /// blocking the calling process for the transfer duration. The
    /// message is in `dst`'s inbox when this returns.
    ///
    /// Loopback (`src == dst`) is free of port occupancy and latency:
    /// intra-node "messages" model function calls, not wire traffic.
    pub async fn send(&self, src: NodeId, dst: NodeId, size: u64, msg: M) -> SimResult<()> {
        {
            let mut st = self.inner.stats.lock();
            st.bytes_total += size;
            st.messages += 1;
            st.tx_bytes[src as usize] += size;
            st.rx_bytes[dst as usize] += size;
            st.link_bytes[src as usize][dst as usize] += size;
            st.link_messages[src as usize][dst as usize] += 1;
        }
        if src == dst {
            if !self.is_offwire(dst) {
                self.inner.nics[dst as usize].inbox.send((src, msg));
            }
            return Ok(());
        }
        // Chaos: one decision per class per message, drawn before the
        // wire so the fault stream is a pure function of message order.
        let plan = self.inner.faults.lock().clone();
        let (mut wire, mut dropped, mut dup) = (self.inner.cfg.wire_time(size), false, false);
        if let Some(p) = &plan {
            if p.decide(FaultClass::NetDelay) {
                // Bounded: at most 4 extra one-way latencies.
                let extra = self.inner.cfg.latency.as_nanos() as f64
                    * 4.0
                    * p.fraction(FaultClass::NetDelay);
                wire += SimDuration::from_nanos(extra as u64);
            }
            dropped = p.decide(FaultClass::NetDrop);
            dup = p.decide(FaultClass::NetDup);
        }
        let s = &self.inner.nics[src as usize];
        let d = &self.inner.nics[dst as usize];
        s.tx.acquire().await?;
        d.rx.acquire().await?;
        delay(wire).await?;
        d.rx.release();
        s.tx.release();
        if dropped {
            // The message occupied both ports and the wire, then
            // vanished; the sender cannot tell. Recovery is the
            // reliability layer's problem.
            return Ok(());
        }
        if self.is_offwire(src) || self.is_offwire(dst) {
            // An off-wire endpoint (killed, not yet joined, or drained
            // away before or during the transfer): the bytes were on
            // the wire but there is nobody to receive them — same
            // observable outcome as a drop.
            return Ok(());
        }
        if dup {
            self.inner.nics[dst as usize].inbox.send((src, msg.clone()));
        }
        self.inner.nics[dst as usize].inbox.send((src, msg));
        Ok(())
    }

    /// Fire-and-forget send: a helper process performs the transfer; the
    /// returned signal is set when the message has been delivered.
    pub fn send_detached(&self, src: NodeId, dst: NodeId, size: u64, msg: M) -> Signal {
        let done = Signal::new();
        let fab = self.clone();
        let sig = done.clone();
        process(format!("net:send:{src}->{dst}")).daemon().spawn(async move {
            if fab.send(src, dst, size, msg).await.is_ok() {
                sig.set();
            }
        });
        done
    }

    /// Receive the next message addressed to `node`, parking until one
    /// arrives. Returns `(sender, message)`.
    pub async fn recv(&self, node: NodeId) -> SimResult<(NodeId, M)> {
        self.inner.nics[node as usize].inbox.recv().await
    }

    /// Non-blocking receive.
    pub fn try_recv(&self, node: NodeId) -> Option<(NodeId, M)> {
        self.inner.nics[node as usize].inbox.try_recv()
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> NetStats {
        self.inner.stats.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompss_sim::{now, Sim};

    fn cfg() -> FabricConfig {
        // 1 GB/s, 1 µs latency: a 1000-byte message takes 2 µs.
        FabricConfig { nodes: 4, latency: SimDuration::from_micros(1), bandwidth: 1e9 }
    }

    #[test]
    fn wire_time_includes_latency_and_serialisation() {
        let c = cfg();
        assert_eq!(c.wire_time(0).as_nanos(), 1_000);
        assert_eq!(c.wire_time(1000).as_nanos(), 2_000);
    }

    #[test]
    fn message_arrives_after_wire_time() {
        let sim = Sim::new();
        let fab: Fabric<u32> = Fabric::new(cfg());
        let f1 = fab.clone();
        sim.spawn("sender", async move {
            f1.send(0, 1, 1000, 42).await.unwrap();
            assert_eq!(now().as_nanos(), 2_000);
        });
        let f2 = fab.clone();
        sim.spawn("receiver", async move {
            let (src, msg) = f2.recv(1).await.unwrap();
            assert_eq!((src, msg), (0, 42));
            assert_eq!(now().as_nanos(), 2_000);
        });
        sim.run().unwrap();
    }

    #[test]
    fn same_source_sends_serialise_on_tx_port() {
        // Two 1000-byte messages from node 0 must take 2 + 2 µs on TX.
        let sim = Sim::new();
        let fab: Fabric<u32> = Fabric::new(cfg());
        for (i, dst) in [(0u32, 1u32), (1, 2)] {
            let f = fab.clone();
            sim.spawn(format!("s{i}"), async move {
                f.send(0, dst, 1000, i).await.unwrap();
            });
        }
        let f = fab.clone();
        sim.spawn("r2", async move {
            let _ = f.recv(2).await.unwrap();
            assert_eq!(now().as_nanos(), 4_000, "second transfer queued behind first");
        });
        sim.run().unwrap();
    }

    #[test]
    fn incast_serialises_on_rx_port() {
        // Nodes 1 and 2 both send 1000 bytes to node 0: the second
        // delivery waits for node 0's RX port.
        let sim = Sim::new();
        let fab: Fabric<u32> = Fabric::new(cfg());
        for src in [1u32, 2] {
            let f = fab.clone();
            sim.spawn(format!("s{src}"), async move {
                f.send(src, 0, 1000, src).await.unwrap();
            });
        }
        let f = fab.clone();
        sim.spawn("sink", async move {
            let _ = f.recv(0).await.unwrap();
            let _ = f.recv(0).await.unwrap();
            assert_eq!(now().as_nanos(), 4_000);
        });
        sim.run().unwrap();
    }

    #[test]
    fn disjoint_pairs_transfer_concurrently() {
        let sim = Sim::new();
        let fab: Fabric<u32> = Fabric::new(cfg());
        for (src, dst) in [(0u32, 1u32), (2, 3)] {
            let f = fab.clone();
            sim.spawn(format!("s{src}"), async move {
                f.send(src, dst, 1000, 0).await.unwrap();
                assert_eq!(now().as_nanos(), 2_000, "no cross-pair contention");
            });
        }
        sim.run().unwrap();
    }

    #[test]
    fn loopback_is_immediate() {
        let sim = Sim::new();
        let fab: Fabric<u32> = Fabric::new(cfg());
        let f = fab.clone();
        sim.spawn("p", async move {
            f.send(2, 2, 1_000_000, 9).await.unwrap();
            assert_eq!(now().as_nanos(), 0);
            assert_eq!(f.recv(2).await.unwrap(), (2, 9));
        });
        sim.run().unwrap();
    }

    #[test]
    fn detached_send_sets_signal_on_delivery() {
        let sim = Sim::new();
        let fab: Fabric<u32> = Fabric::new(cfg());
        let f = fab.clone();
        sim.spawn("p", async move {
            let done = f.send_detached(0, 1, 1000, 5);
            assert!(!done.is_set(), "send is asynchronous");
            done.wait().await.unwrap();
            assert_eq!(now().as_nanos(), 2_000);
            assert_eq!(f.try_recv(1), Some((0, 5)));
        });
        sim.run().unwrap();
    }

    #[test]
    fn stats_account_bytes_and_messages() {
        let sim = Sim::new();
        let fab: Fabric<u32> = Fabric::new(cfg());
        let f = fab.clone();
        sim.spawn("p", async move {
            f.send(0, 1, 500, 1).await.unwrap();
            f.send(1, 0, 300, 2).await.unwrap();
            let st = f.stats();
            assert_eq!(st.bytes_total, 800);
            assert_eq!(st.messages, 2);
            assert_eq!(st.tx_bytes, vec![500, 300, 0, 0]);
            assert_eq!(st.rx_bytes, vec![300, 500, 0, 0]);
            assert_eq!(st.link_bytes[0][1], 500);
            assert_eq!(st.link_bytes[1][0], 300);
            assert_eq!(st.link_messages[0][1], 1);
            assert_eq!(st.master_link_bytes(), 800);
            assert_eq!(st.slave_link_bytes(), 0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn forced_drop_occupies_wire_but_never_delivers() {
        let sim = Sim::new();
        let fab: Fabric<u32> = Fabric::new(cfg());
        fab.set_fault_plan(Arc::new(FaultPlan::quiet(1).with_forced(FaultClass::NetDrop, 1)));
        let f = fab.clone();
        sim.spawn("p", async move {
            f.send(0, 1, 1000, 7).await.unwrap();
            assert_eq!(now().as_nanos(), 2_000, "dropped message still cost wire time");
            assert_eq!(f.try_recv(1), None, "dropped message must not arrive");
            f.send(0, 1, 1000, 8).await.unwrap();
            assert_eq!(f.try_recv(1), Some((0, 8)), "later messages flow normally");
        });
        sim.run().unwrap();
    }

    #[test]
    fn forced_dup_delivers_twice() {
        let sim = Sim::new();
        let fab: Fabric<u32> = Fabric::new(cfg());
        fab.set_fault_plan(Arc::new(FaultPlan::quiet(1).with_forced(FaultClass::NetDup, 1)));
        let f = fab.clone();
        sim.spawn("p", async move {
            f.send(0, 1, 100, 9).await.unwrap();
            assert_eq!(f.try_recv(1), Some((0, 9)));
            assert_eq!(f.try_recv(1), Some((0, 9)), "duplicated message arrives twice");
            assert_eq!(f.try_recv(1), None);
        });
        sim.run().unwrap();
    }

    #[test]
    fn delay_fault_is_bounded_and_deterministic() {
        let run = || {
            let sim = Sim::new();
            let fab: Fabric<u32> = Fabric::new(cfg());
            fab.set_fault_plan(Arc::new(
                FaultPlan::new(5, 0.0).with_rate(FaultClass::NetDelay, 1.0),
            ));
            let f = fab.clone();
            let t = Arc::new(Mutex::new(0u64));
            let t2 = t.clone();
            sim.spawn("p", async move {
                f.send(0, 1, 1000, 1).await.unwrap();
                *t2.lock() = now().as_nanos();
            });
            sim.run().unwrap();
            let v = *t.lock();
            v
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "delay injection must replay exactly");
        // Base wire time 2µs; extra bounded by 4 × 1µs latency.
        assert!((2_000..6_000).contains(&a), "delay out of bounds: {a}");
    }

    #[test]
    fn loopback_is_immune_to_faults() {
        let sim = Sim::new();
        let fab: Fabric<u32> = Fabric::new(cfg());
        fab.set_fault_plan(Arc::new(
            FaultPlan::quiet(1)
                .with_forced(FaultClass::NetDrop, u64::MAX)
                .with_forced(FaultClass::NetDup, u64::MAX),
        ));
        let f = fab.clone();
        sim.spawn("p", async move {
            f.send(2, 2, 64, 3).await.unwrap();
            assert_eq!(f.try_recv(2), Some((2, 3)), "loopback models a call, not a wire");
            assert_eq!(f.try_recv(2), None);
        });
        sim.run().unwrap();
    }

    #[test]
    fn dead_node_messages_occupy_wire_but_never_deliver() {
        let sim = Sim::new();
        let fab: Fabric<u32> = Fabric::new(cfg());
        let f = fab.clone();
        sim.spawn("p", async move {
            f.kill_node(1);
            assert!(f.is_dead(1));
            assert!(!f.is_dead(0));
            // To the dead node: wire time charged, nothing delivered.
            f.send(0, 1, 1000, 7).await.unwrap();
            assert_eq!(now().as_nanos(), 2_000);
            assert_eq!(f.try_recv(1), None);
            // From the dead node (a zombie process mid-send): same.
            f.send(1, 2, 1000, 8).await.unwrap();
            assert_eq!(f.try_recv(2), None);
            // Dead-node loopback delivers nothing either.
            f.send(1, 1, 64, 9).await.unwrap();
            assert_eq!(f.try_recv(1), None);
            // Live pairs are unaffected.
            f.send(0, 2, 64, 10).await.unwrap();
            assert_eq!(f.try_recv(2), Some((0, 10)));
        });
        sim.run().unwrap();
    }

    #[test]
    fn offline_nic_is_off_the_wire_until_brought_online() {
        let sim = Sim::new();
        let fab: Fabric<u32> = Fabric::new(cfg());
        let f = fab.clone();
        sim.spawn("p", async move {
            // A joiner's NIC starts offline: wire time is charged (the
            // sender cannot tell) but nothing is delivered.
            f.set_offline(1);
            assert!(f.is_offwire(1));
            assert!(!f.is_dead(1), "offline is planned, not a death");
            f.send(0, 1, 1000, 7).await.unwrap();
            assert_eq!(f.try_recv(1), None);
            // Join bring-up: the same link now delivers.
            f.set_online(1);
            assert!(!f.is_offwire(1));
            f.send(0, 1, 1000, 8).await.unwrap();
            assert_eq!(f.try_recv(1), Some((0, 8)));
            // Death is not reversible via set_online.
            f.kill_node(2);
            f.set_online(2);
            assert!(f.is_offwire(2));
        });
        sim.run().unwrap();
    }

    #[test]
    fn link_matrix_separates_master_and_slave_traffic() {
        let sim = Sim::new();
        let fab: Fabric<u32> = Fabric::new(cfg());
        let f = fab.clone();
        sim.spawn("p", async move {
            f.send(0, 2, 100, 0).await.unwrap();
            f.send(1, 2, 40, 0).await.unwrap();
            f.send(3, 3, 7, 0).await.unwrap(); // loopback: neither bucket
            let st = f.stats();
            assert_eq!(st.master_link_bytes(), 100);
            assert_eq!(st.slave_link_bytes(), 40);
            assert_eq!(st.link_bytes[3][3], 7);
        });
        sim.run().unwrap();
    }
}
