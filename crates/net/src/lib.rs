//! # ompss-net — simulated cluster interconnect
//!
//! The paper's cluster layer runs over GASNet active messages on a QDR
//! Infiniband network; its baselines use MPI over the same wires. This
//! crate models that interconnect deterministically:
//!
//! * [`Fabric`] — per-node full-duplex NIC ports over a contention-free
//!   core; transfers cost `latency + size/bandwidth` of virtual time and
//!   contend for ports (which is what produces the paper's master-
//!   bottleneck and slave-to-slave effects);
//! * [`AmNet`]/[`AmEndpoint`] — GASNet-style short/long active messages,
//!   used by the OmpSs cluster runtime;
//! * [`Mpi`]/[`MpiRank`] — tagged point-to-point with MPI matching
//!   semantics plus barrier/bcast/allgather/gather, used by the
//!   MPI+CUDA baseline applications;
//! * [`LeaseTracker`] — heartbeat/lease bookkeeping for whole-node
//!   failure detection (the master's lease monitor drives it).

#![warn(missing_docs)]

mod am;
mod fabric;
mod heartbeat;
mod mpi;

pub use am::{AmEndpoint, AmNet, AmStats, AM_HEADER_BYTES};
pub use fabric::{Fabric, FabricConfig, NetStats, NodeId};
pub use heartbeat::{LeaseConfig, LeaseTracker};
pub use mpi::{Mpi, MpiMsg, MpiRank, Source, UnexpectedStats, MPI_ENVELOPE_BYTES};
