//! A small MPI-like message-passing layer for the baseline applications.
//!
//! The paper compares OmpSs against hand-written MPI+CUDA programs
//! (SUMMA matrix multiply, STREAM, Perlin, N-Body). Those baselines are
//! reproduced here against this layer, which provides blocking tagged
//! point-to-point sends/receives with MPI's matching semantics
//! (source+tag, unexpected-message queue) plus the collectives the
//! baselines need: dissemination barrier, binomial-tree broadcast (also
//! over sub-groups, for SUMMA's row/column broadcasts) and ring
//! allgather. It runs over the same [`Fabric`](crate::Fabric) model as
//! the OmpSs runtime, so simulated times are directly comparable.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

use parking_lot::Mutex;

use ompss_sim::{abort_run, RunError, SimResult};

use crate::fabric::{Fabric, FabricConfig, NetStats, NodeId};

/// Wire overhead of a point-to-point message envelope, in bytes.
pub const MPI_ENVELOPE_BYTES: u64 = 64;

/// Default bound on each rank's unexpected-message queue. Real MPI
/// implementations cap eager buffering; an unbounded queue hides a
/// receiver that never matches what it is sent until memory runs out.
pub const MPI_UNEXPECTED_CAP: usize = 4096;

/// A tagged message. `data` carries real bytes when the sender provides
/// them (validation runs); `size` is always the modelled payload size.
#[derive(Debug, Clone)]
pub struct MpiMsg {
    /// User tag for matching.
    pub tag: u32,
    /// Modelled payload size in bytes.
    pub size: u64,
    /// Real payload bytes, if the sender supplied them.
    pub data: Option<Vec<u8>>,
}

/// Receive matching: MPI's `source` argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Match a specific sender rank.
    Rank(NodeId),
    /// `MPI_ANY_SOURCE`.
    Any,
}

/// Pressure observed on the world's unexpected-message queues — the
/// early-warning gauge for the bounded-queue abort: `peak` close to the
/// cap means the receive pattern is one burst away from
/// [`RunError::QueueOverflow`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnexpectedStats {
    /// Messages stashed as unexpected (received before any matching
    /// `recv` was posted), summed over all ranks.
    pub stashed: u64,
    /// High-water mark of any single rank's unexpected queue.
    pub peak: u64,
    /// Overflow aborts triggered (0 or 1 — the first ends the run).
    pub overflows: u64,
}

/// An MPI-like world of `size` ranks over a simulated fabric.
///
/// Clones share the same world.
pub struct Mpi {
    fabric: Fabric<MpiMsg>,
    /// Per-rank queue of received-but-unmatched messages.
    #[allow(clippy::type_complexity)]
    unexpected: Arc<Vec<Mutex<VecDeque<(NodeId, MpiMsg)>>>>,
    /// Bound on each unexpected queue; overflow aborts the run with
    /// [`RunError::QueueOverflow`] instead of growing silently.
    unexpected_cap: usize,
    /// `[stashed, peak, overflows]` — see [`UnexpectedStats`].
    unexpected_stats: Arc<[AtomicU64; 3]>,
}

impl Clone for Mpi {
    fn clone(&self) -> Self {
        Mpi {
            fabric: self.fabric.clone(),
            unexpected: self.unexpected.clone(),
            unexpected_cap: self.unexpected_cap,
            unexpected_stats: self.unexpected_stats.clone(),
        }
    }
}

impl Mpi {
    /// Create a world over a fresh fabric.
    pub fn new(cfg: FabricConfig) -> Self {
        let n = cfg.nodes as usize;
        Mpi {
            fabric: Fabric::new(cfg),
            unexpected: Arc::new((0..n).map(|_| Mutex::new(VecDeque::new())).collect()),
            unexpected_cap: MPI_UNEXPECTED_CAP,
            unexpected_stats: Arc::new([AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)]),
        }
    }

    /// Override the unexpected-queue bound (tests use small caps).
    pub fn with_unexpected_cap(mut self, cap: usize) -> Self {
        assert!(cap > 0, "unexpected-queue cap must be positive");
        self.unexpected_cap = cap;
        self
    }

    /// Number of ranks.
    pub fn size(&self) -> u32 {
        self.fabric.config().nodes
    }

    /// The communicator handle for rank `rank`. Each rank must be driven
    /// by a single simulation process.
    pub fn rank(&self, rank: NodeId) -> MpiRank {
        assert!(rank < self.size());
        MpiRank { rank, world: self.clone() }
    }

    /// Traffic counters.
    pub fn stats(&self) -> NetStats {
        self.fabric.stats()
    }

    /// Unexpected-queue pressure counters.
    pub fn unexpected_stats(&self) -> UnexpectedStats {
        UnexpectedStats {
            stashed: self.unexpected_stats[0].load(Relaxed),
            peak: self.unexpected_stats[1].load(Relaxed),
            overflows: self.unexpected_stats[2].load(Relaxed),
        }
    }
}

/// One rank's view of the world.
pub struct MpiRank {
    rank: NodeId,
    world: Mpi,
}

impl Clone for MpiRank {
    fn clone(&self) -> Self {
        MpiRank { rank: self.rank, world: self.world.clone() }
    }
}

impl MpiRank {
    /// This rank's index.
    pub fn rank(&self) -> NodeId {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> u32 {
        self.world.size()
    }

    /// Blocking tagged send of `size` modelled bytes (optionally with
    /// real data). Completes when the message is delivered — rendezvous
    /// semantics, like a large-message `MPI_Send`.
    pub async fn send(
        &self,
        dst: NodeId,
        tag: u32,
        size: u64,
        data: Option<Vec<u8>>,
    ) -> SimResult<()> {
        self.world
            .fabric
            .send(self.rank, dst, MPI_ENVELOPE_BYTES + size, MpiMsg { tag, size, data })
            .await
    }

    /// Blocking receive matching `source` and `tag` (`None` = any tag).
    /// Returns `(sender, message)`.
    pub async fn recv(&self, source: Source, tag: Option<u32>) -> SimResult<(NodeId, MpiMsg)> {
        let matches = |src: NodeId, m: &MpiMsg| {
            (match source {
                Source::Rank(r) => src == r,
                Source::Any => true,
            }) && tag.is_none_or(|t| m.tag == t)
        };
        // First scan the unexpected queue (FIFO within matches).
        {
            let mut q = self.world.unexpected[self.rank as usize].lock();
            if let Some(pos) = q.iter().position(|(s, m)| matches(*s, m)) {
                return Ok(q.remove(pos).expect("position just found"));
            }
        }
        // Then pull from the wire, stashing non-matching messages.
        loop {
            let (src, msg) = self.world.fabric.recv(self.rank).await?;
            if matches(src, &msg) {
                return Ok((src, msg));
            }
            let mut q = self.world.unexpected[self.rank as usize].lock();
            if q.len() >= self.world.unexpected_cap {
                self.world.unexpected_stats[2].fetch_add(1, Relaxed);
                return Err(abort_run(RunError::QueueOverflow {
                    queue: format!("mpi:rank{}:unexpected", self.rank),
                    capacity: self.world.unexpected_cap,
                }));
            }
            q.push_back((src, msg));
            self.world.unexpected_stats[0].fetch_add(1, Relaxed);
            self.world.unexpected_stats[1].fetch_max(q.len() as u64, Relaxed);
        }
    }

    /// Dissemination barrier: ⌈log₂ p⌉ rounds, no master hotspot.
    pub async fn barrier(&self, tag: u32) -> SimResult<()> {
        let p = self.size();
        if p == 1 {
            return Ok(());
        }
        let mut step = 1u32;
        let mut round = 0u32;
        while step < p {
            let dst = (self.rank + step) % p;
            let src = (self.rank + p - step) % p;
            // Send then receive; both are on disjoint ports so the
            // pattern cannot deadlock in this fabric model.
            self.send(dst, tag + round, 0, None).await?;
            let _ = self.recv(Source::Rank(src), Some(tag + round)).await?;
            step *= 2;
            round += 1;
        }
        Ok(())
    }

    /// Binomial-tree broadcast over the whole world.
    /// Returns the payload (the root passes it in; others receive it).
    pub async fn bcast(
        &self,
        root: NodeId,
        tag: u32,
        size: u64,
        data: Option<Vec<u8>>,
    ) -> SimResult<Option<Vec<u8>>> {
        let group: Vec<NodeId> = (0..self.size()).collect();
        self.bcast_group(&group, root, tag, size, data).await
    }

    /// Binomial-tree broadcast over an explicit `group` of ranks (used
    /// for SUMMA's row/column broadcasts). `root` must be in the group;
    /// every group member must call with identical arguments.
    pub async fn bcast_group(
        &self,
        group: &[NodeId],
        root: NodeId,
        tag: u32,
        size: u64,
        data: Option<Vec<u8>>,
    ) -> SimResult<Option<Vec<u8>>> {
        let p = group.len() as u32;
        let me =
            group.iter().position(|&r| r == self.rank).expect("calling rank not in bcast group")
                as u32;
        let rootpos =
            group.iter().position(|&r| r == root).expect("root not in bcast group") as u32;
        // Standard binomial tree over virtual ranks (root at 0): a rank
        // receives from the peer that differs in its lowest set bit,
        // then forwards to peers formed by setting each lower bit.
        let vrank = (me + p - rootpos) % p;
        let to_real = |v: u32| group[((v + rootpos) % p) as usize];
        let mut payload = data;
        let mut mask = 1u32;
        while mask < p {
            if vrank & mask != 0 {
                let parent = to_real(vrank ^ mask);
                let (_, msg) = self.recv(Source::Rank(parent), Some(tag)).await?;
                payload = msg.data;
                break;
            }
            mask <<= 1;
        }
        // `mask` is now our lowest set bit (or ≥ the group size for the
        // root); children are vrank | m for every m below it.
        mask >>= 1;
        while mask > 0 {
            let vchild = vrank | mask;
            if vchild < p && vchild != vrank {
                self.send(to_real(vchild), tag, size, payload.clone()).await?;
            }
            mask >>= 1;
        }
        Ok(payload)
    }

    /// Ring allgather: every rank contributes `size` modelled bytes and
    /// receives all contributions. Returns the gathered contributions in
    /// rank order (each `None` unless real data was supplied).
    pub async fn allgather(
        &self,
        tag: u32,
        size: u64,
        data: Option<Vec<u8>>,
    ) -> SimResult<Vec<Option<Vec<u8>>>> {
        let p = self.size();
        let mut slots: Vec<Option<Option<Vec<u8>>>> = vec![None; p as usize];
        slots[self.rank as usize] = Some(data.clone());
        if p == 1 {
            return Ok(slots.into_iter().map(|s| s.expect("own slot")).collect());
        }
        let right = (self.rank + 1) % p;
        let left = (self.rank + p - 1) % p;
        // At step s we forward the block that originated at rank - s.
        let mut carry = data;
        let mut carry_origin = self.rank;
        for _ in 0..p - 1 {
            self.send(right, tag, size, carry.clone()).await?;
            let (_, msg) = self.recv(Source::Rank(left), Some(tag)).await?;
            carry_origin = (carry_origin + p - 1) % p;
            carry = msg.data;
            slots[carry_origin as usize] = Some(carry.clone());
        }
        Ok(slots.into_iter().map(|s| s.expect("ring visits every origin")).collect())
    }

    /// Gather to `root`: everyone sends `size` bytes to the root, which
    /// receives them in rank order. Returns contributions at the root.
    pub async fn gather(
        &self,
        root: NodeId,
        tag: u32,
        size: u64,
        data: Option<Vec<u8>>,
    ) -> SimResult<Option<Vec<Option<Vec<u8>>>>> {
        if self.rank == root {
            let mut out: Vec<Option<Vec<u8>>> = vec![None; self.size() as usize];
            out[root as usize] = data;
            for r in 0..self.size() {
                if r == root {
                    continue;
                }
                let (_, msg) = self.recv(Source::Rank(r), Some(tag)).await?;
                out[r as usize] = msg.data;
            }
            Ok(Some(out))
        } else {
            self.send(root, tag, size, data).await?;
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompss_sim::{delay, now, Sim, SimDuration};
    use parking_lot::Mutex as PMutex;
    use std::sync::Arc;

    fn world(n: u32) -> Mpi {
        Mpi::new(FabricConfig { nodes: n, latency: SimDuration::from_micros(1), bandwidth: 1e9 })
    }

    /// Run `f(rank_handle)` on every rank as its own process.
    fn run_ranks<F, Fut>(mpi: &Mpi, f: F)
    where
        F: Fn(MpiRank) -> Fut + Send + Sync + 'static,
        Fut: std::future::Future<Output = ()> + Send + 'static,
    {
        let sim = Sim::new();
        let f = Arc::new(f);
        for r in 0..mpi.size() {
            let rank = mpi.rank(r);
            let f = f.clone();
            sim.spawn(format!("rank{r}"), async move { f(rank).await });
        }
        sim.run().unwrap();
    }

    #[test]
    fn send_recv_with_data() {
        let mpi = world(2);
        run_ranks(&mpi, |rank| async move {
            if rank.rank() == 0 {
                rank.send(1, 7, 3, Some(vec![1, 2, 3])).await.unwrap();
            } else {
                let (src, msg) = rank.recv(Source::Rank(0), Some(7)).await.unwrap();
                assert_eq!(src, 0);
                assert_eq!(msg.data, Some(vec![1, 2, 3]));
                assert_eq!(msg.size, 3);
            }
        });
    }

    #[test]
    fn recv_matches_tag_with_unexpected_queue() {
        let mpi = world(2);
        run_ranks(&mpi, |rank| async move {
            if rank.rank() == 0 {
                rank.send(1, 1, 0, Some(vec![1])).await.unwrap();
                rank.send(1, 2, 0, Some(vec![2])).await.unwrap();
            } else {
                // Receive tag 2 first although tag 1 arrives first.
                let (_, m2) = rank.recv(Source::Rank(0), Some(2)).await.unwrap();
                assert_eq!(m2.data, Some(vec![2]));
                let (_, m1) = rank.recv(Source::Rank(0), Some(1)).await.unwrap();
                assert_eq!(m1.data, Some(vec![1]));
            }
        });
    }

    #[test]
    fn recv_any_source() {
        let mpi = world(3);
        run_ranks(&mpi, |rank| async move {
            match rank.rank() {
                0 => {
                    let mut got = Vec::new();
                    for _ in 0..2 {
                        let (src, _) = rank.recv(Source::Any, Some(9)).await.unwrap();
                        got.push(src);
                    }
                    got.sort();
                    assert_eq!(got, vec![1, 2]);
                }
                _ => rank.send(0, 9, 10, None).await.unwrap(),
            }
        });
    }

    #[test]
    fn barrier_synchronises_all_ranks() {
        for p in [1u32, 2, 3, 4, 8] {
            let mpi = world(p);
            let after = Arc::new(PMutex::new(Vec::new()));
            let a = after.clone();
            run_ranks(&mpi, move |rank| {
                let a = a.clone();
                async move {
                    // Stagger arrival.
                    delay(SimDuration::from_micros(rank.rank() as u64 * 10)).await.unwrap();
                    rank.barrier(100).await.unwrap();
                    a.lock().push(now());
                }
            });
            let times = after.lock().clone();
            assert_eq!(times.len(), p as usize);
            let min = times.iter().min().unwrap();
            // All ranks leave the barrier no earlier than the last arrival.
            assert!(min.as_nanos() >= (p as u64 - 1) * 10_000, "p={p}");
        }
    }

    #[test]
    fn bcast_delivers_payload_to_all() {
        for p in [1u32, 2, 3, 4, 5, 8] {
            for root in [0, p - 1] {
                let mpi = world(p);
                run_ranks(&mpi, move |rank| async move {
                    let data = if rank.rank() == root { Some(vec![42, root as u8]) } else { None };
                    let out = rank.bcast(root, 5, 2, data).await.unwrap();
                    assert_eq!(out, Some(vec![42, root as u8]), "p={p} root={root}");
                });
            }
        }
    }

    #[test]
    fn bcast_group_works_on_subsets() {
        // Ranks {1, 3} form a group with root 3; others do nothing.
        let mpi = world(4);
        run_ranks(&mpi, |rank| async move {
            let group = [1u32, 3];
            if group.contains(&rank.rank()) {
                let data = if rank.rank() == 3 { Some(vec![7]) } else { None };
                let out = rank.bcast_group(&group, 3, 11, 1, data).await.unwrap();
                assert_eq!(out, Some(vec![7]));
            }
        });
    }

    #[test]
    fn allgather_collects_in_rank_order() {
        for p in [1u32, 2, 3, 4, 6] {
            let mpi = world(p);
            run_ranks(&mpi, move |rank| async move {
                let mine = vec![rank.rank() as u8];
                let all = rank.allgather(3, 1, Some(mine)).await.unwrap();
                let expect: Vec<_> = (0..p).map(|r| Some(vec![r as u8])).collect();
                assert_eq!(all, expect, "p={p}");
            });
        }
    }

    #[test]
    fn gather_collects_at_root() {
        let mpi = world(4);
        run_ranks(&mpi, |rank| async move {
            let out = rank.gather(2, 8, 1, Some(vec![rank.rank() as u8])).await.unwrap();
            if rank.rank() == 2 {
                let got = out.unwrap();
                assert_eq!(got, vec![Some(vec![0]), Some(vec![1]), Some(vec![2]), Some(vec![3])]);
            } else {
                assert!(out.is_none());
            }
        });
    }

    #[test]
    fn unexpected_queue_overflow_surfaces_as_run_error() {
        let mpi = world(2).with_unexpected_cap(2);
        let sim = Sim::new();
        let r0 = mpi.rank(0);
        sim.spawn("rank0", async move {
            // Four tag-1 messages the receiver never matches.
            for _ in 0..4 {
                let _ = r0.send(1, 1, 0, None).await;
            }
        });
        let r1 = mpi.rank(1);
        sim.spawn("rank1", async move {
            // Waits for tag 2, which never comes; the mismatched tag-1
            // flood must overflow the bounded queue, not grow forever.
            let _ = r1.recv(Source::Rank(0), Some(2)).await;
        });
        match sim.run() {
            Err(e @ ompss_sim::RunError::QueueOverflow { .. }) => {
                match &e {
                    ompss_sim::RunError::QueueOverflow { queue, capacity } => {
                        assert_eq!(queue, "mpi:rank1:unexpected");
                        assert_eq!(*capacity, 2);
                    }
                    _ => unreachable!(),
                }
                // The overflow is momentary pressure, not a defect: a
                // job server may re-run the spec.
                assert!(e.is_retryable(), "queue overflow must classify as retryable");
            }
            other => panic!("expected QueueOverflow, got {other:?}"),
        }
        // The pressure gauge reports the path to the abort: two stashes
        // filled the queue to its cap, the third triggered the overflow.
        let stats = mpi.unexpected_stats();
        assert_eq!(stats, UnexpectedStats { stashed: 2, peak: 2, overflows: 1 });
    }

    #[test]
    fn unexpected_stats_track_peak_without_overflow() {
        let mpi = world(2).with_unexpected_cap(8);
        run_ranks(&mpi, |rank| async move {
            if rank.rank() == 0 {
                for tag in [1u32, 2, 3] {
                    rank.send(1, tag, 0, None).await.unwrap();
                }
            } else {
                // Match in reverse order: tags 1 and 2 get stashed
                // while waiting for 3, then drain from the queue.
                for tag in [3u32, 2, 1] {
                    rank.recv(Source::Rank(0), Some(tag)).await.unwrap();
                }
            }
        });
        let stats = mpi.unexpected_stats();
        assert_eq!(stats.overflows, 0);
        assert_eq!(stats.stashed, 2);
        assert_eq!(stats.peak, 2);
    }

    #[test]
    fn bigger_payloads_take_longer() {
        let mpi = world(2);
        let t_small = Arc::new(PMutex::new(0u64));
        let ts = t_small.clone();
        run_ranks(&mpi, move |rank| {
            let ts = ts.clone();
            async move {
                if rank.rank() == 0 {
                    rank.send(1, 0, 1_000_000, None).await.unwrap();
                    *ts.lock() = now().as_nanos();
                } else {
                    rank.recv(Source::Rank(0), Some(0)).await.unwrap();
                }
            }
        });
        // ~1ms for 1MB at 1GB/s (plus envelope + latency).
        let t = *t_small.lock();
        assert!(t > 1_000_000 && t < 1_100_000, "t={t}");
    }
}
