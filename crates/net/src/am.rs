//! GASNet-style active messages.
//!
//! Nanos++'s cluster layer implements *all* control and data traffic as
//! active messages over GASNet (paper §III-D1). This module provides the
//! same vocabulary on top of the [`Fabric`](crate::Fabric): *short*
//! requests (header-only control), and *long* requests that carry a bulk
//! payload into the peer's memory. Each node owns an [`AmEndpoint`]; a
//! dispatcher process on every node [`poll`](AmEndpoint::poll)s it and
//! runs the handler logic — exactly the "slave images constantly waiting
//! for upcoming requests" structure of the paper.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

use ompss_sim::{Signal, SimResult};

use crate::fabric::{Fabric, FabricConfig, NetStats, NodeId};

/// Wire overhead of an active-message header, in bytes.
pub const AM_HEADER_BYTES: u64 = 64;

/// Counts of active messages by kind, across all endpoints.
#[derive(Debug, Default)]
struct AmCounters {
    shorts: AtomicU64,
    longs: AtomicU64,
    long_payload_bytes: AtomicU64,
}

/// Snapshot of [`AmNet`] message counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AmStats {
    /// Header-only (*short*) requests sent.
    pub shorts: u64,
    /// Bulk (*long*) requests sent.
    pub longs: u64,
    /// Total payload bytes carried by long requests (headers excluded).
    pub long_payload_bytes: u64,
}

/// An active-message network carrying handler arguments of type `M`.
///
/// Clones share the same fabric.
pub struct AmNet<M> {
    fabric: Fabric<M>,
    counters: Arc<AmCounters>,
}

impl<M> Clone for AmNet<M> {
    fn clone(&self) -> Self {
        AmNet { fabric: self.fabric.clone(), counters: self.counters.clone() }
    }
}

impl<M: Send + Clone + 'static> AmNet<M> {
    /// Build an AM network over a fresh fabric.
    pub fn new(cfg: FabricConfig) -> Self {
        AmNet { fabric: Fabric::new(cfg), counters: Arc::new(AmCounters::default()) }
    }

    /// Arm chaos injection on the underlying fabric (see
    /// [`Fabric::set_fault_plan`]).
    pub fn set_fault_plan(&self, plan: std::sync::Arc<ompss_sim::FaultPlan>) {
        self.fabric.set_fault_plan(plan);
    }

    /// The endpoint owned by `node`.
    pub fn endpoint(&self, node: NodeId) -> AmEndpoint<M> {
        AmEndpoint { node, net: self.clone() }
    }

    /// Number of nodes on the network.
    pub fn nodes(&self) -> u32 {
        self.fabric.config().nodes
    }

    /// Traffic counters (shared with the underlying fabric).
    pub fn stats(&self) -> NetStats {
        self.fabric.stats()
    }

    /// Active-message counts by kind.
    pub fn am_stats(&self) -> AmStats {
        AmStats {
            shorts: self.counters.shorts.load(Relaxed),
            longs: self.counters.longs.load(Relaxed),
            long_payload_bytes: self.counters.long_payload_bytes.load(Relaxed),
        }
    }

    /// A handle to the underlying fabric (the same shared object) so
    /// bulk data transfers issued elsewhere contend with AM control
    /// traffic for the same NIC ports.
    pub fn fabric_clone(&self) -> Fabric<M> {
        self.fabric.clone()
    }
}

/// One node's attachment to the AM network.
pub struct AmEndpoint<M> {
    node: NodeId,
    net: AmNet<M>,
}

impl<M> Clone for AmEndpoint<M> {
    fn clone(&self) -> Self {
        AmEndpoint { node: self.node, net: self.net.clone() }
    }
}

impl<M: Send + Clone + 'static> AmEndpoint<M> {
    /// The node that owns this endpoint.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Send a header-only control message; blocks for the wire time.
    pub async fn request_short(&self, dst: NodeId, msg: M) -> SimResult<()> {
        self.net.counters.shorts.fetch_add(1, Relaxed);
        self.net.fabric.send(self.node, dst, AM_HEADER_BYTES, msg).await
    }

    /// Send a control message accompanied by `payload` bytes of bulk
    /// data (a GASNet *long* request); blocks for the wire time of
    /// header + payload. The actual bytes are moved by the memory
    /// manager on the handler side; the fabric charges their transfer
    /// time and accounts them here.
    pub async fn request_long(&self, dst: NodeId, msg: M, payload: u64) -> SimResult<()> {
        self.count_long(payload);
        self.net.fabric.send(self.node, dst, AM_HEADER_BYTES + payload, msg).await
    }

    /// Asynchronous [`request_long`]: the transfer proceeds on a helper
    /// process; the returned signal is set at delivery time.
    pub fn request_long_detached(&self, dst: NodeId, msg: M, payload: u64) -> Signal {
        self.count_long(payload);
        self.net.fabric.send_detached(self.node, dst, AM_HEADER_BYTES + payload, msg)
    }

    /// Asynchronous [`request_short`].
    pub fn request_short_detached(&self, dst: NodeId, msg: M) -> Signal {
        self.net.counters.shorts.fetch_add(1, Relaxed);
        self.net.fabric.send_detached(self.node, dst, AM_HEADER_BYTES, msg)
    }

    fn count_long(&self, payload: u64) {
        self.net.counters.longs.fetch_add(1, Relaxed);
        self.net.counters.long_payload_bytes.fetch_add(payload, Relaxed);
    }

    /// Park until the next request addressed to this node arrives;
    /// returns `(sender, handler argument)`. This is the dispatcher
    /// loop's blocking point.
    pub async fn poll(&self) -> SimResult<(NodeId, M)> {
        self.net.fabric.recv(self.node).await
    }

    /// Non-blocking poll.
    pub fn try_poll(&self) -> Option<(NodeId, M)> {
        self.net.fabric.try_recv(self.node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompss_sim::{delay, now, Sim, SimDuration};

    fn net() -> AmNet<&'static str> {
        AmNet::new(FabricConfig { nodes: 3, latency: SimDuration::from_micros(1), bandwidth: 1e9 })
    }

    #[test]
    fn short_request_costs_header_only() {
        let sim = Sim::new();
        let n = net();
        let ep0 = n.endpoint(0);
        let ep1 = n.endpoint(1);
        sim.spawn("master", async move {
            ep0.request_short(1, "exec").await.unwrap();
            // 1 µs latency + 64B / 1GB/s = 64ns
            assert_eq!(now().as_nanos(), 1_064);
        });
        sim.spawn("slave", async move {
            let (src, msg) = ep1.poll().await.unwrap();
            assert_eq!((src, msg), (0, "exec"));
        });
        sim.run().unwrap();
    }

    #[test]
    fn long_request_charges_payload() {
        let sim = Sim::new();
        let n = net();
        let ep0 = n.endpoint(0);
        let ep2 = n.endpoint(2);
        sim.spawn("master", async move {
            ep0.request_long(2, "data", 1_000_000).await.unwrap();
            // 1 µs + (64 + 1e6) / 1e9 s ≈ 1µs + 1.000064 ms
            assert_eq!(now().as_nanos(), 1_000 + 1_000_064);
        });
        sim.spawn("slave", async move {
            assert_eq!(ep2.poll().await.unwrap(), (0, "data"));
        });
        sim.run().unwrap();
    }

    #[test]
    fn detached_requests_overlap_with_compute() {
        let sim = Sim::new();
        let n = net();
        let ep0 = n.endpoint(0);
        let ep1 = n.endpoint(1);
        sim.spawn("master", async move {
            let s = ep0.request_long_detached(1, "bulk", 1_000_000);
            // Master "computes" while the payload flies.
            delay(SimDuration::from_millis(2)).await.unwrap();
            s.wait().await.unwrap();
            assert_eq!(now().as_nanos(), 2_000_000, "transfer hid under compute");
        });
        sim.spawn("slave", async move {
            let _ = ep1.poll().await.unwrap();
            assert!(now().as_nanos() < 2_000_000);
        });
        sim.run().unwrap();
    }

    #[test]
    fn dispatcher_loop_handles_many_requests() {
        let sim = Sim::new();
        let n = net();
        let ep0 = n.endpoint(0);
        let ep1 = n.endpoint(1);
        sim.process("dispatcher").daemon().spawn(async move {
            let mut seen = 0;
            while let Ok((_, _msg)) = ep1.poll().await {
                seen += 1;
                assert!(seen <= 10);
            }
        });
        sim.spawn("master", async move {
            for _ in 0..10 {
                ep0.request_short(1, "tick").await.unwrap();
            }
        });
        sim.run().unwrap();
    }

    #[test]
    fn stats_visible_through_am_layer() {
        let sim = Sim::new();
        let n = net();
        let ep0 = n.endpoint(0);
        let n2 = n.clone();
        sim.spawn("p", async move {
            ep0.request_long(1, "x", 936).await.unwrap();
            let st = n2.stats();
            assert_eq!(st.bytes_total, 1000);
            assert_eq!(st.messages, 1);
            assert_eq!(n2.am_stats(), AmStats { shorts: 0, longs: 1, long_payload_bytes: 936 });
        });
        sim.process("sink").daemon().spawn({
            let ep1 = n.endpoint(1);
            async move { while ep1.poll().await.is_ok() {} }
        });
        sim.run().unwrap();
    }
}
