//! Heartbeat/lease failure detection for whole-node loss.
//!
//! The master probes every slave on a fixed virtual-time period and
//! each reply renews that slave's *lease*. A node whose lease has gone
//! unrenewed for longer than the configured window is declared dead —
//! in the simulator this detection is exact (a live slave always
//! answers within two one-way latencies), so a lease expiry is proof of
//! death, not a suspicion. This module is pure bookkeeping on
//! [`SimTime`] values; the runtime owns the ping/pong processes and
//! calls [`LeaseTracker::beat`] / [`LeaseTracker::expired`] from them.
//! Disarmed runs construct none of this and send nothing.

use ompss_sim::{SimDuration, SimTime};

use crate::fabric::NodeId;

/// Virtual-time parameters of the lease protocol.
#[derive(Debug, Clone, Copy)]
pub struct LeaseConfig {
    /// Interval between liveness probes to each tracked node.
    pub period: SimDuration,
    /// A node whose last renewal is older than this is declared dead.
    /// Must comfortably exceed `period` plus the round-trip latency or
    /// a healthy node can be declared dead between probes.
    pub window: SimDuration,
}

/// Per-node lease state, owned by the master's lease-monitor process.
#[derive(Debug)]
pub struct LeaseTracker {
    cfg: LeaseConfig,
    /// Tracked nodes in registration order.
    nodes: Vec<NodeId>,
    /// Last renewal instant per tracked node (same order as `nodes`).
    last_seen: Vec<SimTime>,
    /// Nodes already declared dead (never re-declared).
    declared: Vec<bool>,
    /// Probe periods that elapsed without a renewal, summed over nodes —
    /// the `heartbeats_missed` observability counter's source.
    missed: u64,
}

impl LeaseTracker {
    /// Track `nodes`, all leases freshly renewed at `now`.
    pub fn new(cfg: LeaseConfig, nodes: Vec<NodeId>, now: SimTime) -> Self {
        let n = nodes.len();
        LeaseTracker { cfg, nodes, last_seen: vec![now; n], declared: vec![false; n], missed: 0 }
    }

    /// The protocol parameters.
    pub fn config(&self) -> LeaseConfig {
        self.cfg
    }

    /// Start tracking `node` with a lease freshly renewed at `now` — a
    /// node joining the cluster mid-run. Ignored if already tracked
    /// (including already-declared nodes: death is final for the run).
    pub fn track(&mut self, node: NodeId, now: SimTime) {
        if self.nodes.contains(&node) {
            return;
        }
        self.nodes.push(node);
        self.last_seen.push(now);
        self.declared.push(false);
    }

    /// Stop tracking `node` — a graceful drain's departure, not a
    /// death: the lease is retired without ever being declared expired
    /// and the node no longer counts toward missed heartbeats. Ignored
    /// if untracked.
    pub fn untrack(&mut self, node: NodeId) {
        if let Some(i) = self.nodes.iter().position(|&n| n == node) {
            self.nodes.remove(i);
            self.last_seen.remove(i);
            self.declared.remove(i);
        }
    }

    /// Is `node` currently tracked? Declared-dead nodes stay tracked
    /// (death is an outcome of the lease); drained nodes do not
    /// (departure retires it).
    pub fn is_tracked(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// Renew `node`'s lease at `now` (a heartbeat reply arrived).
    /// Renewals from untracked or already-declared nodes are ignored.
    pub fn beat(&mut self, node: NodeId, now: SimTime) {
        if let Some(i) = self.nodes.iter().position(|&n| n == node) {
            if !self.declared[i] && now > self.last_seen[i] {
                self.last_seen[i] = now;
            }
        }
    }

    /// Check every lease at `now`: nodes silent for more than one probe
    /// period count a missed heartbeat; nodes silent beyond the window
    /// are declared dead and returned (each node at most once, in
    /// registration order).
    pub fn expired(&mut self, now: SimTime) -> Vec<NodeId> {
        let mut dead = Vec::new();
        for i in 0..self.nodes.len() {
            if self.declared[i] {
                continue;
            }
            let silent = now - self.last_seen[i];
            if silent > self.cfg.period {
                self.missed += 1;
            }
            if silent > self.cfg.window {
                self.declared[i] = true;
                dead.push(self.nodes[i]);
            }
        }
        dead
    }

    /// Probe periods that elapsed without a renewal, summed over nodes.
    pub fn missed(&self) -> u64 {
        self.missed
    }

    /// Has `node` been declared dead?
    pub fn is_declared_dead(&self, node: NodeId) -> bool {
        self.nodes.iter().position(|&n| n == node).is_some_and(|i| self.declared[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LeaseConfig {
        LeaseConfig {
            period: SimDuration::from_micros(200),
            window: SimDuration::from_micros(1000),
        }
    }

    fn us(n: u64) -> SimTime {
        SimTime(n * 1_000)
    }

    #[test]
    fn renewed_leases_never_expire() {
        let mut t = LeaseTracker::new(cfg(), vec![1, 2], us(0));
        for k in 1..=20 {
            t.beat(1, us(k * 200));
            t.beat(2, us(k * 200));
            assert!(t.expired(us(k * 200)).is_empty());
        }
        assert_eq!(t.missed(), 0);
        assert!(!t.is_declared_dead(1));
    }

    #[test]
    fn silent_node_misses_then_dies_once() {
        let mut t = LeaseTracker::new(cfg(), vec![1, 2], us(0));
        // Node 2 keeps renewing; node 1 goes silent at t=0.
        t.beat(2, us(400));
        assert!(t.expired(us(400)).is_empty(), "within the window: alive");
        assert!(t.missed() >= 1, "but the silence was counted");
        t.beat(2, us(1200));
        assert_eq!(t.expired(us(1200)), vec![1], "window exceeded: declared dead");
        assert!(t.is_declared_dead(1));
        assert!(!t.is_declared_dead(2));
        // Never re-declared, and late beats from the dead are ignored.
        t.beat(1, us(1400));
        assert!(t.expired(us(1400)).is_empty());
        assert!(t.is_declared_dead(1));
    }

    #[test]
    fn tracked_joiner_lives_by_its_own_lease() {
        // A node joining mid-run starts fresh at its join instant, not
        // at the tracker's birth: silence *before* the join must not
        // count against it.
        let mut t = LeaseTracker::new(cfg(), vec![1], us(0));
        assert!(!t.is_tracked(2));
        t.beat(1, us(1900));
        t.track(2, us(2000));
        assert!(t.is_tracked(2));
        assert!(t.expired(us(2100)).is_empty(), "joiner's lease is fresh at the join");
        // ...but from the join on it is a full citizen of the protocol.
        t.beat(1, us(3000));
        assert_eq!(t.expired(us(3100)), vec![2], "a silent joiner dies like anyone else");
    }

    #[test]
    fn untracked_drainer_never_expires_and_track_is_idempotent() {
        let mut t = LeaseTracker::new(cfg(), vec![1, 2], us(0));
        t.untrack(1);
        assert!(!t.is_tracked(1));
        t.beat(2, us(1500));
        assert!(t.expired(us(1500)).is_empty(), "a drained node is not a dead node");
        assert_eq!(t.missed(), 0, "departure retires the lease without missed beats");
        // Re-tracking an already-tracked node is a no-op, and
        // untracking an unknown node never panics.
        t.track(2, us(1600));
        t.untrack(7);
        assert!(t.is_tracked(2));
        assert!(!t.is_declared_dead(1));
    }

    #[test]
    fn beats_ignore_untracked_nodes_and_stale_times() {
        let mut t = LeaseTracker::new(cfg(), vec![1], us(100));
        t.beat(7, us(500)); // untracked: no panic, no effect
        t.beat(1, us(50)); // stale (before last renewal): ignored
        assert_eq!(t.expired(us(1200)), vec![1], "stale beat must not extend the lease");
    }
}
