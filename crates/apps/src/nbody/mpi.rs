//! MPI+CUDA N-Body: each rank owns `n / p` bodies; every iteration
//! allgathers the positions (the all-to-all the paper describes), ships
//! them to the GPU, advances its bodies, and reads them back.

use ompss_cudasim::{CopyDir, GpuDevice, GpuSpec};
use ompss_net::FabricConfig;

use crate::common::{gflops, run_mpi_ranks, AppRun, PhaseTimer};

use super::{step_block, NbodyParams};
use ompss_sim::now;

/// Run the MPI+CUDA version on `nodes` single-GPU ranks.
pub fn run(nodes: u32, spec: GpuSpec, fabric: FabricConfig, p: NbodyParams) -> AppRun {
    assert_eq!(p.n % nodes as usize, 0);
    let local_n = p.n / nodes as usize;
    let results = run_mpi_ranks(nodes, fabric, move |rank| {
        let spec = spec.clone();
        async move {
            let start = rank.rank() as usize * local_n;
            let (mut my_pos, mut my_vel) = if p.real {
                let mut ps = Vec::with_capacity(4 * local_n);
                let mut vs = Vec::with_capacity(4 * local_n);
                for i in 0..local_n {
                    ps.extend_from_slice(&NbodyParams::init_pos(start + i));
                    vs.extend_from_slice(&NbodyParams::init_vel(start + i));
                }
                (ps, vs)
            } else {
                (Vec::new(), Vec::new())
            };
            let dev = GpuDevice::new(format!("rank{}", rank.rank()), spec.clone());
            let local_bytes = (4 * local_n * 4) as u64;

            rank.barrier(1).await.unwrap();
            let timer = PhaseTimer::start(now());
            dev.memcpy(CopyDir::H2D, local_bytes, false, None).await.unwrap(); // velocities
            for it in 0..p.iters {
                // All-to-all: gather every rank's current positions.
                let payload = if p.real {
                    let mut buf = Vec::with_capacity(my_pos.len() * 4);
                    for v in &my_pos {
                        buf.extend_from_slice(&v.to_le_bytes());
                    }
                    Some(buf)
                } else {
                    None
                };
                let gathered = rank.allgather(100 + it as u32, local_bytes, payload).await.unwrap();
                let pos_all: Vec<f32> = if p.real {
                    gathered
                        .iter()
                        .flat_map(|part| {
                            part.as_ref()
                                .expect("real payload")
                                .chunks_exact(4)
                                .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                        })
                        .collect()
                } else {
                    Vec::new()
                };
                // Ship the full positions to the GPU and advance my bodies.
                dev.memcpy(CopyDir::H2D, local_bytes * nodes as u64, false, None).await.unwrap();
                dev.launch(p.kernel_cost_scaled(local_n), None).await.unwrap();
                if p.real {
                    let mut out = vec![0.0f32; 4 * local_n];
                    step_block(&pos_all, start, local_n, &mut my_vel, &mut out);
                    my_pos = out;
                }
                // New positions back to the host for the next allgather.
                dev.memcpy(CopyDir::D2H, local_bytes, false, None).await.unwrap();
            }
            let elapsed = timer.stop(now());
            (elapsed, my_pos)
        }
    });

    let elapsed = results.iter().map(|(e, _)| *e).max().unwrap();
    let check = if p.real {
        let mut all = Vec::with_capacity(4 * p.n);
        for (_, part) in &results {
            all.extend_from_slice(part);
        }
        Some(all)
    } else {
        None
    };
    AppRun { elapsed, metric: gflops(p.flops(), elapsed), check, report: None }
}
