//! All-pairs N-Body simulation (§IV-A2): 20 000 bodies, 10 time steps,
//! the NVIDIA-example kernel shape. Every body's force sums over *all*
//! bodies, so after each step the new positions must reach every GPU —
//! the all-to-all redistribution that dominates this benchmark's
//! communication.
//!
//! Positions are stored as interleaved `(x, y, z, mass)` float4s; the
//! kernel iterates partners in global index order so every version is
//! bit-comparable.

pub mod cuda;
pub mod mpi;
pub mod ompss;
pub mod serial;

use ompss_cudasim::KernelCost;

/// Integration time step.
pub const DT: f32 = 0.01;
/// Softening factor ε².
pub const EPS2: f32 = 0.05;
/// Interaction cost in flops (the conventional all-pairs count).
pub const FLOPS_PER_INTERACTION: f64 = 20.0;

/// N-Body workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct NbodyParams {
    /// Number of bodies.
    pub n: usize,
    /// Number of body blocks (task granularity).
    pub blocks: usize,
    /// Simulated time steps.
    pub iters: usize,
    /// Real data (validation) or phantom (paper scale).
    pub real: bool,
}

impl NbodyParams {
    /// The paper's workload: 20 000 bodies, 10 iterations.
    pub fn paper() -> Self {
        NbodyParams { n: 20_000, blocks: 16, iters: 10, real: false }
    }

    /// A small validated workload.
    pub fn validate() -> Self {
        NbodyParams { n: 256, blocks: 4, iters: 3, real: true }
    }

    /// Bodies per block.
    pub fn block_len(&self) -> usize {
        assert_eq!(self.n % self.blocks, 0);
        self.n / self.blocks
    }

    /// Floats per block of positions (float4 per body).
    pub fn block_floats(&self) -> usize {
        self.block_len() * 4
    }

    /// Total flops over all iterations.
    pub fn flops(&self) -> f64 {
        FLOPS_PER_INTERACTION * (self.n as f64) * (self.n as f64) * self.iters as f64
    }

    /// Kernel cost of one block step: all-pairs over `block_len × n`.
    pub fn kernel_cost(&self) -> KernelCost {
        self.kernel_cost_scaled(self.block_len())
    }

    /// Kernel cost of advancing `count` bodies against all `n`.
    pub fn kernel_cost_scaled(&self, count: usize) -> KernelCost {
        KernelCost::compute_bound(FLOPS_PER_INTERACTION * count as f64 * self.n as f64, 0.5)
    }

    /// Deterministic initial position/mass of body `i`.
    pub fn init_pos(i: usize) -> [f32; 4] {
        let f = i as f32;
        [
            (f * 0.37).sin() * 10.0,
            (f * 0.71).cos() * 10.0,
            (f * 0.13).sin() * 10.0,
            1.0 + (i % 5) as f32 * 0.25,
        ]
    }

    /// Initial velocity of body `i`.
    pub fn init_vel(i: usize) -> [f32; 4] {
        let f = i as f32;
        [(f * 0.19).cos() * 0.1, (f * 0.23).sin() * 0.1, (f * 0.29).cos() * 0.1, 0.0]
    }
}

/// Advance one block of bodies one time step.
///
/// `pos_all` is the full float4 position array (all bodies, global
/// order); `start..start + count` is this block's body range; `vel` and
/// `pos_out` are the block's velocity and output-position float4s.
pub fn step_block(
    pos_all: &[f32],
    start: usize,
    count: usize,
    vel: &mut [f32],
    pos_out: &mut [f32],
) {
    let n = pos_all.len() / 4;
    for i in 0..count {
        let gi = start + i;
        let (xi, yi, zi) = (pos_all[4 * gi], pos_all[4 * gi + 1], pos_all[4 * gi + 2]);
        let (mut ax, mut ay, mut az) = (0.0f32, 0.0f32, 0.0f32);
        for j in 0..n {
            let dx = pos_all[4 * j] - xi;
            let dy = pos_all[4 * j + 1] - yi;
            let dz = pos_all[4 * j + 2] - zi;
            let d2 = dx * dx + dy * dy + dz * dz + EPS2;
            let inv = 1.0 / d2.sqrt();
            let s = pos_all[4 * j + 3] * inv * inv * inv;
            ax += dx * s;
            ay += dy * s;
            az += dz * s;
        }
        vel[4 * i] += ax * DT;
        vel[4 * i + 1] += ay * DT;
        vel[4 * i + 2] += az * DT;
        pos_out[4 * i] = xi + vel[4 * i] * DT;
        pos_out[4 * i + 1] = yi + vel[4 * i + 1] * DT;
        pos_out[4 * i + 2] = zi + vel[4 * i + 2] * DT;
        pos_out[4 * i + 3] = pos_all[4 * gi + 3];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_and_flops() {
        let p = NbodyParams { n: 64, blocks: 4, iters: 2, real: true };
        assert_eq!(p.block_len(), 16);
        assert_eq!(p.block_floats(), 64);
        assert_eq!(p.flops(), 20.0 * 64.0 * 64.0 * 2.0);
    }

    #[test]
    fn step_block_conserves_mass_and_moves_bodies() {
        let n = 8;
        let mut pos = Vec::new();
        let mut vel = Vec::new();
        for i in 0..n {
            pos.extend_from_slice(&NbodyParams::init_pos(i));
            vel.extend_from_slice(&NbodyParams::init_vel(i));
        }
        let mut out = vec![0.0f32; 4 * n];
        let mut v = vel.clone();
        step_block(&pos, 0, n, &mut v, &mut out);
        for i in 0..n {
            assert_eq!(out[4 * i + 3], pos[4 * i + 3], "mass preserved");
            assert_ne!(out[4 * i], pos[4 * i], "x moved");
        }
    }

    #[test]
    fn blocked_equals_monolithic() {
        let n = 16;
        let mut pos = Vec::new();
        let mut vel = Vec::new();
        for i in 0..n {
            pos.extend_from_slice(&NbodyParams::init_pos(i));
            vel.extend_from_slice(&NbodyParams::init_vel(i));
        }
        // Monolithic step.
        let mut v1 = vel.clone();
        let mut out1 = vec![0.0f32; 4 * n];
        step_block(&pos, 0, n, &mut v1, &mut out1);
        // Two half blocks.
        let mut v2 = vel.clone();
        let mut out2 = vec![0.0f32; 4 * n];
        let (va, vb) = v2.split_at_mut(4 * n / 2);
        let (oa, ob) = out2.split_at_mut(4 * n / 2);
        step_block(&pos, 0, n / 2, va, oa);
        step_block(&pos, n / 2, n / 2, vb, ob);
        assert_eq!(out1, out2);
    }
}
