//! OmpSs N-Body: one task per body block per iteration, reading *all*
//! position blocks (`input` × blocks), updating its velocities
//! (`inout`) and producing its slice of the next positions (`output`).
//! The all-to-all redistribution the paper describes is exactly what
//! the coherence layer does to satisfy those input clauses on every
//! GPU each iteration.

use ompss_mem::{cast_slice, track};
use ompss_runtime::{Device, RunError, Runtime, RuntimeConfig, TaskSpec};

use crate::common::{gflops, unwrap_run, AppRun, PhaseTimer};

use super::{step_block, NbodyParams};

/// Run the OmpSs version.
pub fn run(cfg: RuntimeConfig, p: NbodyParams) -> AppRun {
    unwrap_run(try_run(cfg, p))
}

/// Like [`run`], but surfaces deadlocks and executor failures as a
/// [`RunError`] value instead of panicking.
pub fn try_run(cfg: RuntimeConfig, p: NbodyParams) -> Result<AppRun, RunError> {
    let out = std::sync::Arc::new(parking_lot::Mutex::new(None));
    let out2 = out.clone();
    let rep = Runtime::try_run(cfg, move |omp| async move {
        // One position array per round: each iteration produces a fresh
        // snapshot that must be distributed to all GPUs (the paper's
        // "data from the previous round"), while older rounds linger as
        // dirty device copies until the cache writes them back.
        let pos: Vec<_> = (0..=p.iters).map(|_| omp.alloc_array::<f32>(4 * p.n)).collect();
        let vel = omp.alloc_array::<f32>(4 * p.n);
        if p.real {
            let mut ps = Vec::with_capacity(4 * p.n);
            let mut vs = Vec::with_capacity(4 * p.n);
            for i in 0..p.n {
                ps.extend_from_slice(&NbodyParams::init_pos(i));
                vs.extend_from_slice(&NbodyParams::init_vel(i));
            }
            omp.write_array(&pos[0], 0, &ps);
            omp.write_array(&vel, 0, &vs);
        }

        let bl = p.block_len();
        let bf = p.block_floats();
        let timer = PhaseTimer::start(omp.now());
        for it in 0..p.iters {
            let (cur, nxt) = (pos[it], pos[it + 1]);
            for b in 0..p.blocks {
                let mut spec =
                    TaskSpec::new("nbody_step").device(Device::Cuda).cost_gpu(p.kernel_cost());
                for src in 0..p.blocks {
                    spec = spec.input(cur.region(src * bf..(src + 1) * bf));
                }
                let rvel = vel.region(b * bf..(b + 1) * bf);
                let rout = nxt.region(b * bf..(b + 1) * bf);
                spec = spec.inout(rvel).output(rout);
                let blocks = p.blocks;
                omp.submit(spec.body(move |v| {
                    for src in 0..blocks {
                        track::record_read(cur.region(src * bf..(src + 1) * bf));
                    }
                    track::record_read(rvel);
                    track::record_write(rvel);
                    track::record_write(rout);
                    // Reassemble the full position array from the block
                    // views (the device kernel reads them in place; the
                    // functional model concatenates).
                    let mut pos_all = Vec::with_capacity(blocks * bf);
                    for view in v.iter().take(blocks) {
                        pos_all.extend_from_slice(cast_slice::<f32>(view));
                    }
                    let (velv, outv) = v[blocks..].split_first_mut().unwrap();
                    ompss_runtime::task_views!(outv => out: f32);
                    step_block(&pos_all, b * bl, bl, ompss_mem::cast_slice_mut(velv), out);
                }))
                .await;
            }
        }
        omp.taskwait_noflush().await;
        let elapsed = timer.stop(omp.now());
        omp.taskwait().await;

        let check = if p.real { omp.read_array(&pos[p.iters], 0..4 * p.n) } else { None };
        *out2.lock() =
            Some(AppRun { elapsed, metric: gflops(p.flops(), elapsed), check, report: None });
    })?;
    let mut r = out.lock().take().unwrap();
    r.report = Some(rep);
    Ok(r)
}
