//! Plain CUDA N-Body: one GPU, the NVIDIA-example kernel shape with
//! explicit transfers and a device-side double buffer.

use ompss_cudasim::{CopyDir, GpuDevice, GpuSpec};

use crate::common::{gflops, run_single, AppRun, PhaseTimer};

use super::{step_block, NbodyParams};
use ompss_sim::now;

/// Run the CUDA version on one simulated GPU.
pub fn run(spec: GpuSpec, p: NbodyParams) -> AppRun {
    run_single("cuda-nbody", async move {
        let (mut pos, mut vel) = if p.real {
            let mut ps = Vec::with_capacity(4 * p.n);
            let mut vs = Vec::with_capacity(4 * p.n);
            for i in 0..p.n {
                ps.extend_from_slice(&NbodyParams::init_pos(i));
                vs.extend_from_slice(&NbodyParams::init_vel(i));
            }
            (ps, vs)
        } else {
            (Vec::new(), Vec::new())
        };
        let dev = GpuDevice::new("gpu0", spec);
        let pos_bytes = (4 * p.n * 4) as u64;

        let timer = PhaseTimer::start(now());
        dev.memcpy(CopyDir::H2D, pos_bytes, false, None).await.unwrap(); // positions
        dev.memcpy(CopyDir::H2D, pos_bytes, false, None).await.unwrap(); // velocities
        let mut next = vec![0.0f32; if p.real { 4 * p.n } else { 0 }];
        for _ in 0..p.iters {
            for b in 0..p.blocks {
                dev.launch(p.kernel_cost(), None).await.unwrap();
                if p.real {
                    let bl = p.block_len();
                    let vr = &mut vel[4 * b * bl..4 * (b + 1) * bl];
                    let or = &mut next[4 * b * bl..4 * (b + 1) * bl];
                    step_block(&pos, b * bl, bl, vr, or);
                }
            }
            if p.real {
                std::mem::swap(&mut pos, &mut next);
            }
        }
        dev.memcpy(CopyDir::D2H, pos_bytes, false, None).await.unwrap();
        let elapsed = timer.stop(now());

        AppRun {
            elapsed,
            metric: gflops(p.flops(), elapsed),
            check: if p.real { Some(pos) } else { None },
            report: None,
        }
    })
}
