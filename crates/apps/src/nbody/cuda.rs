//! Plain CUDA N-Body: one GPU, the NVIDIA-example kernel shape with
//! explicit transfers and a device-side double buffer.

use ompss_cudasim::{CopyDir, GpuDevice, GpuSpec};

use crate::common::{gflops, run_single, AppRun, PhaseTimer};

use super::{step_block, NbodyParams};

/// Run the CUDA version on one simulated GPU.
pub fn run(spec: GpuSpec, p: NbodyParams) -> AppRun {
    run_single("cuda-nbody", move |ctx| {
        let (mut pos, mut vel) = if p.real {
            let mut ps = Vec::with_capacity(4 * p.n);
            let mut vs = Vec::with_capacity(4 * p.n);
            for i in 0..p.n {
                ps.extend_from_slice(&NbodyParams::init_pos(i));
                vs.extend_from_slice(&NbodyParams::init_vel(i));
            }
            (ps, vs)
        } else {
            (Vec::new(), Vec::new())
        };
        let dev = GpuDevice::new("gpu0", spec);
        let pos_bytes = (4 * p.n * 4) as u64;

        let timer = PhaseTimer::start(ctx.now());
        dev.memcpy(ctx, CopyDir::H2D, pos_bytes, false, None).unwrap(); // positions
        dev.memcpy(ctx, CopyDir::H2D, pos_bytes, false, None).unwrap(); // velocities
        let mut next = vec![0.0f32; if p.real { 4 * p.n } else { 0 }];
        for _ in 0..p.iters {
            for b in 0..p.blocks {
                dev.launch(ctx, p.kernel_cost(), None).unwrap();
                if p.real {
                    let bl = p.block_len();
                    let vr = &mut vel[4 * b * bl..4 * (b + 1) * bl];
                    let or = &mut next[4 * b * bl..4 * (b + 1) * bl];
                    step_block(&pos, b * bl, bl, vr, or);
                }
            }
            if p.real {
                std::mem::swap(&mut pos, &mut next);
            }
        }
        dev.memcpy(ctx, CopyDir::D2H, pos_bytes, false, None).unwrap();
        let elapsed = timer.stop(ctx.now());

        AppRun {
            elapsed,
            metric: gflops(p.flops(), elapsed),
            check: if p.real { Some(pos) } else { None },
            report: None,
        }
    })
}
