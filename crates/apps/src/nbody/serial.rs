//! Serial N-Body — reference and LoC baseline.

use super::{step_block, NbodyParams};

/// Simulate `iters` steps serially; returns the final positions
/// (float4 interleaved).
pub fn run(p: NbodyParams) -> Vec<f32> {
    let mut pos = Vec::with_capacity(4 * p.n);
    let mut vel = Vec::with_capacity(4 * p.n);
    for i in 0..p.n {
        pos.extend_from_slice(&NbodyParams::init_pos(i));
        vel.extend_from_slice(&NbodyParams::init_vel(i));
    }
    let mut next = vec![0.0f32; 4 * p.n];
    for _ in 0..p.iters {
        let bl = p.block_len();
        for b in 0..p.blocks {
            let vr = &mut vel[4 * b * bl..4 * (b + 1) * bl];
            let or = &mut next[4 * b * bl..4 * (b + 1) * bl];
            step_block(&pos, b * bl, bl, vr, or);
        }
        std::mem::swap(&mut pos, &mut next);
    }
    pos
}
