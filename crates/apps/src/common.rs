//! Shared harness plumbing for the non-OmpSs application versions.
//!
//! The CUDA and MPI+CUDA baselines are ordinary "programs": one process
//! (CUDA) or one process per rank (MPI) driving simulated devices and a
//! simulated fabric. The helpers here are the `main()` scaffolding all
//! versions share — they are deliberately *outside* the per-version
//! source files so that Table I's line counting compares only the code
//! a programmer writes differently per model.

use std::future::Future;
use std::sync::Arc;

use parking_lot::Mutex;

use ompss_net::{FabricConfig, Mpi, MpiRank};
use ompss_sim::{Sim, SimDuration, SimTime};

/// Outcome of one application run.
#[derive(Debug, Clone)]
pub struct AppRun {
    /// Virtual time of the measured phase.
    pub elapsed: SimDuration,
    /// The figure's y-axis metric (GFLOPS, GB/s or Mpixels/s,
    /// depending on the app).
    pub metric: f64,
    /// Validation payload (final output) when running with real data;
    /// `None` for phantom paper-scale runs.
    pub check: Option<Vec<f32>>,
    /// Full runtime report (OmpSs versions only).
    pub report: Option<ompss_runtime::RunReport>,
}

/// Unwrap a fallible OmpSs app run, panicking with the same messages
/// [`Runtime::run`] would have produced. The `run` entry point of each
/// OmpSs version is `try_run` plus this, so harnesses that want the
/// failure as a value (schedule exploration, model checking) share one
/// program body with the crash-on-failure callers.
///
/// [`Runtime::run`]: ompss_runtime::Runtime::run
pub fn unwrap_run(result: Result<AppRun, ompss_runtime::RunError>) -> AppRun {
    use ompss_runtime::RunError;
    match result {
        Ok(r) => r,
        Err(RunError::Deadlock { blocked }) => {
            let names: Vec<&str> = blocked.iter().map(|p| p.name.as_str()).collect();
            panic!("runtime deadlock; stuck: {names:?}")
        }
        Err(RunError::ProcessPanic(name, msg)) => panic!("process '{name}' panicked: {msg}"),
        Err(e) => panic!("run failed: {e}"),
    }
}

/// Run `fut` as the only process of a fresh simulation and return its
/// result.
pub fn run_single<R: Send + 'static>(
    name: &str,
    fut: impl Future<Output = R> + Send + 'static,
) -> R {
    let out: Arc<Mutex<Option<R>>> = Arc::new(Mutex::new(None));
    let out2 = out.clone();
    let sim = Sim::new();
    sim.spawn(name.to_string(), async move {
        *out2.lock() = Some(fut.await);
    });
    sim.run().expect("simulation failed");
    let r = out.lock().take().expect("process completed");
    r
}

/// Run one process per MPI rank over a fresh fabric; returns each
/// rank's result in rank order.
pub fn run_mpi_ranks<R, F, Fut>(nodes: u32, fabric: FabricConfig, f: F) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(MpiRank) -> Fut + Send + Sync + 'static,
    Fut: Future<Output = R> + Send + 'static,
{
    assert_eq!(fabric.nodes, nodes);
    let mpi = Mpi::new(fabric);
    let outs: Arc<Vec<Mutex<Option<R>>>> = Arc::new((0..nodes).map(|_| Mutex::new(None)).collect());
    let f = Arc::new(f);
    let sim = Sim::new();
    for r in 0..nodes {
        let rank = mpi.rank(r);
        let outs = outs.clone();
        let f = f.clone();
        sim.spawn(format!("rank{r}"), async move {
            let v = f(rank).await;
            *outs[r as usize].lock() = Some(v);
        });
    }
    sim.run().expect("simulation failed");
    Arc::try_unwrap(outs)
        .unwrap_or_else(|_| panic!("rank processes retained results"))
        .into_iter()
        .map(|m| m.into_inner().expect("rank completed"))
        .collect()
}

/// A start/stop timer on the virtual clock.
pub struct PhaseTimer {
    start: SimTime,
}

impl PhaseTimer {
    /// Start timing at `now`.
    pub fn start(now: SimTime) -> Self {
        PhaseTimer { start: now }
    }

    /// Elapsed virtual time at `now`.
    pub fn stop(&self, now: SimTime) -> SimDuration {
        now.saturating_since(self.start)
    }
}

/// GFLOP/s for `flops` of work in `t`.
pub fn gflops(flops: f64, t: SimDuration) -> f64 {
    flops / t.as_secs_f64() / 1e9
}

/// GB/s for `bytes` in `t`.
pub fn gbs(bytes: f64, t: SimDuration) -> f64 {
    bytes / t.as_secs_f64() / 1e9
}

/// Mpixels/s for `pixels` in `t`.
pub fn mpixels(pixels: f64, t: SimDuration) -> f64 {
    pixels / t.as_secs_f64() / 1e6
}

/// Relative L2 error between two vectors (validation tolerance for
/// float-order differences).
pub fn rel_error(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len());
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        num += ((x - y) as f64).powi(2);
        den += (y as f64).powi(2);
    }
    if den == 0.0 {
        num.sqrt()
    } else {
        (num / den).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_single_returns_value() {
        let v = run_single("t", async {
            ompss_sim::delay(SimDuration::from_millis(1)).await.unwrap();
            ompss_sim::now().as_nanos()
        });
        assert_eq!(v, 1_000_000);
    }

    #[test]
    fn run_mpi_ranks_returns_in_rank_order() {
        let vs =
            run_mpi_ranks(
                3,
                FabricConfig::qdr_infiniband(3),
                |rank| async move { rank.rank() * 10 },
            );
        assert_eq!(vs, vec![0, 10, 20]);
    }

    #[test]
    fn metric_helpers() {
        let t = SimDuration::from_secs(2);
        assert_eq!(gflops(4e9, t), 2.0);
        assert_eq!(gbs(4e9, t), 2.0);
        assert_eq!(mpixels(4e6, t), 2.0);
    }

    #[test]
    fn rel_error_detects_differences() {
        assert_eq!(rel_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!(rel_error(&[1.0, 2.0], &[1.0, 2.1]) > 0.01);
    }
}
