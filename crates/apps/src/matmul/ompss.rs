//! OmpSs matrix multiply (Figure 1 of the paper): one GEMM task per
//! `(i, j, k)` tile triple, `input` on the A and B tiles and `inout` on
//! the C tile. The runtime distributes tiles over GPUs and nodes,
//! caches them, and keeps the dependence chains per C tile.

use ompss_mem::track;
use ompss_runtime::{task_views, Device, Omp, RunError, Runtime, RuntimeConfig, TaskSpec};

use crate::common::{gflops, unwrap_run, AppRun, PhaseTimer};

use super::{init_a, init_b, sgemm_tile, MatmulParams};

/// How the matrices are initialised before the multiply — Fig. 9's
/// `seq` / `smp` / `gpu` axis. Parallel init leaves the tiles resident
/// where the init tasks ran, drastically changing communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitMode {
    /// Sequential initialisation on the master (all data starts there).
    Seq,
    /// Parallel init tasks on the cluster's CPUs.
    Smp,
    /// Parallel init tasks on the GPUs.
    Gpu,
}

/// Run the OmpSs version; measures the multiply phase (init excluded,
/// as its point is data *placement*).
pub fn run(cfg: RuntimeConfig, p: MatmulParams, init: InitMode) -> AppRun {
    unwrap_run(try_run(cfg, p, init))
}

/// Like [`run`], but surfaces deadlocks and executor failures as a
/// [`RunError`] value instead of panicking.
pub fn try_run(cfg: RuntimeConfig, p: MatmulParams, init: InitMode) -> Result<AppRun, RunError> {
    let out = std::sync::Arc::new(parking_lot::Mutex::new(AppRun {
        elapsed: ompss_sim::SimDuration::ZERO,
        metric: 0.0,
        check: None,
        report: None,
    }));
    let out2 = out.clone();
    let rep = Runtime::try_run(cfg, move |omp| async move {
        let a = omp.alloc_array::<f32>(p.matrix_elems());
        let b = omp.alloc_array::<f32>(p.matrix_elems());
        let c = omp.alloc_array::<f32>(p.matrix_elems());

        match init {
            InitMode::Seq => {
                // Everything starts (and C's zeros already live) in the
                // master's host memory.
                if p.real {
                    omp.write_array(&a, 0, &(0..p.matrix_elems()).map(init_a).collect::<Vec<_>>());
                    omp.write_array(&b, 0, &(0..p.matrix_elems()).map(init_b).collect::<Vec<_>>());
                }
            }
            InitMode::Smp | InitMode::Gpu => {
                // One init task per tile, submitted matrix-by-matrix in
                // row order; demand-driven pickup spreads whole rows of
                // tiles per node, anchoring the GEMM chains.
                let device = if init == InitMode::Smp { Device::Smp } else { Device::Cuda };
                submit_inits(&omp, p, &a, device, "init_a", init_a).await;
                submit_inits(&omp, p, &b, device, "init_b", init_b).await;
                submit_inits(&omp, p, &c, device, "init_c", |_| 0.0).await;
                omp.taskwait_noflush().await;
            }
        }

        let timer = PhaseTimer::start(omp.now());
        submit_gemms(&omp, p, &a, &b, &c).await;
        // Like the MPI baseline (whose C stays distributed), the timed
        // phase ends when the multiply completes; the flush that gathers
        // C back to the master is outside the timer.
        omp.taskwait_noflush().await;
        let elapsed = timer.stop(omp.now());
        omp.taskwait().await;

        let check = if p.real { omp.read_array(&c, 0..p.matrix_elems()) } else { None };
        *out2.lock() = AppRun { elapsed, metric: gflops(p.flops(), elapsed), check, report: None };
    })?;
    let mut r = out.lock().clone();
    r.report = Some(rep);
    Ok(r)
}

async fn submit_gemms(
    omp: &Omp,
    p: MatmulParams,
    a: &ompss_runtime::ArrayHandle<f32>,
    b: &ompss_runtime::ArrayHandle<f32>,
    c: &ompss_runtime::ArrayHandle<f32>,
) {
    let bs = p.bs;
    for i in 0..p.tiles {
        for j in 0..p.tiles {
            for k in 0..p.tiles {
                let ra = a.region(p.tile_range(i, k));
                let rb = b.region(p.tile_range(k, j));
                let rc = c.region(p.tile_range(i, j));
                omp.submit(
                    TaskSpec::new("sgemm")
                        .device(Device::Cuda)
                        .input(ra)
                        .input(rb)
                        .inout(rc)
                        .cost_gpu(p.gemm_cost())
                        .body(move |v| {
                            task_views!(v => at: f32, bt: f32, ct: f32);
                            track::record_read(ra);
                            track::record_read(rb);
                            track::record_read(rc);
                            track::record_write(rc);
                            sgemm_tile(at, bt, ct, bs);
                        }),
                )
                .await;
            }
        }
    }
}

/// Submit one output-only init task per tile of `h`, on `device`,
/// filling element `idx` (global) with `f(idx)`.
async fn submit_inits(
    omp: &Omp,
    p: MatmulParams,
    h: &ompss_runtime::ArrayHandle<f32>,
    device: Device,
    label: &str,
    f: fn(usize) -> f32,
) {
    for i in 0..p.tiles {
        for j in 0..p.tiles {
            let range = p.tile_range(i, j);
            let base = range.start;
            let r = h.region(range);
            // Memory-bound fills: the runtime's footprint-derived
            // default cost applies on either device kind.
            omp.submit(TaskSpec::new(label).device(device).output(r).body(move |v| {
                task_views!(v => tile: f32);
                track::record_write(r);
                for (off, x) in tile.iter_mut().enumerate() {
                    *x = f(base + off);
                }
            }))
            .await;
        }
    }
}
