//! Blocked single-precision matrix multiply — the paper's first
//! benchmark (§IV-A2): 12288×12288 floats in 1024×1024 tiles, computed
//! with CUBLAS `sgemm` per tile.
//!
//! The `sgemm` tile kernel below stands in for CUBLAS: all versions
//! call it, exactly as all the paper's versions call the library. The
//! four versions (serial / CUDA / MPI+CUDA SUMMA / OmpSs) live in their
//! own files; Table I counts their lines.

pub mod cuda;
pub mod mpi;
pub mod ompss;
pub mod serial;

use ompss_cudasim::KernelCost;

/// Matmul workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct MatmulParams {
    /// Tile grid dimension (matrix is `tiles × tiles` tiles).
    pub tiles: usize,
    /// Tile edge in elements (matrix edge = `tiles * bs`).
    pub bs: usize,
    /// Real data (validation) or phantom (paper-scale timing).
    pub real: bool,
}

impl MatmulParams {
    /// The paper's workload: 12288² floats, 1024² tiles.
    pub fn paper() -> Self {
        MatmulParams { tiles: 12, bs: 1024, real: false }
    }

    /// A small validated workload.
    pub fn validate() -> Self {
        MatmulParams { tiles: 4, bs: 16, real: true }
    }

    /// Matrix edge in elements.
    pub fn n(&self) -> usize {
        self.tiles * self.bs
    }

    /// Elements per tile.
    pub fn tile_elems(&self) -> usize {
        self.bs * self.bs
    }

    /// Elements per matrix (tile-major storage).
    pub fn matrix_elems(&self) -> usize {
        self.tiles * self.tiles * self.tile_elems()
    }

    /// Element range of tile `(i, j)` in tile-major storage.
    pub fn tile_range(&self, i: usize, j: usize) -> std::ops::Range<usize> {
        let base = (i * self.tiles + j) * self.tile_elems();
        base..base + self.tile_elems()
    }

    /// Total floating-point operations of the full multiply.
    pub fn flops(&self) -> f64 {
        2.0 * (self.n() as f64).powi(3)
    }

    /// The CUBLAS-model cost of one tile GEMM (~60 % of peak on Fermi).
    pub fn gemm_cost(&self) -> KernelCost {
        KernelCost::compute_bound(2.0 * (self.bs as f64).powi(3), 0.6)
    }
}

/// Deterministic initial values shared by every version, by global
/// element index within each matrix.
pub fn init_a(idx: usize) -> f32 {
    ((idx % 97) as f32) * 0.01
}

/// Initial value of `B[idx]`.
pub fn init_b(idx: usize) -> f32 {
    ((idx % 89) as f32) * 0.02 - 0.5
}

/// The tile kernel all versions call (the stand-in for CUBLAS sgemm):
/// `c += a × b` over row-major `bs × bs` tiles.
pub fn sgemm_tile(a: &[f32], b: &[f32], c: &mut [f32], bs: usize) {
    debug_assert_eq!(a.len(), bs * bs);
    debug_assert_eq!(b.len(), bs * bs);
    debug_assert_eq!(c.len(), bs * bs);
    for i in 0..bs {
        for k in 0..bs {
            let aik = a[i * bs + k];
            if aik == 0.0 {
                continue;
            }
            let brow = &b[k * bs..(k + 1) * bs];
            let crow = &mut c[i * bs..(i + 1) * bs];
            for (cv, bv) in crow.iter_mut().zip(brow) {
                *cv += aik * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_geometry() {
        let p = MatmulParams { tiles: 3, bs: 4, real: true };
        assert_eq!(p.n(), 12);
        assert_eq!(p.tile_elems(), 16);
        assert_eq!(p.matrix_elems(), 144);
        assert_eq!(p.tile_range(1, 2), 80..96);
        assert_eq!(p.flops(), 2.0 * 12f64.powi(3));
    }

    #[test]
    fn sgemm_tile_matches_naive() {
        let bs = 4;
        let a: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..16).map(|i| (i as f32) * 0.5).collect();
        let mut c = vec![1.0f32; 16];
        sgemm_tile(&a, &b, &mut c, bs);
        // Naive check of one element: c[0][0] = 1 + sum_k a[0][k]*b[k][0]
        let expect = 1.0 + (0..4).map(|k| a[k] * b[k * 4]).sum::<f32>();
        assert_eq!(c[0], expect);
    }
}
