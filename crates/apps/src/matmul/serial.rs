//! Serial matrix multiply — the reference all other versions validate
//! against, and the LoC baseline of Table I.

use super::{init_a, init_b, sgemm_tile, MatmulParams};

/// Compute `C = A × B` serially; returns C in tile-major layout.
pub fn run(p: MatmulParams) -> Vec<f32> {
    let mut a = vec![0.0f32; p.matrix_elems()];
    let mut b = vec![0.0f32; p.matrix_elems()];
    let mut c = vec![0.0f32; p.matrix_elems()];
    for (idx, v) in a.iter_mut().enumerate() {
        *v = init_a(idx);
    }
    for (idx, v) in b.iter_mut().enumerate() {
        *v = init_b(idx);
    }
    for i in 0..p.tiles {
        for j in 0..p.tiles {
            for k in 0..p.tiles {
                let (ar, br, cr) = (p.tile_range(i, k), p.tile_range(k, j), p.tile_range(i, j));
                // Split borrows: copy the input tiles (small).
                let at = a[ar].to_vec();
                let bt = b[br].to_vec();
                sgemm_tile(&at, &bt, &mut c[cr], p.bs);
            }
        }
    }
    c
}
