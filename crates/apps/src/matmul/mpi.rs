//! MPI+CUDA matrix multiply: the SUMMA algorithm (van de Geijn &
//! Watts), as the paper's baseline. The matrix is distributed over an
//! `r × c` process grid; at step `k` the owners broadcast the A column
//! panel along rows and the B row panel along columns, and every rank
//! multiplies into its resident C block on its GPU. As in the paper,
//! the baseline implements no overlap tricks.

use ompss_cudasim::{CopyDir, GpuDevice, GpuSpec};
use ompss_net::FabricConfig;

use crate::common::{gflops, run_mpi_ranks, AppRun, PhaseTimer};

use super::{init_a, init_b, sgemm_tile, MatmulParams};
use ompss_sim::now;

/// Process-grid shape for a node count.
fn grid(nodes: u32) -> (usize, usize) {
    match nodes {
        1 => (1, 1),
        2 => (1, 2),
        4 => (2, 2),
        8 => (2, 4),
        n => (1, n as usize),
    }
}

/// Run the SUMMA MPI+CUDA version on `nodes` single-GPU ranks.
pub fn run(nodes: u32, spec: GpuSpec, fabric: FabricConfig, p: MatmulParams) -> AppRun {
    let (r, c) = grid(nodes);
    assert_eq!(p.tiles % r, 0, "tile grid must divide the process grid rows");
    assert_eq!(p.tiles % c, 0, "tile grid must divide the process grid cols");
    let results = run_mpi_ranks(nodes, fabric, move |rank| {
        let spec = spec.clone();
        async move {
            let (pr, pc) = ((rank.rank() as usize) / c, (rank.rank() as usize) % c);
            let my_rows = p.tiles / r; // C-block tile rows owned
            let my_cols = p.tiles / c;
            let row0 = pr * my_rows;
            let col0 = pc * my_cols;
            let te = p.tile_elems();

            // Local data: my A tiles (rows × all k), my B tiles (all k ×
            // cols), my C block. Values indexed by *global* element index so
            // every version matches.
            let local_tile = |m: char, i: usize, j: usize| -> Vec<f32> {
                if !p.real {
                    return Vec::new();
                }
                let base = p.tile_range(i, j).start;
                (0..te)
                    .map(|o| if m == 'a' { init_a(base + o) } else { init_b(base + o) })
                    .collect()
            };
            let mut cblock = vec![vec![0.0f32; if p.real { te } else { 0 }]; my_rows * my_cols];

            let dev = GpuDevice::new(format!("rank{}", rank.rank()), spec.clone());
            let panel_a_bytes = (my_rows * te * 4) as u64;
            let panel_b_bytes = (my_cols * te * 4) as u64;

            let cblock_bytes = (my_rows * my_cols * te * 4) as u64;
            let timer = PhaseTimer::start(now());
            // C accumulates on the device across all k steps.
            dev.memcpy(CopyDir::H2D, cblock_bytes, false, None).await.unwrap();
            for k in 0..p.tiles {
                // Broadcast the A panel (column k) along my process row.
                let row_group: Vec<u32> = (0..c).map(|q| (pr * c + q) as u32).collect();
                let a_root = (pr * c + k / my_cols) as u32;
                let a_payload = if rank.rank() == a_root && p.real {
                    let mut buf = Vec::with_capacity(my_rows * te * 4);
                    for i in 0..my_rows {
                        for v in local_tile('a', row0 + i, k) {
                            buf.extend_from_slice(&v.to_le_bytes());
                        }
                    }
                    Some(buf)
                } else {
                    None
                };
                let a_panel = rank
                    .bcast_group(&row_group, a_root, 1000 + k as u32, panel_a_bytes, a_payload)
                    .await
                    .unwrap();

                // Broadcast the B panel (row k) along my process column.
                let col_group: Vec<u32> = (0..r).map(|q| (q * c + pc) as u32).collect();
                let b_root = ((k / my_rows) * c + pc) as u32;
                let b_payload = if rank.rank() == b_root && p.real {
                    let mut buf = Vec::with_capacity(my_cols * te * 4);
                    for j in 0..my_cols {
                        for v in local_tile('b', k, col0 + j) {
                            buf.extend_from_slice(&v.to_le_bytes());
                        }
                    }
                    Some(buf)
                } else {
                    None
                };
                let b_panel = rank
                    .bcast_group(&col_group, b_root, 2000 + k as u32, panel_b_bytes, b_payload)
                    .await
                    .unwrap();

                // Ship the panels to the GPU and run the tile GEMMs. As in
                // the paper, the baseline is straightforward: pageable
                // synchronous copies, no transfer/compute overlap.
                dev.memcpy(CopyDir::H2D, panel_a_bytes, false, None).await.unwrap();
                dev.memcpy(CopyDir::H2D, panel_b_bytes, false, None).await.unwrap();
                for i in 0..my_rows {
                    for j in 0..my_cols {
                        dev.launch(p.gemm_cost(), None).await.unwrap();
                        if p.real {
                            let decode = |buf: &Option<Vec<u8>>, t: usize| -> Vec<f32> {
                                let bytes = &buf.as_ref().expect("real payload")[t * te * 4..];
                                bytes[..te * 4]
                                    .chunks_exact(4)
                                    .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                                    .collect()
                            };
                            let at = decode(&a_panel, i);
                            let bt = decode(&b_panel, j);
                            sgemm_tile(&at, &bt, &mut cblock[i * my_cols + j], p.bs);
                        }
                    }
                }
            }
            dev.memcpy(CopyDir::D2H, cblock_bytes, false, None).await.unwrap();
            let elapsed = timer.stop(now());
            (elapsed, cblock, (row0, col0, my_rows, my_cols))
        }
    });

    // Makespan = slowest rank; assemble C (tile-major) for validation.
    let elapsed = results.iter().map(|(e, _, _)| *e).max().unwrap();
    let check = if p.real {
        let mut cfull = vec![0.0f32; p.matrix_elems()];
        for (_, cblock, (row0, col0, my_rows, my_cols)) in &results {
            for i in 0..*my_rows {
                for j in 0..*my_cols {
                    let dst = p.tile_range(row0 + i, col0 + j);
                    cfull[dst].copy_from_slice(&cblock[i * my_cols + j]);
                }
            }
        }
        Some(cfull)
    } else {
        None
    };
    AppRun { elapsed, metric: gflops(p.flops(), elapsed), check, report: None }
}
