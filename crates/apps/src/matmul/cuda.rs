//! Plain CUDA matrix multiply: one GPU, explicit device management —
//! what the programmer writes without OmpSs. Allocate on the device,
//! copy A and B in, launch one GEMM per tile triple, copy C back and
//! synchronise by hand.

use ompss_cudasim::{CopyDir, GpuDevice, GpuSpec};

use crate::common::{gflops, run_single, AppRun, PhaseTimer};

use super::{init_a, init_b, sgemm_tile, MatmulParams};
use ompss_sim::now;

/// Run the CUDA version on a single simulated GPU.
pub fn run(spec: GpuSpec, p: MatmulParams) -> AppRun {
    run_single("cuda-matmul", async move {
        // Host buffers (pageable).
        let (mut a, mut b, mut c) = if p.real {
            let a: Vec<f32> = (0..p.matrix_elems()).map(init_a).collect();
            let b: Vec<f32> = (0..p.matrix_elems()).map(init_b).collect();
            (a, b, vec![0.0f32; p.matrix_elems()])
        } else {
            (Vec::new(), Vec::new(), Vec::new())
        };
        let dev = GpuDevice::new("gpu0", spec);
        let matrix_bytes = (p.matrix_elems() * 4) as u64;

        let timer = PhaseTimer::start(now());
        // cudaMemcpy H2D for A and B (C is write-only on the device).
        dev.memcpy(CopyDir::H2D, matrix_bytes, false, None).await.unwrap();
        dev.memcpy(CopyDir::H2D, matrix_bytes, false, None).await.unwrap();
        // One kernel launch per (i, j, k); the device serialises them.
        for i in 0..p.tiles {
            for j in 0..p.tiles {
                for k in 0..p.tiles {
                    dev.launch(p.gemm_cost(), None).await.unwrap();
                    if p.real {
                        let at = a[p.tile_range(i, k)].to_vec();
                        let bt = b[p.tile_range(k, j)].to_vec();
                        sgemm_tile(&at, &bt, &mut c[p.tile_range(i, j)], p.bs);
                    }
                }
            }
        }
        // cudaMemcpy D2H for the result.
        dev.memcpy(CopyDir::D2H, matrix_bytes, false, None).await.unwrap();
        let elapsed = timer.stop(now());

        let _ = (&mut a, &mut b);
        AppRun {
            elapsed,
            metric: gflops(p.flops(), elapsed),
            check: if p.real { Some(c) } else { None },
            report: None,
        }
    })
}
