//! Serial STREAM — the reference and LoC baseline.

use super::{kernels, StreamParams};

/// Run STREAM serially; returns the final `(a, b, c)` arrays.
pub fn run(p: StreamParams) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut a: Vec<f64> = (0..p.n).map(StreamParams::init_a).collect();
    let mut b: Vec<f64> = (0..p.n).map(StreamParams::init_b).collect();
    let mut c = vec![0.0f64; p.n];
    for _ in 0..p.ntimes {
        for j in (0..p.n).step_by(p.bsize) {
            kernels::copy(&a[j..j + p.bsize], &mut c[j..j + p.bsize]);
        }
        for j in (0..p.n).step_by(p.bsize) {
            let (cs, bs) = (c[j..j + p.bsize].to_vec(), &mut b[j..j + p.bsize]);
            kernels::scale(&cs, bs);
        }
        for j in (0..p.n).step_by(p.bsize) {
            let asl = a[j..j + p.bsize].to_vec();
            let bsl = b[j..j + p.bsize].to_vec();
            kernels::add(&asl, &bsl, &mut c[j..j + p.bsize]);
        }
        for j in (0..p.n).step_by(p.bsize) {
            let bsl = b[j..j + p.bsize].to_vec();
            let csl = c[j..j + p.bsize].to_vec();
            kernels::triad(&bsl, &csl, &mut a[j..j + p.bsize]);
        }
    }
    (a, b, c)
}
