//! Plain CUDA STREAM: one GPU, hand-written copies and kernel launches
//! (the paper's CUDA version came from the original source plus
//! hand-made kernels).

use ompss_cudasim::{CopyDir, GpuDevice, GpuSpec};

use crate::common::{gbs, run_single, AppRun, PhaseTimer};

use super::{kernels, StreamParams};
use ompss_sim::now;

/// Run the CUDA version on a single simulated GPU.
pub fn run(spec: GpuSpec, p: StreamParams) -> AppRun {
    run_single("cuda-stream", async move {
        let mut a: Vec<f64> =
            if p.real { (0..p.n).map(StreamParams::init_a).collect() } else { Vec::new() };
        let mut b: Vec<f64> =
            if p.real { (0..p.n).map(StreamParams::init_b).collect() } else { Vec::new() };
        let mut c: Vec<f64> = if p.real { vec![0.0; p.n] } else { Vec::new() };
        let dev = GpuDevice::new("gpu0", spec);
        let array_bytes = (p.n * 8) as u64;

        // STREAM methodology: only the kernel sweeps are timed.
        dev.memcpy(CopyDir::H2D, array_bytes, false, None).await.unwrap();
        dev.memcpy(CopyDir::H2D, array_bytes, false, None).await.unwrap();
        let timer = PhaseTimer::start(now());
        for _ in 0..p.ntimes {
            for j in (0..p.n).step_by(p.bsize) {
                dev.launch(p.kernel_cost(2), None).await.unwrap();
                if p.real {
                    kernels::copy(&a[j..j + p.bsize], &mut c[j..j + p.bsize]);
                }
            }
            for j in (0..p.n).step_by(p.bsize) {
                dev.launch(p.kernel_cost(2), None).await.unwrap();
                if p.real {
                    kernels::scale(&c[j..j + p.bsize], &mut b[j..j + p.bsize]);
                }
            }
            for j in (0..p.n).step_by(p.bsize) {
                dev.launch(p.kernel_cost(3), None).await.unwrap();
                if p.real {
                    let (av, bv) = (a[j..j + p.bsize].to_vec(), b[j..j + p.bsize].to_vec());
                    kernels::add(&av, &bv, &mut c[j..j + p.bsize]);
                }
            }
            for j in (0..p.n).step_by(p.bsize) {
                dev.launch(p.kernel_cost(3), None).await.unwrap();
                if p.real {
                    let (bv, cv) = (b[j..j + p.bsize].to_vec(), c[j..j + p.bsize].to_vec());
                    kernels::triad(&bv, &cv, &mut a[j..j + p.bsize]);
                }
            }
        }
        let elapsed = timer.stop(now());
        for _ in 0..3 {
            dev.memcpy(CopyDir::D2H, array_bytes, false, None).await.unwrap();
        }

        let check = if p.real {
            let mut all: Vec<f32> = a.iter().map(|&x| x as f32).collect();
            all.extend(b.iter().map(|&x| x as f32));
            all.extend(c.iter().map(|&x| x as f32));
            Some(all)
        } else {
            None
        };
        AppRun { elapsed, metric: gbs(p.total_bytes(), elapsed), check, report: None }
    })
}
