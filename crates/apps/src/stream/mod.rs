//! The STREAM benchmark (§IV-A2, Figure 2 of the paper): four
//! memory-bound kernels — `copy`, `scale`, `add`, `triad` — swept
//! `NTIMES` over three double-precision arrays, blocked so each task
//! covers `BSIZE` elements. The paper allocated 768 MB per GPU.

pub mod cuda;
pub mod mpi;
pub mod ompss;
pub mod serial;

use ompss_cudasim::KernelCost;

/// STREAM scalar constant.
pub const SCALAR: f64 = 3.0;

/// STREAM workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct StreamParams {
    /// Elements per array (doubles).
    pub n: usize,
    /// Elements per task block.
    pub bsize: usize,
    /// Sweep count (`NTIMES`).
    pub ntimes: usize,
    /// Real data (validation) or phantom (paper scale).
    pub real: bool,
}

impl StreamParams {
    /// The paper's workload scaled to `gpus` devices: 768 MB of arrays
    /// per GPU (32 M doubles per array per GPU), 32 MB blocks.
    pub fn paper(gpus: usize) -> Self {
        StreamParams { n: (gpus * 32) << 20, bsize: 4 << 20, ntimes: 4, real: false }
    }

    /// A small validated workload.
    pub fn validate() -> Self {
        StreamParams { n: 4096, bsize: 512, ntimes: 2, real: true }
    }

    /// Number of blocks per array.
    pub fn blocks(&self) -> usize {
        assert_eq!(self.n % self.bsize, 0);
        self.n / self.bsize
    }

    /// Total bytes the four kernels move per sweep (STREAM counts
    /// 2+2+3+3 array touches of 8 bytes each).
    pub fn sweep_bytes(&self) -> f64 {
        10.0 * self.n as f64 * 8.0
    }

    /// Total bytes across all sweeps (the bandwidth metric numerator).
    pub fn total_bytes(&self) -> f64 {
        self.sweep_bytes() * self.ntimes as f64
    }

    /// Device-memory traffic cost of one kernel over one block;
    /// `arrays` is how many arrays the kernel touches.
    pub fn kernel_cost(&self, arrays: u32) -> KernelCost {
        KernelCost::memory_bound(arrays as f64 * self.bsize as f64 * 8.0, 0.8)
    }

    /// Initial values shared by all versions.
    pub fn init_a(i: usize) -> f64 {
        1.0 + (i % 7) as f64
    }

    /// Initial `b` value.
    pub fn init_b(_i: usize) -> f64 {
        2.0
    }
}

/// Host reference kernels (what the GPU kernels compute).
pub mod kernels {
    use super::SCALAR;

    /// `c = a`.
    pub fn copy(a: &[f64], c: &mut [f64]) {
        c.copy_from_slice(a);
    }

    /// `b = SCALAR * c`.
    pub fn scale(c: &[f64], b: &mut [f64]) {
        for (bv, cv) in b.iter_mut().zip(c) {
            *bv = SCALAR * cv;
        }
    }

    /// `c = a + b`.
    pub fn add(a: &[f64], b: &[f64], c: &mut [f64]) {
        for ((cv, av), bv) in c.iter_mut().zip(a).zip(b) {
            *cv = av + bv;
        }
    }

    /// `a = b + SCALAR * c`.
    pub fn triad(b: &[f64], c: &[f64], a: &mut [f64]) {
        for ((av, bv), cv) in a.iter_mut().zip(b).zip(c) {
            *av = bv + SCALAR * cv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_and_bytes() {
        let p = StreamParams { n: 1024, bsize: 256, ntimes: 3, real: true };
        assert_eq!(p.blocks(), 4);
        assert_eq!(p.sweep_bytes(), 10.0 * 1024.0 * 8.0);
        assert_eq!(p.total_bytes(), 3.0 * 10.0 * 1024.0 * 8.0);
    }

    #[test]
    fn kernels_compute_stream_ops() {
        let a = vec![1.0, 2.0];
        let b = vec![10.0, 20.0];
        let mut c = vec![0.0, 0.0];
        kernels::copy(&a, &mut c);
        assert_eq!(c, vec![1.0, 2.0]);
        let mut b2 = vec![0.0; 2];
        kernels::scale(&c, &mut b2);
        assert_eq!(b2, vec![3.0, 6.0]);
        kernels::add(&a, &b, &mut c);
        assert_eq!(c, vec![11.0, 22.0]);
        let mut a2 = vec![0.0; 2];
        kernels::triad(&b, &c, &mut a2);
        assert_eq!(a2, vec![43.0, 86.0]);
    }
}
