//! OmpSs STREAM — Figure 2 of the paper verbatim: the four kernels are
//! annotated function tasks with `input`/`output` clauses per block;
//! the runtime chains them through the dependence graph and spreads
//! blocks over the GPUs. The kernels are memory-bound, so the runtime's
//! footprint-derived default cost applies.

use ompss_mem::track;
use ompss_runtime::{task_views, Device, RunError, Runtime, RuntimeConfig, TaskSpec};

use crate::common::{gbs, unwrap_run, AppRun, PhaseTimer};

use super::{kernels, StreamParams};

/// Run the OmpSs version; measures the `ntimes` sweeps.
pub fn run(cfg: RuntimeConfig, p: StreamParams) -> AppRun {
    unwrap_run(try_run(cfg, p))
}

/// Like [`run`], but surfaces deadlocks and executor failures as a
/// [`RunError`] value instead of panicking.
pub fn try_run(cfg: RuntimeConfig, p: StreamParams) -> Result<AppRun, RunError> {
    // Seeded defect "stream": declare the scale kernel's read of `c`
    // as an output clause instead. The WAW edge still orders the task
    // after `copy`, so results stay right under every schedule — only
    // clause conformance (the body records a read that no input/inout
    // clause covers) can catch the lie.
    let defect = ompss_sim::defects::armed("stream");
    let out = std::sync::Arc::new(parking_lot::Mutex::new(None));
    let out2 = out.clone();
    let rep = Runtime::try_run(cfg, move |omp| async move {
        let a = omp.alloc_array::<f64>(p.n);
        let b = omp.alloc_array::<f64>(p.n);
        let c = omp.alloc_array::<f64>(p.n);
        // As in the original STREAM, the arrays are initialised in
        // parallel — by tasks, which also places the blocks on devices.
        // Only `a` needs values: `copy` overwrites `c` and `scale`
        // overwrites `b` before anything reads them (initialising `b`
        // here would be a dead write — ompss-verify's DeadWrite lint
        // caught the original version doing exactly that).
        for j in (0..p.n).step_by(p.bsize) {
            let ra = a.region(j..j + p.bsize);
            omp.submit(TaskSpec::new("init").device(Device::Cuda).output(ra).body(move |v| {
                task_views!(v => av: f64);
                track::record_write(ra);
                for (off, x) in av.iter_mut().enumerate() {
                    *x = StreamParams::init_a(j + off);
                }
            }))
            .await;
        }

        // One annotated task per blocked kernel invocation, exactly as
        // in the paper's Figure 2 (two pragma lines per kernel there,
        // one clause chain here).
        let timer = PhaseTimer::start(omp.now());
        for _ in 0..p.ntimes {
            for j in (0..p.n).step_by(p.bsize) {
                let (ra, rc) = (a.region(j..j + p.bsize), c.region(j..j + p.bsize));
                omp.submit(TaskSpec::new("copy").device(Device::Cuda).input(ra).output(rc).body(
                    move |v| {
                        task_views!(v => av: f64, cv: f64);
                        track::record_read(ra);
                        track::record_write(rc);
                        kernels::copy(av, cv);
                    },
                ))
                .await;
            }
            for j in (0..p.n).step_by(p.bsize) {
                let (rc, rb) = (c.region(j..j + p.bsize), b.region(j..j + p.bsize));
                let spec = TaskSpec::new("scale").device(Device::Cuda);
                let spec = if defect { spec.output(rc) } else { spec.input(rc) };
                omp.submit(spec.output(rb).body(move |v| {
                    task_views!(v => cv: f64, bv: f64);
                    track::record_read(rc);
                    track::record_write(rb);
                    kernels::scale(cv, bv);
                }))
                .await;
            }
            for j in (0..p.n).step_by(p.bsize) {
                let (ra, rb) = (a.region(j..j + p.bsize), b.region(j..j + p.bsize));
                let rc = c.region(j..j + p.bsize);
                omp.submit(
                    TaskSpec::new("add").device(Device::Cuda).input(ra).input(rb).output(rc).body(
                        move |v| {
                            task_views!(v => av: f64, bv: f64, cv: f64);
                            track::record_read(ra);
                            track::record_read(rb);
                            track::record_write(rc);
                            kernels::add(av, bv, cv);
                        },
                    ),
                )
                .await;
            }
            for j in (0..p.n).step_by(p.bsize) {
                let (rb, rc) = (b.region(j..j + p.bsize), c.region(j..j + p.bsize));
                let ra = a.region(j..j + p.bsize);
                omp.submit(
                    TaskSpec::new("triad")
                        .device(Device::Cuda)
                        .input(rb)
                        .input(rc)
                        .output(ra)
                        .body(move |v| {
                            task_views!(v => bv: f64, cv: f64, av: f64);
                            track::record_read(rb);
                            track::record_read(rc);
                            track::record_write(ra);
                            kernels::triad(bv, cv, av);
                        }),
                )
                .await;
            }
        }
        omp.taskwait_noflush().await;
        let elapsed = timer.stop(omp.now());
        omp.taskwait().await; // flush for validation, outside the timed phase

        let check = if p.real {
            let mut all = omp.read_array(&a, 0..p.n).unwrap();
            all.extend(omp.read_array(&b, 0..p.n).unwrap());
            all.extend(omp.read_array(&c, 0..p.n).unwrap());
            Some(all.into_iter().map(|x| x as f32).collect())
        } else {
            None
        };
        *out2.lock() =
            Some(AppRun { elapsed, metric: gbs(p.total_bytes(), elapsed), check, report: None });
    })?;
    let mut r = out.lock().take().unwrap();
    r.report = Some(rep);
    Ok(r)
}
