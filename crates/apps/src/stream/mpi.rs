//! MPI+CUDA STREAM: each rank owns an equal slice of the arrays and
//! runs the kernels on its own GPU — no inter-node communication, as in
//! the paper's version (based on the original MPI STREAM).

use ompss_cudasim::{CopyDir, GpuDevice, GpuSpec};
use ompss_net::FabricConfig;

use crate::common::{gbs, run_mpi_ranks, AppRun, PhaseTimer};

use super::{kernels, StreamParams};
use ompss_sim::now;

/// Run the MPI+CUDA version on `nodes` single-GPU ranks. `p.n` is the
/// global array length; each rank owns `n / nodes` elements.
pub fn run(nodes: u32, spec: GpuSpec, fabric: FabricConfig, p: StreamParams) -> AppRun {
    assert_eq!(p.n % nodes as usize, 0);
    let local_n = p.n / nodes as usize;
    assert_eq!(local_n % p.bsize, 0);
    let results = run_mpi_ranks(nodes, fabric, move |rank| {
        let spec = spec.clone();
        async move {
            let base = rank.rank() as usize * local_n;
            let mut a: Vec<f64> = if p.real {
                (0..local_n).map(|i| StreamParams::init_a(base + i)).collect()
            } else {
                Vec::new()
            };
            let mut b: Vec<f64> = if p.real {
                (0..local_n).map(|i| StreamParams::init_b(base + i)).collect()
            } else {
                Vec::new()
            };
            let mut c: Vec<f64> = if p.real { vec![0.0; local_n] } else { Vec::new() };
            let dev = GpuDevice::new(format!("rank{}", rank.rank()), spec.clone());
            let array_bytes = (local_n * 8) as u64;

            // STREAM methodology: the one-time transfers sit outside the
            // timed region; only the kernel sweeps are measured.
            dev.memcpy(CopyDir::H2D, array_bytes, false, None).await.unwrap();
            dev.memcpy(CopyDir::H2D, array_bytes, false, None).await.unwrap();
            rank.barrier(1).await.unwrap();
            let timer = PhaseTimer::start(now());
            for _ in 0..p.ntimes {
                for j in (0..local_n).step_by(p.bsize) {
                    dev.launch(p.kernel_cost(2), None).await.unwrap();
                    if p.real {
                        kernels::copy(&a[j..j + p.bsize], &mut c[j..j + p.bsize]);
                    }
                }
                for j in (0..local_n).step_by(p.bsize) {
                    dev.launch(p.kernel_cost(2), None).await.unwrap();
                    if p.real {
                        kernels::scale(&c[j..j + p.bsize], &mut b[j..j + p.bsize]);
                    }
                }
                for j in (0..local_n).step_by(p.bsize) {
                    dev.launch(p.kernel_cost(3), None).await.unwrap();
                    if p.real {
                        let (av, bv) = (a[j..j + p.bsize].to_vec(), b[j..j + p.bsize].to_vec());
                        kernels::add(&av, &bv, &mut c[j..j + p.bsize]);
                    }
                }
                for j in (0..local_n).step_by(p.bsize) {
                    dev.launch(p.kernel_cost(3), None).await.unwrap();
                    if p.real {
                        let (bv, cv) = (b[j..j + p.bsize].to_vec(), c[j..j + p.bsize].to_vec());
                        kernels::triad(&bv, &cv, &mut a[j..j + p.bsize]);
                    }
                }
            }
            rank.barrier(2).await.unwrap();
            let elapsed = timer.stop(now());
            for _ in 0..3 {
                dev.memcpy(CopyDir::D2H, array_bytes, false, None).await.unwrap();
            }
            (elapsed, a, b, c)
        }
    });

    let elapsed = results.iter().map(|(e, _, _, _)| *e).max().unwrap();
    let check = if p.real {
        let mut all: Vec<f32> = Vec::with_capacity(3 * p.n);
        for (_, a, _, _) in &results {
            all.extend(a.iter().map(|&x| x as f32));
        }
        for (_, _, b, _) in &results {
            all.extend(b.iter().map(|&x| x as f32));
        }
        for (_, _, _, c) in &results {
            all.extend(c.iter().map(|&x| x as f32));
        }
        Some(all)
    } else {
        None
    };
    AppRun { elapsed, metric: gbs(p.total_bytes(), elapsed), check, report: None }
}
