//! # ompss-apps — the paper's evaluation applications
//!
//! The four benchmarks of §IV (Matrix Multiply, STREAM, Perlin noise,
//! N-Body), each in the four versions Table I compares:
//!
//! | version  | what it models |
//! |----------|----------------|
//! | `serial` | the reference program (validation + LoC baseline) |
//! | `cuda`   | hand-written single-GPU CUDA: explicit copies and launches |
//! | `mpi`    | MPI+CUDA across nodes (SUMMA for matmul, allgather for N-Body) |
//! | `ompss`  | the annotated task version on the OmpSs runtime |
//!
//! Every version computes real results under `real: true` parameters,
//! so cross-version validation is exact-or-tolerance checked; the
//! paper-scale parameter sets run phantom-backed for timing only.

#![warn(missing_docs)]

pub mod common;
pub mod matmul;
pub mod nbody;
pub mod perlin;
pub mod stream;
pub mod ws;
