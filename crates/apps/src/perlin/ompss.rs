//! OmpSs Perlin filter: one task per row block per step, `inout` on
//! the block. The *Flush* variant performs a flushing `taskwait` after
//! every step (image needed on the host between filters); *NoFlush*
//! lets consecutive steps chain on the device through the dependence
//! graph.

use ompss_mem::track;
use ompss_runtime::{task_views, Device, RunError, Runtime, RuntimeConfig, TaskSpec};

use crate::common::{mpixels, unwrap_run, AppRun, PhaseTimer};

use super::{filter_block, PerlinParams};

/// Run the OmpSs version. `flush` selects the paper's Flush variant.
pub fn run(cfg: RuntimeConfig, p: PerlinParams, flush: bool) -> AppRun {
    unwrap_run(try_run(cfg, p, flush))
}

/// Like [`run`], but surfaces deadlocks and executor failures as a
/// [`RunError`] value instead of panicking.
pub fn try_run(cfg: RuntimeConfig, p: PerlinParams, flush: bool) -> Result<AppRun, RunError> {
    let out = std::sync::Arc::new(parking_lot::Mutex::new(None));
    let out2 = out.clone();
    let rep = Runtime::try_run(cfg, move |omp| async move {
        let image = omp.alloc_array::<u32>(p.pixels());
        // The blank frame is produced in place by tasks, which also
        // distributes the row blocks across devices.
        for b in 0..p.blocks() {
            let base = b * p.rows_per_block * p.width;
            let r = image.region(base..base + p.block_pixels());
            omp.submit(TaskSpec::new("init").device(Device::Cuda).output(r).body(move |v| {
                task_views!(v => px: u32);
                track::record_write(r);
                for (off, x) in px.iter_mut().enumerate() {
                    *x = PerlinParams::init_pixel(base + off);
                }
            }))
            .await;
        }

        let timer = PhaseTimer::start(omp.now());
        for step in 0..p.steps {
            for b in 0..p.blocks() {
                let (row0, width) = (b * p.rows_per_block, p.width);
                let r = image.region(row0 * width..row0 * width + p.block_pixels());
                omp.submit(TaskSpec::new("perlin").device(Device::Cuda).inout(r).body(move |v| {
                    task_views!(v => px: u32);
                    track::record_read(r);
                    track::record_write(r);
                    filter_block(px, row0, width, step as u32);
                }))
                .await;
            }
            if flush {
                omp.taskwait().await;
            }
        }
        omp.taskwait().await;
        let elapsed = timer.stop(omp.now());

        let check = if p.real {
            omp.read_array(&image, 0..p.pixels())
                .map(|v| v.into_iter().map(f32::from_bits).collect())
        } else {
            None
        };
        *out2.lock() = Some(AppRun {
            elapsed,
            metric: mpixels(p.total_pixels(), elapsed),
            check,
            report: None,
        });
    })?;
    let mut r = out.lock().take().unwrap();
    r.report = Some(rep);
    Ok(r)
}
