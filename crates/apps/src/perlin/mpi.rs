//! MPI+CUDA Perlin filter: row blocks are distributed over ranks; each
//! rank filters its rows on its GPU. The Flush variant gathers the
//! image to rank 0 after every step (the host-resident requirement),
//! which — as the paper observes — cannot be overlapped with compute.

use ompss_cudasim::{CopyDir, GpuDevice, GpuSpec};
use ompss_net::FabricConfig;

use crate::common::{mpixels, run_mpi_ranks, AppRun, PhaseTimer};

use super::{filter_block, PerlinParams};
use ompss_sim::now;

/// Run the MPI+CUDA version on `nodes` single-GPU ranks.
pub fn run(
    nodes: u32,
    spec: GpuSpec,
    fabric: FabricConfig,
    p: PerlinParams,
    flush: bool,
) -> AppRun {
    assert_eq!(p.blocks() % nodes as usize, 0, "blocks must divide evenly over ranks");
    let blocks_per_rank = p.blocks() / nodes as usize;
    let results = run_mpi_ranks(nodes, fabric, move |rank| {
        let spec = spec.clone();
        async move {
            let my_rows = blocks_per_rank * p.rows_per_block;
            let row0 = rank.rank() as usize * my_rows;
            let mut local: Vec<u32> = if p.real {
                (0..my_rows * p.width)
                    .map(|i| PerlinParams::init_pixel(row0 * p.width + i))
                    .collect()
            } else {
                Vec::new()
            };
            let dev = GpuDevice::new(format!("rank{}", rank.rank()), spec.clone());
            let local_bytes = (my_rows * p.width * 4) as u64;

            rank.barrier(1).await.unwrap();
            let timer = PhaseTimer::start(now());
            dev.memcpy(CopyDir::H2D, local_bytes, false, None).await.unwrap();
            for step in 0..p.steps {
                for b in 0..blocks_per_rank {
                    dev.launch(p.kernel_cost(), None).await.unwrap();
                    if p.real {
                        let brow = row0 + b * p.rows_per_block;
                        let range =
                            b * p.rows_per_block * p.width..(b + 1) * p.rows_per_block * p.width;
                        filter_block(&mut local[range], brow, p.width, step as u32);
                    }
                }
                if flush {
                    // Device → host, then gather the frame at rank 0.
                    dev.memcpy(CopyDir::D2H, local_bytes, false, None).await.unwrap();
                    rank.gather(0, 10 + step as u32, local_bytes, None).await.unwrap();
                }
            }
            if !flush {
                dev.memcpy(CopyDir::D2H, local_bytes, false, None).await.unwrap();
                rank.gather(0, 999, local_bytes, None).await.unwrap();
            }
            let elapsed = timer.stop(now());
            (elapsed, local)
        }
    });

    let elapsed = results.iter().map(|(e, _)| *e).max().unwrap();
    let check = if p.real {
        let mut image = Vec::with_capacity(p.pixels());
        for (_, local) in &results {
            image.extend(local.iter().map(|&px| f32::from_bits(px)));
        }
        Some(image)
    } else {
        None
    };
    AppRun { elapsed, metric: mpixels(p.total_pixels(), elapsed), check, report: None }
}
