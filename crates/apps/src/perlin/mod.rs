//! Perlin-noise image filter (§IV-A2): a 1024×1024 image repeatedly
//! filtered with lattice value-noise. The paper's two variants differ
//! in what happens between steps: **Flush** returns the image to host
//! memory after every step; **NoFlush** keeps it on the GPUs (the
//! realistic case when noise is one filter in a pipeline).
//!
//! The noise kernel uses fixed-point integer arithmetic so every
//! version produces bit-identical pixels.

pub mod cuda;
pub mod mpi;
pub mod ompss;
pub mod serial;

use ompss_cudasim::KernelCost;

/// Perlin workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct PerlinParams {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Filter steps applied.
    pub steps: usize,
    /// Rows per task block.
    pub rows_per_block: usize,
    /// Real data (validation) or phantom (paper scale).
    pub real: bool,
}

impl PerlinParams {
    /// The paper's workload: 1024×1024 pixels, 64-row blocks.
    pub fn paper() -> Self {
        PerlinParams { width: 1024, height: 1024, steps: 10, rows_per_block: 64, real: false }
    }

    /// A small validated workload.
    pub fn validate() -> Self {
        PerlinParams { width: 64, height: 64, steps: 2, rows_per_block: 16, real: true }
    }

    /// Pixels in the image.
    pub fn pixels(&self) -> usize {
        self.width * self.height
    }

    /// Number of row blocks.
    pub fn blocks(&self) -> usize {
        assert_eq!(self.height % self.rows_per_block, 0);
        self.height / self.rows_per_block
    }

    /// Pixels per block.
    pub fn block_pixels(&self) -> usize {
        self.rows_per_block * self.width
    }

    /// Total pixels processed over all steps (the Mpixels/s numerator).
    pub fn total_pixels(&self) -> f64 {
        self.pixels() as f64 * self.steps as f64
    }

    /// Kernel cost of one block: ~60 integer ops per pixel, plus the
    /// read+write traffic.
    pub fn kernel_cost(&self) -> KernelCost {
        let px = self.block_pixels() as f64;
        KernelCost::roofline(60.0 * px, 8.0 * px, 0.5, 0.8)
    }

    /// Initial pixel value (a flat mid-grey RGBA).
    pub fn init_pixel(_i: usize) -> u32 {
        0x7F7F_7FFF
    }
}

/// Cell size of the noise lattice, in pixels (power of two).
const CELL: u32 = 16;

fn lattice_hash(cx: u32, cy: u32, step: u32) -> u32 {
    let mut h = cx
        .wrapping_mul(0x9E37_79B1)
        .wrapping_add(cy.wrapping_mul(0x85EB_CA77))
        .wrapping_add(step.wrapping_mul(0xC2B2_AE3D));
    h ^= h >> 15;
    h = h.wrapping_mul(0x2C1B_3C6D);
    h ^= h >> 12;
    h = h.wrapping_mul(0x2974_35A3);
    h ^= h >> 16;
    h
}

/// Smoothstep in 8.8 fixed point: `3t² − 2t³` over `t ∈ [0, 256]`.
fn smooth(t: u32) -> u32 {
    let t2 = t * t; // ≤ 2^16
    (3 * t2 * 256 - 2 * t2 * t) >> 16
}

/// One filtered pixel: bilinear fixed-point value noise over the cell
/// lattice, blended with the previous pixel value.
pub fn noise_pixel(x: u32, y: u32, step: u32, prev: u32) -> u32 {
    let (cx, cy) = (x / CELL, y / CELL);
    let (fx, fy) = ((x % CELL) * 256 / CELL, (y % CELL) * 256 / CELL);
    let (sx, sy) = (smooth(fx), smooth(fy));
    // Corner values reduced to 8-bit luminance.
    let v00 = lattice_hash(cx, cy, step) & 0xFF;
    let v10 = lattice_hash(cx + 1, cy, step) & 0xFF;
    let v01 = lattice_hash(cx, cy + 1, step) & 0xFF;
    let v11 = lattice_hash(cx + 1, cy + 1, step) & 0xFF;
    let top = v00 * (256 - sx) + v10 * sx; // 16-bit
    let bot = v01 * (256 - sx) + v11 * sx;
    let n = (top * (256 - sy) + bot * sy) >> 16; // 8-bit noise value
                                                 // Blend: average each RGBA channel of `prev` with the noise.
    let r = ((((prev >> 24) & 0xFF) + n) / 2) & 0xFF;
    let g = ((((prev >> 16) & 0xFF) + n) / 2) & 0xFF;
    let b = ((((prev >> 8) & 0xFF) + n) / 2) & 0xFF;
    let a = prev & 0xFF;
    (r << 24) | (g << 16) | (b << 8) | a
}

/// Apply one filter step to a block of rows. `row0` is the block's
/// first image row; the block buffer holds `rows × width` pixels.
pub fn filter_block(block: &mut [u32], row0: usize, width: usize, step: u32) {
    for (idx, px) in block.iter_mut().enumerate() {
        let x = (idx % width) as u32;
        let y = (row0 + idx / width) as u32;
        *px = noise_pixel(x, y, step, *px);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let p = PerlinParams::validate();
        assert_eq!(p.pixels(), 4096);
        assert_eq!(p.blocks(), 4);
        assert_eq!(p.block_pixels(), 1024);
        assert_eq!(p.total_pixels(), 8192.0);
    }

    #[test]
    fn noise_is_deterministic_and_step_dependent() {
        let a = noise_pixel(10, 20, 0, 0x7F7F_7FFF);
        let b = noise_pixel(10, 20, 0, 0x7F7F_7FFF);
        let c = noise_pixel(10, 20, 1, 0x7F7F_7FFF);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn noise_varies_across_space() {
        let vals: std::collections::HashSet<u32> =
            (0..64).map(|x| noise_pixel(x * 7, x * 13, 0, 0)).collect();
        assert!(vals.len() > 16, "noise should not be constant");
    }

    #[test]
    fn filter_block_matches_pixelwise_application() {
        let width = 8;
        let mut block = vec![0x1020_3040u32; 16];
        let mut expect = block.clone();
        filter_block(&mut block, 4, width, 3);
        for (idx, px) in expect.iter_mut().enumerate() {
            *px = noise_pixel((idx % width) as u32, (4 + idx / width) as u32, 3, *px);
        }
        assert_eq!(block, expect);
    }
}
