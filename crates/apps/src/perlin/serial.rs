//! Serial Perlin filter — reference and LoC baseline.

use super::{filter_block, PerlinParams};

/// Apply `steps` filter passes serially; returns the final image.
pub fn run(p: PerlinParams) -> Vec<u32> {
    let mut image: Vec<u32> = (0..p.pixels()).map(PerlinParams::init_pixel).collect();
    for step in 0..p.steps {
        for b in 0..p.blocks() {
            let row0 = b * p.rows_per_block;
            let range = row0 * p.width..(row0 + p.rows_per_block) * p.width;
            filter_block(&mut image[range], row0, p.width, step as u32);
        }
    }
    image
}
