//! Plain CUDA Perlin filter: one GPU, explicit management. The Flush
//! variant copies the image back to the host after every step.

use ompss_cudasim::{CopyDir, GpuDevice, GpuSpec};

use crate::common::{mpixels, run_single, AppRun, PhaseTimer};

use super::{filter_block, PerlinParams};
use ompss_sim::now;

/// Run the CUDA version on one simulated GPU.
pub fn run(spec: GpuSpec, p: PerlinParams, flush: bool) -> AppRun {
    run_single("cuda-perlin", async move {
        let mut image: Vec<u32> = if p.real {
            (0..p.pixels()).map(PerlinParams::init_pixel).collect()
        } else {
            Vec::new()
        };
        let dev = GpuDevice::new("gpu0", spec);
        let image_bytes = (p.pixels() * 4) as u64;

        let timer = PhaseTimer::start(now());
        dev.memcpy(CopyDir::H2D, image_bytes, false, None).await.unwrap();
        for step in 0..p.steps {
            for b in 0..p.blocks() {
                dev.launch(p.kernel_cost(), None).await.unwrap();
                if p.real {
                    let row0 = b * p.rows_per_block;
                    let range = row0 * p.width..(row0 + p.rows_per_block) * p.width;
                    filter_block(&mut image[range], row0, p.width, step as u32);
                }
            }
            if flush {
                dev.memcpy(CopyDir::D2H, image_bytes, false, None).await.unwrap();
            }
        }
        if !flush {
            dev.memcpy(CopyDir::D2H, image_bytes, false, None).await.unwrap();
        }
        let elapsed = timer.stop(now());

        AppRun {
            elapsed,
            metric: mpixels(p.total_pixels(), elapsed),
            check: if p.real {
                Some(image.into_iter().map(f32::from_bits).collect())
            } else {
                None
            },
            report: None,
        }
    })
}
