//! Cross-version validation: for each benchmark, the CUDA, MPI+CUDA
//! and OmpSs versions must produce the serial version's results (bit
//! exact for integer kernels, tolerance-checked for float reductions).
//! This is the ground truth behind every performance figure.

use ompss_apps::common::rel_error;
use ompss_apps::{matmul, nbody, perlin, stream};
use ompss_cudasim::GpuSpec;
use ompss_net::FabricConfig;
use ompss_runtime::RuntimeConfig;

fn spec() -> GpuSpec {
    GpuSpec::gtx_480()
}

fn fabric(n: u32) -> FabricConfig {
    FabricConfig::qdr_infiniband(n)
}

// ---------------------------------------------------------------- matmul

#[test]
fn matmul_cuda_matches_serial() {
    let p = matmul::MatmulParams::validate();
    let reference = matmul::serial::run(p);
    let got = matmul::cuda::run(spec(), p).check.unwrap();
    assert!(rel_error(&got, &reference) < 1e-6);
}

#[test]
fn matmul_mpi_matches_serial_across_grids() {
    let p = matmul::MatmulParams::validate();
    let reference = matmul::serial::run(p);
    for nodes in [1u32, 2, 4] {
        let got = matmul::mpi::run(nodes, spec(), fabric(nodes), p).check.unwrap();
        assert!(rel_error(&got, &reference) < 1e-5, "nodes={nodes}");
    }
}

#[test]
fn matmul_ompss_matches_serial_multi_gpu() {
    let p = matmul::MatmulParams::validate();
    let reference = matmul::serial::run(p);
    for gpus in [1u32, 2, 4] {
        let got =
            matmul::ompss::run(RuntimeConfig::multi_gpu(gpus), p, matmul::ompss::InitMode::Seq)
                .check
                .unwrap();
        assert!(rel_error(&got, &reference) < 1e-6, "gpus={gpus}");
    }
}

#[test]
fn matmul_ompss_matches_serial_on_cluster_all_inits() {
    let p = matmul::MatmulParams::validate();
    let reference = matmul::serial::run(p);
    for init in
        [matmul::ompss::InitMode::Seq, matmul::ompss::InitMode::Smp, matmul::ompss::InitMode::Gpu]
    {
        let got = matmul::ompss::run(RuntimeConfig::gpu_cluster(2), p, init).check.unwrap();
        assert!(rel_error(&got, &reference) < 1e-6, "init={init:?}");
    }
}

// ---------------------------------------------------------------- stream

#[test]
fn stream_versions_match_serial() {
    let p = stream::StreamParams::validate();
    let (a, b, c) = stream::serial::run(p);
    let mut reference: Vec<f32> = a.iter().map(|&x| x as f32).collect();
    reference.extend(b.iter().map(|&x| x as f32));
    reference.extend(c.iter().map(|&x| x as f32));

    let cuda = stream::cuda::run(spec(), p).check.unwrap();
    assert_eq!(cuda, reference, "cuda");

    for nodes in [1u32, 2, 4] {
        let mpi = stream::mpi::run(nodes, spec(), fabric(nodes), p).check.unwrap();
        assert_eq!(mpi, reference, "mpi nodes={nodes}");
    }

    let ompss = stream::ompss::run(RuntimeConfig::multi_gpu(2), p).check.unwrap();
    assert_eq!(ompss, reference, "ompss multi-gpu");
    let ompss_cl = stream::ompss::run(RuntimeConfig::gpu_cluster(2), p).check.unwrap();
    assert_eq!(ompss_cl, reference, "ompss cluster");
}

// ---------------------------------------------------------------- perlin

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn perlin_versions_match_serial_bit_exact() {
    let p = perlin::PerlinParams::validate();
    let reference: Vec<u32> = perlin::serial::run(p);
    for flush in [false, true] {
        let cuda = perlin::cuda::run(spec(), p, flush).check.unwrap();
        assert_eq!(bits(&cuda), reference, "cuda flush={flush}");
        let mpi = perlin::mpi::run(2, spec(), fabric(2), p, flush).check.unwrap();
        assert_eq!(bits(&mpi), reference, "mpi flush={flush}");
        let om = perlin::ompss::run(RuntimeConfig::multi_gpu(2), p, flush).check.unwrap();
        assert_eq!(bits(&om), reference, "ompss flush={flush}");
    }
}

#[test]
fn perlin_cluster_matches_serial() {
    let p = perlin::PerlinParams::validate();
    let reference: Vec<u32> = perlin::serial::run(p);
    let om = perlin::ompss::run(RuntimeConfig::gpu_cluster(2), p, false).check.unwrap();
    assert_eq!(bits(&om), reference);
}

// ---------------------------------------------------------------- nbody

#[test]
fn nbody_versions_match_serial() {
    let p = nbody::NbodyParams::validate();
    let reference = nbody::serial::run(p);

    let cuda = nbody::cuda::run(spec(), p).check.unwrap();
    assert!(rel_error(&cuda, &reference) < 1e-6, "cuda");

    for nodes in [1u32, 2, 4] {
        let mpi = nbody::mpi::run(nodes, spec(), fabric(nodes), p).check.unwrap();
        assert!(rel_error(&mpi, &reference) < 1e-5, "mpi nodes={nodes}");
    }

    for gpus in [1u32, 2] {
        let om = nbody::ompss::run(RuntimeConfig::multi_gpu(gpus), p).check.unwrap();
        assert!(rel_error(&om, &reference) < 1e-6, "ompss gpus={gpus}");
    }
    let om = nbody::ompss::run(RuntimeConfig::gpu_cluster(2), p).check.unwrap();
    assert!(rel_error(&om, &reference) < 1e-6, "ompss cluster");
}
