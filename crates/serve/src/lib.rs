//! ompss-serve: simulation-as-a-service for the OmpSs cluster simulator.
//!
//! The other binaries in this workspace are batch tools: `verify`,
//! `chaos`, `mc` and `sweep` each parse flags, run a fixed job list and
//! exit. This crate turns the same deterministic simulator into a
//! *daemon*: a persistent process that accepts job specifications over
//! a line protocol (stdin or a Unix socket), executes them on a bounded
//! worker pool, and streams progress and results back as JSON lines —
//! while staying well-behaved under overload.
//!
//! The three layers:
//!
//! * [`spec`] — what a client may ask for: app, topology,
//!   scheduler/fault seeds, priority, deadline, retry budget. Strictly
//!   validated; bad requests are rejected before they cost anything.
//! * [`queue`] — the bounded admission queue: priority scheduling with
//!   aging (no starvation), load-shedding of the weakest entry when a
//!   strictly stronger job arrives at a full queue, explicit rejection
//!   otherwise. Overload becomes structured errors, never memory growth.
//! * [`server`] — execution and routing: a fixed worker pool, per-job
//!   cancellation tokens, host-time deadlines, deterministic
//!   exponential backoff between retries of retryable failures, and an
//!   exactly-once terminal event per job enforced structurally.
//!
//! Everything observable is deterministic where it can be: a job's
//! `RunReport` is byte-identical to a direct [`ompss_chaos::try_run_app`]
//! call with the same configuration, and retry attempt `n` of a faulty
//! spec replays exactly (the fault seed is `fault_seed + n`). Only
//! arrival interleaving — which is the client's, not the server's — is
//! host-time dependent.

pub mod queue;
pub mod server;
pub mod spec;

pub use queue::{Admit, AdmitQueue, QueuedJob, AGING_POPS};
pub use server::{
    serve_connection, sim_runner, Event, EventKind, RunOutcome, Runner, ServeConfig, Server, Sink,
};
pub use spec::{JobSpec, SpecError, Topology, PRIORITY_DEFAULT, PRIORITY_MAX, RETRIES_MAX};
