//! Job specifications: what a client asks the daemon to simulate.
//!
//! A spec arrives as one JSON object naming an application, a topology,
//! runtime knobs (scheduler seed, fault coordinates) and service
//! parameters (priority, deadline, retry budget). Parsing is strict —
//! unknown apps, out-of-range priorities and malformed fields reject
//! the job with a structured error before it ever touches the queue, so
//! a bad client cannot cost the daemon anything but the parse.

use std::fmt;

use ompss_chaos::APPS;
use ompss_json::Json;
use ompss_runtime::RuntimeConfig;

/// Highest admissible base priority (priorities run 0..=9; higher runs
/// first).
pub const PRIORITY_MAX: u8 = 9;

/// Default base priority for specs that do not set one.
pub const PRIORITY_DEFAULT: u8 = 4;

/// Ceiling on a spec's retry budget — a client cannot buy unbounded
/// re-runs.
pub const RETRIES_MAX: u32 = 8;

/// Where a job runs: the paper's two topology families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// One node with `gpus` GPUs.
    MultiGpu(u32),
    /// A cluster of `nodes` single-GPU nodes.
    Cluster(u32),
}

/// A parsed, validated job request.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Which application to run (validation scale), from
    /// [`ompss_chaos::APPS`].
    pub app: &'static str,
    /// Simulated hardware to run it on.
    pub topology: Topology,
    /// Base priority, `0..=`[`PRIORITY_MAX`]; higher pops first.
    pub priority: u8,
    /// Host-time deadline in milliseconds from admission; a job still
    /// queued (or between retry attempts) past it is terminated with
    /// `deadline_exceeded`.
    pub deadline_ms: Option<u64>,
    /// Re-runs allowed after a *retryable* failure (see
    /// [`ompss_runtime::RunError::is_retryable`]), `0..=`[`RETRIES_MAX`].
    pub retries: u32,
    /// Scheduler tie-break seed override.
    pub sched_seed: Option<u64>,
    /// Fault-injection coordinates; faults are armed when `rate > 0`.
    pub fault_seed: u64,
    /// Fault rate in `[0, 1)`; `0.0` (default) runs fault-free.
    pub fault_rate: f64,
    /// Opaque client tag echoed in every response about this job.
    pub tag: Option<String>,
}

/// Why a spec failed to parse or validate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad job spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn bad(msg: impl Into<String>) -> SpecError {
    SpecError(msg.into())
}

fn u64_field(j: &Json, key: &str) -> Result<Option<u64>, SpecError> {
    match j.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::U64(v)) => Ok(Some(*v)),
        Some(other) => {
            Err(bad(format!("field '{key}' must be an unsigned integer, got {other:?}")))
        }
    }
}

fn f64_field(j: &Json, key: &str) -> Result<Option<f64>, SpecError> {
    match j.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::F64(v)) => Ok(Some(*v)),
        Some(Json::U64(v)) => Ok(Some(*v as f64)),
        Some(other) => Err(bad(format!("field '{key}' must be a number, got {other:?}"))),
    }
}

fn str_field<'a>(j: &'a Json, key: &str) -> Result<Option<&'a str>, SpecError> {
    match j.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.as_str())),
        Some(other) => Err(bad(format!("field '{key}' must be a string, got {other:?}"))),
    }
}

impl JobSpec {
    /// Parse and validate a spec from its JSON object.
    pub fn from_json(j: &Json) -> Result<JobSpec, SpecError> {
        if !matches!(j, Json::Obj(_)) {
            return Err(bad("spec must be a JSON object"));
        }
        let app_name = str_field(j, "app")?.ok_or_else(|| bad("missing required field 'app'"))?;
        let app = *APPS
            .iter()
            .find(|a| **a == app_name)
            .ok_or_else(|| bad(format!("unknown app '{app_name}'; expected one of {APPS:?}")))?;

        let topology = match str_field(j, "topology")?.unwrap_or("multi_gpu") {
            "multi_gpu" => {
                let gpus = u64_field(j, "gpus")?.unwrap_or(2);
                if !(1..=64).contains(&gpus) {
                    return Err(bad(format!("'gpus' must be in 1..=64, got {gpus}")));
                }
                Topology::MultiGpu(gpus as u32)
            }
            "cluster" => {
                let nodes = u64_field(j, "nodes")?.unwrap_or(2);
                if !(2..=64).contains(&nodes) {
                    return Err(bad(format!("'nodes' must be in 2..=64, got {nodes}")));
                }
                Topology::Cluster(nodes as u32)
            }
            other => {
                return Err(bad(format!(
                    "unknown topology '{other}'; expected 'multi_gpu' or 'cluster'"
                )))
            }
        };

        let priority = u64_field(j, "priority")?.unwrap_or(PRIORITY_DEFAULT as u64);
        if priority > PRIORITY_MAX as u64 {
            return Err(bad(format!("'priority' must be in 0..={PRIORITY_MAX}, got {priority}")));
        }
        let retries = u64_field(j, "retries")?.unwrap_or(0);
        if retries > RETRIES_MAX as u64 {
            return Err(bad(format!("'retries' must be in 0..={RETRIES_MAX}, got {retries}")));
        }
        let fault_rate = f64_field(j, "fault_rate")?.unwrap_or(0.0);
        if !(0.0..1.0).contains(&fault_rate) {
            return Err(bad(format!("'fault_rate' must be in [0, 1), got {fault_rate}")));
        }

        Ok(JobSpec {
            app,
            topology,
            priority: priority as u8,
            deadline_ms: u64_field(j, "deadline_ms")?,
            retries: retries as u32,
            sched_seed: u64_field(j, "sched_seed")?,
            fault_seed: u64_field(j, "fault_seed")?.unwrap_or(1),
            fault_rate,
            tag: str_field(j, "tag")?.map(str::to_string),
        })
    }

    /// Parse a spec from JSON text.
    pub fn parse(text: &str) -> Result<JobSpec, SpecError> {
        let j = Json::parse(text).map_err(|e| bad(e.to_string()))?;
        JobSpec::from_json(&j)
    }

    /// The runtime configuration for attempt number `attempt` (0-based).
    ///
    /// When faults are armed, each retry bumps the fault seed by the
    /// attempt index: the re-run explores different fault coordinates —
    /// the whole point of retrying a deterministic simulation — while
    /// the `(spec, attempt)` pair still names the run exactly, so any
    /// attempt replays bit-for-bit.
    pub fn config(&self, attempt: u32) -> RuntimeConfig {
        let mut cfg = match self.topology {
            Topology::MultiGpu(gpus) => RuntimeConfig::multi_gpu(gpus),
            Topology::Cluster(nodes) => RuntimeConfig::gpu_cluster(nodes),
        };
        if let Some(seed) = self.sched_seed {
            cfg = cfg.with_sched_seed(seed);
        }
        if self.fault_rate > 0.0 {
            cfg = cfg.with_faults(self.fault_seed.wrapping_add(attempt as u64), self.fault_rate);
        }
        cfg
    }

    /// The spec as JSON (echoed in admission responses and used by the
    /// soak harness to re-run a job directly).
    pub fn to_json(&self) -> Json {
        let mut j = Json::object().field("app", self.app);
        match self.topology {
            Topology::MultiGpu(g) => {
                j = j.field("topology", "multi_gpu").field("gpus", g as u64);
            }
            Topology::Cluster(n) => {
                j = j.field("topology", "cluster").field("nodes", n as u64);
            }
        }
        j = j.field("priority", self.priority as u64).field("retries", self.retries as u64);
        if let Some(d) = self.deadline_ms {
            j = j.field("deadline_ms", d);
        }
        if let Some(s) = self.sched_seed {
            j = j.field("sched_seed", s);
        }
        if self.fault_rate > 0.0 {
            j = j.field("fault_seed", self.fault_seed).field("fault_rate", self.fault_rate);
        }
        if let Some(tag) = &self.tag {
            j = j.field("tag", tag.as_str());
        }
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_spec_fills_defaults() {
        let s = JobSpec::parse(r#"{"app": "stream"}"#).expect("minimal spec parses");
        assert_eq!(s.app, "stream");
        assert_eq!(s.topology, Topology::MultiGpu(2));
        assert_eq!(s.priority, PRIORITY_DEFAULT);
        assert_eq!(s.retries, 0);
        assert_eq!(s.fault_rate, 0.0);
        assert!(s.deadline_ms.is_none());
    }

    #[test]
    fn full_spec_round_trips_through_its_json() {
        let text = r#"{"app":"matmul","topology":"cluster","nodes":3,"priority":7,
                       "deadline_ms":500,"retries":2,"sched_seed":5,
                       "fault_seed":9,"fault_rate":0.05,"tag":"t1"}"#;
        let s = JobSpec::parse(text).expect("full spec parses");
        assert_eq!(s.topology, Topology::Cluster(3));
        assert_eq!(s.priority, 7);
        assert_eq!(s.deadline_ms, Some(500));
        let again = JobSpec::from_json(&s.to_json()).expect("echoed spec re-parses");
        assert_eq!(again, s);
    }

    #[test]
    fn bad_specs_reject_with_the_offending_field() {
        for (text, needle) in [
            (r#"{"topology":"cluster"}"#, "'app'"),
            (r#"{"app":"nosuch"}"#, "unknown app"),
            (r#"{"app":"stream","topology":"ring"}"#, "unknown topology"),
            (r#"{"app":"stream","priority":10}"#, "'priority'"),
            (r#"{"app":"stream","retries":99}"#, "'retries'"),
            (r#"{"app":"stream","fault_rate":1.5}"#, "'fault_rate'"),
            (r#"{"app":"stream","priority":"high"}"#, "'priority'"),
            (r#"[1,2]"#, "object"),
        ] {
            let e = JobSpec::parse(text).expect_err(text);
            assert!(e.to_string().contains(needle), "{text}: {e}");
        }
    }

    #[test]
    fn retry_attempts_explore_distinct_fault_seeds() {
        let s = JobSpec::parse(r#"{"app":"stream","fault_seed":10,"fault_rate":0.1}"#).unwrap();
        assert_eq!(s.config(0).fault_seed, 10);
        assert_eq!(s.config(2).fault_seed, 12);
        assert!(s.config(0).faults_enabled());
        // Fault-free specs never arm the plan, whatever the attempt.
        let quiet = JobSpec::parse(r#"{"app":"stream"}"#).unwrap();
        assert!(!quiet.config(3).faults_enabled());
    }
}
