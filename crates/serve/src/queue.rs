//! The bounded admission queue: priorities, aging fairness, load shed.
//!
//! The queue is the daemon's only buffer, and it is *bounded by
//! construction*: overload turns into explicit admission decisions —
//! reject the newcomer, or shed the least valuable queued job to make
//! room — never into unbounded memory growth.
//!
//! Ordering is by **effective priority**: the spec's base priority plus
//! one level per [`AGING_POPS`] pops waited. Aging gives a starvation
//! bound instead of a promise: a queued job's effective priority
//! eventually exceeds any newcomer's base, and ties break FIFO, so a
//! priority-`p` job waits at most on the jobs already ahead of it plus
//! the newcomers that can still outrank it while it ages — a bound the
//! soak harness asserts per pop (see `bin/serve.rs`).
//!
//! Everything is O(queue length) linear scans: the cap is small (tens
//! to hundreds), decisions must be deterministic, and a heap would buy
//! nothing but subtler tie-breaks.

use std::time::Instant;

use crate::spec::JobSpec;

/// Pops a queued job must wait to gain one effective priority level.
pub const AGING_POPS: u64 = 4;

/// One queued job with its admission bookkeeping.
#[derive(Debug, Clone)]
pub struct QueuedJob {
    /// Server-assigned job id.
    pub id: u64,
    /// The validated request.
    pub spec: JobSpec,
    /// Host-time deadline fixed at admission, if the spec set one.
    pub deadline: Option<Instant>,
    /// Host time of admission (queue-wait metrics).
    pub enqueued_at: Instant,
    /// Pop counter value at admission (aging reference point).
    enqueue_pops: u64,
    /// Pops this job waited before being popped; set by
    /// [`AdmitQueue::pop`].
    pub waited_pops: u64,
}

impl QueuedJob {
    /// Package a job for admission.
    pub fn new(id: u64, spec: JobSpec, deadline: Option<Instant>) -> QueuedJob {
        QueuedJob {
            id,
            spec,
            deadline,
            enqueued_at: Instant::now(),
            enqueue_pops: 0,
            waited_pops: 0,
        }
    }
}

/// Outcome of an admission attempt.
#[derive(Debug)]
pub enum Admit {
    /// Queued; there was room.
    Admitted,
    /// Queued after evicting `victim`, the lowest-effective-priority
    /// entry — the caller owes the victim its terminal response.
    Shed {
        /// The job removed to make room.
        victim: QueuedJob,
    },
    /// Queue full and the newcomer does not outrank anything queued.
    Rejected,
}

/// The bounded priority queue. Not internally synchronised — the server
/// wraps it in a mutex.
#[derive(Debug)]
pub struct AdmitQueue {
    cap: usize,
    /// Arrival order is index order; pops remove from anywhere.
    entries: Vec<QueuedJob>,
    pops: u64,
    peak: usize,
}

impl AdmitQueue {
    /// An empty queue admitting at most `cap` jobs (at least 1).
    pub fn new(cap: usize) -> AdmitQueue {
        AdmitQueue { cap: cap.max(1), entries: Vec::new(), pops: 0, peak: 0 }
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// High-water mark of [`len`](AdmitQueue::len).
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// The admission cap.
    pub fn cap(&self) -> usize {
        self.cap
    }

    fn effective(&self, e: &QueuedJob) -> u64 {
        e.spec.priority as u64 + (self.pops - e.enqueue_pops) / AGING_POPS
    }

    /// Admit `job`, shedding the weakest queued entry if the queue is
    /// full and the newcomer's *base* priority strictly exceeds that
    /// entry's *effective* priority (aging protects old queued work
    /// from being churned out by a stream of equal-priority arrivals).
    pub fn push(&mut self, mut job: QueuedJob) -> Admit {
        job.enqueue_pops = self.pops;
        if self.entries.len() < self.cap {
            self.entries.push(job);
            self.peak = self.peak.max(self.entries.len());
            return Admit::Admitted;
        }
        // Weakest = lowest effective priority; among ties the youngest
        // (highest index) loses, so aged entries keep their place.
        let weakest = (0..self.entries.len())
            .rev()
            .min_by_key(|&i| self.effective(&self.entries[i]))
            .expect("full queue has entries");
        if (job.spec.priority as u64) > self.effective(&self.entries[weakest]) {
            let victim = self.entries.remove(weakest);
            self.entries.push(job);
            Admit::Shed { victim }
        } else {
            Admit::Rejected
        }
    }

    /// Pop the highest-effective-priority job (FIFO among ties), with
    /// its `waited_pops` filled in.
    pub fn pop(&mut self) -> Option<QueuedJob> {
        let best = (0..self.entries.len()).max_by_key(|&i| {
            // Stable max: later entries win only on strictly greater
            // effective priority, so ties go to the earliest arrival.
            (self.effective(&self.entries[i]), usize::MAX - i)
        })?;
        let mut job = self.entries.remove(best);
        job.waited_pops = self.pops - job.enqueue_pops;
        self.pops += 1;
        Some(job)
    }

    /// Remove a queued job by id (client cancellation).
    pub fn remove(&mut self, id: u64) -> Option<QueuedJob> {
        let at = self.entries.iter().position(|e| e.id == id)?;
        Some(self.entries.remove(at))
    }

    /// Take every queued job (shutdown drain), oldest first.
    pub fn drain_all(&mut self) -> Vec<QueuedJob> {
        std::mem::take(&mut self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(priority: u8) -> JobSpec {
        let mut s = JobSpec::parse(r#"{"app":"stream"}"#).expect("test spec");
        s.priority = priority;
        s
    }

    fn job(id: u64, priority: u8) -> QueuedJob {
        QueuedJob::new(id, spec(priority), None)
    }

    #[test]
    fn pops_by_priority_then_fifo() {
        let mut q = AdmitQueue::new(8);
        for (id, p) in [(1, 3), (2, 7), (3, 3), (4, 7)] {
            assert!(matches!(q.push(job(id, p)), Admit::Admitted));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|j| j.id).collect();
        assert_eq!(order, vec![2, 4, 1, 3], "priority first, FIFO within a level");
    }

    #[test]
    fn aging_promotes_a_starved_job() {
        let mut q = AdmitQueue::new(16);
        q.push(job(1, 0)); // the starved low-priority job
                           // Feed and pop priority-5 work; each pop ages job 1 by 1/AGING.
        let mut next = 2;
        for _ in 0..5 * AGING_POPS {
            q.push(job(next, 5));
            let popped = q.pop().expect("queue non-empty");
            assert_ne!(popped.id, 1, "not yet aged past priority 5");
            next += 1;
        }
        // One more round: job 1's effective priority is now 5 and it is
        // the oldest entry, so it wins the tie against any newcomer.
        q.push(job(next, 5));
        let popped = q.pop().expect("queue non-empty");
        assert_eq!(popped.id, 1, "aging must eventually win");
        assert_eq!(popped.waited_pops, 5 * AGING_POPS);
    }

    #[test]
    fn full_queue_sheds_the_weakest_for_a_stronger_newcomer() {
        let mut q = AdmitQueue::new(2);
        q.push(job(1, 5));
        q.push(job(2, 1));
        match q.push(job(3, 8)) {
            Admit::Shed { victim } => assert_eq!(victim.id, 2, "lowest effective priority sheds"),
            other => panic!("expected shed, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().expect("entries").id, 3);
    }

    #[test]
    fn full_queue_rejects_a_newcomer_that_outranks_nothing() {
        let mut q = AdmitQueue::new(2);
        q.push(job(1, 5));
        q.push(job(2, 5));
        // Equal priority does not shed: strict inequality protects
        // queued work from churn by an equal-priority arrival stream.
        assert!(matches!(q.push(job(3, 5)), Admit::Rejected));
        assert!(matches!(q.push(job(4, 2)), Admit::Rejected));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn shed_ties_take_the_youngest() {
        let mut q = AdmitQueue::new(2);
        q.push(job(1, 1));
        q.push(job(2, 1));
        match q.push(job(3, 9)) {
            Admit::Shed { victim } => assert_eq!(victim.id, 2, "older equal entry survives"),
            other => panic!("expected shed, got {other:?}"),
        }
    }

    #[test]
    fn remove_and_drain() {
        let mut q = AdmitQueue::new(4);
        for id in 1..=3 {
            q.push(job(id, 4));
        }
        assert_eq!(q.remove(2).expect("queued").id, 2);
        assert!(q.remove(2).is_none(), "removal is once");
        let rest: Vec<u64> = q.drain_all().into_iter().map(|j| j.id).collect();
        assert_eq!(rest, vec![1, 3]);
        assert!(q.is_empty());
        assert_eq!(q.peak(), 3);
    }
}
