//! serve — the ompss simulation daemon.
//!
//! ```text
//! serve                          # line protocol on stdin/stdout
//! serve --socket PATH            # daemon on a Unix socket, one client per connection
//! serve --soak [N]               # in-process robustness soak (default 500 jobs)
//! serve --bench [--check]        # daemon throughput baseline / regression gate
//! ```
//!
//! Common flags: `--jobs N` (worker threads), `--queue-cap N`.
//!
//! The protocol is one JSON object per line in each direction; see
//! [`ompss_serve::serve_connection`]. The soak and bench modes are the
//! CI faces of the daemon: `./ci.sh serve` runs the soak, `./ci.sh
//! bench` runs `--bench --check` against the committed
//! `BENCH_serve.json`.

use std::collections::HashMap;
use std::io::BufReader;
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ompss_json::{Json, ToJson};
use ompss_serve::{
    serve_connection, Event, EventKind, JobSpec, ServeConfig, Server, Sink, AGING_POPS,
    PRIORITY_MAX,
};

/// Soak: the committed peak-RSS ceiling. The daemon's whole point is
/// bounded memory under overload; blowing this is a failed soak.
const SOAK_RSS_LIMIT_BYTES: u64 = 1 << 30; // 1 GiB

/// Soak: per-pop fairness bound on queue wait, in pops. A queued job
/// ages one priority level per [`AGING_POPS`] pops, so after
/// `PRIORITY_MAX * AGING_POPS` pops it outranks every possible
/// newcomer base priority; what remains ahead of it is bounded by the
/// queue capacity plus the newcomers admitted while it aged (at most
/// one per pop during the aging window). `3 *` leaves slack for
/// tie-break noise without ever letting true starvation pass.
fn fairness_bound(queue_cap: usize) -> u64 {
    queue_cap as u64 + 3 * PRIORITY_MAX as u64 * AGING_POPS
}

/// Bench: `--check` fails when throughput drops below baseline by more
/// than this factor.
const REGRESSION_HEADROOM: f64 = 1.20;

/// Bench: jobs pushed through the daemon.
const BENCH_JOBS: usize = 96;

/// Peak resident set size of this process so far, in bytes (Linux
/// `VmHWM`; 0 where unavailable).
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|kb| kb.parse::<u64>().ok())
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

/// Path of the committed baseline: `<workspace>/BENCH_serve.json`.
fn bench_path() -> std::path::PathBuf {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(m) => std::path::Path::new(&m).join("../../BENCH_serve.json"),
        Err(_) => std::path::PathBuf::from("BENCH_serve.json"),
    }
}

/// Deterministic 64-bit xorshift for the soak's job mix.
fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// Everything the soak records about the event stream, keyed by id.
#[derive(Default)]
struct SoakLog {
    /// Terminal event names per job (must end at exactly one each).
    terminals: HashMap<u64, Vec<&'static str>>,
    /// Worst queue wait seen in any `started` event, in pops.
    max_waited_pops: u64,
    /// `(id, attempts, report bytes)` of completed jobs, for the
    /// determinism re-run sample.
    results: Vec<(u64, u32, String)>,
}

fn terminal_name(kind: &EventKind) -> Option<&'static str> {
    Some(match kind {
        EventKind::Result { .. } => "result",
        EventKind::Rejected { reason } => reason,
        EventKind::Cancelled => "cancelled",
        EventKind::DeadlineExceeded => "deadline_exceeded",
        EventKind::Failed { .. } => "failed",
        EventKind::Admitted { .. } | EventKind::Started { .. } | EventKind::Retrying { .. } => {
            return None
        }
    })
}

fn soak_sink(log: Arc<Mutex<SoakLog>>) -> Sink {
    Arc::new(move |ev: &Event| {
        let mut log = log.lock().expect("soak log");
        if let EventKind::Started { waited_pops, .. } = ev.kind {
            log.max_waited_pops = log.max_waited_pops.max(waited_pops);
        }
        if let EventKind::Result { attempts, ref report, .. } = ev.kind {
            log.results.push((ev.id, attempts, report.to_compact_string()));
        }
        if let Some(name) = terminal_name(&ev.kind) {
            log.terminals.entry(ev.id).or_default().push(name);
        }
    })
}

/// The soak's deterministic job mix: mostly cheap fault-free stream
/// runs, salted with other apps, cluster topologies, zero deadlines,
/// faulty-with-retries specs and occasional hopeless fault rates.
fn soak_spec(i: usize, rng: &mut u64) -> JobSpec {
    let app = if i % 7 == 3 {
        ompss_chaos::APPS[xorshift(rng) as usize % ompss_chaos::APPS.len()]
    } else {
        "stream"
    };
    let mut j = Json::object()
        .field("app", app)
        .field("priority", xorshift(rng) % 10)
        .field("tag", format!("soak-{i}"));
    if i % 23 == 11 {
        j = j.field("topology", "cluster").field("nodes", 2u64);
    }
    if i % 13 == 5 {
        // Already expired on admission: must terminate as
        // deadline_exceeded unless a worker wins the race.
        j = j.field("deadline_ms", 0u64);
    }
    if i % 19 == 7 {
        j = j.field("fault_rate", 0.02).field("fault_seed", xorshift(rng)).field("retries", 2u64);
    }
    if i % 29 == 13 {
        j = j.field("fault_rate", 0.45).field("fault_seed", xorshift(rng)).field("retries", 1u64);
    }
    JobSpec::from_json(&j).expect("soak specs are well-formed")
}

/// Malformed specs the soak interleaves to prove bad requests are
/// rejected at the door and never become jobs.
const BAD_SPECS: [&str; 4] = [
    r#"{"topology":"cluster"}"#,
    r#"{"app":"nosuch"}"#,
    r#"{"app":"stream","priority":99}"#,
    r#"{"app":"stream","fault_rate":2.0}"#,
];

fn run_soak(n: usize) -> i32 {
    let queue_cap = 16;
    let cfg = ServeConfig { queue_cap, ..ServeConfig::default() };
    let workers = cfg.workers;
    println!("serve soak: {n} jobs, {workers} worker(s), queue cap {queue_cap}");
    let server = Server::new(cfg);
    let log: Arc<Mutex<SoakLog>> = Arc::default();
    let sink = soak_sink(log.clone());
    let mut rng = 0x5eed_5e12_feed_f00d_u64;
    let mut specs: HashMap<u64, JobSpec> = HashMap::new();
    let mut bad_rejected = 0usize;
    let mut submitted = 0usize;
    let mut violations: Vec<String> = Vec::new();

    let t0 = Instant::now();
    for i in 0..n {
        if i % 11 == 4 {
            // A malformed request: must fail validation, never queue.
            let text = BAD_SPECS[xorshift(&mut rng) as usize % BAD_SPECS.len()];
            match JobSpec::parse(text) {
                Err(_) => bad_rejected += 1,
                Ok(_) => violations.push(format!("bad spec parsed: {text}")),
            }
            continue;
        }
        let spec = soak_spec(i, &mut rng);
        let id = server.submit(spec.clone(), sink.clone());
        specs.insert(id, spec);
        submitted += 1;
        if i % 17 == 9 {
            // Cancel immediately; terminal may be `cancelled` or a
            // result the worker already raced to — both are legal.
            server.cancel(id);
        }
        // Pace most submissions so a healthy share completes, but let
        // every fourth batch of 24 arrive as an unthrottled burst: 24
        // near-instant arrivals against a cap of 16 and `workers`
        // in-flight slots must overrun admission, forcing the
        // queue-full / load-shed paths the soak exists to exercise.
        let burst = (i / 24) % 4 == 3;
        if !burst {
            while submitted - log.lock().expect("log").terminals.len() > workers {
                std::thread::sleep(Duration::from_micros(100));
            }
        }
    }
    // Drain while work is still queued: queued jobs must terminate as
    // rejected("draining"), in-flight jobs must finish.
    let counters = server.counters();
    server.shutdown();
    let wall = t0.elapsed().as_secs_f64();

    let log = log.lock().expect("soak log");

    // 1. Exactly one terminal per submitted job.
    for (&id, names) in &log.terminals {
        if names.len() != 1 {
            violations.push(format!("job {id} got {} terminals: {names:?}", names.len()));
        }
    }
    if log.terminals.len() != submitted {
        violations.push(format!(
            "{} jobs submitted but {} got a terminal event",
            submitted,
            log.terminals.len()
        ));
    }

    // 2. Fairness: no started job waited past the aging bound.
    let bound = fairness_bound(queue_cap);
    if log.max_waited_pops > bound {
        violations
            .push(format!("fairness: a job waited {} pops (bound {bound})", log.max_waited_pops));
    }

    // 3. Determinism: first-attempt results must be byte-identical to a
    //    direct run of the same spec.
    let mut checked = 0;
    for (id, attempts, report) in log.results.iter() {
        if *attempts != 1 || checked >= 20 {
            continue;
        }
        let spec = &specs[id];
        let direct = ompss_chaos::try_run_app(spec.app, spec.config(0))
            .unwrap_or_else(|e| panic!("direct re-run of job {id} failed: {e}"));
        let direct_bytes = direct
            .report
            .as_ref()
            .map(|r| r.to_json().to_compact_string())
            .unwrap_or_else(|| Json::object().to_compact_string());
        if direct_bytes != *report {
            violations.push(format!("job {id}: served report differs from direct run"));
        }
        checked += 1;
    }

    // 4. Bounded memory.
    let rss = peak_rss_bytes();
    if rss > SOAK_RSS_LIMIT_BYTES {
        violations.push(format!(
            "peak RSS {} MiB exceeds the committed {} MiB limit",
            rss >> 20,
            SOAK_RSS_LIMIT_BYTES >> 20
        ));
    }

    let mut by_kind: HashMap<&str, usize> = HashMap::new();
    for names in log.terminals.values() {
        for name in names {
            *by_kind.entry(name).or_default() += 1;
        }
    }
    let snap = counters.snapshot();
    let mut terminals = Json::object();
    let mut kinds: Vec<_> = by_kind.iter().collect();
    kinds.sort();
    for (name, count) in kinds {
        terminals = terminals.field(name, *count as u64);
    }
    let summary = Json::object()
        .field("soak_jobs", submitted as u64)
        .field("bad_specs_rejected", bad_rejected as u64)
        .field("wall_s", wall)
        .field("terminals", terminals)
        .field("max_waited_pops", log.max_waited_pops)
        .field("fairness_bound", bound)
        .field("determinism_checked", checked as u64)
        .field("peak_rss_mib", rss >> 20)
        .field("counters", snap.to_json());
    println!("{}", summary.to_pretty_string());

    // The soak must actually have exercised the overload machinery.
    if snap.serve_rejected == 0 && snap.serve_shed == 0 {
        violations.push("soak never hit admission control; lower the cap or raise n".into());
    }
    if snap.serve_completed == 0 {
        violations.push("soak completed no jobs".into());
    }

    if violations.is_empty() {
        println!("serve soak: OK");
        0
    } else {
        for v in &violations {
            eprintln!("serve soak: VIOLATION: {v}");
        }
        1
    }
}

/// Pull a numeric field out of a committed `BENCH_serve.json`.
fn baseline_field(text: &str, key: &str) -> Option<f64> {
    match Json::parse(text).ok()?.get(key)? {
        Json::F64(v) => Some(*v),
        Json::U64(v) => Some(*v as f64),
        _ => None,
    }
}

fn run_bench(check: bool) -> i32 {
    let cfg = ServeConfig { queue_cap: BENCH_JOBS, ..ServeConfig::default() };
    let workers = cfg.workers;
    println!("serve bench: {BENCH_JOBS} jobs, {workers} worker(s)");
    let server = Server::new(cfg);

    let waits: Arc<Mutex<Vec<Duration>>> = Arc::default();
    let done: Arc<Mutex<usize>> = Arc::default();
    let submitted_at: Arc<Mutex<HashMap<u64, Instant>>> = Arc::default();
    let sink: Sink = {
        let waits = waits.clone();
        let done = done.clone();
        let submitted_at = submitted_at.clone();
        Arc::new(move |ev: &Event| {
            if let EventKind::Started { .. } = ev.kind {
                if let Some(t) = submitted_at.lock().expect("submits").get(&ev.id) {
                    waits.lock().expect("waits").push(t.elapsed());
                }
            }
            if ev.is_terminal() {
                *done.lock().expect("done") += 1;
            }
        })
    };

    let spec = JobSpec::parse(r#"{"app":"stream"}"#).expect("bench spec");
    let t0 = Instant::now();
    for _ in 0..BENCH_JOBS {
        let before = Instant::now();
        let id = server.submit(spec.clone(), sink.clone());
        submitted_at.lock().expect("submits").insert(id, before);
    }
    while *done.lock().expect("done") < BENCH_JOBS {
        assert!(t0.elapsed() < Duration::from_secs(600), "bench stalled");
        std::thread::sleep(Duration::from_millis(1));
    }
    let wall = t0.elapsed().as_secs_f64();
    server.shutdown();

    let jobs_per_sec = BENCH_JOBS as f64 / wall;
    let mut waits: Vec<u64> =
        waits.lock().expect("waits").iter().map(|d| d.as_micros() as u64).collect();
    waits.sort_unstable();
    let pct = |p: f64| waits[((waits.len() - 1) as f64 * p) as usize];
    let (p50, p99) = (pct(0.50), pct(0.99));
    println!("  jobs/s      {jobs_per_sec:>10.2}");
    println!("  queue wait  p50 {p50} us, p99 {p99} us");

    let path = bench_path();
    let baseline =
        std::fs::read_to_string(&path).ok().and_then(|t| baseline_field(&t, "jobs_per_sec"));
    if let Some(b) = baseline {
        println!("  baseline    {b:>10.2} jobs/s ({:+.1}%)", (jobs_per_sec / b - 1.0) * 100.0);
    }

    if check {
        let b = baseline
            .unwrap_or_else(|| panic!("--check needs a committed baseline at {}", path.display()));
        if jobs_per_sec * REGRESSION_HEADROOM < b {
            eprintln!(
                "serve bench: {jobs_per_sec:.2} jobs/s is more than {:.0}% below baseline {b:.2}",
                (REGRESSION_HEADROOM - 1.0) * 100.0
            );
            return 1;
        }
        println!("serve bench: within {:.0}% of baseline", (REGRESSION_HEADROOM - 1.0) * 100.0);
        return 0;
    }

    let doc = Json::object()
        .field("bench", "serve")
        .field("jobs", BENCH_JOBS as u64)
        .field("workers", workers as u64)
        .field("jobs_per_sec", jobs_per_sec)
        .field("wait_p50_us", p50)
        .field("wait_p99_us", p99);
    std::fs::write(&path, doc.to_pretty_string() + "\n").expect("write BENCH_serve.json");
    println!("serve bench: wrote {}", path.display());
    0
}

fn run_stdin(cfg: ServeConfig) {
    let server = Server::new(cfg);
    let stdin = std::io::stdin().lock();
    let stdout = std::io::stdout();
    let wants_shutdown = serve_connection(&server, stdin, stdout);
    if !wants_shutdown {
        // Plain EOF (a piped client): deliver every outstanding result
        // before exiting. An explicit shutdown op drains instead.
        server.quiesce();
    }
    server.shutdown();
}

fn run_socket(path: &str, cfg: ServeConfig) {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)
        .unwrap_or_else(|e| panic!("serve: cannot bind socket {path}: {e}"));
    println!("serve: listening on {path}");
    let server = Server::new(cfg);
    let stop = AtomicBool::new(false);
    let conns: Mutex<Vec<UnixStream>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for stream in listener.incoming() {
            if stop.load(Relaxed) {
                break;
            }
            let Ok(stream) = stream else { break };
            conns.lock().expect("conns").push(stream.try_clone().expect("clone unix stream"));
            let (server, stop, conns) = (&server, &stop, &conns);
            s.spawn(move || {
                let reader = BufReader::new(stream.try_clone().expect("clone unix stream"));
                if serve_connection(server, reader, stream) {
                    stop.store(true, Relaxed);
                    // Hang up every open connection so its handler
                    // thread sees EOF, then poke the accept loop awake.
                    for c in conns.lock().expect("conns").iter() {
                        let _ = c.shutdown(std::net::Shutdown::Both);
                    }
                    let _ = UnixStream::connect(path);
                }
            });
        }
    });
    let _ = std::fs::remove_file(path);
    server.shutdown();
    println!("serve: drained, bye");
}

fn main() {
    // Panics inside simulated processes (fault injection tripping an
    // `expect` in app code) are caught by the sim engine and surfaced
    // as structured `RunError::ProcessPanic` results; the default
    // hook's backtrace spam would drown the protocol stream. Keep one
    // diagnostic line per panic instead.
    std::panic::set_hook(Box::new(|info| {
        let thread = std::thread::current().name().unwrap_or("?").to_string();
        eprintln!("serve: panic in {thread}: {info}");
    }));
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = ompss_sweep::parse_jobs_flag(&mut args);

    let mut queue_cap: Option<usize> = None;
    let mut socket: Option<String> = None;
    let mut soak: Option<usize> = None;
    let mut bench = false;
    let mut check = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--queue-cap" => {
                queue_cap = Some(
                    args.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--queue-cap needs a positive integer")),
                );
                i += 2;
            }
            "--socket" => {
                socket = Some(
                    args.get(i + 1).unwrap_or_else(|| panic!("--socket needs a path")).clone(),
                );
                i += 2;
            }
            "--soak" => {
                let n = args.get(i + 1).and_then(|v| v.parse().ok());
                soak = Some(n.unwrap_or(500));
                i += if n.is_some() { 2 } else { 1 };
            }
            "--bench" => {
                bench = true;
                i += 1;
            }
            "--check" => {
                check = true;
                i += 1;
            }
            other => panic!(
                "serve: unknown flag '{other}'; usage: serve [--jobs N] [--queue-cap N] \
                 [--socket PATH | --soak [N] | --bench [--check]]"
            ),
        }
    }

    let mut cfg = ServeConfig { workers: jobs, ..ServeConfig::default() };
    if let Some(cap) = queue_cap {
        cfg.queue_cap = cap;
    }

    if let Some(n) = soak {
        std::process::exit(run_soak(n));
    }
    if bench {
        std::process::exit(run_bench(check));
    }
    match socket {
        Some(path) => run_socket(&path, cfg),
        None => run_stdin(cfg),
    }
}
