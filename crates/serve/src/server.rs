//! The job server: admission, scheduling, execution, response routing.
//!
//! A [`Server`] owns the bounded [`AdmitQueue`] and a fixed
//! [`WorkerPool`]; clients hand it validated [`JobSpec`]s with a
//! [`Sink`] to receive that job's [`Event`] stream. The contract every
//! harness (and the soak stage) leans on:
//!
//! * **Exactly one terminal event per job.** `result`, `rejected`,
//!   `cancelled`, `deadline_exceeded` or `failed` — never zero, never
//!   two. The guard is structural: terminal emission removes the job's
//!   routing entry, and every path goes through that removal.
//! * **Admission is the only buffer.** A full queue rejects (or sheds
//!   the weakest queued job for a strictly stronger newcomer); memory
//!   is bounded by `queue_cap` plus one in-flight job per worker.
//! * **Runs are bit-reproducible.** A worker executes `(spec, attempt)`
//!   through the same deterministic simulator as a direct
//!   [`ompss_chaos::try_run_app`] call, so the streamed `RunReport` is
//!   byte-identical to an offline run of the same spec.
//! * **Degradation is graceful.** Overload sheds lowest-priority work
//!   with an explicit terminal response; shutdown drains in-flight jobs
//!   and terminally rejects what was still queued.

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use ompss_json::{Json, ToJson};
use ompss_runtime::{Backoff, Counters, RunError, SimDuration};
use ompss_sweep::{CancelToken, WorkerPool};

use crate::queue::{Admit, AdmitQueue, QueuedJob};
use crate::spec::JobSpec;

/// Server tuning.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Admission-queue bound.
    pub queue_cap: usize,
    /// First retry wait; doubles per retry ([`Backoff`]), mapped onto
    /// host time.
    pub retry_backoff: SimDuration,
    /// Ceiling on any single retry wait.
    pub retry_backoff_cap: SimDuration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: ompss_sweep::jobs(),
            queue_cap: 64,
            retry_backoff: SimDuration::from_millis(1),
            retry_backoff_cap: SimDuration::from_millis(100),
        }
    }
}

/// One protocol message about one job.
#[derive(Debug, Clone)]
pub struct Event {
    /// Server-assigned job id.
    pub id: u64,
    /// The spec's client tag, echoed verbatim.
    pub tag: Option<String>,
    /// What happened.
    pub kind: EventKind,
}

/// The event payload. Five of these are terminal (see
/// [`Event::is_terminal`]); `admitted`, `started` and `retrying` are
/// progress.
#[derive(Debug, Clone)]
pub enum EventKind {
    /// Queued; carries the depth after admission.
    Admitted {
        /// Queue depth including this job.
        queue_depth: u64,
    },
    /// A worker began attempt `attempt` (0-based).
    Started {
        /// 0-based attempt index.
        attempt: u32,
        /// Pops this job waited in the queue (fairness gauge).
        waited_pops: u64,
    },
    /// Attempt `attempt` failed retryably; another follows.
    Retrying {
        /// The attempt that failed.
        attempt: u32,
        /// The failure's `Display` line.
        error: String,
    },
    /// Terminal: the job completed.
    Result {
        /// Attempts consumed (≥ 1).
        attempts: u32,
        /// Virtual makespan of the measured phase, nanoseconds.
        elapsed_ns: u64,
        /// The app's figure metric (GFLOPS / GB/s / Mpixels/s).
        metric: f64,
        /// The full `RunReport` as JSON — byte-identical to a direct
        /// run of the same `(spec, attempt)`.
        report: Json,
    },
    /// Terminal: never ran. `reason` is `"queue_full"`, `"load_shed"`
    /// or `"draining"`.
    Rejected {
        /// Why admission refused or revoked the job.
        reason: &'static str,
    },
    /// Terminal: cancelled by the client before running.
    Cancelled,
    /// Terminal: the deadline passed while queued or between attempts.
    DeadlineExceeded,
    /// Terminal: the run failed and no retry was allowed.
    Failed {
        /// Attempts consumed (≥ 1).
        attempts: u32,
        /// The terminal failure's `Display` line.
        error: String,
    },
}

impl Event {
    /// Whether this event ends the job's stream.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self.kind,
            EventKind::Result { .. }
                | EventKind::Rejected { .. }
                | EventKind::Cancelled
                | EventKind::DeadlineExceeded
                | EventKind::Failed { .. }
        )
    }

    /// The protocol line for this event.
    pub fn to_json(&self) -> Json {
        let name = match &self.kind {
            EventKind::Admitted { .. } => "admitted",
            EventKind::Started { .. } => "started",
            EventKind::Retrying { .. } => "retrying",
            EventKind::Result { .. } => "result",
            EventKind::Rejected { .. } => "rejected",
            EventKind::Cancelled => "cancelled",
            EventKind::DeadlineExceeded => "deadline_exceeded",
            EventKind::Failed { .. } => "failed",
        };
        let mut j = Json::object().field("event", name).field("id", self.id);
        if let Some(tag) = &self.tag {
            j = j.field("tag", tag.as_str());
        }
        match &self.kind {
            EventKind::Admitted { queue_depth } => j.field("queue_depth", *queue_depth),
            EventKind::Started { attempt, waited_pops } => {
                j.field("attempt", *attempt as u64).field("waited_pops", *waited_pops)
            }
            EventKind::Retrying { attempt, error } => {
                j.field("attempt", *attempt as u64).field("error", error.as_str())
            }
            EventKind::Result { attempts, elapsed_ns, metric, report } => j
                .field("attempts", *attempts as u64)
                .field("elapsed_ns", *elapsed_ns)
                .field("metric", *metric)
                .field("report", report.clone()),
            EventKind::Rejected { reason } => j.field("reason", *reason),
            EventKind::Cancelled | EventKind::DeadlineExceeded => j,
            EventKind::Failed { attempts, error } => {
                j.field("attempts", *attempts as u64).field("error", error.as_str())
            }
        }
    }
}

/// Receives one job's events. Called from submit and worker threads;
/// must not block for long.
pub type Sink = Arc<dyn Fn(&Event) + Send + Sync>;

/// What a completed run hands back to the server.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The `RunReport` as JSON.
    pub report: Json,
    /// Figure metric.
    pub metric: f64,
    /// Virtual makespan, nanoseconds.
    pub elapsed_ns: u64,
}

/// Executes one `(spec, attempt)`. The default ([`sim_runner`]) runs
/// the real simulator; tests inject failure scripts.
pub type Runner = Arc<dyn Fn(&JobSpec, u32) -> Result<RunOutcome, RunError> + Send + Sync>;

/// The production runner: the same validation-scale app dispatch the
/// chaos harness uses, so a served job is bit-identical to a direct
/// [`ompss_chaos::try_run_app`] of the same configuration.
pub fn sim_runner() -> Runner {
    Arc::new(|spec, attempt| {
        let run = ompss_chaos::try_run_app(spec.app, spec.config(attempt))?;
        let report = run.report.as_ref().map(|r| r.to_json()).unwrap_or_else(Json::object);
        Ok(RunOutcome { report, metric: run.metric, elapsed_ns: run.elapsed.as_nanos() })
    })
}

/// Routing entry for one live job; removing it *is* the exactly-once
/// terminal guard.
struct JobState {
    sink: Sink,
    token: CancelToken,
}

struct Shared {
    cfg: ServeConfig,
    queue: Mutex<AdmitQueue>,
    ready: Condvar,
    counters: Arc<Counters>,
    next_id: AtomicU64,
    jobs: Mutex<HashMap<u64, JobState>>,
    draining: AtomicBool,
    runner: Runner,
}

impl Shared {
    /// Send a progress event if the job is still live.
    fn emit(&self, id: u64, tag: &Option<String>, kind: EventKind) {
        let sink = self.jobs.lock().get(&id).map(|s| s.sink.clone());
        if let Some(sink) = sink {
            sink(&Event { id, tag: tag.clone(), kind });
        }
    }

    /// Send the job's one terminal event and retire its routing entry.
    /// A second call for the same id is a silent no-op — the entry is
    /// gone — which is exactly the once-semantics the protocol promises.
    fn emit_terminal(&self, id: u64, tag: &Option<String>, kind: EventKind) {
        let state = self.jobs.lock().remove(&id);
        if let Some(state) = state {
            let ev = Event { id, tag: tag.clone(), kind };
            debug_assert!(ev.is_terminal());
            (state.sink)(&ev);
        }
    }

    fn expired(job: &QueuedJob) -> bool {
        job.deadline.is_some_and(|d| Instant::now() > d)
    }

    /// Worker-side execution of one popped job: deadline and
    /// cancellation checks between attempts, deterministic backoff
    /// between retries.
    fn run_job(&self, job: QueuedJob) {
        let id = job.id;
        let tag = job.spec.tag.clone();
        let token = match self.jobs.lock().get(&id) {
            Some(s) => s.token.clone(),
            // Already terminal (a cancel raced the pop) — nothing owed.
            None => return,
        };
        let retries = job.spec.retries;
        let mut backoff = Backoff::exponential(self.cfg.retry_backoff, retries)
            .capped(self.cfg.retry_backoff_cap);
        let mut attempt = 0u32;
        loop {
            if token.is_cancelled() {
                Counters::add(&self.counters.serve_cancelled, 1);
                self.emit_terminal(id, &tag, EventKind::Cancelled);
                return;
            }
            if Shared::expired(&job) {
                Counters::add(&self.counters.serve_deadlines, 1);
                self.emit_terminal(id, &tag, EventKind::DeadlineExceeded);
                return;
            }
            self.emit(id, &tag, EventKind::Started { attempt, waited_pops: job.waited_pops });
            match (self.runner)(&job.spec, attempt) {
                Ok(out) => {
                    Counters::add(&self.counters.serve_completed, 1);
                    self.emit_terminal(
                        id,
                        &tag,
                        EventKind::Result {
                            attempts: attempt + 1,
                            elapsed_ns: out.elapsed_ns,
                            metric: out.metric,
                            report: out.report,
                        },
                    );
                    return;
                }
                Err(e) if e.is_retryable() && attempt < retries => {
                    Counters::add(&self.counters.serve_retries, 1);
                    self.emit(id, &tag, EventKind::Retrying { attempt, error: e.to_string() });
                    if let Some(wait) = backoff.next() {
                        std::thread::sleep(Duration::from_nanos(wait.as_nanos()));
                    }
                    attempt += 1;
                }
                Err(e) => {
                    Counters::add(&self.counters.serve_failed, 1);
                    self.emit_terminal(
                        id,
                        &tag,
                        EventKind::Failed { attempts: attempt + 1, error: e.to_string() },
                    );
                    return;
                }
            }
        }
    }

    /// Worker loop body: pop-or-park until draining empties the queue.
    fn worker_loop(self: &Arc<Self>) {
        loop {
            let job = {
                let mut q = self.queue.lock();
                loop {
                    if let Some(j) = q.pop() {
                        break Some(j);
                    }
                    if self.draining.load(Relaxed) {
                        break None;
                    }
                    self.ready.wait(&mut q);
                }
            };
            match job {
                Some(job) => self.run_job(job),
                None => return,
            }
        }
    }
}

/// The daemon. Dropping it drains: queued jobs are terminally rejected
/// with reason `"draining"`, in-flight jobs finish, workers join.
pub struct Server {
    shared: Arc<Shared>,
    pool: Option<WorkerPool>,
}

impl Server {
    /// Start a server with the production simulator runner.
    pub fn new(cfg: ServeConfig) -> Server {
        Server::with_runner(cfg, sim_runner())
    }

    /// Start a server executing jobs through `runner` (tests inject
    /// scripted outcomes; everything else about admission, retry and
    /// response routing is the production path).
    pub fn with_runner(cfg: ServeConfig, runner: Runner) -> Server {
        let shared = Arc::new(Shared {
            queue: Mutex::new(AdmitQueue::new(cfg.queue_cap)),
            ready: Condvar::new(),
            counters: Arc::new(Counters::new()),
            next_id: AtomicU64::new(0),
            jobs: Mutex::new(HashMap::new()),
            draining: AtomicBool::new(false),
            runner,
            cfg,
        });
        let pool = WorkerPool::new("serve", shared.cfg.workers);
        for _ in 0..pool.threads() {
            let shared = shared.clone();
            pool.submit(move || shared.worker_loop());
        }
        Server { shared, pool: Some(pool) }
    }

    /// The counter registry (shared with the protocol `stats` op).
    pub fn counters(&self) -> Arc<Counters> {
        self.shared.counters.clone()
    }

    /// Submit a job; its events flow to `sink`. Returns the assigned
    /// id. The admission outcome (`admitted` or a terminal `rejected`)
    /// is delivered through the sink before this returns.
    pub fn submit(&self, spec: JobSpec, sink: Sink) -> u64 {
        let shared = &self.shared;
        let id = shared.next_id.fetch_add(1, Relaxed) + 1;
        let tag = spec.tag.clone();
        shared.jobs.lock().insert(id, JobState { sink, token: CancelToken::new() });
        if shared.draining.load(Relaxed) {
            Counters::add(&shared.counters.serve_rejected, 1);
            shared.emit_terminal(id, &tag, EventKind::Rejected { reason: "draining" });
            return id;
        }
        let deadline = spec.deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
        let job = QueuedJob::new(id, spec, deadline);
        let (admitted_depth, victim) = {
            let mut q = shared.queue.lock();
            match q.push(job) {
                Admit::Admitted => (Some(q.len() as u64), None),
                Admit::Shed { victim } => (Some(q.len() as u64), Some(victim)),
                Admit::Rejected => (None, None),
            }
        };
        match admitted_depth {
            Some(depth) => {
                Counters::add(&shared.counters.serve_admitted, 1);
                Counters::raise(&shared.counters.serve_queue_peak, depth);
                if let Some(victim) = victim {
                    Counters::add(&shared.counters.serve_shed, 1);
                    shared.emit_terminal(
                        victim.id,
                        &victim.spec.tag,
                        EventKind::Rejected { reason: "load_shed" },
                    );
                }
                // Admitted goes out before the wakeup so a client never
                // sees `started` ahead of its admission.
                shared.emit(id, &tag, EventKind::Admitted { queue_depth: depth });
                shared.ready.notify_one();
            }
            None => {
                Counters::add(&shared.counters.serve_rejected, 1);
                shared.emit_terminal(id, &tag, EventKind::Rejected { reason: "queue_full" });
            }
        }
        id
    }

    /// Cancel a job. A still-queued job is removed and terminally
    /// `cancelled` immediately; a running job observes the token at its
    /// next attempt boundary (a simulation run is never interrupted
    /// mid-flight). Returns false when the id is unknown or already
    /// terminal.
    pub fn cancel(&self, id: u64) -> bool {
        let shared = &self.shared;
        let Some(token) = shared.jobs.lock().get(&id).map(|s| s.token.clone()) else {
            return false;
        };
        token.cancel();
        let removed = shared.queue.lock().remove(id);
        if let Some(job) = removed {
            Counters::add(&shared.counters.serve_cancelled, 1);
            shared.emit_terminal(id, &job.spec.tag, EventKind::Cancelled);
        }
        true
    }

    /// Snapshot of queue state and counters for the `stats` op.
    pub fn stats_json(&self) -> Json {
        let (depth, cap, peak) = {
            let q = self.shared.queue.lock();
            (q.len() as u64, q.cap() as u64, q.peak() as u64)
        };
        Json::object()
            .field("event", "stats")
            .field("queue_depth", depth)
            .field("queue_cap", cap)
            .field("queue_peak", peak)
            .field("counters", self.shared.counters.snapshot().to_json())
    }

    /// Block until every submitted job has received its terminal event
    /// (stdin mode waits this out on EOF, so piped clients get their
    /// results instead of drain rejections).
    pub fn quiesce(&self) {
        while !self.shared.jobs.lock().is_empty() {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Stop accepting work, terminally reject everything still queued
    /// (reason `"draining"`), let in-flight jobs finish, and join the
    /// workers.
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        let shared = &self.shared;
        shared.draining.store(true, Relaxed);
        let queued = shared.queue.lock().drain_all();
        for job in queued {
            Counters::add(&shared.counters.serve_rejected, 1);
            shared.emit_terminal(job.id, &job.spec.tag, EventKind::Rejected { reason: "draining" });
        }
        shared.ready.notify_all();
        if let Some(pool) = self.pool.take() {
            pool.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.pool.is_some() {
            self.drain();
        }
    }
}

/// Drive one client connection over the line protocol: each request is
/// one JSON object per line —
///
/// ```text
/// {"op": "submit", "spec": {"app": "stream", ...}}
/// {"op": "cancel", "id": 3}
/// {"op": "stats"}
/// {"op": "shutdown"}
/// ```
///
/// — and every response is one JSON event line on `writer`. Job events
/// keep flowing to this connection's writer after later requests (and
/// after EOF, until the job finishes or the writer fails). Returns true
/// when the client requested daemon shutdown.
pub fn serve_connection<R, W>(server: &Server, reader: R, writer: W) -> bool
where
    R: BufRead,
    W: Write + Send + Sync + 'static,
{
    let writer = Arc::new(Mutex::new(writer));
    let respond = |j: &Json| {
        let mut w = writer.lock();
        let _ = writeln!(w, "{}", j.to_compact_string());
        let _ = w.flush();
    };
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let req = match Json::parse(&line) {
            Ok(j) => j,
            Err(e) => {
                respond(
                    &Json::object()
                        .field("event", "error")
                        .field("error", format!("bad request: {e}")),
                );
                continue;
            }
        };
        let op = match req.get("op") {
            Some(Json::Str(op)) => op.clone(),
            _ => {
                respond(&Json::object().field("event", "error").field("error", "missing 'op'"));
                continue;
            }
        };
        match op.as_str() {
            "submit" => {
                let spec = match req.get("spec") {
                    Some(spec_json) => JobSpec::from_json(spec_json),
                    None => Err(crate::spec::SpecError("missing 'spec'".into())),
                };
                match spec {
                    Ok(spec) => {
                        let w = writer.clone();
                        let sink: Sink = Arc::new(move |ev: &Event| {
                            let mut w = w.lock();
                            let _ = writeln!(w, "{}", ev.to_json().to_compact_string());
                            let _ = w.flush();
                        });
                        server.submit(spec, sink);
                    }
                    Err(e) => {
                        // Never became a job: a request-level terminal
                        // response, not a job event.
                        respond(
                            &Json::object()
                                .field("event", "rejected")
                                .field("id", Json::Null)
                                .field("reason", "bad_spec")
                                .field("error", e.to_string()),
                        );
                    }
                }
            }
            "cancel" => match req.get("id") {
                Some(Json::U64(id)) => {
                    let found = server.cancel(*id);
                    respond(
                        &Json::object()
                            .field("event", "cancel_ack")
                            .field("id", *id)
                            .field("found", found),
                    );
                }
                _ => respond(
                    &Json::object().field("event", "error").field("error", "cancel needs an 'id'"),
                ),
            },
            "stats" => respond(&server.stats_json()),
            "shutdown" => {
                respond(&Json::object().field("event", "shutting_down"));
                return true;
            }
            other => respond(
                &Json::object()
                    .field("event", "error")
                    .field("error", format!("unknown op '{other}'")),
            ),
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use std::sync::Mutex as StdMutex;

    use super::*;

    /// Collects every event, grouped nowhere — tests slice by id.
    #[derive(Default)]
    struct Log(StdMutex<Vec<Event>>);

    impl Log {
        fn sink(self: &Arc<Self>) -> Sink {
            let log = self.clone();
            Arc::new(move |ev| log.0.lock().expect("log").push(ev.clone()))
        }
        fn events(&self) -> Vec<Event> {
            self.0.lock().expect("log").clone()
        }
        fn terminals_for(&self, id: u64) -> Vec<Event> {
            self.events().into_iter().filter(|e| e.id == id && e.is_terminal()).collect()
        }
        fn wait_terminal(&self, id: u64) -> Event {
            let t0 = Instant::now();
            loop {
                if let Some(ev) = self.terminals_for(id).pop() {
                    return ev;
                }
                assert!(t0.elapsed() < Duration::from_secs(30), "no terminal for job {id}");
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    fn spec(text: &str) -> JobSpec {
        JobSpec::parse(text).expect("test spec")
    }

    fn ok_outcome() -> RunOutcome {
        RunOutcome { report: Json::object().field("ok", true), metric: 1.0, elapsed_ns: 10 }
    }

    fn cfg(workers: usize, cap: usize) -> ServeConfig {
        ServeConfig {
            workers,
            queue_cap: cap,
            retry_backoff: SimDuration::from_nanos(1),
            retry_backoff_cap: SimDuration::from_nanos(10),
        }
    }

    /// A runner whose outcome script is keyed by the spec's tag:
    /// `okN` succeeds, `retryableN` fails retryably the first N
    /// attempts then succeeds, `fatal` fails non-retryably, `slow`
    /// parks until `gate` opens.
    fn scripted_runner(gate: Arc<AtomicBool>) -> Runner {
        let calls: Arc<StdMutex<HashMap<String, u32>>> = Arc::default();
        Arc::new(move |spec: &JobSpec, _attempt| {
            let tag = spec.tag.clone().unwrap_or_default();
            if tag == "slow" {
                while !gate.load(Relaxed) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                return Ok(ok_outcome());
            }
            if tag == "fatal" {
                return Err(RunError::Deadlock { blocked: vec![] });
            }
            if let Some(n) = tag.strip_prefix("retryable") {
                let n: u32 = n.parse().expect("retryableN tag");
                let mut calls = calls.lock().expect("calls");
                let made = calls.entry(tag.clone()).or_insert(0);
                *made += 1;
                if *made <= n {
                    return Err(RunError::Exhausted { what: "scripted".into(), attempts: 1 });
                }
            }
            Ok(ok_outcome())
        })
    }

    #[test]
    fn success_failure_and_retry_paths_each_emit_one_terminal() {
        let gate = Arc::new(AtomicBool::new(true));
        let server = Server::with_runner(cfg(2, 8), scripted_runner(gate));
        let log = Arc::new(Log::default());
        let ok = server.submit(spec(r#"{"app":"stream","tag":"ok1"}"#), log.sink());
        let fatal =
            server.submit(spec(r#"{"app":"stream","tag":"fatal","retries":3}"#), log.sink());
        let retried =
            server.submit(spec(r#"{"app":"stream","tag":"retryable2","retries":4}"#), log.sink());
        let exhausted =
            server.submit(spec(r#"{"app":"stream","tag":"retryable9","retries":1}"#), log.sink());

        match log.wait_terminal(ok).kind {
            EventKind::Result { attempts: 1, .. } => {}
            other => panic!("expected one-shot result, got {other:?}"),
        }
        match log.wait_terminal(fatal).kind {
            // Non-retryable failure must not consume the retry budget.
            EventKind::Failed { attempts: 1, error } => {
                assert!(error.contains("deadlock"), "{error}")
            }
            other => panic!("expected failed, got {other:?}"),
        }
        match log.wait_terminal(retried).kind {
            EventKind::Result { attempts: 3, .. } => {}
            other => panic!("expected third-attempt result, got {other:?}"),
        }
        match log.wait_terminal(exhausted).kind {
            EventKind::Failed { attempts: 2, error } => assert!(error.contains("exhausted")),
            other => panic!("expected budget-exhausted failure, got {other:?}"),
        }
        server.shutdown();
        for id in [ok, fatal, retried, exhausted] {
            assert_eq!(log.terminals_for(id).len(), 1, "job {id} must have exactly one terminal");
        }
    }

    #[test]
    fn full_queue_rejects_and_sheds_by_priority() {
        let gate = Arc::new(AtomicBool::new(false));
        let server = Server::with_runner(cfg(1, 2), scripted_runner(gate.clone()));
        let log = Arc::new(Log::default());
        // One job occupies the single worker; two fill the queue.
        let running = server.submit(spec(r#"{"app":"stream","tag":"slow"}"#), log.sink());
        let wait_started = |id: u64| {
            let t0 = Instant::now();
            while !log
                .events()
                .iter()
                .any(|e| e.id == id && matches!(e.kind, EventKind::Started { .. }))
            {
                assert!(t0.elapsed() < Duration::from_secs(30), "job {id} never started");
                std::thread::sleep(Duration::from_millis(1));
            }
        };
        wait_started(running);
        let q1 = server.submit(spec(r#"{"app":"stream","priority":4,"tag":"ok"}"#), log.sink());
        let q2 = server.submit(spec(r#"{"app":"stream","priority":1,"tag":"ok"}"#), log.sink());
        // Queue full; priority 1 does not strictly outrank the weakest
        // queued entry (q2, also priority 1): rejected.
        let turned_away =
            server.submit(spec(r#"{"app":"stream","priority":1,"tag":"ok"}"#), log.sink());
        match log.wait_terminal(turned_away).kind {
            EventKind::Rejected { reason: "queue_full" } => {}
            other => panic!("expected queue_full, got {other:?}"),
        }
        // Queue full, strictly higher priority: the weakest (q2) sheds.
        let vip = server.submit(spec(r#"{"app":"stream","priority":9,"tag":"ok"}"#), log.sink());
        match log.wait_terminal(q2).kind {
            EventKind::Rejected { reason: "load_shed" } => {}
            other => panic!("expected load_shed, got {other:?}"),
        }
        gate.store(true, Relaxed);
        for id in [running, q1, vip] {
            match log.wait_terminal(id).kind {
                EventKind::Result { .. } => {}
                other => panic!("job {id}: expected result, got {other:?}"),
            }
        }
        let snap = server.counters().snapshot();
        assert_eq!(snap.serve_rejected, 1);
        assert_eq!(snap.serve_shed, 1);
        assert_eq!(snap.serve_admitted, 4, "running + q1 + q2 + vip were admitted");
        assert_eq!(snap.serve_queue_peak, 2);
        server.shutdown();
    }

    #[test]
    fn cancel_hits_queued_jobs_immediately_and_running_jobs_between_attempts() {
        let gate = Arc::new(AtomicBool::new(false));
        let server = Server::with_runner(cfg(1, 4), scripted_runner(gate.clone()));
        let log = Arc::new(Log::default());
        let running = server.submit(spec(r#"{"app":"stream","tag":"slow"}"#), log.sink());
        let queued = server.submit(spec(r#"{"app":"stream","tag":"ok"}"#), log.sink());
        assert!(server.cancel(queued), "queued job is cancellable");
        match log.wait_terminal(queued).kind {
            EventKind::Cancelled => {}
            other => panic!("expected cancelled, got {other:?}"),
        }
        assert!(!server.cancel(queued), "second cancel finds nothing");
        assert!(!server.cancel(999), "unknown id finds nothing");
        // The running job has no attempt boundary left (attempt 0 is in
        // flight and will succeed), so cancel returns true but the job
        // still completes — exactly one terminal either way.
        assert!(server.cancel(running));
        gate.store(true, Relaxed);
        let terminal = log.wait_terminal(running);
        assert!(
            matches!(terminal.kind, EventKind::Result { .. } | EventKind::Cancelled),
            "got {:?}",
            terminal.kind
        );
        server.shutdown();
        assert_eq!(log.terminals_for(running).len(), 1);
        assert_eq!(log.terminals_for(queued).len(), 1);
    }

    #[test]
    fn expired_deadline_terminates_before_the_run() {
        let gate = Arc::new(AtomicBool::new(false));
        let server = Server::with_runner(cfg(1, 4), scripted_runner(gate.clone()));
        let log = Arc::new(Log::default());
        let running = server.submit(spec(r#"{"app":"stream","tag":"slow"}"#), log.sink());
        let doomed =
            server.submit(spec(r#"{"app":"stream","deadline_ms":0,"tag":"ok"}"#), log.sink());
        std::thread::sleep(Duration::from_millis(2));
        gate.store(true, Relaxed);
        match log.wait_terminal(doomed).kind {
            EventKind::DeadlineExceeded => {}
            other => panic!("expected deadline_exceeded, got {other:?}"),
        }
        match log.wait_terminal(running).kind {
            EventKind::Result { .. } => {}
            other => panic!("expected result, got {other:?}"),
        }
        assert_eq!(server.counters().snapshot().serve_deadlines, 1);
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_in_flight_and_rejects_queued() {
        let gate = Arc::new(AtomicBool::new(false));
        let server = Server::with_runner(cfg(1, 8), scripted_runner(gate.clone()));
        let log = Arc::new(Log::default());
        let running = server.submit(spec(r#"{"app":"stream","tag":"slow"}"#), log.sink());
        let queued = server.submit(spec(r#"{"app":"stream","tag":"ok"}"#), log.sink());
        // Release the gate from another thread once drain is underway;
        // shutdown() blocks until the in-flight job finishes.
        let g = gate.clone();
        let opener = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            g.store(true, Relaxed);
        });
        server.shutdown();
        opener.join().expect("opener");
        match log.wait_terminal(running).kind {
            EventKind::Result { .. } => {}
            other => panic!("in-flight job must finish through a drain, got {other:?}"),
        }
        match log.wait_terminal(queued).kind {
            EventKind::Rejected { reason: "draining" } => {}
            other => panic!("queued job must be drained, got {other:?}"),
        }
    }

    #[test]
    fn connection_protocol_round_trip() {
        let gate = Arc::new(AtomicBool::new(true));
        let server = Server::with_runner(cfg(2, 8), scripted_runner(gate));
        let out: Arc<StdMutex<Vec<u8>>> = Arc::default();

        struct SharedWriter(Arc<StdMutex<Vec<u8>>>);
        impl Write for SharedWriter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().expect("out").extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        // First connection: submit a job, then EOF. Its events keep
        // flowing to this writer after the read side closes.
        let submit = concat!(r#"{"op":"submit","spec":{"app":"stream","tag":"ok1"}}"#, "\n");
        assert!(
            !serve_connection(&server, submit.as_bytes(), SharedWriter(out.clone())),
            "EOF is not a shutdown request"
        );
        let t0 = Instant::now();
        while !String::from_utf8_lossy(&out.lock().expect("out")).contains(r#""event":"result""#) {
            assert!(t0.elapsed() < Duration::from_secs(30), "job result never streamed");
            std::thread::sleep(Duration::from_millis(1));
        }
        // Second connection: error paths, control ops, shutdown.
        let requests = concat!(
            r#"{"op":"submit","spec":{"app":"nosuch"}}"#,
            "\n",
            r#"not json"#,
            "\n",
            r#"{"op":"cancel","id":999}"#,
            "\n",
            r#"{"op":"stats"}"#,
            "\n",
            r#"{"op":"shutdown"}"#,
            "\n",
        );
        let wants_shutdown =
            serve_connection(&server, requests.as_bytes(), SharedWriter(out.clone()));
        assert!(wants_shutdown, "shutdown op must be signalled to the caller");
        server.shutdown();

        let text = String::from_utf8(out.lock().expect("out").clone()).expect("utf8 protocol");
        let lines: Vec<Json> =
            text.lines().map(|l| Json::parse(l).expect("every response line is JSON")).collect();
        let events: Vec<&str> = lines
            .iter()
            .map(|j| match j.get("event") {
                Some(Json::Str(s)) => s.as_str(),
                _ => panic!("response without event: {j:?}"),
            })
            .collect();
        assert!(events.contains(&"admitted"), "{events:?}");
        assert!(events.contains(&"result"), "{events:?}");
        assert!(events.contains(&"rejected"), "bad spec must reject: {events:?}");
        assert!(events.contains(&"error"), "bad request line must error: {events:?}");
        assert!(events.contains(&"cancel_ack"), "{events:?}");
        assert!(events.contains(&"stats"), "{events:?}");
        assert_eq!(events.last(), Some(&"shutting_down"));
        let reject = lines
            .iter()
            .find(|j| j.get("reason").is_some())
            .expect("the bad-spec reject carries a reason");
        assert_eq!(reject.get("reason"), Some(&Json::Str("bad_spec".into())));
    }
}
