//! Property tests of the schedulers: under arbitrary submit/next/steal
//! interleavings, no task is ever lost, duplicated, or handed to a
//! resource of the wrong device kind — for all three policies.

use proptest::prelude::*;

use ompss_core::{Device, TaskDesc, TaskId};
use ompss_mem::{Access, DataId, Region, SpaceId};
use ompss_sched::{LocalityOracle, Policy, ResourceInfo, ResourceKind, Scheduler};

#[derive(Debug, Clone, Copy)]
enum Step {
    Submit { device_cuda: bool, data: u64, priority: i32 },
    Next { resource: usize },
}

fn gen_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (any::<bool>(), 0u64..6, -2i32..3).prop_map(|(device_cuda, data, priority)| {
            Step::Submit { device_cuda, data, priority }
        }),
        (0usize..6).prop_map(|resource| Step::Next { resource }),
    ]
}

/// Oracle: data object `d` "lives" at space `d % 4` — arbitrary but
/// deterministic locality for the affinity policy to chew on.
struct ModOracle;
impl LocalityOracle for ModOracle {
    fn bytes_at(&self, region: &Region, space: SpaceId) -> u64 {
        if region.data.0 % 4 == space.0 as u64 {
            region.len
        } else {
            0
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn no_task_lost_duplicated_or_misrouted(
        steps in proptest::collection::vec(gen_step(), 1..120),
        policy_sel in 0u8..3,
    ) {
        let policy = match policy_sel {
            0 => Policy::BreadthFirst,
            1 => Policy::Dependencies,
            _ => Policy::Affinity,
        };
        let mut s = Scheduler::new(policy);
        // 3 SMP workers + 3 GPU managers sharing one steal group.
        let mut resources = Vec::new();
        for i in 0..3 {
            resources.push((
                s.register(ResourceInfo {
                    kind: ResourceKind::SmpWorker,
                    space: SpaceId(i),
                    steal_group: 0,
                }),
                ResourceKind::SmpWorker,
            ));
        }
        for i in 0..3 {
            resources.push((
                s.register(ResourceInfo {
                    kind: ResourceKind::GpuManager,
                    space: SpaceId(i),
                    steal_group: 0,
                }),
                ResourceKind::GpuManager,
            ));
        }

        let mut submitted: Vec<(TaskId, Device)> = Vec::new();
        let mut handed: Vec<(TaskId, ResourceKind)> = Vec::new();
        let mut next_id = 0u64;
        for step in steps {
            match step {
                Step::Submit { device_cuda, data, priority } => {
                    let device = if device_cuda { Device::Cuda } else { Device::Smp };
                    let desc = TaskDesc {
                        id: TaskId(next_id),
                        label: String::new(),
                        device,
                        deps: vec![Access::inout(Region::new(DataId(data), 0, 64))],
                        copy_deps: true,
                        extra_copies: vec![],
                        priority,
                    };
                    submitted.push((desc.id, device));
                    next_id += 1;
                    s.submit(&desc, &ModOracle);
                }
                Step::Next { resource } => {
                    let (res, kind) = resources[resource];
                    if let Some(t) = s.next(res) {
                        handed.push((t, kind));
                    }
                }
            }
        }
        // Drain whatever is left.
        loop {
            let before = handed.len();
            for &(res, kind) in &resources {
                if let Some(t) = s.next(res) {
                    handed.push((t, kind));
                }
            }
            if handed.len() == before {
                break;
            }
        }
        prop_assert_eq!(s.queued(), 0, "scheduler retained tasks after drain");
        prop_assert_eq!(handed.len(), submitted.len(), "lost or duplicated tasks");
        let mut ids: Vec<u64> = handed.iter().map(|(t, _)| t.0).collect();
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len(), submitted.len(), "duplicate hand-out");
        // Device/resource compatibility.
        for (t, kind) in &handed {
            let (_, dev) = submitted[t.0 as usize];
            match dev {
                Device::Smp => prop_assert_eq!(*kind, ResourceKind::SmpWorker),
                Device::Cuda => prop_assert_eq!(*kind, ResourceKind::GpuManager),
            }
        }
    }
}
