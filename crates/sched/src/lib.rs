//! # ompss-sched — Nanos++-style task schedulers
//!
//! The three scheduling strategies evaluated in the paper (§III-C2):
//!
//! * **breadth-first** (`bf` in the charts) — a simple global FIFO;
//! * **dependencies** (the runtime's default) — FIFO, but a resource
//!   that finishes a task first tries to run one of the successors it
//!   just released, on the theory that producer and consumer share data;
//! * **locality-aware** (`affinity`) — on submission, an affinity score
//!   is computed for every resource from *where the task's data already
//!   is* (weighted by size); the task is queued on the best resource,
//!   falling back to a global queue. Idle resources look at their local
//!   queue, then the global queue, then *steal* from resources in the
//!   same steal group (load balancing, per Martinell's SMPSs work).
//!
//! Schedulers are pure data structures: the runtime serialises access
//! and parks/wakes worker processes itself. Resources are abstract — a
//! host worker, a GPU manager thread, or (on the master) a *node proxy*
//! drained by the communication thread, which is how the same policies
//! do both intra-node and cluster-level placement.

#![warn(missing_docs)]

use std::collections::VecDeque;

use ompss_core::{Device, TaskDesc, TaskId};
use ompss_mem::{Region, SpaceId};

/// Index of a schedulable resource within one scheduler instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub usize);

/// What a resource is, which determines the device kinds it accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceKind {
    /// A host CPU worker: runs `Device::Smp` tasks.
    SmpWorker,
    /// A GPU manager thread: runs `Device::Cuda` tasks.
    GpuManager,
    /// A remote node, represented at the master by the communication
    /// thread: accepts both device kinds (the remote node schedules
    /// internally).
    NodeProxy,
}

impl ResourceKind {
    /// Can this resource execute a task targeted at `device`?
    pub fn accepts(self, device: Device) -> bool {
        match self {
            ResourceKind::SmpWorker => device == Device::Smp,
            ResourceKind::GpuManager => device == Device::Cuda,
            ResourceKind::NodeProxy => true,
        }
    }
}

/// Registration record for a resource.
#[derive(Debug, Clone)]
pub struct ResourceInfo {
    /// Resource kind.
    pub kind: ResourceKind,
    /// The address space tasks placed here execute against (a GPU's
    /// device space, the node's host space, or a remote node's host
    /// space for proxies). Affinity scores are computed against it.
    pub space: SpaceId,
    /// Resources share work-stealing within the same group (one group
    /// per node; proxies are typically their own group so tasks do not
    /// silently migrate between nodes).
    pub steal_group: u32,
}

/// Where the data of a region currently lives — implemented by the
/// coherence directory. `bytes_at` returns how many bytes of `region`
/// are already valid at (or under) `space`, so moving the task there
/// would avoid transferring them.
pub trait LocalityOracle {
    /// Valid bytes of `region` at `space`.
    fn bytes_at(&self, region: &Region, space: SpaceId) -> u64;
}

/// An oracle for contexts with no locality information (breadth-first /
/// dependencies policies, unit tests).
pub struct NoLocality;

impl LocalityOracle for NoLocality {
    fn bytes_at(&self, _region: &Region, _space: SpaceId) -> u64 {
        0
    }
}

/// The task facts a scheduler retains.
#[derive(Debug, Clone)]
struct SchedTask {
    id: TaskId,
    device: Device,
    priority: i32,
    /// Copy-clause regions with their affinity weight (written data
    /// weighs double: moving a producer chain's output is costlier
    /// than re-fetching an input).
    copies: Vec<(Region, u64)>,
}

impl SchedTask {
    fn from_desc(desc: &TaskDesc) -> Self {
        SchedTask {
            id: desc.id,
            device: desc.device,
            priority: desc.priority,
            copies: desc
                .copies()
                .iter()
                .map(|a| (a.region, if a.kind.writes() { 2 } else { 1 }))
                .collect(),
        }
    }
}

/// Scheduling decisions counted for the evaluation's ablations.
#[derive(Debug, Default, Clone)]
pub struct SchedStats {
    /// Tasks handed out from a resource's own queue.
    pub local_hits: u64,
    /// Tasks handed out from the global queue.
    pub global_hits: u64,
    /// Tasks obtained by stealing.
    pub steals: u64,
    /// Tasks run via the successor-first hint (dependencies policy).
    pub successor_hits: u64,
    /// Tasks ever enqueued (submissions plus released successors).
    pub submitted: u64,
    /// High-water mark of the ready-queue depth.
    pub max_queued: u64,
}

/// The scheduling policy selected for a run (`NX_SCHEDULE` in Nanos++).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Global FIFO.
    BreadthFirst,
    /// FIFO + successor-first (the runtime default).
    Dependencies,
    /// Locality-aware placement with per-resource queues and stealing.
    Affinity,
}

impl Policy {
    /// The chart label used in the paper's figures.
    pub fn chart_label(self) -> &'static str {
        match self {
            Policy::BreadthFirst => "bf",
            Policy::Dependencies => "default",
            Policy::Affinity => "affinity",
        }
    }
}

/// A task scheduler: single-owner data structure driven by the runtime.
pub struct Scheduler {
    policy: Policy,
    resources: Vec<ResourceInfo>,
    /// Per-resource liveness: a deactivated resource (lost GPU) is
    /// handed no more work, receives no placements and is never a steal
    /// victim.
    active: Vec<bool>,
    /// Per-resource forbidden device kind: the master's view of a
    /// remote node that lost its last GPU — the proxy stays in service
    /// for SMP work but must no longer attract CUDA tasks.
    forbidden: Vec<Option<Device>>,
    global: VecDeque<SchedTask>,
    local: Vec<VecDeque<SchedTask>>,
    /// Successor hint slot per resource (dependencies policy).
    hints: Vec<VecDeque<SchedTask>>,
    stats: SchedStats,
    queued: usize,
    /// Tie-break perturbation seed for the verify subsystem's schedule
    /// exploration: `0` (the default) keeps the documented deterministic
    /// FIFO tie-break; any other value picks among equal-priority
    /// eligible tasks pseudo-randomly (but still deterministically for a
    /// given seed), exposing schedule-dependent nondeterminism in
    /// applications.
    seed: u64,
    /// Decision counter feeding the perturbation stream.
    decisions: u64,
}

impl Scheduler {
    /// Create a scheduler with the given policy.
    pub fn new(policy: Policy) -> Self {
        Scheduler {
            policy,
            resources: Vec::new(),
            active: Vec::new(),
            forbidden: Vec::new(),
            global: VecDeque::new(),
            local: Vec::new(),
            hints: Vec::new(),
            stats: SchedStats::default(),
            queued: 0,
            seed: 0,
            decisions: 0,
        }
    }

    /// Set the tie-break perturbation seed (see the `seed` field docs);
    /// `0` disables perturbation. Builder-style.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The active policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Register a resource; returns its id.
    pub fn register(&mut self, info: ResourceInfo) -> ResourceId {
        let id = ResourceId(self.resources.len());
        self.resources.push(info);
        self.active.push(true);
        self.forbidden.push(None);
        self.local.push(VecDeque::new());
        self.hints.push(VecDeque::new());
        id
    }

    /// Take `resource` out of service (an injected device loss): its
    /// queued work — local placements and successor hints — migrates to
    /// the global queue for surviving resources to pick up, and the
    /// resource is skipped by placement, hand-out and stealing from now
    /// on. Idempotent.
    pub fn deactivate(&mut self, resource: ResourceId) {
        if !self.active[resource.0] {
            return;
        }
        self.active[resource.0] = false;
        let orphans: Vec<SchedTask> =
            self.hints[resource.0].drain(..).chain(self.local[resource.0].drain(..)).collect();
        self.global.extend(orphans);
    }

    /// Is `resource` still in service?
    pub fn is_active(&self, resource: ResourceId) -> bool {
        self.active[resource.0]
    }

    /// Bring `resource` (back) into service — elastic membership's dual
    /// of [`deactivate`](Scheduler::deactivate): placement, hand-out,
    /// stealing and affinity scoring include it again from now on, with
    /// the same deterministic index-order tie-breaks as a resource that
    /// was registered from the start (its id never changed, only its
    /// service bit). Any forbidden device kind is cleared: a joining
    /// node arrives whole, devices and all. Idempotent.
    pub fn adopt(&mut self, resource: ResourceId) {
        self.active[resource.0] = true;
        self.forbidden[resource.0] = None;
    }

    /// Stop routing `device`-kind tasks to `resource` while keeping it
    /// in service for everything else: the master calls this on a node
    /// proxy when the node reports its last GPU down, so CUDA work no
    /// longer strands on a queue the node can never drain. Already
    /// queued tasks of that kind migrate to the global queue for
    /// surviving resources. Idempotent.
    pub fn forbid(&mut self, resource: ResourceId, device: Device) {
        if self.forbidden[resource.0] == Some(device) {
            return;
        }
        self.forbidden[resource.0] = Some(device);
        let strand = |t: &SchedTask| t.device == device;
        let orphans: Vec<SchedTask> = {
            let hints = &mut self.hints[resource.0];
            let local = &mut self.local[resource.0];
            let mut out = Vec::new();
            for q in [hints, local] {
                let mut i = 0;
                while i < q.len() {
                    if strand(&q[i]) {
                        out.push(q.remove(i).expect("index in bounds"));
                    } else {
                        i += 1;
                    }
                }
            }
            out
        };
        self.global.extend(orphans);
    }

    /// Withdraw `resource` entirely — whole-node loss, the
    /// generalisation of [`deactivate`](Scheduler::deactivate) (a lost
    /// GPU) and [`forbid`](Scheduler::forbid) (a node that can no longer
    /// run one device kind): the resource is taken out of service for
    /// *every* device kind, its queued placements and hints migrate to
    /// the global queue, and any task **no surviving resource can
    /// serve** is drained out and returned for the caller to fail
    /// closed on. Idempotent.
    pub fn withdraw(&mut self, resource: ResourceId) -> Vec<TaskId> {
        self.deactivate(resource);
        self.drain_unservable()
    }

    /// Can `resource` currently be handed a `device`-kind task?
    fn serves(&self, resource: usize, device: Device) -> bool {
        self.active[resource]
            && self.resources[resource].kind.accepts(device)
            && self.forbidden[resource] != Some(device)
    }

    /// Remove and return every queued task no surviving resource can
    /// execute (e.g. CUDA tasks on a node whose last GPU died — the
    /// machine-wide fuse prevents this, but a *node* can lose all its
    /// GPUs). The caller re-routes them elsewhere.
    pub fn drain_unservable(&mut self) -> Vec<TaskId> {
        let mut orphans = Vec::new();
        // Split borrows: the queue iterators borrow the queues mutably
        // while the check reads the resource tables, so it takes them
        // as separate slices rather than going through `serves`.
        let servable =
            |t: &SchedTask, res: &[ResourceInfo], act: &[bool], fb: &[Option<Device>]| {
                (0..res.len())
                    .any(|i| act[i] && res[i].kind.accepts(t.device) && fb[i] != Some(t.device))
            };
        let (resources, active, forbidden) = (&self.resources, &self.active, &self.forbidden);
        let queues = self.hints.iter_mut().chain(self.local.iter_mut()).chain([&mut self.global]);
        for q in queues {
            let mut i = 0;
            while i < q.len() {
                if servable(&q[i], resources, active, forbidden) {
                    i += 1;
                } else {
                    orphans.push(q.remove(i).expect("index in bounds").id);
                }
            }
        }
        self.queued -= orphans.len();
        orphans
    }

    /// Number of registered resources.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Tasks currently queued (not yet handed to a resource).
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// Decision counters.
    pub fn stats(&self) -> SchedStats {
        self.stats.clone()
    }

    fn note_enqueue(&mut self) {
        self.stats.submitted += 1;
        self.stats.max_queued = self.stats.max_queued.max(self.queued as u64);
    }

    /// Enqueue a ready task.
    pub fn submit(&mut self, desc: &TaskDesc, oracle: &dyn LocalityOracle) {
        let task = SchedTask::from_desc(desc);
        self.queued += 1;
        self.note_enqueue();
        match self.policy {
            Policy::BreadthFirst | Policy::Dependencies => self.global.push_back(task),
            Policy::Affinity => self.place_by_affinity(task, oracle),
        }
    }

    /// Notification that `resource` finished a task whose completion
    /// released `ready_successors`. The scheduler enqueues them; under
    /// the `dependencies` policy one eligible successor is pinned to the
    /// finishing resource so it runs next and reuses the data.
    pub fn task_completed(
        &mut self,
        resource: ResourceId,
        ready_successors: &[&TaskDesc],
        oracle: &dyn LocalityOracle,
    ) {
        match self.policy {
            Policy::Dependencies => {
                let mut hinted = false;
                for desc in ready_successors {
                    let task = SchedTask::from_desc(desc);
                    self.queued += 1;
                    self.note_enqueue();
                    if !hinted && self.serves(resource.0, task.device) {
                        self.hints[resource.0].push_back(task);
                        hinted = true;
                    } else {
                        self.global.push_back(task);
                    }
                }
            }
            _ => {
                for desc in ready_successors {
                    self.submit(desc, oracle);
                }
            }
        }
    }

    fn place_by_affinity(&mut self, task: SchedTask, oracle: &dyn LocalityOracle) {
        // Highest weighted score wins; per the paper, "if there is no
        // highest affinity" (a tie, or no resident data at all) the task
        // goes to the global queue for demand-driven pickup.
        let mut best: Option<(u64, usize)> = None;
        let mut tied = false;
        for i in 0..self.resources.len() {
            if !self.serves(i, task.device) {
                continue;
            }
            let space = self.resources[i].space;
            let score: u64 = task.copies.iter().map(|(r, w)| w * oracle.bytes_at(r, space)).sum();
            if score == 0 {
                continue;
            }
            match best {
                Some((s, _)) if score > s => {
                    best = Some((score, i));
                    tied = false;
                }
                Some((s, _)) if score == s => tied = true,
                Some(_) => {}
                None => best = Some((score, i)),
            }
        }
        match best {
            Some((_, i)) if !tied => self.local[i].push_back(task),
            _ => self.global.push_back(task),
        }
    }

    /// Hand the next task to `resource`, or `None` if nothing eligible
    /// is queued. Order of preference: successor hint, local queue,
    /// global queue, steal within the steal group.
    pub fn next(&mut self, resource: ResourceId) -> Option<TaskId> {
        self.next_matching(resource, |_| true)
    }

    /// Like [`next`](Scheduler::next), but only tasks whose device kind
    /// passes `allow` are eligible — the communication thread uses this
    /// to enforce per-device-kind in-flight caps on remote nodes.
    pub fn next_matching(
        &mut self,
        resource: ResourceId,
        allow: impl Fn(Device) -> bool,
    ) -> Option<TaskId> {
        if !self.active[resource.0] {
            return None;
        }
        let kind = self.resources[resource.0].kind;
        let banned = self.forbidden[resource.0];
        let accepts =
            |t: &SchedTask| kind.accepts(t.device) && banned != Some(t.device) && allow(t.device);
        // Highest priority wins; FIFO within a priority level — unless a
        // perturbation seed is set, in which case the tie-break among
        // equal-priority eligible tasks is drawn from a deterministic
        // pseudo-random stream (schedule exploration).
        let salt = if self.seed == 0 {
            0
        } else {
            self.decisions += 1;
            splitmix64(self.seed ^ self.decisions)
        };
        fn pick(
            q: &VecDeque<SchedTask>,
            accepts: impl Fn(&SchedTask) -> bool,
            salt: u64,
        ) -> Option<usize> {
            let mut best_prio = i32::MIN;
            let mut candidates: Vec<usize> = Vec::new();
            for (i, t) in q.iter().enumerate() {
                if !accepts(t) {
                    continue;
                }
                if candidates.is_empty() || t.priority > best_prio {
                    best_prio = t.priority;
                    candidates.clear();
                    candidates.push(i);
                } else if t.priority == best_prio {
                    candidates.push(i);
                }
            }
            if candidates.is_empty() {
                None
            } else {
                // salt == 0 selects the first (oldest) candidate: the
                // exact pre-perturbation FIFO behaviour.
                Some(candidates[(salt % candidates.len() as u64) as usize])
            }
        }

        if let Some(pos) = pick(&self.hints[resource.0], accepts, salt) {
            let t = self.hints[resource.0].remove(pos).expect("position valid");
            self.queued -= 1;
            self.stats.successor_hits += 1;
            return Some(t.id);
        }

        if let Some(pos) = pick(&self.local[resource.0], accepts, salt) {
            let t = self.local[resource.0].remove(pos).expect("position valid");
            self.queued -= 1;
            self.stats.local_hits += 1;
            return Some(t.id);
        }

        if let Some(pos) = pick(&self.global, accepts, salt) {
            let t = self.global.remove(pos).expect("position valid");
            self.queued -= 1;
            self.stats.global_hits += 1;
            return Some(t.id);
        }

        if self.policy == Policy::Affinity {
            // Steal from the back of the longest local queue in our
            // group — but only from a meaningfully backlogged victim
            // (≥ STEAL_THRESHOLD queued): migrating a task away from its
            // data is only worth it against real imbalance.
            const STEAL_THRESHOLD: usize = 2;
            let group = self.resources[resource.0].steal_group;
            let victim = (0..self.resources.len())
                .filter(|&i| i != resource.0 && self.active[i])
                .filter(|&i| self.resources[i].steal_group == group)
                .filter(|&i| self.local[i].len() >= STEAL_THRESHOLD)
                .filter(|&i| self.local[i].iter().any(&accepts))
                .max_by_key(|&i| (self.local[i].len(), usize::MAX - i));
            if let Some(v) = victim {
                let pos = self.local[v]
                    .iter()
                    .rposition(&accepts)
                    .expect("victim filtered to have an eligible task");
                let t = self.local[v].remove(pos).expect("position valid");
                self.queued -= 1;
                self.stats.steals += 1;
                return Some(t.id);
            }
        }

        None
    }
}

/// SplitMix64 — the standard 64-bit finalizer used as the perturbation
/// stream. Chosen for statelessness: the n-th decision's draw depends
/// only on `(seed, n)`, keeping perturbed runs reproducible.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompss_mem::{Access, DataId};
    use std::collections::HashMap;

    fn desc(id: u64, device: Device, copies: &[(u64, u64, u64)]) -> TaskDesc {
        TaskDesc {
            id: TaskId(id),
            label: format!("t{id}"),
            device,
            deps: copies
                .iter()
                .map(|&(d, o, l)| Access::inout(Region::new(DataId(d), o, l)))
                .collect(),
            copy_deps: true,
            extra_copies: vec![],
            priority: 0,
        }
    }

    fn smp(space: u32) -> ResourceInfo {
        ResourceInfo { kind: ResourceKind::SmpWorker, space: SpaceId(space), steal_group: 0 }
    }

    fn gpu(space: u32) -> ResourceInfo {
        ResourceInfo { kind: ResourceKind::GpuManager, space: SpaceId(space), steal_group: 0 }
    }

    struct MapOracle(HashMap<(u64, u32), u64>);

    impl LocalityOracle for MapOracle {
        fn bytes_at(&self, region: &Region, space: SpaceId) -> u64 {
            *self.0.get(&(region.data.0, space.0)).unwrap_or(&0)
        }
    }

    #[test]
    fn resource_kind_accepts() {
        assert!(ResourceKind::SmpWorker.accepts(Device::Smp));
        assert!(!ResourceKind::SmpWorker.accepts(Device::Cuda));
        assert!(ResourceKind::GpuManager.accepts(Device::Cuda));
        assert!(!ResourceKind::GpuManager.accepts(Device::Smp));
        assert!(ResourceKind::NodeProxy.accepts(Device::Smp));
        assert!(ResourceKind::NodeProxy.accepts(Device::Cuda));
    }

    #[test]
    fn breadth_first_is_fifo() {
        let mut s = Scheduler::new(Policy::BreadthFirst);
        let w = s.register(smp(0));
        for i in 0..3 {
            s.submit(&desc(i, Device::Smp, &[]), &NoLocality);
        }
        assert_eq!(s.queued(), 3);
        assert_eq!(s.next(w), Some(TaskId(0)));
        assert_eq!(s.next(w), Some(TaskId(1)));
        assert_eq!(s.next(w), Some(TaskId(2)));
        assert_eq!(s.next(w), None);
        assert_eq!(s.queued(), 0);
    }

    #[test]
    fn device_mismatch_skipped_in_fifo() {
        let mut s = Scheduler::new(Policy::BreadthFirst);
        let w = s.register(smp(0));
        let g = s.register(gpu(1));
        s.submit(&desc(0, Device::Cuda, &[]), &NoLocality);
        s.submit(&desc(1, Device::Smp, &[]), &NoLocality);
        // The SMP worker skips the CUDA task and takes the SMP one.
        assert_eq!(s.next(w), Some(TaskId(1)));
        assert_eq!(s.next(w), None);
        assert_eq!(s.next(g), Some(TaskId(0)));
    }

    #[test]
    fn dependencies_policy_prefers_released_successor() {
        let mut s = Scheduler::new(Policy::Dependencies);
        let w0 = s.register(smp(0));
        let w1 = s.register(smp(0));
        // Some unrelated work is queued first.
        s.submit(&desc(10, Device::Smp, &[]), &NoLocality);
        // w0 finishes a task releasing successors 20 and 21.
        let s20 = desc(20, Device::Smp, &[]);
        let s21 = desc(21, Device::Smp, &[]);
        s.task_completed(w0, &[&s20, &s21], &NoLocality);
        // w0 gets its successor before the older queued task.
        assert_eq!(s.next(w0), Some(TaskId(20)));
        assert_eq!(s.stats().successor_hits, 1);
        // The other successor went to the global queue, behind task 10.
        assert_eq!(s.next(w1), Some(TaskId(10)));
        assert_eq!(s.next(w1), Some(TaskId(21)));
    }

    #[test]
    fn dependencies_hint_respects_device() {
        let mut s = Scheduler::new(Policy::Dependencies);
        let g = s.register(gpu(1));
        // A GPU manager finishing a task cannot take an SMP successor.
        let smp_succ = desc(5, Device::Smp, &[]);
        s.task_completed(g, &[&smp_succ], &NoLocality);
        assert_eq!(s.next(g), None, "SMP successor must not be hinted to a GPU");
        let w = s.register(smp(0));
        assert_eq!(s.next(w), Some(TaskId(5)));
    }

    #[test]
    fn adopt_brings_a_resource_into_service() {
        // A joining node's proxy is registered at construction but held
        // out of service; adopt() makes it a full scheduling citizen.
        let mut s = Scheduler::new(Policy::BreadthFirst);
        let w = s.register(smp(0));
        s.deactivate(w);
        s.submit(&desc(0, Device::Smp, &[]), &NoLocality);
        assert_eq!(s.next(w), None, "out-of-service resources are never handed work");
        s.adopt(w);
        assert!(s.is_active(w));
        assert_eq!(s.next(w), Some(TaskId(0)));
        // Idempotent: adopting an active resource changes nothing.
        s.adopt(w);
        assert_eq!(s.next(w), None);
    }

    #[test]
    fn adopt_clears_forbidden_kinds_and_restores_affinity_tie_breaks() {
        // An adopted resource scores affinity exactly like one that was
        // never away: same index-order iteration, so a genuine tie
        // still goes to the global queue rather than favouring either
        // contender.
        let mut s = Scheduler::new(Policy::Affinity);
        let g0 = s.register(gpu(10));
        let g1 = s.register(gpu(11));
        s.forbid(g1, Device::Cuda);
        s.deactivate(g1);
        s.adopt(g1);
        let oracle = MapOracle(HashMap::from([((7, 10), 4096), ((7, 11), 4096)]));
        s.submit(&desc(0, Device::Cuda, &[(7, 0, 4096)]), &oracle);
        // Tie between g0 and g1: global queue, demand-driven pickup —
        // and the adopted g1 may serve CUDA again (forbid was cleared).
        assert_eq!(s.next(g1), Some(TaskId(0)));
        assert_eq!(s.stats().global_hits, 1);
        // With g1 holding strictly more bytes, placement picks it over
        // the never-deactivated g0, proving the tie-break order healed.
        let oracle = MapOracle(HashMap::from([((8, 10), 100), ((8, 11), 4096)]));
        s.submit(&desc(1, Device::Cuda, &[(8, 0, 4096)]), &oracle);
        assert_eq!(s.next(g1), Some(TaskId(1)));
        assert_eq!(s.stats().local_hits, 1);
        let _ = g0;
    }

    #[test]
    fn affinity_places_on_resource_holding_data() {
        let mut s = Scheduler::new(Policy::Affinity);
        let g0 = s.register(gpu(10));
        let g1 = s.register(gpu(11));
        let oracle = MapOracle(HashMap::from([((7, 11), 4096)]));
        // Task touching data 7, which lives at space 11 (g1).
        s.submit(&desc(0, Device::Cuda, &[(7, 0, 4096)]), &oracle);
        assert_eq!(s.next(g1), Some(TaskId(0)));
        assert_eq!(s.stats().local_hits, 1);
        let _ = g0;
    }

    #[test]
    fn affinity_prefers_bigger_bytes() {
        let mut s = Scheduler::new(Policy::Affinity);
        let g0 = s.register(gpu(10));
        let g1 = s.register(gpu(11));
        let oracle = MapOracle(HashMap::from([((1, 10), 100), ((2, 11), 4096)]));
        // Touches data 1 (100 B at g0) and data 2 (4 KiB at g1): g1 wins
        // the placement (g0 could still steal it later, so ask g1 first).
        s.submit(&desc(0, Device::Cuda, &[(1, 0, 100), (2, 0, 4096)]), &oracle);
        assert_eq!(s.next(g1), Some(TaskId(0)));
        assert_eq!(s.stats().local_hits, 1);
        assert_eq!(s.next(g0), None);
    }

    #[test]
    fn affinity_without_locality_goes_global() {
        let mut s = Scheduler::new(Policy::Affinity);
        let g0 = s.register(gpu(10));
        s.submit(&desc(0, Device::Cuda, &[(1, 0, 64)]), &NoLocality);
        assert_eq!(s.next(g0), Some(TaskId(0)));
        assert_eq!(s.stats().global_hits, 1);
    }

    #[test]
    fn affinity_steals_within_group_from_longest_queue() {
        let mut s = Scheduler::new(Policy::Affinity);
        let g0 = s.register(gpu(10));
        let g1 = s.register(gpu(11));
        let oracle = MapOracle(HashMap::from([((1, 11), 64)]));
        // Three tasks all affine to g1.
        for i in 0..3 {
            s.submit(&desc(i, Device::Cuda, &[(1, 0, 64)]), &oracle);
        }
        // Idle g0 steals from the back of g1's queue.
        assert_eq!(s.next(g0), Some(TaskId(2)));
        assert_eq!(s.stats().steals, 1);
        assert_eq!(s.next(g1), Some(TaskId(0)));
        assert_eq!(s.next(g1), Some(TaskId(1)));
    }

    #[test]
    fn no_steal_across_groups() {
        let mut s = Scheduler::new(Policy::Affinity);
        let mut p0 =
            ResourceInfo { kind: ResourceKind::NodeProxy, space: SpaceId(20), steal_group: 1 };
        let n0 = s.register(p0.clone());
        p0.space = SpaceId(21);
        p0.steal_group = 2;
        let n1 = s.register(p0);
        let oracle = MapOracle(HashMap::from([((1, 21), 64)]));
        s.submit(&desc(0, Device::Cuda, &[(1, 0, 64)]), &oracle);
        assert_eq!(s.next(n0), None, "proxies in different groups must not steal");
        assert_eq!(s.next(n1), Some(TaskId(0)));
    }

    #[test]
    fn queued_count_tracks_all_paths() {
        let mut s = Scheduler::new(Policy::Affinity);
        let g0 = s.register(gpu(10));
        let oracle = MapOracle(HashMap::from([((1, 10), 64)]));
        s.submit(&desc(0, Device::Cuda, &[(1, 0, 64)]), &oracle);
        s.submit(&desc(1, Device::Cuda, &[]), &oracle);
        assert_eq!(s.queued(), 2);
        s.next(g0);
        s.next(g0);
        assert_eq!(s.queued(), 0);
    }

    #[test]
    fn priority_orders_global_queue() {
        let mut s = Scheduler::new(Policy::BreadthFirst);
        let w = s.register(smp(0));
        let mut lo = desc(1, Device::Smp, &[]);
        lo.priority = 0;
        let mut hi = desc(2, Device::Smp, &[]);
        hi.priority = 5;
        let mut mid = desc(3, Device::Smp, &[]);
        mid.priority = 5;
        s.submit(&lo, &NoLocality);
        s.submit(&hi, &NoLocality);
        s.submit(&mid, &NoLocality);
        // Highest priority first; FIFO among equal priorities.
        assert_eq!(s.next(w), Some(TaskId(2)));
        assert_eq!(s.next(w), Some(TaskId(3)));
        assert_eq!(s.next(w), Some(TaskId(1)));
    }

    #[test]
    fn seed_zero_matches_unseeded_fifo_exactly() {
        let run = |seed: u64| {
            let mut s = Scheduler::new(Policy::BreadthFirst).with_seed(seed);
            let w = s.register(smp(0));
            for i in 0..8 {
                s.submit(&desc(i, Device::Smp, &[]), &NoLocality);
            }
            let mut order = Vec::new();
            while let Some(t) = s.next(w) {
                order.push(t);
            }
            order
        };
        assert_eq!(run(0), (0..8).map(TaskId).collect::<Vec<_>>());
    }

    #[test]
    fn nonzero_seed_permutes_equal_priority_ties_deterministically() {
        let run = |seed: u64| {
            let mut s = Scheduler::new(Policy::BreadthFirst).with_seed(seed);
            let w = s.register(smp(0));
            for i in 0..8 {
                s.submit(&desc(i, Device::Smp, &[]), &NoLocality);
            }
            let mut order = Vec::new();
            while let Some(t) = s.next(w) {
                order.push(t);
            }
            order
        };
        let fifo: Vec<_> = (0..8).map(TaskId).collect();
        assert_eq!(run(7), run(7), "same seed, same schedule");
        assert_ne!(run(7), fifo, "a perturbed seed must actually change tie-breaks");
        // All eight tasks still get scheduled exactly once.
        let mut sorted = run(7);
        sorted.sort();
        assert_eq!(sorted, fifo);
    }

    #[test]
    fn perturbation_never_violates_priority_order() {
        let mut s = Scheduler::new(Policy::BreadthFirst).with_seed(99);
        let w = s.register(smp(0));
        let mut hi = desc(50, Device::Smp, &[]);
        hi.priority = 10;
        for i in 0..4 {
            s.submit(&desc(i, Device::Smp, &[]), &NoLocality);
        }
        s.submit(&hi, &NoLocality);
        assert_eq!(s.next(w), Some(TaskId(50)), "priority beats any tie-break seed");
    }

    #[test]
    fn deactivated_resource_gets_nothing_and_its_queue_migrates() {
        let mut s = Scheduler::new(Policy::Affinity);
        let g0 = s.register(gpu(10));
        let g1 = s.register(gpu(11));
        let oracle = MapOracle(HashMap::from([((1, 11), 64)]));
        // Both tasks placed locally on g1, then g1 dies.
        s.submit(&desc(0, Device::Cuda, &[(1, 0, 64)]), &oracle);
        s.submit(&desc(1, Device::Cuda, &[(1, 0, 64)]), &oracle);
        s.deactivate(g1);
        assert!(!s.is_active(g1));
        assert_eq!(s.next(g1), None, "a dead resource is handed no work");
        // The orphans are available to the survivor via the global queue.
        assert_eq!(s.next(g0), Some(TaskId(0)));
        assert_eq!(s.next(g0), Some(TaskId(1)));
        assert_eq!(s.queued(), 0);
    }

    #[test]
    fn deactivated_resource_is_not_placed_on_or_stolen_from() {
        let mut s = Scheduler::new(Policy::Affinity);
        let g0 = s.register(gpu(10));
        let g1 = s.register(gpu(11));
        s.deactivate(g1);
        let oracle = MapOracle(HashMap::from([((1, 11), 64)]));
        // Affinity points at the dead g1: placement must not use it.
        s.submit(&desc(0, Device::Cuda, &[(1, 0, 64)]), &oracle);
        assert_eq!(s.next(g0), Some(TaskId(0)), "task must be reachable by the survivor");
    }

    #[test]
    fn dead_resource_successor_hint_goes_global() {
        let mut s = Scheduler::new(Policy::Dependencies);
        let w0 = s.register(smp(0));
        let w1 = s.register(smp(0));
        s.deactivate(w0);
        let succ = desc(5, Device::Smp, &[]);
        s.task_completed(w0, &[&succ], &NoLocality);
        assert_eq!(s.next(w0), None);
        assert_eq!(s.next(w1), Some(TaskId(5)));
    }

    #[test]
    fn drain_unservable_returns_orphaned_device_tasks() {
        let mut s = Scheduler::new(Policy::BreadthFirst);
        let w = s.register(smp(0));
        let g = s.register(gpu(1));
        s.submit(&desc(0, Device::Cuda, &[]), &NoLocality);
        s.submit(&desc(1, Device::Smp, &[]), &NoLocality);
        s.submit(&desc(2, Device::Cuda, &[]), &NoLocality);
        s.deactivate(g);
        let orphans = s.drain_unservable();
        assert_eq!(orphans, vec![TaskId(0), TaskId(2)]);
        assert_eq!(s.queued(), 1);
        assert_eq!(s.next(w), Some(TaskId(1)));
        // With every kind still servable, nothing drains.
        assert!(s.drain_unservable().is_empty());
    }

    #[test]
    fn forbid_migrates_queued_kind_and_blocks_future_placement() {
        let mut s = Scheduler::new(Policy::Affinity);
        let proxy =
            ResourceInfo { kind: ResourceKind::NodeProxy, space: SpaceId(20), steal_group: 1 };
        let p = s.register(proxy);
        let g = s.register(gpu(10));
        let oracle = MapOracle(HashMap::from([((1, 20), 64)]));
        // Two CUDA tasks and an SMP task, all affine to the proxy.
        s.submit(&desc(0, Device::Cuda, &[(1, 0, 64)]), &oracle);
        s.submit(&desc(1, Device::Smp, &[(1, 0, 64)]), &oracle);
        s.submit(&desc(2, Device::Cuda, &[(1, 0, 64)]), &oracle);
        // The node reports its last GPU down: CUDA work must leave the
        // proxy queue (for the surviving GPU) but SMP work stays.
        s.forbid(p, Device::Cuda);
        assert_eq!(s.next(p), Some(TaskId(1)), "proxy keeps serving SMP");
        assert_eq!(s.next(p), None, "proxy is handed no CUDA work");
        assert_eq!(s.next(g), Some(TaskId(0)));
        assert_eq!(s.next(g), Some(TaskId(2)));
        // Future placements skip the forbidden proxy even with affinity.
        s.submit(&desc(3, Device::Cuda, &[(1, 0, 64)]), &oracle);
        assert_eq!(s.next(p), None);
        assert_eq!(s.next(g), Some(TaskId(3)));
        assert_eq!(s.queued(), 0);
    }

    #[test]
    fn drain_unservable_counts_forbidden_resources_as_dead() {
        let mut s = Scheduler::new(Policy::BreadthFirst);
        let p = s.register(ResourceInfo {
            kind: ResourceKind::NodeProxy,
            space: SpaceId(20),
            steal_group: 1,
        });
        s.submit(&desc(0, Device::Cuda, &[]), &NoLocality);
        s.submit(&desc(1, Device::Smp, &[]), &NoLocality);
        s.forbid(p, Device::Cuda);
        assert_eq!(s.drain_unservable(), vec![TaskId(0)]);
        assert_eq!(s.next(p), Some(TaskId(1)));
    }

    #[test]
    fn withdraw_rehomes_servable_work_and_returns_the_rest() {
        let mut s = Scheduler::new(Policy::Affinity);
        let proxy =
            ResourceInfo { kind: ResourceKind::NodeProxy, space: SpaceId(20), steal_group: 1 };
        let p = s.register(proxy);
        let w = s.register(smp(0));
        let oracle = MapOracle(HashMap::from([((1, 20), 64)]));
        // An SMP task placed on the proxy (survivable by the worker) and
        // a CUDA task only the proxy could ever serve.
        s.submit(&desc(0, Device::Smp, &[(1, 0, 64)]), &oracle);
        s.submit(&desc(1, Device::Cuda, &[(1, 0, 64)]), &oracle);
        let orphans = s.withdraw(p);
        assert_eq!(orphans, vec![TaskId(1)], "unservable CUDA task is surfaced");
        assert!(!s.is_active(p));
        assert_eq!(s.next(p), None, "a withdrawn node is handed nothing");
        assert_eq!(s.next(w), Some(TaskId(0)), "SMP work re-homed to the survivor");
        assert_eq!(s.queued(), 0);
        // Idempotent.
        assert!(s.withdraw(p).is_empty());
    }

    #[test]
    fn chart_labels_match_paper() {
        assert_eq!(Policy::BreadthFirst.chart_label(), "bf");
        assert_eq!(Policy::Dependencies.chart_label(), "default");
        assert_eq!(Policy::Affinity.chart_label(), "affinity");
    }
}
