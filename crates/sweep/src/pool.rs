//! A long-lived worker pool for daemon-style hosts.
//!
//! [`crate::run_jobs`] is deliberately a *batch* primitive: scoped
//! threads, non-`'static` closures, and a barrier at the end — perfect
//! for a sweep that knows its whole work list up front, useless for a
//! server that accepts work forever. [`WorkerPool`] is the complement:
//! a fixed set of named OS threads that execute `'static` closures
//! submitted over time, drain whatever is queued when the pool is
//! dropped, and never let one panicking job take the process down.
//!
//! Cooperative cancellation rides along as [`CancelToken`]: a cheap
//! cloneable flag a host hands to long-running work so it can stop
//! between units (a job server cancelling a queued or running job, a
//! runner loop noticing shutdown). The pool itself never forces a
//! thread to stop — simulation runs are finite, so polling the token at
//! natural boundaries is always enough.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// A cloneable cooperative-cancellation flag.
///
/// All clones observe the same state; [`cancel`](CancelToken::cancel)
/// is idempotent and never un-sets. Work that holds a token checks
/// [`is_cancelled`](CancelToken::is_cancelled) at its own boundaries —
/// nothing is interrupted preemptively.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Flip the token; every clone sees it. Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether [`cancel`](CancelToken::cancel) has been called on any
    /// clone of this token.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-width pool of named worker threads executing submitted
/// closures.
///
/// Jobs run in submission order per the shared queue (which thread
/// picks a job up is scheduling, not semantics — determinism lives
/// inside each simulation, exactly as with [`crate::run_jobs`]). A
/// panicking job is caught and counted; the pool keeps serving. On drop
/// the queue is closed, already-submitted jobs finish, and the threads
/// are joined.
pub struct WorkerPool {
    tx: Option<mpsc::Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    panics: Arc<AtomicU64>,
}

impl WorkerPool {
    /// Spawn `threads` workers (at least one) named `<name>-0`,
    /// `<name>-1`, …
    pub fn new(name: &str, threads: usize) -> WorkerPool {
        let threads = threads.max(1);
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let panics = Arc::new(AtomicU64::new(0));
        let handles = (0..threads)
            .map(|i| {
                let rx = rx.clone();
                let panics = panics.clone();
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only for the recv pop, not while
                        // running the job, or the pool would serialise.
                        let job = match rx.lock().expect("pool queue poisoned").recv() {
                            Ok(job) => job,
                            Err(_) => return, // pool dropped and queue drained
                        };
                        if catch_unwind(AssertUnwindSafe(job)).is_err() {
                            panics.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { tx: Some(tx), handles, panics }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Queue `job` for execution on some worker.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool already shut down")
            .send(Box::new(job))
            .expect("pool workers gone");
    }

    /// Jobs that panicked so far (each was caught; the pool kept going).
    pub fn panicked_jobs(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Close the queue, run every already-submitted job, and join the
    /// workers. Returns the number of jobs that panicked. Equivalent to
    /// dropping the pool, but reports.
    pub fn join(mut self) -> u64 {
        self.shutdown();
        self.panics.load(Ordering::Relaxed)
    }

    fn shutdown(&mut self) {
        drop(self.tx.take());
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::AtomicUsize;

    use super::*;

    #[test]
    fn executes_every_submitted_job() {
        let pool = WorkerPool::new("t", 4);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let hits = hits.clone();
            pool.submit(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(pool.join(), 0);
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn drop_drains_the_queue() {
        let hits = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new("t", 2);
            for _ in 0..32 {
                let hits = hits.clone();
                pool.submit(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        }
        assert_eq!(hits.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn a_panicking_job_does_not_kill_the_pool() {
        let pool = WorkerPool::new("t", 2);
        let hits = Arc::new(AtomicUsize::new(0));
        pool.submit(|| panic!("job blew up"));
        for _ in 0..10 {
            let hits = hits.clone();
            pool.submit(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(pool.join(), 1);
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn at_least_one_thread() {
        let pool = WorkerPool::new("t", 0);
        assert_eq!(pool.threads(), 1);
        let ran = Arc::new(AtomicBool::new(false));
        let r2 = ran.clone();
        pool.submit(move || r2.store(true, Ordering::Relaxed));
        pool.join();
        assert!(ran.load(Ordering::Relaxed));
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!c.is_cancelled());
        t.cancel();
        assert!(c.is_cancelled());
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn cancel_token_stops_a_runner_loop() {
        let pool = WorkerPool::new("t", 1);
        let token = CancelToken::new();
        let steps = Arc::new(AtomicUsize::new(0));
        let (t2, s2) = (token.clone(), steps.clone());
        pool.submit(move || {
            while !t2.is_cancelled() {
                s2.fetch_add(1, Ordering::Relaxed);
                std::thread::yield_now();
            }
        });
        while steps.load(Ordering::Relaxed) < 10 {
            std::thread::yield_now();
        }
        token.cancel();
        pool.join(); // returns: the loop observed the token
    }
}
