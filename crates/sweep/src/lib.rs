//! Parallel sweep runner for independent simulation configurations.
//!
//! Every `ompss_sim::Sim` is self-contained — no global mutable state —
//! so the evaluation harnesses (`all_figures`, `verify`, `chaos`) can
//! run their hundreds of independent configurations on several host
//! threads at once. [`run_jobs`] does exactly that and nothing more:
//!
//! * **Submission-order results.** Output slot `i` always holds task
//!   `i`'s result, whatever thread ran it, so callers assemble their
//!   JSON in a fixed order and parallel output is byte-identical to
//!   serial output.
//! * **Deterministic work itself.** Parallelism must only change *when*
//!   a configuration runs, never *what* it computes. That holds because
//!   each simulation owns all of its state; the determinism pin tests
//!   in `crates/bench/tests` enforce it.
//! * **Serial fallback.** With one job (or one task) everything runs on
//!   the calling thread — same code path the repo has always had.
//!
//! The job count comes from `--jobs N` flags via [`set_jobs`], from the
//! `OMPSS_BENCH_JOBS` environment variable, or defaults to the host's
//! available parallelism.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

mod pool;

pub use pool::{CancelToken, WorkerPool};

/// Process-wide job count used by [`jobs`] when a harness has parsed
/// `--jobs` (0 = unset, fall back to env/host detection).
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Set the process-wide sweep width (e.g. from a `--jobs N` flag).
pub fn set_jobs(n: usize) {
    JOBS.store(n.max(1), Ordering::Relaxed);
}

/// Effective sweep width: the value from [`set_jobs`] if any, else
/// `OMPSS_BENCH_JOBS`, else the host's available parallelism.
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => default_jobs(),
        n => n,
    }
}

/// Sweep width from the environment: `OMPSS_BENCH_JOBS` if set and
/// positive, otherwise the host's available parallelism (1 if unknown).
pub fn default_jobs() -> usize {
    if let Some(v) = std::env::var_os("OMPSS_BENCH_JOBS") {
        if let Ok(n) = v.to_string_lossy().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Run `tasks` on up to `jobs` host threads, returning the results in
/// submission order. With `jobs <= 1` (or fewer than two tasks) the
/// tasks run serially on the calling thread.
///
/// Tasks are claimed from a shared counter in submission order, so with
/// any job count the first task starts first — only overlap changes.
/// A panicking task propagates its panic to the caller once all threads
/// have stopped claiming work.
pub fn run_jobs<T, F>(jobs: usize, tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = tasks.len();
    if jobs <= 1 || n <= 1 {
        return tasks.into_iter().map(|f| f()).collect();
    }
    let threads = jobs.min(n);
    // Each task is claimed exactly once via `next`; its closure moves
    // out of its slot and its result moves into the matching output
    // slot, keeping submission order regardless of which thread ran it.
    let task_slots: Vec<Mutex<Option<F>>> =
        tasks.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let out_slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let panicked: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return;
                }
                let f = task_slots[i]
                    .lock()
                    .expect("sweep task slot poisoned")
                    .take()
                    .expect("sweep task claimed twice");
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
                    Ok(v) => *out_slots[i].lock().expect("sweep result slot poisoned") = Some(v),
                    Err(payload) => {
                        // First panic wins; park the payload and stop
                        // claiming work so the sweep winds down fast.
                        let mut p = panicked.lock().expect("sweep panic slot poisoned");
                        if p.is_none() {
                            *p = Some(payload);
                        }
                        next.store(n, Ordering::Relaxed);
                        return;
                    }
                }
            });
        }
    });

    if let Some(payload) = panicked.into_inner().expect("sweep panic slot poisoned") {
        std::panic::resume_unwind(payload);
    }
    out_slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("sweep result slot poisoned")
                .expect("sweep task produced no result")
        })
        .collect()
}

/// Parse a `--jobs N` flag out of an argument list (mutating it) and
/// apply it via [`set_jobs`]. Returns the chosen width. Accepts
/// `--jobs N` and `--jobs=N`.
pub fn parse_jobs_flag(args: &mut Vec<String>) -> usize {
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--jobs" {
            let v = args
                .get(i + 1)
                .unwrap_or_else(|| panic!("--jobs needs a value"))
                .parse::<usize>()
                .expect("--jobs expects a positive integer");
            set_jobs(v);
            args.drain(i..i + 2);
        } else if let Some(v) = args[i].strip_prefix("--jobs=") {
            let v = v.parse::<usize>().expect("--jobs expects a positive integer");
            set_jobs(v);
            args.remove(i);
        } else {
            i += 1;
        }
    }
    jobs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_submission_order() {
        let tasks: Vec<_> = (0..64).map(|i| move || i * 3).collect();
        assert_eq!(run_jobs(8, tasks), (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_path_matches_parallel() {
        let mk = || (0..20).map(|i| move || format!("r{i}")).collect::<Vec<_>>();
        assert_eq!(run_jobs(1, mk()), run_jobs(4, mk()));
    }

    #[test]
    fn single_task_runs_inline() {
        let here = std::thread::current().id();
        let got = run_jobs(8, vec![move || std::thread::current().id() == here]);
        assert_eq!(got, vec![true]);
    }

    #[test]
    fn empty_sweep_is_fine() {
        let got: Vec<u32> = run_jobs(4, Vec::<fn() -> u32>::new());
        assert!(got.is_empty());
    }

    #[test]
    fn panic_propagates() {
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> =
            vec![Box::new(|| 1), Box::new(|| panic!("boom in sweep")), Box::new(|| 3)];
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_jobs(2, tasks)));
        assert!(r.is_err(), "sweep must re-raise task panics");
    }

    #[test]
    fn parse_jobs_flag_variants() {
        let mut args = vec!["--jobs".to_string(), "3".to_string(), "app".to_string()];
        assert_eq!(parse_jobs_flag(&mut args), 3);
        assert_eq!(args, vec!["app".to_string()]);
        let mut args = vec!["--jobs=5".to_string()];
        assert_eq!(parse_jobs_flag(&mut args), 5);
        assert!(args.is_empty());
        set_jobs(1); // restore for other tests in this process
    }
}
