//! The memory-space topology and transfer routing.
//!
//! Spaces form a tree: every GPU space hangs off its node's host space,
//! and host spaces talk to each other over the network. A transfer from
//! any space to any other is a sequence of *hops*, each either a PCIe
//! copy (GPU↔host) or a network message (host↔host). Data passing
//! through an intermediate space is cached there — that is the paper's
//! hierarchical behaviour ("a whole remote cluster node is a single
//! device [from the master's view], but GPUs inside that node will also
//! have their own cache", §III-C3).
//!
//! Whether host↔host traffic between two *slave* nodes goes direct
//! (`StoS`) or is relayed through the master (`MtoS`) is the cluster
//! configuration axis of Figure 9.

use std::collections::HashMap;

use ompss_mem::SpaceId;

/// The physical medium of one hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopKind {
    /// GPU↔host over PCIe.
    Pcie,
    /// host↔host over the interconnect.
    Network,
}

/// One hop of a route: move the region from `from` to `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Source space.
    pub from: SpaceId,
    /// Destination space.
    pub to: SpaceId,
    /// Medium.
    pub kind: HopKind,
}

/// How inter-slave transfers are routed (Fig. 9's `MtoS` / `StoS` axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlaveRouting {
    /// All slave↔slave data is relayed through the master node.
    ViaMaster,
    /// Slaves exchange data directly.
    Direct,
}

/// The space tree plus routing policy.
#[derive(Debug, Clone)]
pub struct Topology {
    /// GPU space → its node's host space.
    parent: HashMap<SpaceId, SpaceId>,
    /// The master node's host space (the root; home copies live here).
    master_host: SpaceId,
    /// Inter-slave routing mode.
    pub routing: SlaveRouting,
}

impl Topology {
    /// Build a topology rooted at `master_host`.
    pub fn new(master_host: SpaceId, routing: SlaveRouting) -> Self {
        Topology { parent: HashMap::new(), master_host, routing }
    }

    /// Register a GPU space under its node host space.
    pub fn add_gpu(&mut self, gpu: SpaceId, host: SpaceId) {
        self.parent.insert(gpu, host);
    }

    /// The root (master host) space.
    pub fn root(&self) -> SpaceId {
        self.master_host
    }

    /// The host space a space belongs to (itself if it is a host).
    pub fn host_of(&self, space: SpaceId) -> SpaceId {
        *self.parent.get(&space).unwrap_or(&space)
    }

    /// Immediate parent in the cache hierarchy: a GPU's node host, a
    /// slave host's master host. The root has no parent.
    pub fn parent_of(&self, space: SpaceId) -> Option<SpaceId> {
        if let Some(&h) = self.parent.get(&space) {
            return Some(h);
        }
        if space != self.master_host {
            return Some(self.master_host);
        }
        None
    }

    /// True if `space` is a GPU space.
    pub fn is_gpu(&self, space: SpaceId) -> bool {
        self.parent.contains_key(&space)
    }

    /// The hop sequence moving data from `src` to `dst`.
    ///
    /// `src == dst` yields an empty route. Host↔host hops respect the
    /// [`SlaveRouting`] mode.
    pub fn route(&self, src: SpaceId, dst: SpaceId) -> Vec<Hop> {
        let mut hops = Vec::new();
        if src == dst {
            return hops;
        }
        let src_host = self.host_of(src);
        let dst_host = self.host_of(dst);
        if src != src_host {
            hops.push(Hop { from: src, to: src_host, kind: HopKind::Pcie });
        }
        if src_host != dst_host {
            let relay = self.routing == SlaveRouting::ViaMaster
                && src_host != self.master_host
                && dst_host != self.master_host;
            if relay {
                hops.push(Hop { from: src_host, to: self.master_host, kind: HopKind::Network });
                hops.push(Hop { from: self.master_host, to: dst_host, kind: HopKind::Network });
            } else {
                hops.push(Hop { from: src_host, to: dst_host, kind: HopKind::Network });
            }
        }
        if dst != dst_host {
            hops.push(Hop { from: dst_host, to: dst, kind: HopKind::Pcie });
        }
        hops
    }

    /// Number of hops from `src` to `dst` (route-length metric used to
    /// pick the nearest source copy).
    pub fn distance(&self, src: SpaceId, dst: SpaceId) -> usize {
        self.route(src, dst).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// master host = 0, slave hosts = 1, 2; gpus: 10 under 0, 11 under 1.
    fn topo(routing: SlaveRouting) -> Topology {
        let mut t = Topology::new(SpaceId(0), routing);
        t.add_gpu(SpaceId(10), SpaceId(0));
        t.add_gpu(SpaceId(11), SpaceId(1));
        t
    }

    #[test]
    fn same_space_has_empty_route() {
        assert!(topo(SlaveRouting::Direct).route(SpaceId(1), SpaceId(1)).is_empty());
    }

    #[test]
    fn host_to_its_gpu_is_one_pcie_hop() {
        let t = topo(SlaveRouting::Direct);
        let r = t.route(SpaceId(0), SpaceId(10));
        assert_eq!(r, vec![Hop { from: SpaceId(0), to: SpaceId(10), kind: HopKind::Pcie }]);
    }

    #[test]
    fn master_to_slave_gpu_is_net_then_pcie() {
        let t = topo(SlaveRouting::Direct);
        let r = t.route(SpaceId(0), SpaceId(11));
        assert_eq!(
            r,
            vec![
                Hop { from: SpaceId(0), to: SpaceId(1), kind: HopKind::Network },
                Hop { from: SpaceId(1), to: SpaceId(11), kind: HopKind::Pcie },
            ]
        );
    }

    #[test]
    fn slave_gpu_to_other_slave_direct() {
        let t = topo(SlaveRouting::Direct);
        let r = t.route(SpaceId(11), SpaceId(2));
        assert_eq!(
            r,
            vec![
                Hop { from: SpaceId(11), to: SpaceId(1), kind: HopKind::Pcie },
                Hop { from: SpaceId(1), to: SpaceId(2), kind: HopKind::Network },
            ]
        );
    }

    #[test]
    fn slave_to_slave_via_master_relays() {
        let t = topo(SlaveRouting::ViaMaster);
        let r = t.route(SpaceId(1), SpaceId(2));
        assert_eq!(
            r,
            vec![
                Hop { from: SpaceId(1), to: SpaceId(0), kind: HopKind::Network },
                Hop { from: SpaceId(0), to: SpaceId(2), kind: HopKind::Network },
            ]
        );
    }

    #[test]
    fn master_endpoint_never_relays() {
        let t = topo(SlaveRouting::ViaMaster);
        // master→slave and slave→master stay single network hops.
        assert_eq!(t.route(SpaceId(0), SpaceId(2)).len(), 1);
        assert_eq!(t.route(SpaceId(2), SpaceId(0)).len(), 1);
    }

    #[test]
    fn parent_chain() {
        let t = topo(SlaveRouting::Direct);
        assert_eq!(t.parent_of(SpaceId(11)), Some(SpaceId(1)));
        assert_eq!(t.parent_of(SpaceId(1)), Some(SpaceId(0)));
        assert_eq!(t.parent_of(SpaceId(0)), None);
        assert!(t.is_gpu(SpaceId(10)));
        assert!(!t.is_gpu(SpaceId(1)));
        assert_eq!(t.host_of(SpaceId(11)), SpaceId(1));
        assert_eq!(t.host_of(SpaceId(2)), SpaceId(2));
    }

    #[test]
    fn distance_metric() {
        let t = topo(SlaveRouting::Direct);
        assert_eq!(t.distance(SpaceId(0), SpaceId(0)), 0);
        assert_eq!(t.distance(SpaceId(0), SpaceId(10)), 1);
        assert_eq!(t.distance(SpaceId(10), SpaceId(11)), 3); // pcie+net+pcie
        let tv = topo(SlaveRouting::ViaMaster);
        assert_eq!(tv.distance(SpaceId(11), SpaceId(2)), 3); // pcie + 2 net...
    }
}
