//! # ompss-coherence — hierarchical directory and software caches
//!
//! The coherence support of Nanos++ (§III-C3 of Bueno et al., IPPS
//! 2012): before a task executes, an up-to-date copy of every region it
//! names is made available in the address space where it will run; a
//! hierarchical directory tracks the location and version of every
//! copy, and a software cache per device (each remote node is "a single
//! device" to the master; GPUs inside a node have their own caches)
//! skips transfers for data already in place.
//!
//! Three write policies are provided — `no-cache`, `write-through` and
//! `write-back` (default) — plus LRU replacement with dirty write-back,
//! in-flight transfer deduplication (the non-blocking cache), and the
//! `taskwait` flush semantics.
//!
//! The engine does bookkeeping and planning; the *runtime* executes the
//! planned hops (PCIe DMAs, network messages) via the [`TransferExec`]
//! trait, charging virtual time and moving real bytes.

#![warn(missing_docs)]

mod cache;
mod shard;
mod topo;

pub use cache::{
    CachePolicy, Coherence, CoherenceStats, Loc, LostRegion, TransferExec, TransferPurpose,
};
pub use shard::{MembershipEpochs, ShardMap};
pub use topo::{Hop, HopKind, SlaveRouting, Topology};
