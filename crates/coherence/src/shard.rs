//! Deterministic sharding of the control plane by `DataId`.
//!
//! The paper's evaluation (§IV) stops at four nodes because the master
//! image owns the whole region directory and every task-generation
//! step: all coherence resolution and dispatch serializes through one
//! node. The sharded control plane partitions ownership of the
//! `DataId` space across nodes with a pure function — consistent
//! multiplicative hashing — so that *any* node can compute, locally
//! and without a directory round trip, which node homes a given data
//! object. Ownership resolution therefore needs no active message at
//! all (the decisive advantage of a deterministic shard map over a
//! lookup service); only the data bytes themselves move, and they move
//! peer-to-peer between the owner and the consumer.
//!
//! The map is **total** (every `DataId` has exactly one shard),
//! **disjoint** (shards never overlap — it is a function), and
//! **deterministic** (independent of job count, iteration order, or
//! host); the proptests in this module pin all three.

use ompss_mem::DataId;

/// Fibonacci-hashing constant: `2^64 / φ`, odd, so multiplication by it
/// is a bijection on `u64` that spreads consecutive ids across the
/// whole space.
const SPREAD: u64 = 0x9E37_79B9_7F4A_7C15;

/// A deterministic partition of the `DataId` space into `shards`
/// equal ranges, and of shards onto owner nodes.
///
/// Construction is trivially cheap; every node of the cluster builds
/// an identical map from the run configuration alone, which is what
/// makes peer-to-peer resolution possible without consulting the
/// master.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    shards: u32,
}

impl ShardMap {
    /// A map with `shards` shards. `shards == 0` is the flat
    /// single-master plane and is rejected here: callers gate on the
    /// config before building a map.
    pub fn new(shards: u32) -> Self {
        assert!(shards > 0, "a shard map needs at least one shard");
        ShardMap { shards }
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard owning `data`. Total and disjoint by construction:
    /// a pure function of the id. The multiply spreads sequential ids
    /// (allocation order) uniformly; the 128-bit scale maps the spread
    /// key onto `0..shards` without modulo bias.
    pub fn shard_of(&self, data: DataId) -> u32 {
        let key = data.0.wrapping_mul(SPREAD);
        ((key as u128 * self.shards as u128) >> 64) as u32
    }

    /// The cluster node owning `data`'s shard, for a cluster of
    /// `nodes` nodes: shards wrap round-robin onto nodes, so with
    /// `shards == nodes` each node owns exactly one shard.
    pub fn owner_node(&self, data: DataId, nodes: u32) -> u32 {
        assert!(nodes > 0, "owner_node needs a non-empty cluster");
        self.shard_of(data) % nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_shard_owns_everything() {
        let m = ShardMap::new(1);
        for id in [0u64, 1, 7, u64::MAX] {
            assert_eq!(m.shard_of(DataId(id)), 0);
        }
    }

    #[test]
    fn sequential_ids_spread_across_shards() {
        // Allocation order is sequential from 0; a shard map that
        // clumped consecutive ids onto one owner would re-centralize
        // the directory. With 4 shards, the first 16 ids must touch
        // every shard.
        let m = ShardMap::new(4);
        let mut seen = [false; 4];
        for id in 0..16u64 {
            seen[m.shard_of(DataId(id)) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "ids 0..16 left a shard empty: {seen:?}");
    }

    proptest! {
        /// Total cover: every DataId maps to a shard in range, for any
        /// shard count.
        #[test]
        fn total_cover(id in any::<u64>(), shards in 1u32..=512) {
            let m = ShardMap::new(shards);
            prop_assert!(m.shard_of(DataId(id)) < shards);
        }

        /// Disjointness/determinism: two independently constructed maps
        /// (as two jobs or two nodes would build) agree on every id —
        /// the partition is a function of (id, shards) alone.
        #[test]
        fn deterministic_across_builders(id in any::<u64>(), shards in 1u32..=512) {
            let a = ShardMap::new(shards);
            let b = ShardMap::new(shards);
            prop_assert_eq!(a.shard_of(DataId(id)), b.shard_of(DataId(id)));
            prop_assert_eq!(a.owner_node(DataId(id), shards), b.owner_node(DataId(id), shards));
        }

        /// Owner nodes stay in range for any cluster size.
        #[test]
        fn owner_in_cluster(id in any::<u64>(), shards in 1u32..=512, nodes in 1u32..=512) {
            let m = ShardMap::new(shards);
            prop_assert!(m.owner_node(DataId(id), nodes) < nodes);
        }
    }
}
