//! Deterministic sharding of the control plane by `DataId`.
//!
//! The paper's evaluation (§IV) stops at four nodes because the master
//! image owns the whole region directory and every task-generation
//! step: all coherence resolution and dispatch serializes through one
//! node. The sharded control plane partitions ownership of the
//! `DataId` space across nodes with a pure function — consistent
//! multiplicative hashing — so that *any* node can compute, locally
//! and without a directory round trip, which node homes a given data
//! object. Ownership resolution therefore needs no active message at
//! all (the decisive advantage of a deterministic shard map over a
//! lookup service); only the data bytes themselves move, and they move
//! peer-to-peer between the owner and the consumer.
//!
//! The map is **total** (every `DataId` has exactly one shard),
//! **disjoint** (shards never overlap — it is a function), and
//! **deterministic** (independent of job count, iteration order, or
//! host); the proptests in this module pin all three.

use ompss_mem::DataId;

/// Fibonacci-hashing constant: `2^64 / φ`, odd, so multiplication by it
/// is a bijection on `u64` that spreads consecutive ids across the
/// whole space.
const SPREAD: u64 = 0x9E37_79B9_7F4A_7C15;

/// A deterministic partition of the `DataId` space into `shards`
/// equal ranges, and of shards onto owner nodes.
///
/// Construction is trivially cheap; every node of the cluster builds
/// an identical map from the run configuration alone, which is what
/// makes peer-to-peer resolution possible without consulting the
/// master.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    shards: u32,
}

impl ShardMap {
    /// A map with `shards` shards. `shards == 0` is the flat
    /// single-master plane and is rejected here: callers gate on the
    /// config before building a map.
    pub fn new(shards: u32) -> Self {
        assert!(shards > 0, "a shard map needs at least one shard");
        ShardMap { shards }
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard owning `data`. Total and disjoint by construction:
    /// a pure function of the id. The multiply spreads sequential ids
    /// (allocation order) uniformly; the 128-bit scale maps the spread
    /// key onto `0..shards` without modulo bias.
    pub fn shard_of(&self, data: DataId) -> u32 {
        let key = data.0.wrapping_mul(SPREAD);
        ((key as u128 * self.shards as u128) >> 64) as u32
    }

    /// The cluster node owning `data`'s shard, for a cluster of
    /// `nodes` nodes: shards wrap round-robin onto nodes, so with
    /// `shards == nodes` each node owns exactly one shard.
    pub fn owner_node(&self, data: DataId, nodes: u32) -> u32 {
        assert!(nodes > 0, "owner_node needs a non-empty cluster");
        self.shard_of(data) % nodes
    }

    /// The member of `members` owning `data`'s shard: shards wrap
    /// round-robin onto the member list. With `members == [0, 1, ..,
    /// n-1]` this equals [`ShardMap::owner_node`] — the static cluster
    /// is just epoch 0 of an elastic one.
    pub fn owner_among(&self, data: DataId, members: &[u32]) -> u32 {
        assert!(!members.is_empty(), "owner_among needs a non-empty member set");
        members[(self.shard_of(data) % members.len() as u32) as usize]
    }
}

/// Epoch-versioned cluster membership for the sharded control plane.
///
/// Elastic membership changes *which nodes exist*, and therefore which
/// node owns each shard. Every join or drain opens a new **epoch**: an
/// immutable, sorted member list from which shard ownership is derived
/// by the same pure function every node computes locally
/// ([`ShardMap::owner_among`]). Because each epoch's map is a function
/// of `(shards, member list)` alone, any two nodes replaying the same
/// membership event sequence agree on the owner of every `DataId` at
/// every epoch — rebalancing needs no coordination beyond the event
/// itself.
///
/// During the **handoff** between two epochs (the membership event has
/// happened but moved slices are still being re-homed) lookups resolve
/// through a *two-epoch window*: [`MembershipEpochs::resolve`] returns
/// the current owner plus, while the handoff is open, the previous
/// epoch's owner when it differs. A slice is always at one of the two —
/// it is re-homed registry-first, so whichever registry a peer consults
/// points at real bytes, never stale ones. [`MembershipEpochs::seal`]
/// closes the window once every moved slice has landed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipEpochs {
    map: ShardMap,
    /// Member lists per epoch, each sorted ascending and non-empty.
    epochs: Vec<Vec<u32>>,
    /// Handoff window open: resolution consults the last two epochs.
    handoff: bool,
}

impl MembershipEpochs {
    /// Epoch 0 with the initial member set (deduplicated, sorted).
    pub fn new(shards: u32, mut members: Vec<u32>) -> Self {
        members.sort_unstable();
        members.dedup();
        assert!(!members.is_empty(), "a cluster needs at least one member");
        MembershipEpochs { map: ShardMap::new(shards), epochs: vec![members], handoff: false }
    }

    /// The underlying shard map.
    pub fn map(&self) -> ShardMap {
        self.map
    }

    /// Index of the current epoch.
    pub fn current_epoch(&self) -> usize {
        self.epochs.len() - 1
    }

    /// Members of the current epoch, sorted ascending.
    pub fn members(&self) -> &[u32] {
        &self.epochs[self.epochs.len() - 1]
    }

    /// Is `node` a member of the current epoch?
    pub fn is_member(&self, node: u32) -> bool {
        self.members().binary_search(&node).is_ok()
    }

    /// Open a new epoch with `node` added. Opens the handoff window.
    /// Returns the new epoch index. Panics if `node` is already a
    /// member — the runtime arms at most one planned join per node.
    pub fn join(&mut self, node: u32) -> usize {
        let mut next = self.members().to_vec();
        let at = next.binary_search(&node).expect_err("join of an existing member");
        next.insert(at, node);
        self.epochs.push(next);
        self.handoff = true;
        self.current_epoch()
    }

    /// Open a new epoch with `node` removed. Opens the handoff window.
    /// Returns the new epoch index. Panics if `node` is not a member
    /// or is the last one (someone must inherit its shards).
    pub fn drain(&mut self, node: u32) -> usize {
        let mut next = self.members().to_vec();
        assert!(next.len() > 1, "cannot drain the last member");
        let at = next.binary_search(&node).expect("drain of a non-member");
        next.remove(at);
        self.epochs.push(next);
        self.handoff = true;
        self.current_epoch()
    }

    /// Close the handoff window: every slice moved by the last
    /// membership event has been re-homed, so lookups resolve through
    /// the current epoch alone.
    pub fn seal(&mut self) {
        self.handoff = false;
    }

    /// Is a handoff in progress?
    pub fn handoff_open(&self) -> bool {
        self.handoff
    }

    /// The owner of `data` under epoch `epoch`.
    pub fn owner_at(&self, data: DataId, epoch: usize) -> u32 {
        self.map.owner_among(data, &self.epochs[epoch])
    }

    /// The owner of `data` under the current epoch.
    pub fn owner(&self, data: DataId) -> u32 {
        self.owner_at(data, self.current_epoch())
    }

    /// Resolve `data` through the two-epoch window: the current owner,
    /// plus the previous epoch's owner while the handoff is open and
    /// the slice actually moved. Peer-to-peer resolution may consult
    /// either registry during handoff; re-homing is registry-first, so
    /// both point at real bytes.
    pub fn resolve(&self, data: DataId) -> (u32, Option<u32>) {
        let cur = self.owner(data);
        let prev = match (self.handoff, self.current_epoch()) {
            (true, e) if e > 0 => Some(self.owner_at(data, e - 1)).filter(|&p| p != cur),
            _ => None,
        };
        (cur, prev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_shard_owns_everything() {
        let m = ShardMap::new(1);
        for id in [0u64, 1, 7, u64::MAX] {
            assert_eq!(m.shard_of(DataId(id)), 0);
        }
    }

    #[test]
    fn sequential_ids_spread_across_shards() {
        // Allocation order is sequential from 0; a shard map that
        // clumped consecutive ids onto one owner would re-centralize
        // the directory. With 4 shards, the first 16 ids must touch
        // every shard.
        let m = ShardMap::new(4);
        let mut seen = [false; 4];
        for id in 0..16u64 {
            seen[m.shard_of(DataId(id)) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "ids 0..16 left a shard empty: {seen:?}");
    }

    proptest! {
        /// Total cover: every DataId maps to a shard in range, for any
        /// shard count.
        #[test]
        fn total_cover(id in any::<u64>(), shards in 1u32..=512) {
            let m = ShardMap::new(shards);
            prop_assert!(m.shard_of(DataId(id)) < shards);
        }

        /// Disjointness/determinism: two independently constructed maps
        /// (as two jobs or two nodes would build) agree on every id —
        /// the partition is a function of (id, shards) alone.
        #[test]
        fn deterministic_across_builders(id in any::<u64>(), shards in 1u32..=512) {
            let a = ShardMap::new(shards);
            let b = ShardMap::new(shards);
            prop_assert_eq!(a.shard_of(DataId(id)), b.shard_of(DataId(id)));
            prop_assert_eq!(a.owner_node(DataId(id), shards), b.owner_node(DataId(id), shards));
        }

        /// Owner nodes stay in range for any cluster size.
        #[test]
        fn owner_in_cluster(id in any::<u64>(), shards in 1u32..=512, nodes in 1u32..=512) {
            let m = ShardMap::new(shards);
            prop_assert!(m.owner_node(DataId(id), nodes) < nodes);
        }
    }

    #[test]
    fn static_cluster_is_epoch_zero() {
        // owner_among over [0..n) must equal owner_node: arming elastic
        // membership on a cluster that never churns changes nothing.
        let m = ShardMap::new(5);
        let members: Vec<u32> = (0..4).collect();
        for id in 0..64u64 {
            assert_eq!(m.owner_among(DataId(id), &members), m.owner_node(DataId(id), 4));
        }
    }

    #[test]
    fn join_drain_round_trip_restores_ownership() {
        // A join followed by a drain of the same node restores epoch
        // 0's member list, so every id's owner returns to its original
        // node — rebalancing is an involution, not a random walk.
        let mut e = MembershipEpochs::new(4, vec![0, 1, 2]);
        let before: Vec<u32> = (0..32).map(|id| e.owner(DataId(id))).collect();
        e.join(3);
        e.seal();
        e.drain(3);
        e.seal();
        let after: Vec<u32> = (0..32).map(|id| e.owner(DataId(id))).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn handoff_window_exposes_both_owners_then_seals() {
        let mut e = MembershipEpochs::new(4, vec![0, 1]);
        e.join(2);
        assert!(e.handoff_open());
        for id in 0..64u64 {
            let old = e.owner_at(DataId(id), 0);
            let (cur, prev) = e.resolve(DataId(id));
            assert_eq!(cur, e.owner(DataId(id)));
            match prev {
                Some(p) => assert_eq!(p, old, "window must expose the pre-join owner"),
                None => assert_eq!(cur, old, "no window entry means the slice never moved"),
            }
        }
        e.seal();
        for id in 0..64u64 {
            assert_eq!(e.resolve(DataId(id)).1, None, "sealed handoff resolves one epoch only");
        }
    }

    /// A legal churn script over a small node pool: `true` = join the
    /// node if absent, `false` = drain it if present (and not last).
    /// Illegal steps are skipped, so any bit pattern is a valid script.
    fn replay(e: &mut MembershipEpochs, script: &[(bool, u32)]) {
        for &(join, node) in script {
            if join && !e.is_member(node) {
                e.join(node);
                e.seal();
            } else if !join && e.is_member(node) && e.members().len() > 1 {
                e.drain(node);
                e.seal();
            }
        }
    }

    proptest! {
        /// Totality + disjoint cover survive arbitrary join/drain
        /// sequences: after every replayed script, each id has exactly
        /// one owner and that owner is a current member.
        #[test]
        fn churn_preserves_total_disjoint_cover(
            shards in 1u32..=64,
            script in proptest::collection::vec((any::<bool>(), 0u32..8), 0..12),
            id in any::<u64>(),
        ) {
            let mut e = MembershipEpochs::new(shards, vec![0, 1]);
            replay(&mut e, &script);
            let owner = e.owner(DataId(id));
            prop_assert!(e.is_member(owner), "owner {owner} not in members {:?}", e.members());
            // Disjointness is structural (owner() is a function), but a
            // second call must agree — no hidden state.
            prop_assert_eq!(owner, e.owner(DataId(id)));
        }

        /// Epoch lookups are deterministic across builders: two
        /// independently constructed epoch maps replaying the same
        /// membership script agree on the owner of every id at every
        /// epoch — the property that lets every node rebalance locally.
        #[test]
        fn churn_deterministic_across_builders(
            shards in 1u32..=64,
            script in proptest::collection::vec((any::<bool>(), 0u32..8), 0..12),
            id in any::<u64>(),
        ) {
            let mut a = MembershipEpochs::new(shards, vec![0, 1]);
            let mut b = MembershipEpochs::new(shards, vec![0, 1]);
            replay(&mut a, &script);
            replay(&mut b, &script);
            prop_assert_eq!(a.current_epoch(), b.current_epoch());
            for epoch in 0..=a.current_epoch() {
                prop_assert_eq!(a.owner_at(DataId(id), epoch), b.owner_at(DataId(id), epoch));
            }
        }

        /// The two-epoch window never leaks a node outside the last two
        /// member sets: mid-handoff resolution can only name the old or
        /// the new owner of a slice, never a third party.
        #[test]
        fn handoff_resolution_stays_in_window(
            shards in 1u32..=64,
            script in proptest::collection::vec((any::<bool>(), 0u32..8), 1..12),
            id in any::<u64>(),
        ) {
            let mut e = MembershipEpochs::new(shards, vec![0, 1]);
            replay(&mut e, &script);
            // Re-open a handoff with one more legal event, if any.
            let node = (0..8u32).find(|&n| !e.is_member(n));
            if let Some(n) = node {
                e.join(n);
                let cur_epoch = e.current_epoch();
                let (cur, prev) = e.resolve(DataId(id));
                prop_assert_eq!(cur, e.owner_at(DataId(id), cur_epoch));
                if let Some(p) = prev {
                    prop_assert_eq!(p, e.owner_at(DataId(id), cur_epoch - 1));
                    prop_assert_ne!(p, cur);
                }
            }
        }
    }
}
