//! The coherence engine: directory, software caches and policies.
//!
//! Before a task runs, the runtime asks this engine to make every
//! region named by the task's copy clauses available (and up to date,
//! for reads) in the task's execution space; after the task, it commits
//! the writes. The engine keeps one directory entry per exact-match
//! region with the set of *copies* across spaces, each carrying a
//! version, and plans transfers hop-by-hop along the space hierarchy —
//! caching the data at every intermediate space it flows through, like
//! Nanos++'s hierarchical caches (§III-C3).
//!
//! # Policies
//!
//! * [`CachePolicy::WriteBack`] (the runtime default, `wb`): written
//!   data stays dirty in the execution space until it is needed
//!   elsewhere, evicted, or flushed.
//! * [`CachePolicy::WriteThrough`] (`wt`): every task's writes are
//!   pushed one level up (GPU→host, slave→master) at commit time.
//! * [`CachePolicy::NoCache`]: like write-through, and additionally the
//!   task's copies are dropped from the execution space after commit —
//!   data moves in and out for every task.
//!
//! # Concurrency protocol
//!
//! Bookkeeping lives under one short-held lock; transfers happen
//! *outside* it, marked `InFlight` with a completion [`Signal`] so that
//! concurrent requests for the same copy wait instead of duplicating
//! the transfer (the "non-blocking cache" of the paper). Copies in use
//! are pinned against eviction: by the running task for its clauses,
//! and by the engine itself around a copy serving as a transfer source.
//!
//! # Dirty invariant
//!
//! A copy is *dirty* iff its data version is not present at the
//! region's *home* (the host holding the data object's home
//! allocation — the master host in the flat plane, a shard-owner node
//! under [`crate::ShardMap`] sharding). The invariant maintained
//! everywhere is: **if the home does not hold the latest version of a
//! region, at least one valid-latest copy elsewhere is marked dirty**,
//! so eviction write-backs can never lose the only latest copy.

use std::collections::HashMap;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;

use parking_lot::Mutex;

use ompss_mem::{Access, AllocId, DataId, MemoryManager, Region, SpaceId};
use ompss_sim::{now, Signal, SimError, SimResult};

use crate::topo::{HopKind, Topology};

/// Report a coherence-region touch to an armed model checker (no-op
/// otherwise — see [`ompss_sim::mc_touch`]). Region identity is hashed
/// (FNV-1a) into the resource-id space with the top bit set, so region
/// ids can never collide with the small counter ids primitives get
/// from [`ompss_sim::mc_resource_id`].
fn mc_touch_region(region: &Region) {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in [region.data.0, region.offset, region.len] {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    ompss_sim::mc_touch(h | (1 << 63));
}

/// The cache write policy (`NX_CACHE_POLICY` in Nanos++).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicy {
    /// Move data in and out around every task.
    NoCache,
    /// Propagate writes upward at commit; keep read copies cached.
    WriteThrough,
    /// Delay write propagation until the data is needed elsewhere
    /// (default).
    WriteBack,
}

impl CachePolicy {
    /// The label used in the paper's charts.
    pub fn chart_label(self) -> &'static str {
        match self {
            CachePolicy::NoCache => "nocache",
            CachePolicy::WriteThrough => "wt",
            CachePolicy::WriteBack => "wb",
        }
    }
}

/// A concrete placement of a region copy: where the bytes are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Loc {
    /// Address space.
    pub space: SpaceId,
    /// Allocation within the space.
    pub alloc: AllocId,
    /// Byte offset of the region within the allocation.
    pub offset: u64,
}

/// Why a transfer is being made. The engine threads this through to the
/// [`TransferExec`] so the runtime can account bytes by purpose —
/// demand fetches on a task's critical path versus anticipatory
/// movement (GPU prefetch, cluster presend) versus write traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TransferPurpose {
    /// A task acquire is waiting on this data.
    Demand,
    /// Anticipatory fetch toward a GPU ahead of its task.
    Prefetch,
    /// Cluster-level staging of task data at a remote node before the
    /// execution request is sent (the paper's pre-send optimisation).
    Presend,
    /// Dirty data pushed up one level: write-through commit or eviction
    /// write-back.
    WriteBack,
    /// Taskwait flush returning dirty data to the master host.
    Flush,
}

impl TransferPurpose {
    /// Stable lowercase label (report/trace key).
    pub fn label(self) -> &'static str {
        match self {
            TransferPurpose::Demand => "demand",
            TransferPurpose::Prefetch => "prefetch",
            TransferPurpose::Presend => "presend",
            TransferPurpose::WriteBack => "writeback",
            TransferPurpose::Flush => "flush",
        }
    }
}

/// Executes one planned hop, charging virtual time and moving the real
/// bytes. Implemented by the runtime (PCIe hops drive the GPU DMA
/// model; network hops drive active messages).
pub trait TransferExec: Send + Sync {
    /// Perform the transfer. Must move the bytes via the memory manager
    /// and block the calling process for the modelled duration.
    ///
    /// Returns `Ok(true)` when the bytes arrived at the destination.
    /// `Ok(false)` means the hop spent its wire time but the data never
    /// landed — one endpoint's node died mid-transfer — so the engine
    /// must treat the destination as garbage, not valid.
    ///
    /// Boxed future rather than `async fn`: the trait must stay
    /// object-safe (`&dyn TransferExec` is threaded through the engine).
    /// Implementors wrap their body in `Box::pin(async move { ... })`.
    fn transfer<'a>(
        &'a self,
        kind: HopKind,
        purpose: TransferPurpose,
        src: Loc,
        dst: Loc,
        bytes: u64,
    ) -> Pin<Box<dyn Future<Output = SimResult<bool>> + Send + 'a>>;
}

/// A region whose latest committed version was lost with a purged
/// space: no surviving copy holds it any more. Produced by
/// [`Coherence::purge_spaces`]; the node-loss recovery path consumes it
/// to drive lineage reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LostRegion {
    /// The affected region.
    pub region: Region,
    /// The version the directory had committed before the loss.
    pub latest: u64,
    /// The newest version still held by a surviving copy (a live home
    /// holds at least version 0, so reconstruction has a base to
    /// replay from; when the *home itself* died the recovery path
    /// re-homes the data first — see [`Coherence::rehome_data`]).
    pub best: u64,
}

/// Coherence activity counters.
#[derive(Debug, Default, Clone)]
pub struct CoherenceStats {
    /// Acquire requests satisfied without any transfer.
    pub hits: u64,
    /// Acquire requests that required at least one transfer or wait.
    pub misses: u64,
    /// Individual hop transfers executed.
    pub transfers: u64,
    /// Bytes moved by all hops.
    pub bytes_moved: u64,
    /// Bytes moved over PCIe hops.
    pub pcie_bytes: u64,
    /// Bytes moved over network hops.
    pub net_bytes: u64,
    /// Bytes moved on a task's critical path (demand fetches).
    pub demand_bytes: u64,
    /// Bytes moved ahead of need by the GPU prefetcher.
    pub prefetch_bytes: u64,
    /// Bytes staged at remote nodes by the cluster pre-send path.
    pub presend_bytes: u64,
    /// Bytes pushed upward: write-through commits plus eviction
    /// write-backs.
    pub push_bytes: u64,
    /// Bytes returned home by taskwait flushes.
    pub flush_bytes: u64,
    /// Dirty evictions written back.
    pub writebacks: u64,
    /// Bytes written back on eviction.
    pub writeback_bytes: u64,
    /// Copies evicted (dirty or clean).
    pub evictions: u64,
}

#[derive(Clone)]
enum CState {
    /// Holds data of the given region version.
    Valid { version: u64 },
    /// Being filled by a transfer; wait on the signal.
    InFlight { done: Signal },
    /// Allocated, contents undefined (output-only placement).
    Garbage,
}

struct CopyState {
    alloc: AllocId,
    offset: u64,
    state: CState,
    dirty: bool,
    pinned: u32,
    last_use: u64,
}

struct RegionEntry {
    version: u64,
    /// The host space holding this region's authoritative home copy
    /// (the data object's home allocation). The master host in the
    /// flat plane; a shard-owner node's host under sharded homing.
    /// Node-loss recovery may move it ([`Coherence::rehome_data`]).
    home: SpaceId,
    copies: HashMap<SpaceId, CopyState>,
}

impl RegionEntry {
    fn home_has(&self, version: u64) -> bool {
        matches!(
            self.copies.get(&self.home).map(|c| &c.state),
            Some(CState::Valid { version: v }) if *v >= version
        )
    }
}

struct Inner {
    regions: HashMap<Region, RegionEntry>,
    tick: u64,
    stats: CoherenceStats,
    /// Spaces declared dead by [`Coherence::purge_spaces`]: their node
    /// was lost. Acquires and placements targeting them shut down
    /// instead of planning transfers nobody could serve.
    dead: Vec<SpaceId>,
}

/// The coherence engine. The runtime holds it in an `Arc` and calls it
/// from worker, GPU-manager and communication processes concurrently.
pub struct Coherence {
    mem: Arc<MemoryManager>,
    topo: Topology,
    policy: CachePolicy,
    /// Fraction of a space's capacity to free *beyond* the immediate
    /// need when evicting (0 = precise LRU). Non-zero models the
    /// coarse replacement of the paper-era GPU cache, which flushed
    /// aggressively under memory pressure — the behaviour behind the
    /// N-Body memory-pressure study (Fig. 8).
    evict_slack: f64,
    /// When set (verification runs and the coherence proptests), the
    /// full directory invariant check runs after every state-changing
    /// operation, panicking on the first violation. Off by default: the
    /// sweep is O(regions × copies) per operation.
    validate: bool,
    inner: Mutex<Inner>,
}

/// One externally-executed action planned under the lock.
enum Step {
    /// Wait for a concurrent transfer of the same copy.
    Wait(Signal),
    /// Evict to make `bytes` available in `space`, then re-plan.
    Room { space: SpaceId, bytes: u64 },
    /// Execute one hop transfer.
    Hop {
        kind: HopKind,
        from: SpaceId,
        to: SpaceId,
        src: Loc,
        dst: Loc,
        bytes: u64,
        version: u64,
        done: Signal,
    },
}

impl Coherence {
    /// Build an engine over the memory manager, space topology and
    /// selected policy.
    pub fn new(mem: Arc<MemoryManager>, topo: Topology, policy: CachePolicy) -> Self {
        Coherence {
            mem,
            topo,
            policy,
            evict_slack: 0.0,
            validate: false,
            inner: Mutex::new(Inner {
                regions: HashMap::new(),
                tick: 0,
                stats: CoherenceStats::default(),
                dead: Vec::new(),
            }),
        }
    }

    /// Set the coarse-eviction slack (see the field docs). Returns
    /// `self` for builder-style construction.
    pub fn with_evict_slack(mut self, slack: f64) -> Self {
        assert!((0.0..1.0).contains(&slack));
        self.evict_slack = slack;
        self
    }

    /// Enable (or disable) continuous invariant checking: after every
    /// commit, completed hop, eviction round and flush the whole
    /// directory is swept with [`check_invariants`](Self::check_invariants)
    /// and the engine panics on the first violation. Used by `verify`
    /// runs and the coherence proptests; costs O(regions × copies) per
    /// operation, so it stays off for benchmarks. Builder-style.
    pub fn with_validation(mut self, on: bool) -> Self {
        self.validate = on;
        self
    }

    /// Sweep the directory and report the first invariant violation:
    ///
    /// 1. **Dirty cover** — if a region's home does not hold its
    ///    latest version, at least one valid-latest copy elsewhere is
    ///    marked dirty (eviction write-backs can never lose the only
    ///    latest data).
    /// 2. **Version monotonicity** — no copy carries a version newer
    ///    than the directory entry's.
    /// 3. **Home never dirty** — the home copy is the authority; it is
    ///    never marked dirty.
    ///
    /// Note what is *not* an invariant: multiple dirty copies of one
    /// region are legal (a demand hop to a sibling marks the
    /// destination dirty without cleaning the source), and a *stale*
    /// dirty copy is legal too (superseded data whose dirty bit is
    /// cleared lazily by the next flush).
    pub fn check_invariants(&self) -> Result<(), String> {
        self.check_invariants_locked(&self.inner.lock())
    }

    fn check_invariants_locked(&self, inner: &Inner) -> Result<(), String> {
        for (region, entry) in &inner.regions {
            for (&space, c) in &entry.copies {
                if let CState::Valid { version } = c.state {
                    if version > entry.version {
                        return Err(format!(
                            "version monotonicity violated: {region} copy at {space:?} \
                             holds v{version} but the directory says v{}",
                            entry.version
                        ));
                    }
                }
                if space == entry.home && c.dirty {
                    return Err(format!(
                        "home dirty: {region} home copy at {space:?} is marked dirty"
                    ));
                }
            }
            if !entry.home_has(entry.version) {
                let covered = entry.copies.values().any(|c| {
                    c.dirty
                        && matches!(c.state, CState::Valid { version } if version == entry.version)
                });
                if !covered {
                    return Err(format!(
                        "dirty cover violated: home lacks {region} v{} and no valid-latest \
                         copy is marked dirty — an eviction could lose the data",
                        entry.version
                    ));
                }
            }
        }
        Ok(())
    }

    /// Run the sweep under an already-held lock when validation is on.
    fn debug_validate_locked(&self, inner: &Inner, site: &str) {
        if self.validate {
            if let Err(msg) = self.check_invariants_locked(inner) {
                panic!("coherence invariant broken after {site}: {msg}");
            }
        }
    }

    /// The active policy.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// The space topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CoherenceStats {
        self.inner.lock().stats.clone()
    }

    fn init_entry(&self, inner: &mut Inner, region: &Region) {
        if inner.regions.contains_key(region) {
            return;
        }
        // First touch: the authoritative copy is the data object's home
        // allocation — the master host in the flat plane, a shard
        // owner's host under sharded homing.
        let info = self.mem.data_info(region.data);
        debug_assert!(!self.topo.is_gpu(info.home_space), "home copies live in host memory");
        let mut copies = HashMap::new();
        copies.insert(
            info.home_space,
            CopyState {
                alloc: info.home_alloc,
                offset: region.offset,
                state: CState::Valid { version: 0 },
                dirty: false,
                pinned: 0,
                last_use: 0,
            },
        );
        inner.regions.insert(*region, RegionEntry { version: 0, home: info.home_space, copies });
    }

    /// Make `region` available in `target`: up-to-date if `read`, merely
    /// allocated if write-only. Pins the copy against eviction until
    /// [`commit`](Coherence::commit) or [`unpin`](Coherence::unpin).
    /// Returns where the bytes are.
    pub async fn acquire(
        &self,
        exec: &dyn TransferExec,
        region: &Region,
        read: bool,
        target: SpaceId,
    ) -> SimResult<Loc> {
        if read {
            self.ensure_valid(exec, region, target, true, TransferPurpose::Demand).await?;
        } else {
            self.ensure_placed(exec, region, target).await?;
        }
        // No simulation yield can occur between the pin taken above and
        // this lookup (the DES is sequential), so the copy is still here.
        let inner = self.inner.lock();
        let entry = &inner.regions[region];
        let c = &entry.copies[&target];
        debug_assert!(c.pinned > 0);
        // No-stale-read: a read acquire must hand the task the latest
        // version, under the same lock as the location lookup.
        debug_assert!(
            !read || matches!(c.state, CState::Valid { version } if version == entry.version),
            "stale read: acquire(read) of {region} at {target:?} returned a copy that is \
             not valid-latest (directory v{})",
            entry.version
        );
        Ok(Loc { space: target, alloc: c.alloc, offset: c.offset })
    }

    /// Drop one pin on `region`'s copy at `space` without committing a
    /// write (used when a prefetch is abandoned). A no-op when the copy
    /// no longer exists — node-loss recovery purges copies wholesale,
    /// pins included, and late unpinners must not trip over the hole.
    pub fn unpin(&self, region: &Region, space: SpaceId) {
        let mut inner = self.inner.lock();
        if let Some(c) = inner.regions.get_mut(region).and_then(|e| e.copies.get_mut(&space)) {
            assert!(c.pinned > 0, "unpin without pin");
            c.pinned -= 1;
        }
    }

    /// Commit a task's accesses at its execution space: bump versions
    /// for writes, apply the policy (write-through push, no-cache
    /// drop), and unpin everything the task had acquired.
    pub async fn commit(
        &self,
        exec: &dyn TransferExec,
        accesses: &[Access],
        target: SpaceId,
    ) -> SimResult<()> {
        let written: Vec<(Region, SpaceId)> = {
            let mut inner = self.inner.lock();
            let mut written = Vec::new();
            for a in accesses {
                mc_touch_region(&a.region);
                if !a.kind.writes() {
                    continue;
                }
                let entry = inner.regions.get_mut(&a.region).expect("committed region unknown");
                entry.version += 1;
                let v = entry.version;
                let home = entry.home;
                let c = entry.copies.get_mut(&target).expect("written copy missing");
                c.state = CState::Valid { version: v };
                // The home *is* the authority: data there is never dirty.
                c.dirty = target != home;
                // Single owner: the freshly committed version exists in
                // exactly one place until the engine propagates it.
                debug_assert_eq!(
                    entry
                        .copies
                        .values()
                        .filter(|c| matches!(c.state, CState::Valid { version } if version == v))
                        .count(),
                    1,
                    "single-owner violated: committed version {v} of {} exists in more than \
                     one space",
                    a.region
                );
                written.push((a.region, home));
            }
            written
        };

        // Policy: push writes one level up at commit time — toward the
        // written region's own home, which may differ per region under
        // sharded homing.
        if matches!(self.policy, CachePolicy::WriteThrough | CachePolicy::NoCache) {
            for (region, home) in &written {
                if let Some(parent) = self.push_target(target, *home) {
                    self.push_one_level(exec, region, target, parent).await?;
                }
            }
        }

        // Unpin, and under no-cache drop the task's copies entirely.
        let mut inner = self.inner.lock();
        for a in accesses {
            let entry = inner.regions.get_mut(&a.region).expect("committed region unknown");
            let home = entry.home;
            let c = entry.copies.get_mut(&target).expect("copy missing at unpin");
            assert!(c.pinned > 0, "commit without acquire");
            c.pinned -= 1;
            if self.policy == CachePolicy::NoCache
                && target != home
                && c.pinned == 0
                && !matches!(c.state, CState::InFlight { .. })
                && !c.dirty
            {
                let alloc = c.alloc;
                entry.copies.remove(&target);
                self.mem.free(target, alloc);
            }
        }
        self.debug_validate_locked(&inner, "commit");
        Ok(())
    }

    /// Compute the dirty bit for a copy of `version` at `space`: data is
    /// dirty iff it has not reached the region's home yet.
    fn dirty_for(&self, entry: &RegionEntry, space: SpaceId, version: u64) -> bool {
        space != entry.home && !entry.home_has(version)
    }

    /// The space one level "up" from `from` for write propagation of a
    /// region homed at `home`: a GPU pushes to its own host; a host
    /// that is not the home pushes straight to the home host (a
    /// peer-to-peer network hop when both are slaves); the home itself
    /// has nowhere further up. Equals `Topology::parent_of` whenever
    /// `home` is the master host — the flat plane.
    fn push_target(&self, from: SpaceId, home: SpaceId) -> Option<SpaceId> {
        if self.topo.is_gpu(from) {
            return self.topo.parent_of(from);
        }
        (from != home).then_some(home)
    }

    /// Push `region`'s data from `from` one level up to `parent`
    /// (write-through propagation / dirty eviction). Clears the dirty
    /// bit at `from` on success. No-op if `from` is clean or stale.
    async fn push_one_level(
        &self,
        exec: &dyn TransferExec,
        region: &Region,
        from: SpaceId,
        parent: SpaceId,
    ) -> SimResult<()> {
        let kind = if self.topo.is_gpu(from) || self.topo.is_gpu(parent) {
            HopKind::Pcie
        } else {
            HopKind::Network
        };
        loop {
            let step: Step = {
                let mut guard = self.inner.lock();
                let inner = &mut *guard;
                inner.tick += 1;
                let tick = inner.tick;
                let entry = inner.regions.get_mut(region).expect("push of unknown region");
                let Some(src_c) = entry.copies.get(&from) else {
                    return Ok(()); // copy vanished (already evicted)
                };
                if !src_c.dirty {
                    return Ok(());
                }
                let src_version = match src_c.state {
                    CState::Valid { version } => version,
                    _ => return Ok(()),
                };
                match entry.copies.get(&parent).map(|c| c.state.clone()) {
                    Some(CState::Valid { version }) if version >= src_version => {
                        // Parent already has it (or newer): just clean up.
                        entry.copies.get_mut(&from).expect("checked").dirty = false;
                        return Ok(());
                    }
                    Some(CState::InFlight { done, .. }) => Step::Wait(done),
                    other => {
                        if other.is_none() {
                            match self.mem.alloc(parent, region.len) {
                                Ok(alloc) => {
                                    entry.copies.insert(
                                        parent,
                                        CopyState {
                                            alloc,
                                            offset: 0,
                                            state: CState::Garbage,
                                            dirty: false,
                                            pinned: 0,
                                            last_use: tick,
                                        },
                                    );
                                }
                                Err(_) => {
                                    // Fall through to Room below.
                                }
                            }
                        }
                        match entry.copies.get_mut(&parent) {
                            Some(pc) => {
                                let done = Signal::new();
                                pc.state = CState::InFlight { done: done.clone() };
                                pc.last_use = tick;
                                let dst = Loc { space: parent, alloc: pc.alloc, offset: pc.offset };
                                let sc = entry.copies.get_mut(&from).expect("checked");
                                sc.pinned += 1;
                                let src = Loc { space: from, alloc: sc.alloc, offset: sc.offset };
                                Step::Hop {
                                    kind,
                                    from,
                                    to: parent,
                                    src,
                                    dst,
                                    bytes: region.len,
                                    version: src_version,
                                    done,
                                }
                            }
                            None => Step::Room { space: parent, bytes: region.len },
                        }
                    }
                }
            };
            match step {
                Step::Wait(sig) => sig.wait().await?,
                Step::Room { space, bytes } => self.make_room(exec, space, bytes).await?,
                Step::Hop { kind, from: f, to, src, dst, bytes, version, done } => {
                    let purpose = TransferPurpose::WriteBack;
                    let delivered = exec.transfer(kind, purpose, src, dst, bytes).await?;
                    self.finish_hop(
                        region, f, to, kind, purpose, bytes, version, done, true, delivered,
                    );
                    return Ok(());
                }
            }
        }
    }

    /// Bookkeeping after a hop transfer completes: destination becomes
    /// Valid, source is unpinned, stats updated. `clear_src_dirty` is
    /// set for upward pushes (the parent now covers the source's data).
    ///
    /// With `delivered == false` the bytes never arrived (an endpoint's
    /// node died mid-hop): the destination reverts to `Garbage` so
    /// waiters re-plan from a surviving source, and no stats are
    /// counted. Either endpoint's copy may have been purged outright by
    /// node-loss recovery while the transfer was on the wire, so every
    /// lookup here tolerates a hole.
    #[allow(clippy::too_many_arguments)]
    fn finish_hop(
        &self,
        region: &Region,
        from: SpaceId,
        to: SpaceId,
        kind: HopKind,
        purpose: TransferPurpose,
        bytes: u64,
        version: u64,
        done: Signal,
        clear_src_dirty: bool,
        delivered: bool,
    ) {
        let mut inner = self.inner.lock();
        if delivered {
            inner.stats.transfers += 1;
            inner.stats.bytes_moved += bytes;
            match kind {
                HopKind::Pcie => inner.stats.pcie_bytes += bytes,
                HopKind::Network => inner.stats.net_bytes += bytes,
            }
            match purpose {
                TransferPurpose::Demand => inner.stats.demand_bytes += bytes,
                TransferPurpose::Prefetch => inner.stats.prefetch_bytes += bytes,
                TransferPurpose::Presend => inner.stats.presend_bytes += bytes,
                TransferPurpose::WriteBack => inner.stats.push_bytes += bytes,
                TransferPurpose::Flush => inner.stats.flush_bytes += bytes,
            }
        }
        let Some(entry) = inner.regions.get_mut(region) else {
            done.set();
            return;
        };
        if delivered {
            // Mark destination valid first so dirty_for sees the root
            // state after this hop. Recovery may have repaired the copy
            // to a version at least as new while the hop ran — never
            // downgrade it.
            let repaired = matches!(
                entry.copies.get(&to).map(|c| &c.state),
                Some(CState::Valid { version: cur }) if *cur >= version
            );
            if !repaired {
                if let Some(dc) = entry.copies.get_mut(&to) {
                    dc.state = CState::Valid { version };
                }
                let entry = inner.regions.get_mut(region).expect("just found");
                let dirty = self.dirty_for(entry, to, version);
                if let Some(dc) = entry.copies.get_mut(&to) {
                    dc.dirty = dirty;
                }
            }
        } else if let Some(dc) = entry.copies.get_mut(&to) {
            // Still ours to resolve: contents are undefined. (If
            // recovery already replaced the state, leave it alone.)
            if matches!(dc.state, CState::InFlight { .. }) {
                dc.state = CState::Garbage;
                dc.dirty = false;
            }
        }
        done.set();
        let entry = inner.regions.get_mut(region).expect("just found");
        if let Some(sc) = entry.copies.get_mut(&from) {
            sc.pinned = sc.pinned.saturating_sub(1);
            if clear_src_dirty && delivered {
                sc.dirty = false;
            }
        }
        if delivered {
            self.debug_validate_locked(&inner, "finish_hop");
        }
    }

    /// Make a Valid-latest copy of `region` exist at `target`,
    /// transferring along the hierarchy as needed. `pin` pins the final
    /// copy for a task.
    async fn ensure_valid(
        &self,
        exec: &dyn TransferExec,
        region: &Region,
        target: SpaceId,
        pin: bool,
        purpose: TransferPurpose,
    ) -> SimResult<()> {
        mc_touch_region(region);
        let mut first_check = true;
        loop {
            let step: Step = {
                let mut guard = self.inner.lock();
                let inner = &mut *guard;
                if inner.dead.contains(&target) {
                    // The target's node is gone; nothing can be staged
                    // there any more. Callers on the dead node are
                    // being torn down and treat this as shutdown.
                    return Err(SimError::Shutdown);
                }
                inner.tick += 1;
                let tick = inner.tick;
                self.init_entry(inner, region);
                // Quick path: target already valid (or being filled).
                let quick: Option<Option<Step>> = {
                    let entry = inner.regions.get_mut(region).expect("initialised");
                    let latest = entry.version;
                    match entry.copies.get_mut(&target) {
                        Some(c) => match c.state.clone() {
                            CState::Valid { version } if version == latest => {
                                c.last_use = tick;
                                if pin {
                                    c.pinned += 1;
                                }
                                Some(None)
                            }
                            CState::InFlight { done, .. } => Some(Some(Step::Wait(done))),
                            _ => None,
                        },
                        None => None,
                    }
                };
                match quick {
                    Some(None) => {
                        if first_check {
                            inner.stats.hits += 1;
                        } else {
                            inner.stats.misses += 1;
                        }
                        return Ok(());
                    }
                    Some(Some(step)) => {
                        first_check = false;
                        step
                    }
                    None => {
                        first_check = false;
                        self.plan_next_hop(inner, region, target, tick)
                    }
                }
            };
            match step {
                Step::Wait(sig) => sig.wait().await?,
                Step::Room { space, bytes } => self.make_room(exec, space, bytes).await?,
                Step::Hop { kind, from, to, src, dst, bytes, version, done } => {
                    if std::env::var_os("OMPSS_COH_DEBUG").is_some() {
                        eprintln!(
                            "[coh {:.6}s] {region} v{version} hop {from:?}->{to:?} ({kind:?}, {bytes}B) for target {target:?}",
                            now().as_secs_f64()
                        );
                    }
                    let delivered = exec.transfer(kind, purpose, src, dst, bytes).await?;
                    self.finish_hop(
                        region, from, to, kind, purpose, bytes, version, done, false, delivered,
                    );
                }
            }
        }
    }

    /// Plan the first unsatisfied hop moving `region` toward `target`.
    /// Called under the lock; the target is known not to be valid.
    fn plan_next_hop(
        &self,
        inner: &mut Inner,
        region: &Region,
        target: SpaceId,
        tick: u64,
    ) -> Step {
        let entry = inner.regions.get_mut(region).expect("entry initialised by caller");
        let latest = entry.version;
        // Nearest valid-latest source.
        let src_space = entry
            .copies
            .iter()
            .filter(|(_, c)| matches!(c.state, CState::Valid { version } if version == latest))
            .map(|(&s, _)| s)
            .min_by_key(|&s| (self.topo.distance(s, target), s.0))
            .unwrap_or_else(|| {
                panic!("region {region} has no valid copy of version {latest} anywhere")
            });
        let route = self.topo.route(src_space, target);
        debug_assert!(!route.is_empty(), "target invalid yet source == target");
        for hop in route {
            match entry.copies.get(&hop.to).map(|c| c.state.clone()) {
                Some(CState::Valid { version }) if version == latest => continue,
                Some(CState::InFlight { done, .. }) => return Step::Wait(done),
                Some(_) => { /* stale or garbage: refresh the existing allocation */ }
                None => match self.mem.alloc(hop.to, region.len) {
                    Ok(alloc) => {
                        entry.copies.insert(
                            hop.to,
                            CopyState {
                                alloc,
                                offset: 0,
                                state: CState::Garbage,
                                dirty: false,
                                pinned: 0,
                                last_use: tick,
                            },
                        );
                    }
                    Err(_) => return Step::Room { space: hop.to, bytes: region.len },
                },
            }
            let done = Signal::new();
            let dc = entry.copies.get_mut(&hop.to).expect("just ensured");
            dc.state = CState::InFlight { done: done.clone() };
            dc.last_use = tick;
            let dst = Loc { space: hop.to, alloc: dc.alloc, offset: dc.offset };
            let sc = entry.copies.get_mut(&hop.from).expect("route source valid");
            sc.pinned += 1;
            sc.last_use = tick;
            let src = Loc { space: hop.from, alloc: sc.alloc, offset: sc.offset };
            return Step::Hop {
                kind: hop.kind,
                from: hop.from,
                to: hop.to,
                src,
                dst,
                bytes: region.len,
                version: latest,
                done,
            };
        }
        unreachable!("route had no unsatisfied hop but target is invalid")
    }

    /// Place an allocation for `region` at `target` without moving data
    /// (output-only clauses). Pins it.
    async fn ensure_placed(
        &self,
        exec: &dyn TransferExec,
        region: &Region,
        target: SpaceId,
    ) -> SimResult<()> {
        mc_touch_region(region);
        loop {
            let step: Step = {
                let mut guard = self.inner.lock();
                let inner = &mut *guard;
                if inner.dead.contains(&target) {
                    return Err(SimError::Shutdown);
                }
                inner.tick += 1;
                let tick = inner.tick;
                self.init_entry(inner, region);
                let entry = inner.regions.get_mut(region).expect("initialised");
                if let Some(c) = entry.copies.get_mut(&target) {
                    match c.state.clone() {
                        CState::InFlight { done, .. } => Step::Wait(done),
                        _ => {
                            c.pinned += 1;
                            c.last_use = tick;
                            inner.stats.hits += 1;
                            return Ok(());
                        }
                    }
                } else {
                    match self.mem.alloc(target, region.len) {
                        Ok(alloc) => {
                            entry.copies.insert(
                                target,
                                CopyState {
                                    alloc,
                                    offset: 0,
                                    state: CState::Garbage,
                                    dirty: false,
                                    pinned: 1,
                                    last_use: tick,
                                },
                            );
                            inner.stats.misses += 1;
                            return Ok(());
                        }
                        Err(_) => Step::Room { space: target, bytes: region.len },
                    }
                }
            };
            match step {
                Step::Wait(sig) => sig.wait().await?,
                Step::Room { space, bytes } => self.make_room(exec, space, bytes).await?,
                Step::Hop { .. } => unreachable!("placement plans no transfers"),
            }
        }
    }

    /// Evict least-recently-used, unpinned copies from `space` until
    /// `need` bytes fit, writing dirty-latest victims back one level.
    ///
    /// Boxed future: eviction of a dirty victim recurses through
    /// [`push_one_level`](Self::push_one_level), and an `async fn` cycle
    /// needs one boxed edge to have a finite type.
    fn make_room<'a>(
        &'a self,
        exec: &'a dyn TransferExec,
        space: SpaceId,
        need: u64,
    ) -> Pin<Box<dyn Future<Output = SimResult<()>> + Send + 'a>> {
        Box::pin(async move {
            let info = self.mem.space_info(space);
            let target = need + (self.evict_slack * info.capacity as f64) as u64;
            loop {
                let available = self.mem.available(space);
                if available >= need.max(target.min(info.capacity)) {
                    return Ok(());
                }
                // Choose the LRU evictable copy in `space`. Home copies
                // are never eviction victims: they are the authority for
                // their region (the master host evicts nothing in the
                // flat plane; a shard owner keeps its owned shard
                // resident and evicts only what it caches for others).
                let victim: Option<(Region, bool, SpaceId, u64)> = {
                    let inner = self.inner.lock();
                    inner
                        .regions
                        .iter()
                        .filter_map(|(region, entry)| {
                            if space == entry.home {
                                return None;
                            }
                            let c = entry.copies.get(&space)?;
                            if c.pinned > 0 || matches!(c.state, CState::InFlight { .. }) {
                                return None;
                            }
                            Some((*region, c.dirty, entry.home, c.last_use))
                        })
                        .min_by_key(|&(r, _, _, last_use)| (last_use, r))
                };
                let Some((region, dirty, home, _)) = victim else {
                    if available >= need {
                        // Slack not reachable (everything left is pinned);
                        // the immediate need is satisfied, so proceed.
                        return Ok(());
                    }
                    panic!(
                    "cache thrash: no evictable copy in space {space:?} while allocating {need} \
                     bytes (all copies pinned or in flight)"
                );
                };
                if dirty {
                    let parent = self
                        .push_target(space, home)
                        .expect("a dirty copy is never at its own home");
                    self.push_one_level(exec, &region, space, parent).await?;
                    let mut inner = self.inner.lock();
                    inner.stats.writebacks += 1;
                    inner.stats.writeback_bytes += region.len;
                }
                // Free it (re-checking evictability: state may have changed
                // while the write-back ran).
                let mut inner = self.inner.lock();
                let entry = inner.regions.get_mut(&region).expect("victim region");
                if let Some(c) = entry.copies.get(&space) {
                    if c.pinned == 0 && !matches!(c.state, CState::InFlight { .. }) && !c.dirty {
                        let alloc = c.alloc;
                        entry.copies.remove(&space);
                        inner.stats.evictions += 1;
                        self.mem.free(space, alloc);
                    }
                }
                self.debug_validate_locked(&inner, "eviction");
            }
        })
    }

    /// Stage an up-to-date copy of `region` at `space` without pinning
    /// it — used by the cluster layer to push task data to a remote
    /// node's host memory ahead of the execution request, and by the
    /// GPU prefetcher.
    pub async fn prefetch(
        &self,
        exec: &dyn TransferExec,
        region: &Region,
        space: SpaceId,
    ) -> SimResult<()> {
        self.ensure_valid(exec, region, space, false, TransferPurpose::Prefetch).await
    }

    /// Like [`prefetch`](Coherence::prefetch), but accounted as
    /// cluster pre-send traffic: the communication thread stages task
    /// data at a slave node's host memory ahead of the `Exec` request.
    pub async fn presend(
        &self,
        exec: &dyn TransferExec,
        region: &Region,
        space: SpaceId,
    ) -> SimResult<()> {
        self.ensure_valid(exec, region, space, false, TransferPurpose::Presend).await
    }

    /// Regions whose dirty valid-latest copy lives at one of `spaces`,
    /// in deterministic order — what a draining node must flush home
    /// before its copies can be dropped.
    pub fn dirty_regions_at(&self, spaces: &[SpaceId]) -> Vec<Region> {
        let inner = self.inner.lock();
        let mut dirty: Vec<Region> = inner
            .regions
            .iter()
            .filter(|(_, e)| {
                spaces.iter().any(|s| {
                    e.copies.get(s).is_some_and(|c| {
                        c.dirty
                            && matches!(c.state, CState::Valid { version } if version == e.version)
                    })
                })
            })
            .map(|(r, _)| *r)
            .collect();
        dirty.sort();
        dirty
    }

    /// Regions with a dirty valid-latest copy somewhere (what a flush
    /// must write home), in deterministic order.
    pub fn dirty_regions(&self) -> Vec<Region> {
        let inner = self.inner.lock();
        let mut dirty: Vec<Region> = inner
            .regions
            .iter()
            .filter(|(_, e)| {
                e.copies.values().any(|c| {
                    c.dirty && matches!(c.state, CState::Valid { version } if version == e.version)
                })
            })
            .map(|(r, _)| *r)
            .collect();
        dirty.sort();
        dirty
    }

    /// Flush every dirty region to its home host (the OmpSs `taskwait`
    /// semantics without `noflush`), one region at a time. Copies stay
    /// valid. The runtime's `taskwait` uses the parallel variant built
    /// on [`dirty_regions`](Coherence::dirty_regions) +
    /// [`flush_region`](Coherence::flush_region).
    pub async fn flush_all(&self, exec: &dyn TransferExec) -> SimResult<()> {
        let dirty: Vec<Region> = {
            let inner = self.inner.lock();
            inner
                .regions
                .iter()
                .filter(|(_, e)| {
                    e.copies.values().any(|c| {
                        c.dirty
                            && matches!(c.state, CState::Valid { version } if version == e.version)
                    })
                })
                .map(|(r, _)| *r)
                .collect()
        };
        let mut sorted = dirty;
        sorted.sort();
        for region in sorted {
            self.flush_region(exec, &region).await?;
        }
        Ok(())
    }

    /// Flush one region's latest version to its home host
    /// (`taskwait on(...)`) — the master in the flat plane, the shard
    /// owner's host under sharded homing (host-side reads go through
    /// the home allocation either way).
    pub async fn flush_region(&self, exec: &dyn TransferExec, region: &Region) -> SimResult<()> {
        let home = {
            let mut guard = self.inner.lock();
            let inner = &mut *guard;
            self.init_entry(inner, region);
            inner.regions[region].home
        };
        self.ensure_valid(exec, region, home, false, TransferPurpose::Flush).await?;
        // The home now reflects the latest version: latest copies are
        // clean, stale dirty copies hold obsolete data and are dropped
        // from the dirty set too.
        let mut inner = self.inner.lock();
        if let Some(entry) = inner.regions.get_mut(region) {
            for c in entry.copies.values_mut() {
                c.dirty = false;
            }
        }
        self.debug_validate_locked(&inner, "flush_region");
        Ok(())
    }

    /// Drop every droppable copy held at `space` and free its memory —
    /// the space's device was lost, so nothing cached there may serve as
    /// a transfer source again. Returns the number of copies dropped.
    ///
    /// Copies that are pinned, in flight, or dirty-latest are skipped:
    /// pins belong to a task still being torn down (the runtime unpins a
    /// failed task's accesses before calling this), in-flight fills
    /// complete through their signal, and a dirty-latest copy is the
    /// only home of its data so removing it would violate the dirty
    /// cover invariant (fault runs pin the write-through policy exactly
    /// so such copies cannot exist at a lost device).
    pub fn invalidate_space(&self, space: SpaceId) -> usize {
        assert_ne!(space, self.topo.root(), "the master host home is never invalidated");
        let mut inner = self.inner.lock();
        let mut dropped = 0;
        let mut freed: Vec<AllocId> = Vec::new();
        for entry in inner.regions.values_mut() {
            let Some(c) = entry.copies.get(&space) else {
                continue;
            };
            if c.pinned > 0 || matches!(c.state, CState::InFlight { .. }) {
                continue;
            }
            let latest = matches!(c.state, CState::Valid { version } if version == entry.version);
            if c.dirty && latest {
                continue;
            }
            let alloc = c.alloc;
            entry.copies.remove(&space);
            freed.push(alloc);
            dropped += 1;
        }
        inner.stats.evictions += dropped as u64;
        for alloc in freed {
            self.mem.free(space, alloc);
        }
        self.debug_validate_locked(&inner, "invalidate_space");
        dropped
    }

    /// Declare every space in `spaces` dead and drop all directory
    /// state held there — the whole node was lost, so pinned and
    /// in-flight copies go too (their fill signals are set so live
    /// waiters re-plan instead of blocking forever). Memory at the dead
    /// spaces is *not* freed: the allocations are unreachable, not
    /// reclaimed, and an in-flight transfer that already sourced its
    /// bytes from one may still complete its copy harmlessly.
    ///
    /// Returns, in deterministic order, every region whose latest
    /// committed version no longer exists at any surviving space. For
    /// those regions the directory is left *intentionally* short of its
    /// dirty-cover invariant; the caller must reconstruct them (lineage
    /// re-execution) and finish with [`repair_root`](Self::repair_root)
    /// before yielding to the simulation.
    pub fn purge_spaces(&self, spaces: &[SpaceId]) -> Vec<LostRegion> {
        assert!(!spaces.contains(&self.topo.root()), "the master host cannot be purged");
        let mut inner = self.inner.lock();
        for &s in spaces {
            if !inner.dead.contains(&s) {
                inner.dead.push(s);
            }
        }
        let mut lost = Vec::new();
        for (region, entry) in inner.regions.iter_mut() {
            let mut touched = false;
            for &s in spaces {
                if let Some(c) = entry.copies.remove(&s) {
                    touched = true;
                    if let CState::InFlight { done } = c.state {
                        done.set();
                    }
                }
            }
            if !touched {
                continue;
            }
            let best = entry
                .copies
                .values()
                .filter_map(|c| match c.state {
                    CState::Valid { version } => Some(version),
                    _ => None,
                })
                .max()
                .unwrap_or(0);
            if best < entry.version {
                lost.push(LostRegion { region: *region, latest: entry.version, best });
            }
        }
        lost.sort_by_key(|l| l.region);
        lost
    }

    /// Has `space` been declared dead by a purge?
    pub fn is_dead_space(&self, space: SpaceId) -> bool {
        self.inner.lock().dead.contains(&space)
    }

    /// Move `data`'s directory home to `new_home` (its new home
    /// allocation `new_alloc`, sized `size`) after the previous home
    /// died with its node. Called by node-loss recovery at zero
    /// virtual time, after [`purge_spaces`](Self::purge_spaces) and
    /// *before* lineage reconstruction, under the master lock with no
    /// simulator yields.
    ///
    /// For every tracked region of the data, the best surviving valid
    /// version is raw-copied into the new home allocation and becomes
    /// the (clean) home copy; regions whose latest version did not
    /// survive stay short of the dirty-cover invariant exactly as
    /// [`purge_spaces`](Self::purge_spaces) reported them, and lineage
    /// finishes the job through the re-pointed home.
    ///
    /// Fails — the caller must fail **closed**, never serve wrong
    /// bytes — when any byte of the object lies outside every tracked
    /// region (its only copy was the dead home allocation), when a
    /// region has no surviving valid copy at all (not even a base for
    /// replay), or when a live task holds a busy copy at `new_home`
    /// that cannot be displaced without yielding.
    /// On success returns the number of regions re-pointed.
    pub fn rehome_data(
        &self,
        data: DataId,
        size: u64,
        new_home: SpaceId,
        new_alloc: AllocId,
    ) -> Result<usize, String> {
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        let mut regions: Vec<Region> =
            inner.regions.keys().filter(|r| r.data == data).copied().collect();
        regions.sort();
        // Coverage: bytes outside every tracked region existed only in
        // the dead home allocation — no task ever named them, so no
        // survivor and no lineage can reproduce them.
        let mut covered = 0u64;
        for r in &regions {
            if r.offset > covered {
                break;
            }
            covered = covered.max(r.offset + r.len);
        }
        if covered < size {
            return Err(format!(
                "bytes {covered}..{size} of {data:?} lie outside every tracked region \
                 and died with the home node"
            ));
        }
        let moved = regions.len();
        for region in regions {
            let entry = inner.regions.get_mut(&region).expect("listed above");
            if let Some(c) = entry.copies.get(&new_home) {
                // A busy cached copy at the new home cannot be swapped
                // out from under its task without yielding.
                if c.pinned > 0 || matches!(c.state, CState::InFlight { .. }) {
                    return Err(format!("{region} has a busy copy at the new home {new_home:?}"));
                }
            }
            let best = entry
                .copies
                .values()
                .filter_map(|c| match c.state {
                    CState::Valid { version } => Some(version),
                    _ => None,
                })
                .max();
            let Some(best) = best else {
                return Err(format!("no surviving valid copy of {region} to re-home"));
            };
            // Deterministic source: the lowest-numbered space holding
            // the best version (mirrors pull_best_to_root).
            let (&src_space, src_c) = entry
                .copies
                .iter()
                .filter(|(_, c)| matches!(c.state, CState::Valid { version } if version == best))
                .min_by_key(|(&s, _)| s.0)
                .expect("best version has a holder");
            self.mem.copy(
                (src_space, src_c.alloc),
                src_c.offset,
                (new_home, new_alloc),
                region.offset,
                region.len,
            );
            // Displace any (idle) cached copy at the new home: the home
            // copy must live in the home allocation.
            if let Some(c) = entry.copies.remove(&new_home) {
                inner.stats.evictions += 1;
                self.mem.free(new_home, c.alloc);
            }
            let entry = inner.regions.get_mut(&region).expect("listed above");
            entry.home = new_home;
            entry.copies.insert(
                new_home,
                CopyState {
                    alloc: new_alloc,
                    offset: region.offset,
                    state: CState::Valid { version: best },
                    dirty: false,
                    pinned: 0,
                    last_use: 0,
                },
            );
            // The new home covers everything up to `best`: clean the
            // survivors it supersedes (latest copies past `best` keep
            // their dirty cover until lineage repairs the entry).
            for c in entry.copies.values_mut() {
                if matches!(c.state, CState::Valid { version } if version <= best) {
                    c.dirty = false;
                }
            }
        }
        Ok(moved)
    }

    /// Can `data`'s home move to `new_home` right now without yielding?
    /// True when every tracked region's home copy is idle (not pinned,
    /// not filling) and no busy copy sits at `new_home`. A planned
    /// rebalance *skips* data that is momentarily busy — the registry
    /// home stays authoritative wherever it points, so leaving a slice
    /// at its old owner is merely suboptimal, never wrong.
    pub fn migrate_ready(&self, data: DataId, new_home: SpaceId) -> bool {
        let inner = self.inner.lock();
        inner.regions.iter().filter(|(r, _)| r.data == data).all(|(_, e)| {
            let home_idle = e
                .copies
                .get(&e.home)
                .is_none_or(|c| c.pinned == 0 && !matches!(c.state, CState::InFlight { .. }));
            let target_idle = new_home == e.home
                || e.copies
                    .get(&new_home)
                    .is_none_or(|c| c.pinned == 0 && !matches!(c.state, CState::InFlight { .. }));
            home_idle && target_idle
        })
    }

    /// Move `data`'s home from the **live** allocation `old` to
    /// `new_home`/`new_alloc` (sized `size`) — the planned counterpart
    /// of [`rehome_data`](Self::rehome_data), used by elastic
    /// membership where the old home's node is alive and every byte
    /// survives. Called registry-second (the memory registry has
    /// already re-pointed the data and handed out `new_alloc`), under
    /// the master lock with no simulator yields, and only after
    /// [`migrate_ready`](Self::migrate_ready) said yes in the same
    /// critical section.
    ///
    /// The whole object is raw-copied (untracked bytes included — they
    /// exist only in the home allocation), then each tracked region's
    /// home copy moves to `new_home`. An idle cached copy already at
    /// `new_home` is compared by version: if it is **fresher** than the
    /// home copy (a write committed at the new owner's host that has
    /// not flushed yet) its bytes are promoted into the home allocation
    /// and its version carries over — displacing it would destroy the
    /// latest write; if it is stale or garbage it is displaced (the
    /// home copy must live in the home allocation). Either way its old
    /// cache allocation and the old home allocation are freed. Copies
    /// at other spaces are untouched. Returns `(regions_moved,
    /// bytes_moved)`.
    pub fn migrate_home(
        &self,
        data: DataId,
        size: u64,
        old: (SpaceId, AllocId),
        new_home: SpaceId,
        new_alloc: AllocId,
    ) -> (usize, u64) {
        let (old_home, old_alloc) = old;
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        self.mem.copy((old_home, old_alloc), 0, (new_home, new_alloc), 0, size);
        let mut regions: Vec<Region> =
            inner.regions.keys().filter(|r| r.data == data).copied().collect();
        regions.sort();
        let moved = regions.len();
        for region in regions {
            let entry = inner.regions.get_mut(&region).expect("listed above");
            assert_eq!(entry.home, old_home, "migrate_home: data split across homes");
            let home_copy = entry.copies.remove(&old_home);
            let local = entry.copies.remove(&new_home);
            let valid = |c: &Option<CopyState>| match c {
                Some(CopyState { state: CState::Valid { version }, .. }) => Some(*version),
                _ => None,
            };
            let promote = match (valid(&local), valid(&home_copy)) {
                (Some(lv), Some(hv)) => lv > hv,
                (Some(_), None) => true,
                (None, _) => false,
            };
            entry.home = new_home;
            if let Some(c) = local {
                debug_assert!(
                    c.pinned == 0 && !matches!(c.state, CState::InFlight { .. }),
                    "migrate_ready admitted a busy copy at the new home"
                );
                if promote {
                    // The new owner's host holds a version the moving
                    // home has not seen — its bytes become the home
                    // bytes, not the raw-copied stale ones.
                    self.mem.copy(
                        (new_home, c.alloc),
                        c.offset,
                        (new_home, new_alloc),
                        region.offset,
                        region.len,
                    );
                } else {
                    inner.stats.evictions += 1;
                }
                self.mem.free(new_home, c.alloc);
                if promote {
                    entry.copies.insert(
                        new_home,
                        CopyState { alloc: new_alloc, offset: region.offset, ..c },
                    );
                }
            }
            if !promote {
                if let Some(c) = home_copy {
                    entry.copies.insert(
                        new_home,
                        CopyState { alloc: new_alloc, offset: region.offset, ..c },
                    );
                }
            }
        }
        self.mem.free(old_home, old_alloc);
        self.debug_validate_locked(&guard, "migrate_home");
        (moved, size)
    }

    /// Materialise the best surviving version of `region` in its home
    /// allocation by raw byte copy (zero virtual time — recovery
    /// preamble, not modelled traffic). Returns `(best_version,
    /// bytes_copied)`; zero bytes when the home already holds it. Does
    /// not touch directory state — [`repair_root`](Self::repair_root)
    /// finalises once reconstruction is done. `None` when no valid copy
    /// survives anywhere (the home was mid-flight when its source
    /// died): the caller must fail closed, because the home bytes are
    /// then of an unknown version and replay could compound the error.
    pub fn pull_best_to_root(&self, region: &Region) -> Option<(u64, u64)> {
        let inner = self.inner.lock();
        let entry = inner.regions.get(region)?;
        let home = entry.home;
        let best = entry
            .copies
            .values()
            .filter_map(|c| match c.state {
                CState::Valid { version } => Some(version),
                _ => None,
            })
            .max()?;
        if matches!(
            entry.copies.get(&home).map(|c| &c.state),
            Some(CState::Valid { version }) if *version >= best
        ) {
            return Some((best, 0));
        }
        // Deterministic source: the lowest-numbered space holding it.
        let (&src_space, src_c) = entry
            .copies
            .iter()
            .filter(|(_, c)| matches!(c.state, CState::Valid { version } if version == best))
            .min_by_key(|(&s, _)| s.0)
            .expect("best version has a holder");
        let home_c = entry.copies.get(&home).expect("home copy");
        self.mem.copy(
            (src_space, src_c.alloc),
            src_c.offset,
            (home, home_c.alloc),
            home_c.offset,
            region.len,
        );
        Some((best, region.len))
    }

    /// Whether the directory tracks `region` at all (any entry, any
    /// copy states). Recovery uses this to distinguish "never written
    /// by a task" (home bytes are the original data) from a tracked
    /// region whose version matters.
    pub fn has_region(&self, region: &Region) -> bool {
        self.inner.lock().regions.contains_key(region)
    }

    /// Declare `version` of `region` reconstructed at its home: the
    /// directory version rolls back to it, the home copy becomes
    /// the authoritative valid-latest, and every surviving copy is
    /// cleaned. Only node-loss recovery calls this, after lineage
    /// re-execution materialised the bytes in the home allocation;
    /// rolled-back versions had copies only on the dead node and their
    /// successors were never released, so normal execution re-commits
    /// them from here.
    pub fn repair_root(&self, region: &Region, version: u64) {
        let mut inner = self.inner.lock();
        let entry = inner.regions.get_mut(region).expect("repair of unknown region");
        entry.version = version;
        let home = entry.home;
        let c = entry.copies.get_mut(&home).expect("home copy");
        if let CState::InFlight { done } = &c.state {
            // A flush toward the home was on the wire when the node
            // died; its source is gone, so it will resolve undelivered.
            // Wake its waiters now — the state below supersedes it.
            done.set();
        }
        c.state = CState::Valid { version };
        c.dirty = false;
        for c in entry.copies.values_mut() {
            c.dirty = false;
        }
        self.debug_validate_locked(&inner, "repair_root");
    }

    /// Valid-latest bytes of `region` at `space` (the scheduler's
    /// locality oracle).
    pub fn bytes_at(&self, region: &Region, space: SpaceId) -> u64 {
        let inner = self.inner.lock();
        let Some(entry) = inner.regions.get(region) else {
            return 0;
        };
        match entry.copies.get(&space) {
            Some(c) if matches!(c.state, CState::Valid { version } if version == entry.version) => {
                region.len
            }
            _ => 0,
        }
    }

    /// Valid-latest bytes of `region` anywhere in `spaces` (node-level
    /// affinity: present once counts once).
    pub fn bytes_under(&self, region: &Region, spaces: &[SpaceId]) -> u64 {
        spaces.iter().map(|&s| self.bytes_at(region, s)).max().unwrap_or(0)
    }
}
