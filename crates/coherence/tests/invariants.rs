//! Property tests for the directory invariants checked by
//! `Coherence::check_invariants` (the verify subsystem's coherence
//! layer): arbitrary acquire/commit/prefetch/flush streams — with GPU
//! capacities small enough to force eviction churn — must never reach a
//! state where the root lacks a region's latest version without a dirty
//! valid-latest copy covering it, where a copy's version exceeds the
//! directory's, or where the home copy is marked dirty.
//!
//! Validation is enabled on the engine itself (`with_validation(true)`),
//! so every commit/hop/eviction/flush sweeps the directory internally
//! and panics at the *operation* that broke an invariant, not at the
//! end-of-run check — failures localise themselves.

use std::sync::Arc;

use proptest::prelude::*;

use ompss_coherence::{
    CachePolicy, Coherence, HopKind, Loc, SlaveRouting, Topology, TransferExec, TransferPurpose,
};
use ompss_mem::{Access, Backing, MemoryManager, Region, SpaceKind};
use std::future::Future;
use std::pin::Pin;

use ompss_sim::{delay, Sim, SimDuration, SimResult};

struct ByteExec {
    mem: Arc<MemoryManager>,
}

impl TransferExec for ByteExec {
    fn transfer<'a>(
        &'a self,
        _kind: HopKind,
        _purpose: TransferPurpose,
        src: Loc,
        dst: Loc,
        bytes: u64,
    ) -> Pin<Box<dyn Future<Output = SimResult<bool>> + Send + 'a>> {
        Box::pin(async move {
            delay(SimDuration::from_nanos(bytes)).await?;
            self.mem.copy(
                (src.space, src.alloc),
                src.offset,
                (dst.space, dst.alloc),
                dst.offset,
                bytes,
            );
            Ok(true)
        })
    }
}

/// One generated step of the driver.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Acquire + optional write + commit at a space.
    Task { space_idx: usize, region_idx: usize, write: bool },
    /// Stage a copy without pinning.
    Prefetch { space_idx: usize, region_idx: usize },
    /// Flush one region home.
    Flush { region_idx: usize },
    /// Flush everything home.
    FlushAll,
}

fn gen_ops() -> impl Strategy<Value = Vec<Op>> {
    // Selector-weighted mix: tasks dominate, with enough prefetches and
    // flushes sprinkled in to exercise every directory transition.
    proptest::collection::vec(
        (0u8..10, 0usize..5, 0usize..4, any::<bool>()).prop_map(
            |(sel, space_idx, region_idx, write)| match sel {
                0..=4 => Op::Task { space_idx, region_idx, write },
                5 | 6 => Op::Prefetch { space_idx, region_idx },
                7 | 8 => Op::Flush { region_idx },
                _ => Op::FlushAll,
            },
        ),
        1..50,
    )
}

fn policy_from(i: u8) -> CachePolicy {
    match i % 3 {
        0 => CachePolicy::NoCache,
        1 => CachePolicy::WriteThrough,
        _ => CachePolicy::WriteBack,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn invariants_hold_under_arbitrary_op_streams(
        ops in gen_ops(),
        policy_sel in 0u8..3,
        tiny in any::<bool>(),
    ) {
        let policy = policy_from(policy_sel);
        const LEN: u64 = 32;
        let gpu_cap = if tiny { 2 * LEN } else { 1 << 20 };
        let mem = Arc::new(MemoryManager::new(Backing::Real));
        let master = mem.add_space("master", SpaceKind::Host(0), None, 1 << 30);
        let slave = mem.add_space("slave", SpaceKind::Host(1), None, 1 << 30);
        let g0 = mem.add_space("g0", SpaceKind::Gpu(0, 0), Some(master), gpu_cap);
        let g1 = mem.add_space("g1", SpaceKind::Gpu(0, 1), Some(master), gpu_cap);
        let g2 = mem.add_space("g2", SpaceKind::Gpu(1, 0), Some(slave), gpu_cap);
        let mut topo = Topology::new(master, SlaveRouting::Direct);
        topo.add_gpu(g0, master);
        topo.add_gpu(g1, master);
        topo.add_gpu(g2, slave);
        let spaces = [master, slave, g0, g1, g2];

        let regions: Vec<Region> = (0..4)
            .map(|_| {
                let d = mem.register_data(LEN, master).unwrap();
                Region::new(d, 0, LEN)
            })
            .collect();

        let coh = Arc::new(Coherence::new(mem.clone(), topo, policy).with_validation(true));
        let coh2 = coh.clone();
        let mem2 = mem.clone();
        let exec = Arc::new(ByteExec { mem: mem.clone() });
        let failure: Arc<parking_lot::Mutex<Option<String>>> =
            Arc::new(parking_lot::Mutex::new(None));
        let failure2 = failure.clone();
        let ops2 = ops.clone();
        let regions2 = regions.clone();

        let sim = Sim::new();
        sim.spawn("driver", async move {
            for op in &ops2 {
                match *op {
                    Op::Task { space_idx, region_idx, write } => {
                        let space = spaces[space_idx];
                        let region = regions2[region_idx];
                        let access =
                            if write { Access::inout(region) } else { Access::input(region) };
                        let loc = coh2.acquire(&*exec, &region, true, space).await.unwrap();
                        if write {
                            let data = vec![0xabu8; LEN as usize];
                            mem2.write(space, loc.alloc, loc.offset, &data);
                        }
                        coh2.commit(&*exec, &[access], space).await.unwrap();
                    }
                    Op::Prefetch { space_idx, region_idx } => {
                        coh2.prefetch(&*exec, &regions2[region_idx], spaces[space_idx]).await.unwrap();
                    }
                    Op::Flush { region_idx } => {
                        coh2.flush_region(&*exec, &regions2[region_idx]).await.unwrap();
                    }
                    Op::FlushAll => coh2.flush_all(&*exec).await.unwrap(),
                }
                // The external sweep too, between operations: catches
                // anything the internal call sites might miss.
                if let Err(msg) = coh2.check_invariants() {
                    *failure2.lock() = Some(format!("after {op:?}: {msg}"));
                    return;
                }
            }
        });
        sim.run().unwrap();
        prop_assert!(coh.check_invariants().is_ok());
        // After a full flush nothing may remain dirty.
        let msg = failure.lock().take();
        prop_assert!(msg.is_none(), "{}", msg.unwrap_or_default());
    }

    #[test]
    fn flush_leaves_no_dirty_regions(
        writes in proptest::collection::vec((0usize..5, 0usize..4), 1..20),
    ) {
        const LEN: u64 = 32;
        let mem = Arc::new(MemoryManager::new(Backing::Real));
        let master = mem.add_space("master", SpaceKind::Host(0), None, 1 << 30);
        let slave = mem.add_space("slave", SpaceKind::Host(1), None, 1 << 30);
        let g0 = mem.add_space("g0", SpaceKind::Gpu(0, 0), Some(master), 1 << 20);
        let g1 = mem.add_space("g1", SpaceKind::Gpu(0, 1), Some(master), 1 << 20);
        let g2 = mem.add_space("g2", SpaceKind::Gpu(1, 0), Some(slave), 1 << 20);
        let mut topo = Topology::new(master, SlaveRouting::ViaMaster);
        topo.add_gpu(g0, master);
        topo.add_gpu(g1, master);
        topo.add_gpu(g2, slave);
        let spaces = [master, slave, g0, g1, g2];
        let regions: Vec<Region> = (0..4)
            .map(|_| Region::new(mem.register_data(LEN, master).unwrap(), 0, LEN))
            .collect();
        let coh =
            Arc::new(Coherence::new(mem.clone(), topo, CachePolicy::WriteBack)
                .with_validation(true));
        let coh2 = coh.clone();
        let regions2 = regions.clone();
        let exec = Arc::new(ByteExec { mem: mem.clone() });

        let sim = Sim::new();
        sim.spawn("driver", async move {
            for &(si, ri) in &writes {
                let region = regions2[ri];
                coh2.acquire(&*exec, &region, false, spaces[si]).await.unwrap();
                coh2.commit(&*exec, &[Access::output(region)], spaces[si]).await.unwrap();
            }
            coh2.flush_all(&*exec).await.unwrap();
        });
        sim.run().unwrap();
        prop_assert!(coh.dirty_regions().is_empty(), "flush_all left dirty regions");
        prop_assert!(coh.check_invariants().is_ok());
    }
}
