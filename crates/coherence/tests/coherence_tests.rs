//! Integration tests of the coherence engine over a small machine
//! model: a master host with two GPUs, plus (for cluster cases) two
//! slave hosts each with one GPU.

use std::sync::Arc;

use parking_lot::Mutex;

use ompss_coherence::{
    CachePolicy, Coherence, HopKind, Loc, SlaveRouting, Topology, TransferExec, TransferPurpose,
};
use ompss_mem::{Access, Backing, MemoryManager, Region, SpaceId, SpaceKind};
use std::future::Future;
use std::pin::Pin;

use ompss_sim::{delay, now, spawn, Sim, SimDuration, SimResult};

/// Executes hops at 1 ns/byte (PCIe) and 2 ns/byte (network), moving
/// the real bytes and recording a log.
struct TestExec {
    mem: Arc<MemoryManager>,
    log: Mutex<Vec<(HopKind, SpaceId, SpaceId, u64)>>,
}

impl TestExec {
    fn new(mem: Arc<MemoryManager>) -> Self {
        TestExec { mem, log: Mutex::new(Vec::new()) }
    }

    fn hops(&self) -> Vec<(HopKind, SpaceId, SpaceId, u64)> {
        self.log.lock().clone()
    }
}

impl TransferExec for TestExec {
    fn transfer<'a>(
        &'a self,
        kind: HopKind,
        _purpose: TransferPurpose,
        src: Loc,
        dst: Loc,
        bytes: u64,
    ) -> Pin<Box<dyn Future<Output = SimResult<bool>> + Send + 'a>> {
        Box::pin(async move {
            let per_byte = match kind {
                HopKind::Pcie => 1,
                HopKind::Network => 2,
            };
            delay(SimDuration::from_nanos(bytes * per_byte)).await?;
            self.mem.copy(
                (src.space, src.alloc),
                src.offset,
                (dst.space, dst.alloc),
                dst.offset,
                bytes,
            );
            self.log.lock().push((kind, src.space, dst.space, bytes));
            Ok(true)
        })
    }
}

/// A master host (space 0, root) with two GPU spaces. GPU capacity is
/// configurable to exercise eviction.
struct SingleNode {
    mem: Arc<MemoryManager>,
    host: SpaceId,
    gpu0: SpaceId,
    gpu1: SpaceId,
    topo: Topology,
}

fn single_node(gpu_capacity: u64) -> SingleNode {
    let mem = Arc::new(MemoryManager::new(Backing::Real));
    let host = mem.add_space("host", SpaceKind::Host(0), None, 1 << 30);
    let gpu0 = mem.add_space("gpu0", SpaceKind::Gpu(0, 0), Some(host), gpu_capacity);
    let gpu1 = mem.add_space("gpu1", SpaceKind::Gpu(0, 1), Some(host), gpu_capacity);
    let mut topo = Topology::new(host, SlaveRouting::Direct);
    topo.add_gpu(gpu0, host);
    topo.add_gpu(gpu1, host);
    SingleNode { mem, host, gpu0, gpu1, topo }
}

fn run_sim<Fut>(f: Fut)
where
    Fut: Future<Output = ()> + Send + 'static,
{
    let sim = Sim::new();
    sim.spawn("test", f);
    sim.run().unwrap();
}

fn region(mem: &MemoryManager, host: SpaceId, len: u64) -> Region {
    let data = mem.register_data(len, host).unwrap();
    Region::new(data, 0, len)
}

#[test]
fn first_read_pulls_from_home_then_hits() {
    let n = single_node(1 << 20);
    let coh = Arc::new(Coherence::new(n.mem.clone(), n.topo.clone(), CachePolicy::WriteBack));
    let exec = Arc::new(TestExec::new(n.mem.clone()));
    let r = region(&n.mem, n.host, 256);
    // Put a recognisable pattern in the home copy.
    let info = n.mem.data_info(r.data);
    n.mem.write(n.host, info.home_alloc, 0, &[7u8; 256]);
    let (gpu0, mem) = (n.gpu0, n.mem.clone());
    run_sim(async move {
        let loc = coh.acquire(&*exec, &r, true, gpu0).await.unwrap();
        assert_eq!(loc.space, gpu0);
        let mut buf = [0u8; 256];
        mem.read(gpu0, loc.alloc, loc.offset, &mut buf);
        assert_eq!(buf, [7u8; 256], "real bytes followed the transfer");
        assert_eq!(exec.hops(), vec![(HopKind::Pcie, SpaceId(0), gpu0, 256)]);
        assert_eq!(now().as_nanos(), 256, "transfer charged 1 ns/byte");
        coh.commit(&*exec, &[Access::input(r)], gpu0).await.unwrap();
        // Second acquire is a hit: no new transfer, no time.
        let before = now();
        coh.acquire(&*exec, &r, true, gpu0).await.unwrap();
        assert_eq!(now(), before);
        assert_eq!(exec.hops().len(), 1);
        let st = coh.stats();
        assert_eq!(st.hits, 1);
        assert_eq!(st.misses, 1);
        coh.commit(&*exec, &[Access::input(r)], gpu0).await.unwrap();
    });
}

#[test]
fn output_only_acquire_moves_nothing() {
    let n = single_node(1 << 20);
    let coh = Arc::new(Coherence::new(n.mem.clone(), n.topo.clone(), CachePolicy::WriteBack));
    let exec = Arc::new(TestExec::new(n.mem.clone()));
    let r = region(&n.mem, n.host, 128);
    let gpu0 = n.gpu0;
    run_sim(async move {
        coh.acquire(&*exec, &r, false, gpu0).await.unwrap();
        assert!(exec.hops().is_empty(), "write-only placement must not transfer");
        assert_eq!(now().as_nanos(), 0);
        coh.commit(&*exec, &[Access::output(r)], gpu0).await.unwrap();
    });
}

#[test]
fn writeback_defers_and_reader_pulls_from_writer() {
    let n = single_node(1 << 20);
    let coh = Arc::new(Coherence::new(n.mem.clone(), n.topo.clone(), CachePolicy::WriteBack));
    let exec = Arc::new(TestExec::new(n.mem.clone()));
    let r = region(&n.mem, n.host, 64);
    let (gpu0, gpu1, mem) = (n.gpu0, n.gpu1, n.mem.clone());
    run_sim(async move {
        // Writer on gpu0.
        let loc = coh.acquire(&*exec, &r, false, gpu0).await.unwrap();
        mem.write(gpu0, loc.alloc, loc.offset, &[9u8; 64]);
        coh.commit(&*exec, &[Access::output(r)], gpu0).await.unwrap();
        assert!(exec.hops().is_empty(), "write-back: no eager propagation");
        // Reader on gpu1: data routes gpu0 -> host -> gpu1.
        let loc1 = coh.acquire(&*exec, &r, true, gpu1).await.unwrap();
        let mut buf = [0u8; 64];
        mem.read(gpu1, loc1.alloc, loc1.offset, &mut buf);
        assert_eq!(buf, [9u8; 64]);
        let hops = exec.hops();
        assert_eq!(
            hops,
            vec![(HopKind::Pcie, gpu0, SpaceId(0), 64), (HopKind::Pcie, SpaceId(0), gpu1, 64)]
        );
        coh.commit(&*exec, &[Access::input(r)], gpu1).await.unwrap();
    });
}

#[test]
fn write_through_pushes_at_commit() {
    let n = single_node(1 << 20);
    let coh = Arc::new(Coherence::new(n.mem.clone(), n.topo.clone(), CachePolicy::WriteThrough));
    let exec = Arc::new(TestExec::new(n.mem.clone()));
    let r = region(&n.mem, n.host, 64);
    let (gpu0, host, mem) = (n.gpu0, n.host, n.mem.clone());
    run_sim(async move {
        let loc = coh.acquire(&*exec, &r, false, gpu0).await.unwrap();
        mem.write(gpu0, loc.alloc, loc.offset, &[3u8; 64]);
        coh.commit(&*exec, &[Access::output(r)], gpu0).await.unwrap();
        assert_eq!(exec.hops(), vec![(HopKind::Pcie, gpu0, host, 64)]);
        // The home allocation holds the new data.
        let info = mem.data_info(r.data);
        let mut buf = [0u8; 64];
        mem.read(host, info.home_alloc, 0, &mut buf);
        assert_eq!(buf, [3u8; 64]);
        // The GPU copy is retained (unlike no-cache): re-acquire = hit.
        let before = exec.hops().len();
        coh.acquire(&*exec, &r, true, gpu0).await.unwrap();
        assert_eq!(exec.hops().len(), before);
        coh.commit(&*exec, &[Access::input(r)], gpu0).await.unwrap();
    });
}

#[test]
fn no_cache_drops_copies_after_commit() {
    let n = single_node(1 << 20);
    let coh = Arc::new(Coherence::new(n.mem.clone(), n.topo.clone(), CachePolicy::NoCache));
    let exec = Arc::new(TestExec::new(n.mem.clone()));
    let r = region(&n.mem, n.host, 64);
    let (gpu0, mem) = (n.gpu0, n.mem.clone());
    run_sim(async move {
        coh.acquire(&*exec, &r, true, gpu0).await.unwrap();
        coh.commit(&*exec, &[Access::input(r)], gpu0).await.unwrap();
        assert_eq!(mem.used(gpu0), 0, "no-cache frees the GPU copy at commit");
        // Next task transfers again.
        coh.acquire(&*exec, &r, true, gpu0).await.unwrap();
        assert_eq!(exec.hops().len(), 2);
        coh.commit(&*exec, &[Access::input(r)], gpu0).await.unwrap();
    });
}

#[test]
fn taskwait_flush_brings_dirty_data_home() {
    let n = single_node(1 << 20);
    let coh = Arc::new(Coherence::new(n.mem.clone(), n.topo.clone(), CachePolicy::WriteBack));
    let exec = Arc::new(TestExec::new(n.mem.clone()));
    let r = region(&n.mem, n.host, 64);
    let (gpu0, host, mem) = (n.gpu0, n.host, n.mem.clone());
    run_sim(async move {
        let loc = coh.acquire(&*exec, &r, false, gpu0).await.unwrap();
        mem.write(gpu0, loc.alloc, loc.offset, &[5u8; 64]);
        coh.commit(&*exec, &[Access::output(r)], gpu0).await.unwrap();
        coh.flush_all(&*exec).await.unwrap();
        let info = mem.data_info(r.data);
        let mut buf = [0u8; 64];
        mem.read(host, info.home_alloc, 0, &mut buf);
        assert_eq!(buf, [5u8; 64]);
        // Flushing again is free: nothing dirty remains.
        let before = exec.hops().len();
        coh.flush_all(&*exec).await.unwrap();
        assert_eq!(exec.hops().len(), before);
    });
}

#[test]
fn lru_eviction_writes_back_dirty_victim() {
    // GPU fits exactly two 64-byte regions; touching a third evicts the
    // least recently used (dirty) one, which must be written back first.
    let n = single_node(128);
    let coh = Arc::new(Coherence::new(n.mem.clone(), n.topo.clone(), CachePolicy::WriteBack));
    let exec = Arc::new(TestExec::new(n.mem.clone()));
    let r1 = region(&n.mem, n.host, 64);
    let r2 = region(&n.mem, n.host, 64);
    let r3 = region(&n.mem, n.host, 64);
    let (gpu0, host, mem) = (n.gpu0, n.host, n.mem.clone());
    run_sim(async move {
        // Dirty r1 on the GPU.
        let loc = coh.acquire(&*exec, &r1, false, gpu0).await.unwrap();
        mem.write(gpu0, loc.alloc, loc.offset, &[1u8; 64]);
        coh.commit(&*exec, &[Access::output(r1)], gpu0).await.unwrap();
        // Clean r2 on the GPU (r1 becomes LRU).
        coh.acquire(&*exec, &r2, true, gpu0).await.unwrap();
        coh.commit(&*exec, &[Access::input(r2)], gpu0).await.unwrap();
        // r3 needs room: r1 must be written back and evicted.
        coh.acquire(&*exec, &r3, true, gpu0).await.unwrap();
        coh.commit(&*exec, &[Access::input(r3)], gpu0).await.unwrap();
        let st = coh.stats();
        assert_eq!(st.evictions, 1);
        assert_eq!(st.writebacks, 1);
        assert_eq!(st.writeback_bytes, 64);
        // The written-back data reached the home.
        let info = mem.data_info(r1.data);
        let mut buf = [0u8; 64];
        mem.read(host, info.home_alloc, 0, &mut buf);
        assert_eq!(buf, [1u8; 64]);
        // r1 is gone from the GPU but r2 survived (it was more recent).
        assert_eq!(coh.bytes_at(&r1, gpu0), 0);
        assert_eq!(coh.bytes_at(&r2, gpu0), 64);
    });
}

#[test]
#[should_panic(expected = "cache thrash")]
fn all_pinned_cache_panics_with_diagnosis() {
    let n = single_node(64);
    let coh = Arc::new(Coherence::new(n.mem.clone(), n.topo.clone(), CachePolicy::WriteBack));
    let exec = Arc::new(TestExec::new(n.mem.clone()));
    let r1 = region(&n.mem, n.host, 64);
    let r2 = region(&n.mem, n.host, 64);
    let gpu0 = n.gpu0;
    let sim = Sim::new();
    sim.spawn("test", async move {
        // r1 pinned (no commit), r2 cannot fit.
        coh.acquire(&*exec, &r1, true, gpu0).await.unwrap();
        let _ = coh.acquire(&*exec, &r2, true, gpu0).await;
    });
    if let Err(e) = sim.run() {
        panic!("{e}");
    }
}

#[test]
fn inflight_transfers_are_deduplicated() {
    let n = single_node(1 << 20);
    let coh = Arc::new(Coherence::new(n.mem.clone(), n.topo.clone(), CachePolicy::WriteBack));
    let exec = Arc::new(TestExec::new(n.mem.clone()));
    let r = region(&n.mem, n.host, 1024);
    let gpu0 = n.gpu0;
    let sim = Sim::new();
    // Two processes demand the same region on the same GPU at once.
    for name in ["a", "b"] {
        let coh = coh.clone();
        let exec = exec.clone();
        sim.spawn(name, async move {
            coh.acquire(&*exec, &r, true, gpu0).await.unwrap();
            coh.unpin(&r, gpu0);
        });
    }
    sim.run().unwrap();
    assert_eq!(exec.hops().len(), 1, "second requester waited on the in-flight copy");
}

#[test]
fn cluster_routes_respect_slave_routing_mode() {
    for (routing, expected_net_hops) in
        [(SlaveRouting::Direct, 1usize), (SlaveRouting::ViaMaster, 2usize)]
    {
        let mem = Arc::new(MemoryManager::new(Backing::Real));
        let master = mem.add_space("master", SpaceKind::Host(0), None, 1 << 30);
        let s1 = mem.add_space("slave1", SpaceKind::Host(1), None, 1 << 30);
        let s2 = mem.add_space("slave2", SpaceKind::Host(2), None, 1 << 30);
        let g1 = mem.add_space("slave1:gpu", SpaceKind::Gpu(1, 0), Some(s1), 1 << 20);
        let g2 = mem.add_space("slave2:gpu", SpaceKind::Gpu(2, 0), Some(s2), 1 << 20);
        let mut topo = Topology::new(master, routing);
        topo.add_gpu(g1, s1);
        topo.add_gpu(g2, s2);
        let coh = Arc::new(Coherence::new(mem.clone(), topo, CachePolicy::WriteBack));
        let exec = Arc::new(TestExec::new(mem.clone()));
        let r = region(&mem, master, 64);
        let mem2 = mem.clone();
        run_sim(async move {
            // Write on slave1's GPU, then read on slave2's GPU.
            let loc = coh.acquire(&*exec, &r, false, g1).await.unwrap();
            mem2.write(g1, loc.alloc, loc.offset, &[8u8; 64]);
            coh.commit(&*exec, &[Access::output(r)], g1).await.unwrap();
            let loc2 = coh.acquire(&*exec, &r, true, g2).await.unwrap();
            let mut buf = [0u8; 64];
            mem2.read(g2, loc2.alloc, loc2.offset, &mut buf);
            assert_eq!(buf, [8u8; 64]);
            let hops = exec.hops();
            let net = hops.iter().filter(|h| h.0 == HopKind::Network).count();
            let pcie = hops.iter().filter(|h| h.0 == HopKind::Pcie).count();
            assert_eq!(net, expected_net_hops, "routing mode {routing:?}");
            assert_eq!(pcie, 2, "gpu->host and host->gpu at the two ends");
            coh.commit(&*exec, &[Access::input(r)], g2).await.unwrap();
        });
    }
}

#[test]
fn intermediate_host_copy_is_cached_for_later_use() {
    // After gpu0 -> host -> gpu1, a later host read is free.
    let n = single_node(1 << 20);
    let coh = Arc::new(Coherence::new(n.mem.clone(), n.topo.clone(), CachePolicy::WriteBack));
    let exec = Arc::new(TestExec::new(n.mem.clone()));
    let r = region(&n.mem, n.host, 64);
    let (gpu0, gpu1, host) = (n.gpu0, n.gpu1, n.host);
    run_sim(async move {
        coh.acquire(&*exec, &r, false, gpu0).await.unwrap();
        coh.commit(&*exec, &[Access::output(r)], gpu0).await.unwrap();
        coh.acquire(&*exec, &r, true, gpu1).await.unwrap();
        coh.commit(&*exec, &[Access::input(r)], gpu1).await.unwrap();
        let before = exec.hops().len();
        // Host read (e.g. an SMP task) hits the cached relay copy.
        coh.acquire(&*exec, &r, true, host).await.unwrap();
        assert_eq!(exec.hops().len(), before);
        coh.commit(&*exec, &[Access::input(r)], host).await.unwrap();
    });
}

#[test]
fn bytes_at_reflects_validity_and_staleness() {
    let n = single_node(1 << 20);
    let coh = Arc::new(Coherence::new(n.mem.clone(), n.topo.clone(), CachePolicy::WriteBack));
    let exec = Arc::new(TestExec::new(n.mem.clone()));
    let r = region(&n.mem, n.host, 64);
    let (gpu0, gpu1, host) = (n.gpu0, n.gpu1, n.host);
    run_sim(async move {
        assert_eq!(coh.bytes_at(&r, gpu0), 0, "untouched region only at home");
        coh.acquire(&*exec, &r, true, gpu0).await.unwrap();
        coh.commit(&*exec, &[Access::input(r)], gpu0).await.unwrap();
        assert_eq!(coh.bytes_at(&r, gpu0), 64);
        assert_eq!(coh.bytes_at(&r, host), 64);
        // A write on gpu1 invalidates the gpu0 and host copies.
        coh.acquire(&*exec, &r, false, gpu1).await.unwrap();
        coh.commit(&*exec, &[Access::output(r)], gpu1).await.unwrap();
        assert_eq!(coh.bytes_at(&r, gpu0), 0);
        assert_eq!(coh.bytes_at(&r, host), 0);
        assert_eq!(coh.bytes_at(&r, gpu1), 64);
        assert_eq!(coh.bytes_under(&r, &[host, gpu0, gpu1]), 64);
    });
}

#[test]
fn stale_copy_is_refreshed_in_place_without_realloc() {
    let n = single_node(1 << 20);
    let coh = Arc::new(Coherence::new(n.mem.clone(), n.topo.clone(), CachePolicy::WriteBack));
    let exec = Arc::new(TestExec::new(n.mem.clone()));
    let r = region(&n.mem, n.host, 64);
    let (gpu0, gpu1, mem) = (n.gpu0, n.gpu1, n.mem.clone());
    run_sim(async move {
        coh.acquire(&*exec, &r, true, gpu0).await.unwrap();
        coh.commit(&*exec, &[Access::input(r)], gpu0).await.unwrap();
        let used_before = mem.used(gpu0);
        // Invalidate gpu0's copy by writing on gpu1...
        let loc = coh.acquire(&*exec, &r, false, gpu1).await.unwrap();
        mem.write(gpu1, loc.alloc, loc.offset, &[4u8; 64]);
        coh.commit(&*exec, &[Access::output(r)], gpu1).await.unwrap();
        // ...then read it again on gpu0: same allocation, fresh data.
        let loc0 = coh.acquire(&*exec, &r, true, gpu0).await.unwrap();
        let mut buf = [0u8; 64];
        mem.read(gpu0, loc0.alloc, loc0.offset, &mut buf);
        assert_eq!(buf, [4u8; 64]);
        assert_eq!(mem.used(gpu0), used_before, "stale copy refreshed in place");
        coh.commit(&*exec, &[Access::input(r)], gpu0).await.unwrap();
    });
}

#[test]
fn invalidate_space_drops_clean_copies_and_frees_memory() {
    let n = single_node(1 << 20);
    let coh = Arc::new(
        Coherence::new(n.mem.clone(), n.topo.clone(), CachePolicy::WriteThrough)
            .with_validation(true),
    );
    let exec = Arc::new(TestExec::new(n.mem.clone()));
    let r = region(&n.mem, n.host, 128);
    let (host, gpu0, gpu1, mem) = (n.host, n.gpu0, n.gpu1, n.mem.clone());
    run_sim(async move {
        // gpu0 writes the region; write-through pushes it home at commit,
        // leaving a clean cached copy on gpu0.
        let loc = coh.acquire(&*exec, &r, false, gpu0).await.unwrap();
        mem.write(gpu0, loc.alloc, loc.offset, &[9u8; 128]);
        coh.commit(&*exec, &[Access::output(r)], gpu0).await.unwrap();
        assert_eq!(coh.bytes_at(&r, gpu0), 128);
        let used_before = mem.used(gpu0);
        assert!(used_before > 0);
        // gpu0 is lost: its cache empties and its memory returns.
        assert_eq!(coh.invalidate_space(gpu0), 1);
        assert_eq!(coh.bytes_at(&r, gpu0), 0);
        assert_eq!(mem.used(gpu0), 0);
        // The data is still reachable from home for the survivor.
        let loc1 = coh.acquire(&*exec, &r, true, gpu1).await.unwrap();
        let mut buf = [0u8; 128];
        mem.read(gpu1, loc1.alloc, loc1.offset, &mut buf);
        assert_eq!(buf, [9u8; 128]);
        coh.commit(&*exec, &[Access::input(r)], gpu1).await.unwrap();
        assert_eq!(coh.bytes_at(&r, host), 128);
    });
}

#[test]
fn invalidate_space_skips_pinned_copies() {
    let n = single_node(1 << 20);
    let coh = Arc::new(Coherence::new(n.mem.clone(), n.topo.clone(), CachePolicy::WriteThrough));
    let exec = Arc::new(TestExec::new(n.mem.clone()));
    let r = region(&n.mem, n.host, 64);
    let gpu0 = n.gpu0;
    run_sim(async move {
        // Acquire pins the copy; invalidation must leave it alone until
        // the failed task's teardown unpins it.
        coh.acquire(&*exec, &r, true, gpu0).await.unwrap();
        assert_eq!(coh.invalidate_space(gpu0), 0);
        assert_eq!(coh.bytes_at(&r, gpu0), 64);
        coh.unpin(&r, gpu0);
        assert_eq!(coh.invalidate_space(gpu0), 1);
        assert_eq!(coh.bytes_at(&r, gpu0), 0);
    });
}

/// Node-loss purge: every copy at the dead spaces goes (pins included),
/// lost latest versions are reported, further acquires there shut
/// down, and `repair_root` restores the invariants once the caller has
/// rebuilt the bytes at the root home.
#[test]
fn purge_reports_lost_latest_and_repair_restores_invariants() {
    let mem = Arc::new(MemoryManager::new(Backing::Real));
    let master = mem.add_space("master", SpaceKind::Host(0), None, 1 << 30);
    let s1 = mem.add_space("slave1", SpaceKind::Host(1), None, 1 << 30);
    let s2 = mem.add_space("slave2", SpaceKind::Host(2), None, 1 << 30);
    let g1 = mem.add_space("slave1:gpu", SpaceKind::Gpu(1, 0), Some(s1), 1 << 20);
    let g2 = mem.add_space("slave2:gpu", SpaceKind::Gpu(2, 0), Some(s2), 1 << 20);
    let mut topo = Topology::new(master, SlaveRouting::Direct);
    topo.add_gpu(g1, s1);
    topo.add_gpu(g2, s2);
    let coh = Arc::new(Coherence::new(mem.clone(), topo, CachePolicy::WriteBack));
    let exec = Arc::new(TestExec::new(mem.clone()));
    let r = region(&mem, master, 64);
    let home = mem.data_info(r.data).home_alloc;
    let mem2 = mem.clone();
    run_sim(async move {
        // v1 is written on slave1's GPU and, under write-back, lives
        // only there when the node dies. Keep the copy pinned to model
        // a task mid-run at the kill instant.
        let loc = coh.acquire(&*exec, &r, false, g1).await.unwrap();
        mem2.write(g1, loc.alloc, loc.offset, &[0xAB; 64]);
        coh.commit(&*exec, &[Access::output(r)], g1).await.unwrap();
        coh.acquire(&*exec, &r, true, g1).await.unwrap();

        let lost = coh.purge_spaces(&[s1, g1]);
        assert_eq!(lost.len(), 1, "the pinned latest-only copy was purged and reported");
        assert_eq!((lost[0].region, lost[0].latest, lost[0].best), (r, 1, 0));
        assert!(coh.is_dead_space(g1) && coh.is_dead_space(s1));
        assert!(!coh.is_dead_space(s2));
        coh.unpin(&r, g1); // late teardown of the dead task: a no-op
        assert!(
            matches!(coh.acquire(&*exec, &r, true, g1).await, Err(ompss_sim::SimError::Shutdown)),
            "acquires targeting a dead space shut down"
        );

        // The caller reconstructs: base is the surviving v0 at the
        // root, then (standing in for lineage re-execution) the v1
        // bytes are rebuilt in the home allocation.
        let (best, pulled) = coh.pull_best_to_root(&r).expect("a valid copy survives");
        assert_eq!((best, pulled), (0, 0), "root already held the best survivor");
        mem2.write(master, home, 0, &[0xAB; 64]);
        coh.repair_root(&r, 1);
        coh.check_invariants().expect("repair restores the directory invariants");

        // A surviving node reads the reconstructed latest.
        let loc2 = coh.acquire(&*exec, &r, true, g2).await.unwrap();
        let mut buf = [0u8; 64];
        mem2.read(g2, loc2.alloc, loc2.offset, &mut buf);
        assert_eq!(buf, [0xAB; 64]);
        coh.commit(&*exec, &[Access::input(r)], g2).await.unwrap();
    });
}

/// An undelivered hop (endpoint died on the wire) must leave the
/// destination as garbage — never valid — so waiters re-plan from a
/// surviving source instead of reading stale bytes.
#[test]
fn undelivered_hop_leaves_destination_garbage() {
    struct FlakyExec {
        mem: Arc<MemoryManager>,
        deliver: std::sync::atomic::AtomicBool,
    }
    impl TransferExec for FlakyExec {
        fn transfer<'a>(
            &'a self,
            _kind: HopKind,
            _purpose: TransferPurpose,
            src: Loc,
            dst: Loc,
            bytes: u64,
        ) -> Pin<Box<dyn Future<Output = SimResult<bool>> + Send + 'a>> {
            Box::pin(async move {
                delay(SimDuration::from_nanos(bytes)).await?;
                if !self.deliver.load(std::sync::atomic::Ordering::Relaxed) {
                    return Ok(false);
                }
                self.mem.copy(
                    (src.space, src.alloc),
                    src.offset,
                    (dst.space, dst.alloc),
                    dst.offset,
                    bytes,
                );
                Ok(true)
            })
        }
    }
    let n = single_node(1 << 20);
    let coh = Arc::new(Coherence::new(n.mem.clone(), n.topo.clone(), CachePolicy::WriteBack));
    let exec = Arc::new(FlakyExec {
        mem: n.mem.clone(),
        deliver: std::sync::atomic::AtomicBool::new(false),
    });
    let r = region(&n.mem, n.host, 64);
    let info = n.mem.data_info(r.data);
    n.mem.write(n.host, info.home_alloc, 0, &[5u8; 64]);
    let (gpu0, mem) = (n.gpu0, n.mem.clone());
    run_sim(async move {
        // First attempt never lands; the engine keeps re-planning the
        // same hop (each failed try still costs wire time) until the
        // fabric heals, and only then hands out the copy.
        let done = ompss_sim::Signal::new();
        {
            let (coh, exec, done) = (coh.clone(), exec.clone(), done.clone());
            spawn("reader", async move {
                let loc = coh.acquire(&*exec, &r, true, gpu0).await.unwrap();
                let mut buf = [0u8; 64];
                mem.read(gpu0, loc.alloc, loc.offset, &mut buf);
                assert_eq!(buf, [5u8; 64], "only delivered bytes are ever handed out");
                done.set();
            });
        }
        delay(SimDuration::from_nanos(100)).await.unwrap();
        assert_eq!(coh.bytes_at(&r, gpu0), 0, "undelivered fill is not valid");
        exec.deliver.store(true, std::sync::atomic::Ordering::Relaxed);
        done.wait().await.unwrap();
    });
}
