//! Property test: for arbitrary sequential task streams over arbitrary
//! spaces, every read observes the bytes of the most recent write —
//! under all three cache policies, including with GPU capacities small
//! enough to force constant eviction.

use std::sync::Arc;

use proptest::prelude::*;

use ompss_coherence::{
    CachePolicy, Coherence, HopKind, Loc, SlaveRouting, Topology, TransferExec, TransferPurpose,
};
use ompss_mem::{Access, Backing, MemoryManager, Region, SpaceKind};
use std::future::Future;
use std::pin::Pin;

use ompss_sim::{delay, Sim, SimDuration, SimResult};

struct ByteExec {
    mem: Arc<MemoryManager>,
}

impl TransferExec for ByteExec {
    fn transfer<'a>(
        &'a self,
        _kind: HopKind,
        _purpose: TransferPurpose,
        src: Loc,
        dst: Loc,
        bytes: u64,
    ) -> Pin<Box<dyn Future<Output = SimResult<bool>> + Send + 'a>> {
        Box::pin(async move {
            delay(SimDuration::from_nanos(bytes)).await?;
            self.mem.copy(
                (src.space, src.alloc),
                src.offset,
                (dst.space, dst.alloc),
                dst.offset,
                bytes,
            );
            Ok(true)
        })
    }
}

/// One generated step: a task on `space_idx` doing `write`/read on
/// region `region_idx`.
#[derive(Debug, Clone, Copy)]
struct Op {
    space_idx: usize,
    region_idx: usize,
    write: bool,
}

fn gen_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0usize..5, 0usize..4, any::<bool>()).prop_map(|(space_idx, region_idx, write)| Op {
            space_idx,
            region_idx,
            write,
        }),
        1..60,
    )
}

fn policy_from(i: u8) -> CachePolicy {
    match i % 3 {
        0 => CachePolicy::NoCache,
        1 => CachePolicy::WriteThrough,
        _ => CachePolicy::WriteBack,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reads_always_observe_last_write(ops in gen_ops(), policy_sel in 0u8..3, tiny in any::<bool>()) {
        let policy = policy_from(policy_sel);
        const LEN: u64 = 32;
        // Machine: master host + slave host, two GPUs on master, one on
        // the slave. `tiny` shrinks GPU capacity to 2 regions to force
        // eviction churn.
        let gpu_cap = if tiny { 2 * LEN } else { 1 << 20 };
        let mem = Arc::new(MemoryManager::new(Backing::Real));
        let master = mem.add_space("master", SpaceKind::Host(0), None, 1 << 30);
        let slave = mem.add_space("slave", SpaceKind::Host(1), None, 1 << 30);
        let g0 = mem.add_space("g0", SpaceKind::Gpu(0, 0), Some(master), gpu_cap);
        let g1 = mem.add_space("g1", SpaceKind::Gpu(0, 1), Some(master), gpu_cap);
        let g2 = mem.add_space("g2", SpaceKind::Gpu(1, 0), Some(slave), gpu_cap);
        let mut topo = Topology::new(master, SlaveRouting::Direct);
        topo.add_gpu(g0, master);
        topo.add_gpu(g1, master);
        topo.add_gpu(g2, slave);
        let spaces = [master, slave, g0, g1, g2];

        let regions: Vec<Region> = (0..4)
            .map(|_| {
                let d = mem.register_data(LEN, master).unwrap();
                Region::new(d, 0, LEN)
            })
            .collect();

        let coh = Arc::new(Coherence::new(mem.clone(), topo, policy));
        let exec = Arc::new(ByteExec { mem: mem.clone() });
        let mem2 = mem.clone();
        let ops2 = ops.clone();
        let regions2 = regions.clone();
        let failure: Arc<parking_lot::Mutex<Option<String>>> =
            Arc::new(parking_lot::Mutex::new(None));
        let failure2 = failure.clone();

        let sim = Sim::new();
        sim.spawn("driver", async move {
            // Shadow model: region -> the stamp of its last write.
            let mut shadow: Vec<u8> = vec![0; regions2.len()];
            let mut stamp: u8 = 0;
            for op in &ops2 {
                let space = spaces[op.space_idx];
                let region = regions2[op.region_idx];
                let access = if op.write {
                    Access::inout(region)
                } else {
                    Access::input(region)
                };
                let loc = coh.acquire(&*exec, &region, true, space).await.unwrap();
                // Verify contents = last write's stamp.
                let mut buf = vec![0u8; LEN as usize];
                mem2.read(space, loc.alloc, loc.offset, &mut buf);
                let expect = shadow[op.region_idx];
                if buf.iter().any(|&b| b != expect) {
                    *failure2.lock() = Some(format!(
                        "op {op:?} (policy {policy:?}): read {} expected {expect}",
                        buf[0]
                    ));
                    return;
                }
                if op.write {
                    stamp = stamp.wrapping_add(1);
                    let data = vec![stamp; LEN as usize];
                    mem2.write(space, loc.alloc, loc.offset, &data);
                    shadow[op.region_idx] = stamp;
                }
                coh.commit(&*exec, &[access], space).await.unwrap();
            }
            // Final flush must land every region's latest bytes at home.
            coh.flush_all(&*exec).await.unwrap();
            for (i, region) in regions2.iter().enumerate() {
                let info = mem2.data_info(region.data);
                let mut buf = vec![0u8; LEN as usize];
                mem2.read(master, info.home_alloc, 0, &mut buf);
                if buf.iter().any(|&b| b != shadow[i]) {
                    *failure2.lock() = Some(format!(
                        "flush: region {i} home has {} expected {} (policy {policy:?})",
                        buf[0], shadow[i]
                    ));
                    return;
                }
            }
        });
        sim.run().unwrap();
        let msg = failure.lock().take();
        prop_assert!(msg.is_none(), "{}", msg.unwrap_or_default());
    }
}
