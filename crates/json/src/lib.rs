//! A minimal JSON document model and writer.
//!
//! The runtime's observability layer (run reports, figure data)
//! serialises to JSON with a hard requirement the usual ecosystem
//! crates don't state: **byte-identical output for identical input**,
//! across runs and platforms. This crate guarantees that by
//! construction — objects are ordered vectors (insertion order is the
//! output order, so builders decide it once), numbers format through
//! Rust's deterministic shortest-round-trip float printing, and the
//! writer has no configuration.
//!
//! Output is standard JSON, pretty-printed with two-space indentation
//! in the same style as `serde_json::to_string_pretty`, so existing
//! tooling that consumed the old bench output keeps working.
//!
//! There is deliberately no parser and no derive machinery: producers
//! implement [`ToJson`] by hand, which keeps the field order explicit
//! and the dependency graph free of proc-macros (the build environment
//! has no network access to fetch them).

#![warn(missing_docs)]

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float. Non-finite values serialise as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; fields keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// An empty array.
    pub fn array() -> Json {
        Json::Arr(Vec::new())
    }

    /// Append a field to an object (builder style).
    ///
    /// # Panics
    /// Panics if `self` is not an object.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.set(key, value);
        self
    }

    /// Append a field to an object in place.
    ///
    /// # Panics
    /// Panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) {
        match self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("Json::set on non-object {other:?}"),
        }
    }

    /// Append an element to an array in place.
    ///
    /// # Panics
    /// Panics if `self` is not an array.
    pub fn push(&mut self, value: impl Into<Json>) {
        match self {
            Json::Arr(items) => items.push(value.into()),
            other => panic!("Json::push on non-array {other:?}"),
        }
    }

    /// Look up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Serialise compactly (no whitespace).
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Serialise pretty-printed with two-space indentation,
    /// `serde_json::to_string_pretty` style (no trailing newline).
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => write_f64(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let start = out.len();
    let _ = write!(out, "{x}");
    // Match serde_json: floats always carry a fractional part or
    // exponent so they round-trip as floats.
    if !out[start..].contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(v as u64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::I64(v)
    }
}
impl From<i32> for Json {
    fn from(v: i32) -> Json {
        Json::I64(v as i64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Json> + Clone> From<&[T]> for Json {
    fn from(v: &[T]) -> Json {
        Json::Arr(v.iter().cloned().map(Into::into).collect())
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map(Into::into).unwrap_or(Json::Null)
    }
}

/// Types with a canonical JSON representation.
pub trait ToJson {
    /// Convert to a JSON value.
    fn to_json(&self) -> Json;
}

impl<T: ToJson> From<&T> for Json {
    fn from(v: &T) -> Json {
        v.to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_match_serde_style() {
        let doc = Json::object()
            .field("name", "fig05")
            .field("points", vec![1u64, 2, 3])
            .field("ratio", 0.5)
            .field("whole", 2.0)
            .field("ok", true)
            .field("none", Json::Null)
            .field("empty_arr", Json::array())
            .field("empty_obj", Json::object());
        assert_eq!(
            doc.to_compact_string(),
            r#"{"name":"fig05","points":[1,2,3],"ratio":0.5,"whole":2.0,"ok":true,"none":null,"empty_arr":[],"empty_obj":{}}"#
        );
        let pretty = doc.to_pretty_string();
        assert!(pretty.starts_with("{\n  \"name\": \"fig05\",\n  \"points\": [\n    1,"));
        assert!(pretty.contains("\"whole\": 2.0"));
        assert!(pretty.contains("\"empty_arr\": []"));
        assert!(pretty.ends_with('}'));
    }

    #[test]
    fn escapes_strings() {
        let j = Json::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(j.to_compact_string(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(Json::from(f64::NAN).to_compact_string(), "null");
        assert_eq!(Json::from(f64::INFINITY).to_compact_string(), "null");
    }

    #[test]
    fn insertion_order_is_output_order() {
        let a = Json::object().field("z", 1u64).field("a", 2u64);
        assert_eq!(a.to_compact_string(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn get_looks_up_fields() {
        let doc = Json::object().field("x", 3u64);
        assert_eq!(doc.get("x"), Some(&Json::U64(3)));
        assert_eq!(doc.get("y"), None);
    }
}
