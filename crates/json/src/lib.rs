//! A minimal JSON document model and writer.
//!
//! The runtime's observability layer (run reports, figure data)
//! serialises to JSON with a hard requirement the usual ecosystem
//! crates don't state: **byte-identical output for identical input**,
//! across runs and platforms. This crate guarantees that by
//! construction — objects are ordered vectors (insertion order is the
//! output order, so builders decide it once), numbers format through
//! Rust's deterministic shortest-round-trip float printing, and the
//! writer has no configuration.
//!
//! Output is standard JSON, pretty-printed with two-space indentation
//! in the same style as `serde_json::to_string_pretty`, so existing
//! tooling that consumed the old bench output keeps working.
//!
//! There is no derive machinery: producers implement [`ToJson`] by
//! hand, which keeps the field order explicit and the dependency graph
//! free of proc-macros (the build environment has no network access to
//! fetch them). A minimal recursive-descent parser ([`Json::parse`])
//! exists for machine-written input — the `ompss-serve` job protocol
//! and committed baseline files — not as a general-purpose JSON reader:
//! it accepts exactly the documents this workspace's writer produces
//! (plus insignificant whitespace) and rejects everything else loudly.

#![warn(missing_docs)]

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float. Non-finite values serialise as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; fields keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// An empty array.
    pub fn array() -> Json {
        Json::Arr(Vec::new())
    }

    /// Append a field to an object (builder style).
    ///
    /// # Panics
    /// Panics if `self` is not an object.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.set(key, value);
        self
    }

    /// Append a field to an object in place.
    ///
    /// # Panics
    /// Panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) {
        match self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("Json::set on non-object {other:?}"),
        }
    }

    /// Append an element to an array in place.
    ///
    /// # Panics
    /// Panics if `self` is not an array.
    pub fn push(&mut self, value: impl Into<Json>) {
        match self {
            Json::Arr(items) => items.push(value.into()),
            other => panic!("Json::push on non-array {other:?}"),
        }
    }

    /// Look up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Serialise compactly (no whitespace).
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Serialise pretty-printed with two-space indentation,
    /// `serde_json::to_string_pretty` style (no trailing newline).
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    /// Parse a JSON document. Numbers become [`Json::U64`] when they
    /// are unsigned integers that fit, [`Json::I64`] when negative
    /// integers, and [`Json::F64`] otherwise; duplicate object keys are
    /// kept in document order (the writer never produces them).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser { bytes: text.as_bytes(), at: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => write_f64(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let start = out.len();
    let _ = write!(out, "{x}");
    // Match serde_json: floats always carry a fractional part or
    // exponent so they round-trip as floats.
    if !out[start..].contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(v as u64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::I64(v)
    }
}
impl From<i32> for Json {
    fn from(v: i32) -> Json {
        Json::I64(v as i64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Json> + Clone> From<&[T]> for Json {
    fn from(v: &[T]) -> Json {
        Json::Arr(v.iter().cloned().map(Into::into).collect())
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map(Into::into).unwrap_or(Json::Null)
    }
}

/// Why [`Json::parse`] rejected a document, with the byte offset of
/// the offending character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub at: usize,
    /// What the parser expected or found.
    pub what: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> ParseError {
        ParseError { at: self.at, what: what.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else { return Err(self.err("unterminated string")) };
            self.at += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.at..self.at + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let n = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("malformed \\u escape"))?;
                            self.at += 4;
                            // Surrogate pairs: the writer never emits
                            // them (it writes raw UTF-8), so only BMP
                            // scalars are accepted.
                            let ch = char::from_u32(n)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(ch);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at `c`.
                    let start = self.at - 1;
                    let width = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return Err(self.err("invalid UTF-8 in string")),
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + width)
                        .and_then(|b| std::str::from_utf8(b).ok())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.at = start + width;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.at += 1;
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.at += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.at += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.at += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ascii number");
        if !fractional {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| ParseError { at: start, what: format!("malformed number '{text}'") })
    }
}

/// Types with a canonical JSON representation.
pub trait ToJson {
    /// Convert to a JSON value.
    fn to_json(&self) -> Json;
}

impl<T: ToJson> From<&T> for Json {
    fn from(v: &T) -> Json {
        v.to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_match_serde_style() {
        let doc = Json::object()
            .field("name", "fig05")
            .field("points", vec![1u64, 2, 3])
            .field("ratio", 0.5)
            .field("whole", 2.0)
            .field("ok", true)
            .field("none", Json::Null)
            .field("empty_arr", Json::array())
            .field("empty_obj", Json::object());
        assert_eq!(
            doc.to_compact_string(),
            r#"{"name":"fig05","points":[1,2,3],"ratio":0.5,"whole":2.0,"ok":true,"none":null,"empty_arr":[],"empty_obj":{}}"#
        );
        let pretty = doc.to_pretty_string();
        assert!(pretty.starts_with("{\n  \"name\": \"fig05\",\n  \"points\": [\n    1,"));
        assert!(pretty.contains("\"whole\": 2.0"));
        assert!(pretty.contains("\"empty_arr\": []"));
        assert!(pretty.ends_with('}'));
    }

    #[test]
    fn escapes_strings() {
        let j = Json::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(j.to_compact_string(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(Json::from(f64::NAN).to_compact_string(), "null");
        assert_eq!(Json::from(f64::INFINITY).to_compact_string(), "null");
    }

    #[test]
    fn insertion_order_is_output_order() {
        let a = Json::object().field("z", 1u64).field("a", 2u64);
        assert_eq!(a.to_compact_string(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let doc = Json::object()
            .field("name", "job-1")
            .field("priority", 2u64)
            .field("neg", -3i64)
            .field("rate", 0.05)
            .field("big", 1.5e10)
            .field("ok", true)
            .field("none", Json::Null)
            .field("tags", vec!["a".to_string(), "b\"c\\d\ne".to_string()])
            .field("empty_arr", Json::array())
            .field("empty_obj", Json::object());
        for text in [doc.to_compact_string(), doc.to_pretty_string()] {
            assert_eq!(Json::parse(&text).expect("parses"), doc, "input: {text}");
        }
    }

    #[test]
    fn parse_number_variants() {
        assert_eq!(Json::parse("7").unwrap(), Json::U64(7));
        assert_eq!(Json::parse("-7").unwrap(), Json::I64(-7));
        assert_eq!(Json::parse("7.5").unwrap(), Json::F64(7.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::F64(1000.0));
        assert_eq!(Json::parse("18446744073709551615").unwrap(), Json::U64(u64::MAX));
    }

    #[test]
    fn parse_unicode_escape_and_utf8() {
        assert_eq!(Json::parse(r#""aAß""#).unwrap(), Json::Str("aAß".to_string()));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated", "{\"a\" 1}"] {
            let e = Json::parse(bad).expect_err(&format!("must reject {bad:?}"));
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn get_looks_up_fields() {
        let doc = Json::object().field("x", 3u64);
        assert_eq!(doc.get("x"), Some(&Json::U64(3)));
        assert_eq!(doc.get("y"), None);
    }
}
